#!/usr/bin/env python
"""CI smoke for the chaos harness and the runtime invariant subsystem.

Three checks, each an acceptance criterion of the robustness work:

1. ``repro chaos --plan storm --kill-one`` -- two real worker
   processes, a schedule that drops/delays/corrupts/tears/resets/
   replays wire frames, one worker SIGKILLed mid-campaign -- must
   report the sweep bit-identical to sequential;
2. a run with ``check_invariants=True`` passes the full audit at both
   window boundaries on every engine;
3. a synthetically wedged configuration (all-clockwise minimal routing
   on a ring, no ITBs) raises a :class:`DeadlockError` whose diagnosis
   *names the wait-for cycle* instead of hanging.

Run from the repo root:  PYTHONPATH=src python scripts/chaos_smoke.py
Exits non-zero (with a diagnostic) on the first violated invariant.
"""

import os
import subprocess
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.config import SimConfig  # noqa: E402
from repro.experiments.runner import run_simulation  # noqa: E402
from repro.routing.routes import SourceRoute  # noqa: E402
from repro.routing.table import RoutingTables  # noqa: E402
from repro.routing.updown import orient_links  # noqa: E402
from repro.sim.engine import DeadlockError  # noqa: E402
from repro.topology import build_torus  # noqa: E402
from repro.units import ns  # noqa: E402


def log(msg):
    print(f"[chaos-smoke] {msg}", flush=True)


def fail(msg):
    log(f"FAIL: {msg}")
    sys.exit(1)


def check_chaos_verb():
    argv = [sys.executable, "-m", "repro", "chaos",
            "--rows", "4", "--cols", "4", "--hosts-per-switch", "2",
            "--warmup-ns", "20000", "--measure-ns", "60000",
            "--rates", "0.005,0.01,0.02",
            "--plan", "storm", "--chaos-seed", "1", "--kill-one"]
    proc = subprocess.run(argv, capture_output=True, text=True,
                          timeout=600)
    sys.stdout.write(proc.stdout)
    if proc.returncode != 0:
        fail(f"repro chaos exited {proc.returncode}:\n{proc.stderr}")
    if "bit-identical under chaos" not in proc.stdout:
        fail("repro chaos did not assert bit-identity")
    if "SIGKILLed worker" not in proc.stdout:
        fail("repro chaos --kill-one never killed a worker")
    if "injected" not in proc.stdout:
        fail("the chaos schedule injected no faults")
    log("repro chaos drill: bit-identical with kill-one OK")


def check_invariants_clean():
    for engine in ("packet", "flit", "array"):
        cfg = SimConfig(
            engine=engine, topology="torus",
            topology_kwargs={"rows": 4, "cols": 4,
                             "hosts_per_switch": 2},
            routing="itb", policy="rr", traffic="uniform",
            injection_rate=0.02, seed=7,
            warmup_ps=ns(20_000), measure_ps=ns(60_000))
        summary = run_simulation(cfg, check_invariants=True)
        if summary.messages_delivered <= 0:
            fail(f"{engine}: audited run delivered nothing")
    log("invariant audit clean on packet/flit/array engines")


def check_deadlock_diagnosis():
    ring = build_torus(rows=1, cols=4, hosts_per_switch=2)
    ud = orient_links(ring, 0)
    routes = {}
    n = ring.num_switches
    for s in range(n):
        for d in range(n):
            path = [s]
            while path[-1] != d:
                path.append((path[-1] + 1) % n)
            routes[(s, d)] = (SourceRoute.single_leg(ring, tuple(path)),)
    tables = RoutingTables("itb", 0, ud, routes)
    cfg = SimConfig(
        topology="torus",
        topology_kwargs={"rows": 1, "cols": 4, "hosts_per_switch": 2},
        routing="itb", traffic="uniform", injection_rate=0.5,
        warmup_ps=ns(500_000), measure_ps=ns(2_000_000), seed=3)
    try:
        run_simulation(cfg, tables=tables, watchdog_ps=ns(100_000))
    except DeadlockError as exc:
        if not exc.diagnosis or not exc.diagnosis.get("wait_for_cycle"):
            fail("deadlock detected but the dump names no cycle")
        cycle = exc.diagnosis["wait_for_cycle"]
        log(f"deadlock diagnosed: {len(cycle)}-worm cycle "
            + " -> ".join(str(e['waiter']) for e in cycle))
        return
    fail("wedged ring did not deadlock (the smoke config is wrong)")


def main():
    check_invariants_clean()
    check_deadlock_diagnosis()
    check_chaos_verb()
    log("all chaos smoke checks passed")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""CI smoke for the distributed campaign fabric and ``repro serve``.

Boots two real ``repro fabric worker`` processes on localhost, then
checks the full distributed contract end to end:

1. a sweep dispatched across the two workers is **bit-identical** to
   the same sweep run sequentially in-process;
2. SIGKILLing one worker mid-campaign loses zero points -- the dead
   worker's lease is re-granted and every task still completes;
3. ``repro serve`` streams per-point NDJSON progress for a submitted
   campaign spec, and a repeated submission is served entirely from
   the warm cache with byte-identical results.

Run from the repo root:  PYTHONPATH=src python scripts/fabric_smoke.py
Exits non-zero (with a diagnostic) on the first violated invariant.
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.config import SimConfig  # noqa: E402
from repro.orchestrator import (Executor, FabricPool, Point,  # noqa: E402
                                ResultStore)
from repro.orchestrator.pool import POINT_TASK_FN, Task  # noqa: E402

CONFIG = {
    "topology": "torus",
    "topology_kwargs": {"rows": 4, "cols": 4, "hosts_per_switch": 2},
    "routing": "itb", "policy": "rr", "traffic": "uniform",
    "injection_rate": 0.01, "warmup_ps": 20_000_000,
    "measure_ps": 80_000_000, "seed": 5,
}
RATES = [0.004, 0.008, 0.012, 0.016]

_PROCS = []


def log(msg):
    print(f"[fabric-smoke] {msg}", flush=True)


def fail(msg):
    log(f"FAIL: {msg}")
    sys.exit(1)


def spawn(argv, announce_marker):
    """Start a repro subprocess; return (proc, announced address)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", *argv],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    _PROCS.append(proc)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            fail(f"{argv[0]} exited before announcing: rc={proc.poll()}")
        if announce_marker in line:
            addr = line.split(announce_marker, 1)[1].split()[0]
            return proc, addr
    fail(f"{argv[0]} never announced its address")


def points():
    return [Point(f"rate:{r:.6g}",
                  SimConfig.from_dict(dict(CONFIG, injection_rate=r)))
            for r in RATES]


def run_campaign(tmp, tag, **executor_kwargs):
    store = ResultStore(os.path.join(tmp, tag))
    ex = Executor(store=store, **executor_kwargs)
    results = ex.run_points(points())
    return [r.to_dict() for r in results]


def check_bit_identical(tmp, fleet):
    sequential = run_campaign(tmp, "seq")
    distributed = run_campaign(tmp, "fab", workers=fleet)
    if distributed != sequential:
        fail("distributed results differ from sequential")
    log(f"bit-identical across 2 workers: {len(sequential)} points OK")


def check_sigkill_survival(fleet, victim):
    """Kill one worker as soon as the first point lands."""
    pool = FabricPool(fleet, retries=1)
    tasks = [Task(p.point_id, POINT_TASK_FN, p.payload())
             for p in points()]
    seen = []

    def on_result(result):
        if not seen:
            victim.send_signal(signal.SIGKILL)
            log(f"SIGKILLed worker pid={victim.pid} mid-campaign")
        seen.append(result)

    results = pool.run(tasks, on_result)
    bad = [r for r in results if not r.ok]
    if bad:
        fail(f"lost {len(bad)} points after worker kill: "
             f"{[r.error for r in bad]}")
    retried = [r for r in results if r.attempts > 1]
    log(f"survived SIGKILL: {len(results)} points OK, "
        f"{len(retried)} re-leased")


def post_campaign(addr, spec):
    host, port = addr.rsplit(":", 1)
    conn = http.client.HTTPConnection(host, int(port), timeout=300)
    conn.request("POST", "/campaign", json.dumps(spec),
                 {"Content-Type": "application/json"})
    resp = conn.getresponse()
    lines = [json.loads(ln) for ln in
             resp.read().decode("utf-8").splitlines() if ln]
    conn.close()
    return resp.status, lines


def check_serve(addr):
    spec = {"config": CONFIG, "rates": RATES}
    status, first = post_campaign(addr, spec)
    if status != 200:
        fail(f"serve returned HTTP {status}")
    progress = [e for e in first if e["event"] == "point"]
    if len(progress) != len(RATES):
        fail(f"expected {len(RATES)} streamed point events, "
             f"got {len(progress)}")
    if first[-1]["event"] != "done":
        fail(f"stream ended with {first[-1]!r}")
    log(f"serve streamed {len(progress)} progress events, "
        f"stats={first[-1]['stats']}")

    _status, second = post_campaign(addr, spec)
    if second[-1]["stats"]["cached"] != len(RATES):
        fail(f"resubmission not served from cache: "
             f"{second[-1]['stats']}")
    if second[-1]["results"] != first[-1]["results"]:
        fail("cached results differ from originally computed ones")
    log("resubmitted campaign served warm, byte-identical")


def main():
    env_note = "engine smoke config: 4x4 torus, itb/rr/uniform"
    log(env_note)
    tmp = tempfile.mkdtemp(prefix="fabric_smoke_")
    _w1, addr1 = spawn(["fabric", "worker", "--listen", "127.0.0.1:0"],
                       "fabric worker listening on")
    w2, addr2 = spawn(["fabric", "worker", "--listen", "127.0.0.1:0"],
                      "fabric worker listening on")
    fleet = f"{addr1},{addr2}"
    log(f"fleet up: {fleet}")

    check_bit_identical(tmp, fleet)
    check_sigkill_survival(fleet, victim=w2)

    serve_store = os.path.join(tmp, "serve")
    _srv, srv_addr = spawn(
        ["serve", "--host", "127.0.0.1", "--port", "0",
         "--cache-dir", serve_store],
        "repro serve listening on")
    srv_addr = srv_addr.removeprefix("http://").rstrip("/")
    check_serve(srv_addr)

    log("all fabric smoke checks passed")


if __name__ == "__main__":
    try:
        main()
    finally:
        for proc in _PROCS:
            if proc.poll() is None:
                proc.kill()

#!/usr/bin/env python
"""Development install that works on offline / minimal environments.

``pip install -e .`` needs the ``wheel`` package on older setuptools
(its PEP 660 editable build calls ``bdist_wheel``).  On machines without
network access that dependency cannot be fetched, so this script:

1. tries the normal ``pip install -e .`` first;
2. on failure, falls back to dropping a ``.pth`` file pointing at
   ``src/`` into the active environment's site-packages -- functionally
   equivalent to an editable install for a pure-Python package.

Usage:  python scripts/dev_install.py
"""

from __future__ import annotations

import site
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"


def try_pip() -> bool:
    proc = subprocess.run(
        [sys.executable, "-m", "pip", "install", "-e", str(REPO),
         "--no-build-isolation"],
        capture_output=True, text=True)
    return proc.returncode == 0


def pth_fallback() -> Path:
    site_dir = Path(site.getsitepackages()[0])
    pth = site_dir / "repro-dev.pth"
    pth.write_text(str(SRC) + "\n")
    return pth


def main() -> int:
    if try_pip():
        print("installed via pip (editable)")
    else:
        pth = pth_fallback()
        print(f"pip editable install unavailable (no 'wheel' package?); "
              f"wrote {pth} instead")
    out = subprocess.run(
        [sys.executable, "-c", "import repro; print(repro.__version__)"],
        capture_output=True, text=True)
    if out.returncode != 0:
        print("import check FAILED:\n" + out.stderr, file=sys.stderr)
        return 1
    print(f"import check OK: repro {out.stdout.strip()}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Gate on sim-core benchmark regressions.

Compares a freshly generated ``BENCH_sim_core.json`` (see
``benchmarks/run_paper_profile.py --bench-core-only``) against the
committed baseline and exits non-zero when any point's ``events_per_s``
falls more than ``--tolerance`` (default 30 %) below it.

The gate is deliberately loose: events/sec is machine-dependent and CI
runners are noisy, so only a large, consistent drop -- the kind a
hot-path regression produces -- trips it.  Refresh the committed
baseline (``benchmarks/BENCH_sim_core.json``) whenever the benchmark
matrix or the CI hardware generation changes.

Usage:  python scripts/check_bench_regression.py CURRENT BASELINE
            [--tolerance 0.30]
"""

from __future__ import annotations

import argparse
import json
import sys


def load_points(path: str) -> dict:
    """Read one benchmark JSON; every malformed input dies with a
    one-line explanation naming the file, never a traceback."""
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as e:
        sys.exit(f"error: cannot read benchmark file {path}: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"error: {path} is not valid JSON ({e}); regenerate it "
                 f"with benchmarks/run_paper_profile.py --bench-core-only")
    if not isinstance(data, dict) or "points" not in data:
        sys.exit(f"error: {path} has no 'points' key; expected the "
                 f"format written by run_paper_profile.py "
                 f"--bench-core-out")
    points = {}
    for i, p in enumerate(data["points"]):
        missing = [k for k in ("name", "events_per_s") if k not in p]
        if missing:
            sys.exit(f"error: {path}: points[{i}] is missing "
                     f"{', '.join(missing)}; regenerate the file with "
                     f"run_paper_profile.py --bench-core-out")
        points[p["name"]] = p
    return points


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", help="freshly generated BENCH_sim_core.json")
    ap.add_argument("baseline", help="committed baseline to compare against")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed fractional events/sec drop (default 0.30)")
    args = ap.parse_args()

    current = load_points(args.current)
    baseline = load_points(args.baseline)

    failed = []
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            print(f"{name:14s} MISSING from current run")
            failed.append(name)
            continue
        floor = base["events_per_s"] * (1.0 - args.tolerance)
        ratio = (cur["events_per_s"] / base["events_per_s"]
                 if base["events_per_s"] else float("inf"))
        ok = cur["events_per_s"] >= floor
        print(f"{name:14s} {cur['events_per_s']:12,.0f} ev/s "
              f"vs baseline {base['events_per_s']:12,.0f} "
              f"({ratio:5.2f}x, floor {floor:12,.0f}) "
              f"{'ok' if ok else 'REGRESSED'}")
        if not ok:
            failed.append(name)
    extra = sorted(set(current) - set(baseline))
    if extra:
        print(f"note: points not in baseline (ignored): {', '.join(extra)}")

    if failed:
        print(f"FAIL: events/sec regressed beyond "
              f"{args.tolerance:.0%} on: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    print("sim-core benchmark within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Gate on sim-core benchmark regressions.

Compares a freshly generated ``BENCH_sim_core.json`` (see
``benchmarks/run_paper_profile.py --bench-core-only``) against the
committed baseline and exits non-zero when:

* any baseline point is **missing** from the current run (a silently
  dropped benchmark config would otherwise disable its gate forever);
* the current run has **extra** points absent from the baseline (the
  baseline no longer describes the matrix -- regenerate and commit it);
* any point's ``events_per_s`` or ``messages_per_s`` falls more than
  ``--tolerance`` (default 30 %) below the baseline.  Events/s tracks
  the event-loop hot path but is meaningless across engines (batch
  engines collapse thousands of events into one tick), so messages/s
  -- simulated messages delivered per wall-clock second -- is gated
  with it as the cross-engine-honest axis.

The throughput gate is deliberately loose: both axes are
machine-dependent and CI runners are noisy, so only a large, consistent
drop -- the kind a hot-path regression produces -- trips it.  The
matrix-shape checks are exact.  Refresh the committed baseline
(``benchmarks/BENCH_sim_core.json``) whenever the benchmark matrix or
the CI hardware generation changes.

Usage:  python scripts/check_bench_regression.py CURRENT BASELINE
            [--tolerance 0.30]
"""

from __future__ import annotations

import argparse
import json
import sys

#: throughput axes gated per point (fractional-drop tolerance applies
#: to each independently)
GATED_METRICS = ("events_per_s", "messages_per_s")


def load_points(path: str) -> dict:
    """Read one benchmark JSON; every malformed input dies with a
    one-line explanation naming the file, never a traceback."""
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as e:
        sys.exit(f"error: cannot read benchmark file {path}: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"error: {path} is not valid JSON ({e}); regenerate it "
                 f"with benchmarks/run_paper_profile.py --bench-core-only")
    if not isinstance(data, dict) or "points" not in data:
        sys.exit(f"error: {path} has no 'points' key; expected the "
                 f"format written by run_paper_profile.py "
                 f"--bench-core-out")
    points = {}
    for i, p in enumerate(data["points"]):
        missing = [k for k in ("name",) + GATED_METRICS if k not in p]
        if missing:
            sys.exit(f"error: {path}: points[{i}] is missing "
                     f"{', '.join(missing)}; regenerate the file with "
                     f"run_paper_profile.py --bench-core-out")
        points[p["name"]] = p
    return points


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", help="freshly generated BENCH_sim_core.json")
    ap.add_argument("baseline", help="committed baseline to compare against")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed fractional throughput drop per metric "
                         "(default 0.30)")
    args = ap.parse_args()

    current = load_points(args.current)
    baseline = load_points(args.baseline)

    failed = []
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            print(f"{name:14s} MISSING from current run")
            failed.append(name)
            continue
        for metric in GATED_METRICS:
            floor = base[metric] * (1.0 - args.tolerance)
            ratio = (cur[metric] / base[metric]
                     if base[metric] else float("inf"))
            ok = cur[metric] >= floor
            print(f"{name:14s} {metric:14s} {cur[metric]:12,.0f} "
                  f"vs baseline {base[metric]:12,.0f} "
                  f"({ratio:5.2f}x, floor {floor:12,.0f}) "
                  f"{'ok' if ok else 'REGRESSED'}")
            if not ok and name not in failed:
                failed.append(name)
    extra = sorted(set(current) - set(baseline))
    if extra:
        print(f"FAIL: points not in baseline: {', '.join(extra)}; "
              f"regenerate and commit benchmarks/BENCH_sim_core.json",
              file=sys.stderr)

    if failed:
        print(f"FAIL: throughput regressed beyond "
              f"{args.tolerance:.0%} (or point missing) on: "
              f"{', '.join(failed)}",
              file=sys.stderr)
    if failed or extra:
        return 1
    print("sim-core benchmark within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Setuptools shim.

Kept alongside pyproject.toml so ``pip install -e .`` also works on
minimal environments where the ``wheel`` package (required by the
PEP 660 editable path of older setuptools) is unavailable.
"""

from setuptools import setup

setup()

"""Topology mutation (link/switch failures) and failure-mode routing."""

import pytest

from repro.config import SimConfig
from repro.experiments.runner import run_simulation
from repro.routing.analysis import route_statistics
from repro.routing.table import compute_tables
from repro.topology import build_mutated, build_torus, check_topology
from repro.topology.mutate import (without_links, without_links_mapped,
                                   without_switch, without_switch_mapped)
from repro.topology.mutated import mutation_maps
from repro.units import ns


@pytest.fixture(scope="module")
def torus44():
    return build_torus(rows=4, cols=4, hosts_per_switch=2)


class TestWithoutLinks:
    def test_removes_exactly_the_links(self, torus44):
        lid = torus44.link_between(0, 1)
        g2 = without_links(torus44, [lid])
        check_topology(g2)
        assert g2.num_links == torus44.num_links - 1
        assert g2.link_between(0, 1) is None
        assert g2.num_switches == torus44.num_switches
        assert g2.num_hosts == torus44.num_hosts

    def test_hosts_preserved(self, torus44):
        g2 = without_links(torus44, [0])
        for h in torus44.hosts:
            assert g2.host_switch(h.id) == h.switch

    def test_original_untouched(self, torus44):
        before = torus44.num_links
        without_links(torus44, [0, 1])
        assert torus44.num_links == before

    def test_partition_detected(self):
        # a 1x2 "torus" has a single link: removing it partitions
        g = build_torus(rows=1, cols=2, hosts_per_switch=1, switch_ports=4)
        with pytest.raises(ValueError, match="partitions"):
            without_links(g, [0])

    def test_partition_allowed_when_requested(self):
        g = build_torus(rows=1, cols=2, hosts_per_switch=1, switch_ports=4)
        g2 = without_links(g, [0], require_connected=False)
        assert not g2.is_connected()

    def test_out_of_range(self, torus44):
        with pytest.raises(ValueError):
            without_links(torus44, [999])


class TestWithoutSwitch:
    def test_structure(self, torus44):
        g2 = without_switch(torus44, 5)
        check_topology(g2)
        assert g2.num_switches == 15
        assert g2.num_hosts == 30     # 2 hosts went down with switch 5
        # old switch 6 is new switch 5; old 4 stays 4
        assert g2.degree(4) == torus44.degree(4) - 1  # lost link to old 5

    def test_id_shift(self, torus44):
        g2 = without_switch(torus44, 0)
        # old link (1, 2) must exist as (0, 1)
        assert g2.link_between(0, 1) is not None

    def test_out_of_range(self, torus44):
        with pytest.raises(ValueError):
            without_switch(torus44, 99)

    def test_last_switch_rejected(self):
        from repro.topology.graph import NetworkGraph
        g = NetworkGraph(1, 4)
        g.add_host(0)
        g.freeze()
        with pytest.raises(ValueError):
            without_switch(g, 0)


class TestWithoutLinksMapped:
    def test_link_map_tracks_renumbering(self, torus44):
        dead = [3, 7]
        rem = without_links_mapped(torus44, dead)
        check_topology(rem.graph)
        assert set(rem.link_map) == set(range(torus44.num_links)) - set(dead)
        # every surviving cable keeps its endpoints under the new id
        for old, new in rem.link_map.items():
            assert (rem.graph.links[new].endpoints()
                    == torus44.links[old].endpoints())

    def test_plain_wrapper_matches(self, torus44):
        g2 = without_links(torus44, [3, 7])
        rem = without_links_mapped(torus44, [3, 7])
        assert g2.num_links == rem.graph.num_links


class TestWithoutSwitchMapped:
    def test_maps_cover_survivors_only(self, torus44):
        rem = without_switch_mapped(torus44, 5)
        check_topology(rem.graph)
        assert 5 not in rem.switch_map
        assert set(rem.switch_map) == set(range(16)) - {5}
        dead_hosts = set(torus44.hosts_at(5))
        assert set(rem.host_map) == set(range(torus44.num_hosts)) - dead_hosts

    def test_hosts_stay_attached_to_mapped_switch(self, torus44):
        """The whole point of the maps: a host's switch in the new
        graph is the mapped id of its old switch -- per-host data can
        be aligned across the failure without guessing the shift."""
        rem = without_switch_mapped(torus44, 5)
        for old_h, new_h in rem.host_map.items():
            old_sw = torus44.host_switch(old_h)
            assert rem.graph.host_switch(new_h) == rem.switch_map[old_sw]

    def test_maps_are_dense_and_order_preserving(self, torus44):
        rem = without_switch_mapped(torus44, 0)
        assert sorted(rem.switch_map.values()) == list(range(15))
        olds = sorted(rem.switch_map)
        news = [rem.switch_map[o] for o in olds]
        assert news == sorted(news)


class TestMutatedBuilder:
    def test_matches_direct_mutation(self, torus44):
        g = build_mutated(base="torus",
                          base_kwargs={"rows": 4, "cols": 4,
                                       "hosts_per_switch": 2},
                          failed_links=[3, 7])
        ref = without_links(torus44, [3, 7])
        check_topology(g)
        assert g.num_links == ref.num_links
        assert ([link.endpoints() for link in g.links]
                == [link.endpoints() for link in ref.links])

    def test_switch_failure_after_links(self, torus44):
        g = build_mutated(base="torus",
                          base_kwargs={"rows": 4, "cols": 4,
                                       "hosts_per_switch": 2},
                          failed_links=[3], failed_switch=5)
        check_topology(g)
        assert g.num_switches == 15

    def test_no_nesting(self):
        with pytest.raises(ValueError, match="nest"):
            build_mutated(base="mutated")

    def test_mutation_maps_identity_for_link_failures(self):
        kwargs = {"rows": 4, "cols": 4, "hosts_per_switch": 2}
        sw_map, h_map = mutation_maps("torus", kwargs, failed_links=[3])
        assert sw_map == {s: s for s in range(16)}
        assert h_map == {h: h for h in range(32)}

    def test_mutation_maps_switch_failure(self, torus44):
        kwargs = {"rows": 4, "cols": 4, "hosts_per_switch": 2}
        sw_map, h_map = mutation_maps("torus", kwargs, failed_switch=5)
        ref = without_switch_mapped(torus44, 5)
        assert sw_map == ref.switch_map
        assert h_map == ref.host_map


class TestRoutingAfterFailure:
    def test_tables_recompute_and_stay_deadlock_free(self, torus44):
        lid = torus44.link_between(0, 1)
        g2 = without_links(torus44, [lid])
        for scheme in ("updown", "itb"):
            t = compute_tables(g2, scheme)
            t.validate(g2)   # every leg legal => deadlock-free

    def test_simulation_on_degraded_network(self, torus44):
        """Traffic still flows after a failure near the root."""
        lid = torus44.link_between(0, 1)
        g2 = without_links(torus44, [lid])
        cfg = SimConfig(topology="torus",    # name only labels the run
                        routing="itb", policy="rr", traffic="uniform",
                        injection_rate=0.02,
                        warmup_ps=ns(30_000), measure_ps=ns(120_000))
        s = run_simulation(cfg, graph=g2)
        assert s.messages_delivered > 0
        assert not s.saturated

    def test_distance_degrades_gracefully(self, torus44):
        lid = torus44.link_between(0, 1)
        g2 = without_links(torus44, [lid])
        before = route_statistics(torus44, compute_tables(torus44, "itb"))
        after = route_statistics(g2, compute_tables(g2, "itb"))
        assert after.avg_minimal_distance >= before.avg_minimal_distance
        assert after.fraction_minimal == 1.0  # ITB stays minimal

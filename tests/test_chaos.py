"""Chaos-injection fabric harness: deterministic plans, per-fault
recovery, and bit-identity of a chaos-ridden campaign.

The proxy sits between a real :class:`FabricPool` and real
:class:`FabricWorker` sessions, so every recovery asserted here is the
production lease discipline reacting to a genuinely broken wire --
nothing is mocked.  The acceptance test at the bottom mirrors the
``repro chaos`` CLI verb: two forked workers, a storm schedule, one
worker SIGKILLed mid-campaign, and the sweep must still come out
bit-identical to sequential.
"""

import multiprocessing as mp
import os
import signal
import threading
import time

import pytest

from repro.experiments.sweep import sweep_rates
from repro.orchestrator import Executor
from repro.orchestrator.chaos import ChaosFabric, ChaosPlan
from repro.orchestrator.fabric import FabricPool, FabricWorker
from repro.orchestrator.pool import Task
from tests.conftest import small_config

_HERE = "tests.test_chaos"
_CTX = mp.get_context("fork") if "fork" in mp.get_all_start_methods() \
    else None


def double_task(payload):
    return {"value": payload["x"] * 2}


@pytest.fixture
def worker_addr():
    """One in-process fabric worker on an ephemeral port."""
    worker = FabricWorker("127.0.0.1:0")
    addr = worker.listen()
    thread = threading.Thread(target=worker.serve_forever, daemon=True)
    thread.start()
    yield addr
    worker.close()


def _run_under(addr, plan, n=6):
    """Run n double_tasks through a chaos proxy; return (results, fabric)."""
    with ChaosFabric(addr, plan) as chaos:
        pool = FabricPool(chaos.addrs, retries=10, lease_timeout_s=10.0,
                          connect_attempts=40, connect_backoff_s=0.02)
        tasks = [Task(str(i), f"{_HERE}:double_task", {"x": i})
                 for i in range(n)]
        results = pool.run(tasks)
    return results, chaos


class TestChaosPlan:
    def test_probability_validation(self):
        with pytest.raises(ValueError, match="probability"):
            ChaosPlan(drop=1.5)
        with pytest.raises(ValueError, match="probability"):
            ChaosPlan(corrupt=-0.1)
        with pytest.raises(ValueError, match="non-negative"):
            ChaosPlan(delay_ms=-1)
        with pytest.raises(ValueError, match="budget"):
            ChaosPlan(max_events=-1)

    def test_round_trip(self):
        plan = ChaosPlan.storm(seed=9)
        assert ChaosPlan.from_dict(plan.to_dict()) == plan
        with pytest.raises(ValueError, match="unknown"):
            ChaosPlan.from_dict({"jitter": 0.5})

    def test_schedule_is_seed_deterministic(self):
        plan = ChaosPlan(seed=4, drop=0.3)
        a = [plan.rng_for(0, 2, "c->w").random() for _ in range(5)]
        b = [plan.rng_for(0, 2, "c->w").random() for _ in range(5)]
        assert a == b
        # distinct streams per proxy / connection / direction
        assert a != [plan.rng_for(0, 3, "c->w").random()
                     for _ in range(5)]
        assert a != [plan.rng_for(0, 2, "w->c").random()
                     for _ in range(5)]

    def test_describe(self):
        assert ChaosPlan.quiet().describe() == "quiet (no faults)"
        text = ChaosPlan.storm(seed=7).describe()
        for kind in ("drop", "corrupt", "truncate", "reset",
                     "duplicate", "budget"):
            assert kind in text


class TestChaosProxyRecovery:
    def test_quiet_plan_is_transparent(self, worker_addr):
        results, chaos = _run_under(worker_addr, ChaosPlan.quiet())
        assert all(r.ok and r.attempts == 1 for r in results)
        assert chaos.log.total == 0

    @pytest.mark.parametrize("kind,plan_kwargs", [
        ("drop", {"drop": 0.2}),
        ("delay", {"delay": 0.5, "delay_ms": 20.0}),
        ("corrupt", {"corrupt": 0.2}),
        ("truncate", {"truncate": 0.25}),
        ("reset", {"reset": 0.25}),
        ("stall", {"stall": 0.3, "stall_ms": 40.0}),
        ("duplicate", {"duplicate": 0.3}),
    ])
    def test_every_fault_kind_is_survived(self, worker_addr, kind,
                                          plan_kwargs):
        """Each fault kind alone: the schedule fires it at least once
        and the campaign still completes with correct values."""
        plan = ChaosPlan(seed=13, max_events=16, **plan_kwargs)
        results, chaos = _run_under(worker_addr, plan, n=8)
        assert all(r.ok for r in results), \
            [(r.task_id, r.error) for r in results if not r.ok]
        assert [r.value["value"] for r in results] == \
            [2 * i for i in range(8)]
        assert chaos.log.counts.get(kind, 0) >= 1, chaos.log.counts

    def test_budget_bounds_injection(self, worker_addr):
        plan = ChaosPlan(seed=2, drop=1.0, max_events=3)
        results, chaos = _run_under(worker_addr, plan, n=6)
        assert all(r.ok for r in results)
        # after 3 dropped frames the proxy turns transparent forever
        assert chaos.log.total == 3

    def test_zero_budget_disables_chaos(self, worker_addr):
        plan = ChaosPlan(seed=2, drop=1.0, reset=1.0, max_events=0)
        results, chaos = _run_under(worker_addr, plan)
        assert all(r.ok and r.attempts == 1 for r in results)
        assert chaos.log.total == 0

    def test_dead_backend_refuses_cleanly(self):
        """A proxy whose backend is gone refuses the dial instead of
        accepting and wedging the coordinator."""
        with ChaosFabric("127.0.0.1:1", ChaosPlan.quiet()) as chaos:
            pool = FabricPool(chaos.addrs, connect_attempts=2,
                              connect_backoff_s=0.02)
            results = pool.run([Task("t", f"{_HERE}:double_task",
                                     {"x": 1})])
        assert not results[0].ok
        assert "no reachable fabric workers" in results[0].error


@pytest.mark.skipif(_CTX is None,
                    reason="acceptance drill forks real worker processes")
class TestChaosAcceptance:
    def test_storm_plus_worker_kill_is_bit_identical(self, tmp_path):
        """The tentpole acceptance bar: a two-worker sweep under a
        schedule that drops/delays/corrupts/tears/resets/replays
        frames, with one worker SIGKILLed mid-campaign, reproduces the
        sequential sweep bit for bit."""
        procs, addrs = [], []
        for _ in range(2):
            worker = FabricWorker()
            addrs.append(worker.listen())
            proc = _CTX.Process(target=worker.serve_forever, daemon=True)
            proc.start()
            worker._sock.close()       # parent's copy; the child serves
            procs.append(proc)
        base = small_config()
        rates = [0.004, 0.008, 0.02]
        seq = sweep_rates(base, rates)

        plan = ChaosPlan(seed=5, drop=0.08, delay=0.10, delay_ms=10.0,
                         corrupt=0.05, truncate=0.04, reset=0.04,
                         duplicate=0.05, max_events=40)
        killed = []
        try:
            with ChaosFabric(",".join(addrs), plan) as chaos:
                ex = Executor(fabric=chaos.addrs, retries=10,
                              timeout_s=30.0)
                ex.pool.connect_attempts = 40
                ex.pool.connect_backoff_s = 0.02

                def reaper():
                    deadline = time.monotonic() + 60
                    while (time.monotonic() < deadline
                           and ex.stats.simulated < 1):
                        time.sleep(0.02)
                    if procs[0].is_alive():
                        os.kill(procs[0].pid, signal.SIGKILL)
                        killed.append(procs[0].pid)

                threading.Thread(target=reaper, daemon=True).start()
                par = sweep_rates(base, rates, executor=ex)
                assert ex.stats.simulated == len(rates)
            assert killed, "the reaper never fired"
            assert chaos.log.total > 0, "the schedule injected nothing"
            assert [r.to_dict() for r in par.runs] == \
                [r.to_dict() for r in seq.runs]
        finally:
            for proc in procs:
                if proc.is_alive():
                    os.kill(proc.pid, signal.SIGKILL)
                proc.join(timeout=5.0)

"""BFS spanning tree construction."""

import pytest

from repro.routing.spanning_tree import build_spanning_tree
from repro.topology import build_torus
from repro.topology.graph import NetworkGraph


def test_root_level_zero(torus44):
    t = build_spanning_tree(torus44, root=0)
    assert t.level[0] == 0
    assert t.parent[0] == -1


def test_levels_match_bfs_distance(torus44):
    t = build_spanning_tree(torus44, root=5)
    dist = torus44.shortest_distances(5)
    assert list(t.level) == dist


def test_parent_one_level_up(torus44):
    t = build_spanning_tree(torus44, root=0)
    for s in torus44.switches():
        if s == 0:
            continue
        assert t.level[t.parent[s]] == t.level[s] - 1
        assert torus44.link_between(s, t.parent[s]) is not None


def test_deterministic(torus44):
    a = build_spanning_tree(torus44, root=0)
    b = build_spanning_tree(torus44, root=0)
    assert a == b


def test_parent_prefers_lower_id(torus44):
    """Tie-breaking is toward the lower-id switch (deterministic)."""
    t = build_spanning_tree(torus44, root=0)
    # switch 5 is at distance 2 via 1 or 4; BFS explores sorted, so 1 wins
    assert t.parent[5] == 1


def test_depth(torus44):
    t = build_spanning_tree(torus44, root=0)
    assert t.depth() == max(torus44.shortest_distances(0))


def test_root_out_of_range(torus44):
    with pytest.raises(ValueError):
        build_spanning_tree(torus44, root=99)


def test_disconnected_rejected():
    g = NetworkGraph(3, 4)
    g.add_link(0, 1)
    g.add_host(2)
    g.freeze()
    with pytest.raises(ValueError):
        build_spanning_tree(g, root=0)


def test_alternative_root():
    g = build_torus(rows=4, cols=4, hosts_per_switch=1)
    t = build_spanning_tree(g, root=10)
    assert t.root == 10
    assert t.level[10] == 0

"""Metrics: latency collector, link stats, saturation search."""

import math

import pytest

from repro.config import PAPER_PARAMS, SimConfig
from repro.metrics.collector import LatencyCollector
from repro.metrics.saturation import find_saturation
from repro.metrics.summary import RunSummary
from repro.routing.routes import RouteLeg, SourceRoute
from repro.sim.packet import Packet


def mk_packet(created, injected, delivered, payload=512, pid=0):
    route = SourceRoute((RouteLeg((0,), ()),))
    p = Packet(pid, 0, 1, payload, route, created, PAPER_PARAMS)
    p.injected_ps = injected
    p.delivered_ps = delivered
    return p


class TestLatencyCollector:
    def test_accumulates(self):
        c = LatencyCollector()
        c.on_delivered(mk_packet(0, 100, 1_000))
        c.on_delivered(mk_packet(0, 500, 3_000))
        assert c.messages == 2
        assert c.payload_flits == 1024
        assert c.avg_latency_ns() == pytest.approx((1.0 + 3.0) / 2)
        assert c.avg_network_latency_ns() == pytest.approx((0.9 + 2.5) / 2)
        assert c.max_latency_ps == 3_000

    def test_empty_returns_none(self):
        c = LatencyCollector()
        assert c.avg_latency_ns() is None
        assert c.avg_network_latency_ns() is None
        assert c.avg_itbs_per_message() is None

    def test_reset(self):
        c = LatencyCollector()
        c.on_delivered(mk_packet(0, 0, 500))
        c.reset()
        assert c.messages == 0
        assert c.payload_flits == 0
        assert c.avg_latency_ns() is None

    def test_accepted_traffic_unit(self):
        """1024 payload flits over 1000 ns on 2 switches =
        0.512 flits/ns/switch."""
        c = LatencyCollector()
        c.on_delivered(mk_packet(0, 0, 1, payload=1024))
        assert c.accepted_flits_ns_switch(1_000_000, 2) == \
            pytest.approx(0.512)

    def test_accepted_traffic_validation(self):
        c = LatencyCollector()
        with pytest.raises(ValueError):
            c.accepted_flits_ns_switch(0, 2)

    def test_percentiles_require_samples(self):
        c = LatencyCollector()
        with pytest.raises(RuntimeError):
            c.percentile_ns(0.5)

    def test_percentiles(self):
        c = LatencyCollector(keep_samples=True)
        for i in range(1, 11):
            c.on_delivered(mk_packet(0, 0, i * 1_000, pid=i))
        assert c.percentile_ns(0.0) == 1.0
        # nearest-rank: rank ceil(0.5 * 10) = 5 -> the 5th sample, not
        # the 6th (the old int(q * n) indexing over-indexed by one)
        assert c.percentile_ns(0.5) == 5.0
        assert c.percentile_ns(1.0) == 10.0
        with pytest.raises(ValueError):
            c.percentile_ns(1.5)

    def test_percentile_nearest_rank_exact_boundaries(self):
        """Exact-boundary quantiles follow the nearest-rank definition
        (rank = ceil(q * n), 1-based)."""
        c = LatencyCollector(keep_samples=True)
        for i in range(1, 5):  # samples 1, 2, 3, 4 ns
            c.on_delivered(mk_packet(0, 0, i * 1_000, pid=i))
        assert c.percentile_ns(0.25) == 1.0   # ceil(1) -> 1st
        assert c.percentile_ns(0.5) == 2.0    # ceil(2) -> 2nd
        assert c.percentile_ns(0.75) == 3.0   # ceil(3) -> 3rd
        assert c.percentile_ns(1.0) == 4.0    # ceil(4) -> 4th (no clamp)
        assert c.percentile_ns(0.51) == 3.0   # ceil(2.04) -> 3rd

    def test_percentile_single_sample(self):
        c = LatencyCollector(keep_samples=True)
        c.on_delivered(mk_packet(0, 0, 7_000))
        for q in (0.0, 0.5, 1.0):
            assert c.percentile_ns(q) == 7.0

    def test_percentile_empty_returns_none(self):
        c = LatencyCollector(keep_samples=True)
        assert c.percentile_ns(0.5) is None


class TestPercentileCacheAndBatch:
    """The lazily sorted percentile cache and the batch recording path
    must be observationally identical to fresh sorting / per-message
    recording."""

    def test_nearest_rank_matches_statistics_quantiles(self):
        """Property: with 101 samples, ``statistics.quantiles`` (method
        ``inclusive``, n=100) lands exactly on sample ranks -- the
        interpolation weight is zero -- so nearest-rank must agree bit
        for bit at every interior percentile, for random data."""
        import random
        import statistics
        for seed in range(5):
            rng = random.Random(seed)
            samples = [rng.randrange(1, 10**9) for _ in range(101)]
            c = LatencyCollector(keep_samples=True)
            c.record_batch(samples, samples, [512] * len(samples),
                           [0] * len(samples), [0] * len(samples))
            cuts = statistics.quantiles(samples, n=100,
                                        method="inclusive")
            for i in range(1, 100):
                assert c.percentile_ns(i / 100) == cuts[i - 1] / 1_000

    def test_nearest_rank_property_random_sizes(self):
        """Property: the nearest-rank percentile is always an actual
        sample, and it is the smallest sample with at least ``q * n``
        samples at or below it."""
        import math
        import random
        rng = random.Random(99)
        for _ in range(20):
            n = rng.randrange(1, 40)
            samples = [rng.randrange(1, 10**6) for _ in range(n)]
            c = LatencyCollector(keep_samples=True)
            c.record_batch(samples, samples, [512] * n, [0] * n, [0] * n)
            q = rng.random()
            r_ns = c.percentile_ns(q)
            matches = [s for s in samples if s / 1_000 == r_ns]
            assert matches
            r = matches[0]
            rank = max(1, math.ceil(q * n))
            assert sum(1 for s in samples if s <= r) >= rank
            below = [s for s in sorted(samples) if s < r]
            if below:
                assert sum(1 for s in samples if s <= below[-1]) < rank

    def test_cache_invalidated_by_record(self):
        """Querying, then recording more (both paths), then querying
        again must equal a fresh collector over the union -- the sorted
        cache may never serve stale data."""
        c = LatencyCollector(keep_samples=True)
        c.on_delivered(mk_packet(0, 0, 5_000))
        c.on_delivered(mk_packet(0, 0, 1_000))
        assert c.percentile_ns(1.0) == 5.0  # populates the cache
        c.on_delivered(mk_packet(0, 0, 9_000))
        assert c.percentile_ns(1.0) == 9.0
        c.record_batch([11_000], [11_000], [512], [0], [0])
        assert c.percentile_ns(1.0) == 11.0
        assert c.percentile_ns(0.0) == 1.0
        fresh = LatencyCollector(keep_samples=True)
        fresh.record_batch([5_000, 1_000, 9_000, 11_000],
                           [5_000, 1_000, 9_000, 11_000],
                           [512] * 4, [0] * 4, [0] * 4)
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert c.percentile_ns(q) == fresh.percentile_ns(q)

    def test_cache_invalidated_by_reset(self):
        c = LatencyCollector(keep_samples=True)
        c.on_delivered(mk_packet(0, 0, 5_000))
        assert c.percentile_ns(0.5) == 5.0
        c.reset()
        assert c.percentile_ns(0.5) is None
        c.on_delivered(mk_packet(0, 0, 2_000))
        assert c.percentile_ns(0.5) == 2.0

    def test_record_batch_equals_sequential(self):
        """One cohort == the same messages delivered one by one, on
        every accumulator."""
        pkts = [mk_packet(0, i * 100, (i + 3) * 1_000, payload=256 + i,
                          pid=i) for i in range(7)]
        seq = LatencyCollector(keep_samples=True)
        for p in pkts:
            seq.on_delivered(p)
        batch = LatencyCollector(keep_samples=True)
        batch.record_batch([p.latency_ps() for p in pkts],
                           [p.network_latency_ps() for p in pkts],
                           [p.payload_bytes for p in pkts],
                           [p.num_itbs for p in pkts],
                           [p.itb_overflows for p in pkts])
        for field in ("messages", "payload_flits", "sum_latency_ps",
                      "sum_network_latency_ps", "max_latency_ps",
                      "sum_itbs", "sum_itb_overflows", "samples_ps"):
            assert getattr(seq, field) == getattr(batch, field)

    def test_record_batch_empty_and_inactive(self):
        c = LatencyCollector(keep_samples=True)
        c.record_batch([], [], [], [], [])
        assert c.messages == 0
        c.active = False
        c.record_batch([1_000], [900], [512], [0], [0])
        assert c.messages == 0


def synthetic_run_at(capacity, window_messages=1000):
    """Network that accepts min(offered, capacity); past capacity the
    backlog grows by the excess."""
    def run_at(rate):
        accepted = min(rate, capacity)
        generated = window_messages
        delivered = int(window_messages * accepted / rate)
        cfg = SimConfig(injection_rate=rate)
        return RunSummary(
            config=cfg, offered_flits_ns_switch=rate,
            accepted_flits_ns_switch=accepted,
            messages_delivered=delivered, messages_generated=generated,
            avg_latency_ns=1000.0, avg_network_latency_ns=900.0,
            max_latency_ns=2000.0, avg_itbs_per_message=0.0,
            itb_overflow_count=0, itb_peak_bytes=0, link_utilization=None,
            backlog_growth=generated - delivered)
    return run_at


class TestSaturationSearch:
    def test_finds_capacity(self):
        res = find_saturation(synthetic_run_at(0.03), start_rate=0.005)
        assert res.throughput == pytest.approx(0.03, rel=0.02)
        assert res.last_stable_rate <= res.first_saturated_rate

    def test_bracket_tightens_with_refinement(self):
        lo_res = find_saturation(synthetic_run_at(0.03), 0.005,
                                 refine_steps=0)
        hi_res = find_saturation(synthetic_run_at(0.03), 0.005,
                                 refine_steps=5)
        width = lambda r: r.first_saturated_rate - r.last_stable_rate
        assert width(hi_res) < width(lo_res)

    def test_start_rate_already_saturated_ramps_down(self):
        """A saturating start_rate must not report last_stable_rate=0:
        the search ramps down geometrically until a stable rate is
        measured, then bisects the (stable, saturated) bracket."""
        res = find_saturation(synthetic_run_at(0.002), start_rate=0.005)
        assert res.last_stable_rate > 0.0
        assert any(not r.saturated for r in res.runs)
        assert res.last_stable_rate < res.first_saturated_rate
        assert res.first_saturated_rate <= 0.005
        assert res.throughput == pytest.approx(0.002, rel=0.05)

    def test_deeply_saturated_start_gives_up_after_down_steps(self):
        """When even deep down-ramp probes saturate, the search stops
        after max_down_steps instead of looping forever."""
        res = find_saturation(synthetic_run_at(1e-9), start_rate=1.0,
                              max_down_steps=4)
        assert not res.converged
        # 1 up probe + 4 down probes; no bisection without a bracket
        assert len(res.runs) == 5

    def test_exhausted_down_ramp_reports_nan_not_zero(self):
        """Regression: an always-saturated response curve must not
        yield a last_stable_rate anchored on the never-measured 0.0.
        The exhausted ramp is reported explicitly: converged=False and
        last_stable_rate=nan, with every probed rate saturated."""
        res = find_saturation(synthetic_run_at(1e-9), start_rate=1.0,
                              max_down_steps=4)
        assert res.converged is False
        assert math.isnan(res.last_stable_rate)
        assert all(r.saturated for r in res.runs)
        # first_saturated_rate is the lowest rate actually probed
        probed = [r.offered_flits_ns_switch for r in res.runs]
        assert res.first_saturated_rate == pytest.approx(min(probed))

    def test_converged_set_on_bracketed_search(self):
        res = find_saturation(synthetic_run_at(0.03), start_rate=0.005)
        assert res.converged

    def test_ramp_down_recovery_is_converged(self):
        res = find_saturation(synthetic_run_at(0.002), start_rate=0.005)
        assert res.converged

    def test_never_saturates_within_bounds(self):
        res = find_saturation(synthetic_run_at(1e9), 0.005, max_rate=0.1)
        assert res.first_saturated_rate == float("inf")
        assert res.throughput > 0
        assert not res.converged

    def test_run_log_kept(self):
        res = find_saturation(synthetic_run_at(0.03), 0.005)
        assert len(res.runs) >= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            find_saturation(synthetic_run_at(1), 0.0)
        with pytest.raises(ValueError):
            find_saturation(synthetic_run_at(1), 0.1, growth=1.0)


class TestRunSummarySaturatedFlag:
    def test_not_saturated(self):
        s = synthetic_run_at(10.0)(0.02)
        assert not s.saturated

    def test_saturated(self):
        s = synthetic_run_at(0.01)(0.02)
        assert s.saturated

    def test_oneline_smoke(self):
        s = synthetic_run_at(10.0)(0.02)
        line = s.oneline()
        assert "offered=0.0200" in line
        assert "UP/DOWN" in line

"""Shared fixtures: small topologies and fast profiles.

Unit tests run on scaled-down networks (4x4 torus with 2 hosts per
switch, tiny irregular graphs) so the whole suite stays fast; the
paper-scale 512-host networks are exercised by the integration tests
and the benchmarks.
"""

from __future__ import annotations

import pytest

from repro.config import SimConfig
from repro.experiments.runner import clear_caches
from repro.topology import (build_cplant, build_irregular, build_torus,
                            build_torus_express)
from repro.units import ns


@pytest.fixture(autouse=True)
def _fresh_caches():
    """Isolate the runner's graph/table caches between tests."""
    clear_caches()
    yield
    clear_caches()


@pytest.fixture(scope="session")
def torus44():
    """4x4 torus, 2 hosts/switch (32 hosts) -- the unit-test workhorse."""
    return build_torus(rows=4, cols=4, hosts_per_switch=2)


@pytest.fixture(scope="session")
def torus88():
    """The paper's 8x8 torus with 8 hosts/switch (512 hosts)."""
    return build_torus()


@pytest.fixture(scope="session")
def express44():
    """4x4 express torus, 2 hosts/switch."""
    return build_torus_express(rows=4, cols=4, hosts_per_switch=2)


@pytest.fixture(scope="session")
def cplant():
    """The paper's CPLANT network (50 switches, 400 hosts)."""
    return build_cplant()


@pytest.fixture(scope="session")
def irregular16():
    """16-switch random irregular network (extension substrate)."""
    return build_irregular(num_switches=16, hosts_per_switch=2, seed=3)


def small_config(**overrides) -> SimConfig:
    """A fast 4x4-torus run description for integration tests."""
    base = dict(
        topology="torus",
        topology_kwargs={"rows": 4, "cols": 4, "hosts_per_switch": 2},
        routing="itb",
        policy="rr",
        traffic="uniform",
        injection_rate=0.01,
        warmup_ps=ns(20_000),
        measure_ps=ns(80_000),
        seed=5,
    )
    base.update(overrides)
    return SimConfig(**base)

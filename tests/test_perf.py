"""Perf instrumentation: recorder, profiler, and the bench gate."""

import json
import pstats
import subprocess
import sys
from pathlib import Path

from repro.config import SimConfig
from repro.experiments.runner import run_simulation
from repro.perf import PerfRecorder, PerfReport, profile_to
from repro.units import ns

CFG = SimConfig(topology="torus",
                topology_kwargs={"rows": 4, "cols": 4,
                                 "hosts_per_switch": 2},
                routing="itb", policy="rr", traffic="uniform",
                injection_rate=0.01, seed=3,
                warmup_ps=ns(20_000), measure_ps=ns(60_000))

REPO = Path(__file__).resolve().parent.parent


class TestPerfRecorder:
    def test_run_simulation_fills_report(self):
        rec = PerfRecorder()
        summary = run_simulation(CFG, perf=rec)
        r = rec.report
        assert r is not None
        assert r.events > 0
        assert r.sim_time_ps == CFG.warmup_ps + CFG.measure_ps
        assert r.messages_delivered >= summary.messages_delivered
        assert r.wall_s >= r.sim_wall_s > 0
        assert r.setup_wall_s >= 0
        assert r.events_per_s > 0
        assert r.messages_per_s > 0
        # the oneline and dict views agree with the raw fields
        assert str(r.events) in r.oneline().replace(",", "")
        assert r.to_dict()["events"] == r.events

    def test_perf_does_not_change_results(self):
        plain = run_simulation(CFG)
        with_perf = run_simulation(CFG, perf=PerfRecorder())
        assert plain == with_perf

    def test_simulator_counters(self):
        rec = PerfRecorder()
        run_simulation(CFG, perf=rec)
        # Simulator-side counters feed the report; rates only exist
        # once some loop wall-clock has accumulated
        assert rec.report.events_per_s > 0

    def test_zero_wall_rates(self):
        r = PerfReport(wall_s=0.0, setup_wall_s=0.0, sim_wall_s=0.0,
                       events=0, messages_delivered=0, sim_time_ps=0)
        assert r.events_per_s == 0.0
        assert r.messages_per_s == 0.0


class TestProfileTo:
    def test_dumps_loadable_stats(self, tmp_path):
        out = tmp_path / "prof.out"
        run_simulation(CFG, profile_path=str(out))
        stats = pstats.Stats(str(out))
        assert stats.total_calls > 0

    def test_none_is_noop(self):
        with profile_to(None):
            pass
        with profile_to(""):
            pass


class TestBenchRegressionGate:
    CHECKER = REPO / "scripts" / "check_bench_regression.py"

    @staticmethod
    def _bench_file(path: Path, **rates) -> Path:
        """Synthetic bench JSON; a point's value is its events/s (its
        messages/s then scales with it) or an explicit
        ``(events_per_s, messages_per_s)`` pair."""
        points = []
        for name, rate in rates.items():
            ev, msgs = rate if isinstance(rate, tuple) else (rate, rate / 5)
            points.append({"name": name, "engine": "packet",
                           "cold_wall_s": 1.0, "best_loop_wall_s": 0.5,
                           "events": 1000, "events_per_s": ev,
                           "messages_delivered": 10,
                           "messages_per_s": msgs})
        path.write_text(json.dumps(
            {"schema": 1, "repeats": 1, "points": points}))
        return path

    def _run(self, current: Path, baseline: Path):
        return subprocess.run(
            [sys.executable, str(self.CHECKER), str(current),
             str(baseline)], capture_output=True, text=True)

    def test_within_tolerance_passes(self, tmp_path):
        base = self._bench_file(tmp_path / "base.json", a=100.0, b=200.0)
        cur = self._bench_file(tmp_path / "cur.json", a=80.0, b=190.0)
        res = self._run(cur, base)
        assert res.returncode == 0, res.stdout + res.stderr

    def test_large_regression_fails(self, tmp_path):
        base = self._bench_file(tmp_path / "base.json", a=100.0, b=200.0)
        cur = self._bench_file(tmp_path / "cur.json", a=60.0, b=190.0)
        res = self._run(cur, base)
        assert res.returncode == 1
        assert "REGRESSED" in res.stdout

    def test_messages_only_regression_fails(self, tmp_path):
        # events/s steady but messages/s collapsed: the event loop kept
        # its pace while doing less useful work per event -- gated too
        base = self._bench_file(tmp_path / "base.json", a=(100.0, 100.0))
        cur = self._bench_file(tmp_path / "cur.json", a=(100.0, 60.0))
        res = self._run(cur, base)
        assert res.returncode == 1
        assert "REGRESSED" in res.stdout

    def test_missing_point_fails(self, tmp_path):
        base = self._bench_file(tmp_path / "base.json", a=100.0, b=200.0)
        cur = self._bench_file(tmp_path / "cur.json", a=100.0)
        res = self._run(cur, base)
        assert res.returncode == 1
        assert "MISSING" in res.stdout

    def test_extra_point_fails(self, tmp_path):
        base = self._bench_file(tmp_path / "base.json", a=100.0)
        cur = self._bench_file(tmp_path / "cur.json", a=100.0, b=50.0)
        res = self._run(cur, base)
        assert res.returncode == 1
        assert "not in baseline" in res.stderr

    def test_committed_baseline_is_valid(self):
        baseline = REPO / "benchmarks" / "BENCH_sim_core.json"
        data = json.loads(baseline.read_text())
        points = {p["name"]: p for p in data["points"]}
        assert {"packet-paper", "array-paper", "flit-paper",
                "packet-val", "flit-val", "array-val"} <= set(points)
        assert all(p["events_per_s"] > 0 for p in data["points"])
        assert all(p["messages_per_s"] > 0 for p in data["points"])
        assert {"packet", "flit", "array"} == {p["engine"]
                                              for p in data["points"]}

    def test_committed_baseline_shows_array_speedup(self):
        # the array engine's reason to exist: >= 10x the packet engine
        # on the paper-scale workload.  Events/s cannot compare engines
        # (batch ticks collapse thousands of events), so the committed
        # baseline must show the gap on messages/s.
        baseline = REPO / "benchmarks" / "BENCH_sim_core.json"
        points = {p["name"]: p
                  for p in json.loads(baseline.read_text())["points"]}
        assert (points["array-paper"]["messages_per_s"]
                >= 10 * points["packet-paper"]["messages_per_s"])

    def test_missing_file_gives_clear_error(self, tmp_path):
        base = self._bench_file(tmp_path / "base.json", a=100.0)
        res = self._run(tmp_path / "nope.json", base)
        assert res.returncode != 0
        assert "cannot read benchmark file" in res.stderr
        assert "Traceback" not in res.stderr

    def test_bad_json_gives_clear_error(self, tmp_path):
        base = self._bench_file(tmp_path / "base.json", a=100.0)
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        res = self._run(broken, base)
        assert res.returncode != 0
        assert "not valid JSON" in res.stderr
        assert "Traceback" not in res.stderr

    def test_missing_points_key_gives_clear_error(self, tmp_path):
        base = self._bench_file(tmp_path / "base.json", a=100.0)
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"schema": 1}))
        res = self._run(wrong, base)
        assert res.returncode != 0
        assert "no 'points' key" in res.stderr
        assert "Traceback" not in res.stderr

    def test_missing_point_keys_give_clear_error(self, tmp_path):
        base = self._bench_file(tmp_path / "base.json", a=100.0)
        partial = tmp_path / "partial.json"
        partial.write_text(json.dumps(
            {"points": [{"name": "a"}]}))  # no events_per_s
        res = self._run(partial, base)
        assert res.returncode != 0
        assert "events_per_s" in res.stderr
        assert "Traceback" not in res.stderr

"""Up*/down* orientation, legality and legal-path machinery."""

from itertools import permutations

import pytest

from repro.routing.spanning_tree import build_spanning_tree
from repro.routing.updown import (DOWN, UP, enumerate_legal_paths,
                                  legal_distances_to,
                                  legal_shortest_distances, orient_links)
from repro.topology import build_torus
from repro.topology.graph import NetworkGraph


@pytest.fixture(scope="module")
def g44():
    return build_torus(rows=4, cols=4, hosts_per_switch=1)


@pytest.fixture(scope="module")
def ud44(g44):
    return orient_links(g44, root=0)


class TestOrientation:
    def test_up_end_closer_to_root(self, g44, ud44):
        lvl = ud44.tree.level
        for link in g44.links:
            up = ud44.up_end[link.id]
            down = link.other(up)
            assert (lvl[up], up) < (lvl[down], down)

    def test_tie_broken_by_lower_id(self):
        # triangle with equal levels on 1 and 2
        g = NetworkGraph(3, 4)
        g.add_link(0, 1)
        g.add_link(0, 2)
        g.add_link(1, 2)
        g.add_host(0)
        g.freeze()
        ud = orient_links(g, root=0)
        lid = g.link_between(1, 2)
        assert ud.up_end[lid] == 1

    def test_is_up_antisymmetric(self, g44, ud44):
        for link in g44.links:
            a, b = link.endpoints()
            assert ud44.is_up(a, b, link.id) != ud44.is_up(b, a, link.id)

    def test_every_cycle_has_up_and_down(self, g44, ud44):
        """The Autonet property: each 4-cycle of the torus contains at
        least one up and one down traversal in either direction."""
        # the fundamental square 0-1-5-4-0
        cycle = [0, 1, 5, 4, 0]
        dirs = []
        for a, b in zip(cycle, cycle[1:]):
            lid = g44.link_between(a, b)
            dirs.append(ud44.is_up(a, b, lid))
        assert any(dirs) and not all(dirs)


class TestLegality:
    def test_tree_paths_legal(self, g44, ud44):
        """Walking up to the root and down to any switch is legal."""
        tree = ud44.tree
        for s in g44.switches():
            path = [s]
            while path[-1] != 0:
                path.append(tree.parent[path[-1]])
            assert ud44.path_is_legal(g44, path)
            assert ud44.path_is_legal(g44, path[::-1])

    def test_down_then_up_illegal(self, g44, ud44):
        """Find some concrete down->up sequence and assert illegality."""
        found = False
        for mid in g44.switches():
            nbs = [nb for nb, lid in g44.neighbors(mid)
                   if not ud44.is_up(nb, mid, lid)]  # nb -> mid is down
            ups = [nb for nb, lid in g44.neighbors(mid)
                   if ud44.is_up(mid, nb, lid)]      # mid -> nb is up
            for a in nbs:
                for b in ups:
                    if a != b:
                        assert not ud44.path_is_legal(g44, [a, mid, b])
                        found = True
        assert found

    def test_unlinked_pair_raises(self, g44, ud44):
        with pytest.raises(ValueError):
            ud44.path_is_legal(g44, [0, 5])  # diagonal, no cable

    def test_single_switch_legal(self, g44, ud44):
        assert ud44.path_is_legal(g44, [3])


def brute_force_legal_distance(g, ud, src, dst, max_len=6):
    """Exhaustive check over all simple paths up to max_len."""
    if src == dst:
        return 0
    best = None
    def walk(path):
        nonlocal best
        if len(path) - 1 > max_len:
            return
        if path[-1] == dst:
            if ud.path_is_legal(g, path):
                L = len(path) - 1
                best = L if best is None else min(best, L)
            return
        for nb, _ in g.neighbors(path[-1]):
            if nb not in path:
                walk(path + [nb])
    walk([src])
    return best


class TestLegalDistances:
    def test_against_brute_force(self, g44, ud44):
        for src in (0, 3, 10):
            dist = legal_shortest_distances(g44, ud44, src)
            for dst in g44.switches():
                expected = brute_force_legal_distance(g44, ud44, src, dst)
                assert dist[dst] == expected, (src, dst)

    def test_legal_never_shorter_than_minimal(self, g44, ud44):
        for src in g44.switches():
            legal = legal_shortest_distances(g44, ud44, src)
            minimal = g44.shortest_distances(src)
            for dst in g44.switches():
                assert legal[dst] >= minimal[dst]

    def test_some_pair_needs_detour_on_8x8(self):
        """On the paper's 8x8 torus up*/down* forbids all minimal paths
        for some pairs (the 4x4 is small enough to escape this; the
        paper notes the number of forbidden minimal paths grows with
        network size)."""
        g = build_torus(rows=8, cols=8, hosts_per_switch=1)
        ud = orient_links(g, root=0)
        detours = 0
        for src in g.switches():
            legal = legal_shortest_distances(g, ud, src)
            minimal = g.shortest_distances(src)
            detours += sum(1 for dst in g.switches()
                           if legal[dst] > minimal[dst])
        # 732 of 4032 ordered pairs (~18%, matching the paper's "80% of
        # paths are minimal" for UP/DOWN)
        assert detours == 732

    def test_distances_to_consistent(self, g44, ud44):
        """legal_distances_to (backward) agrees with forward BFS."""
        for dst in (0, 7, 12):
            back = legal_distances_to(g44, ud44, dst)
            for src in g44.switches():
                fwd = legal_shortest_distances(g44, ud44, src)
                assert back[src][UP] >= fwd[dst] or src == dst
                # starting fresh (phase UP) must equal the legal distance
                assert min(back[src][UP],
                           g44.num_switches * 2 + 1) == \
                    (back[src][UP])
            # forward from src equals backward phase-UP entry
            for src in g44.switches():
                fwd = legal_shortest_distances(g44, ud44, src)
                assert fwd[dst] == back[src][UP] if src != dst else True


class TestEnumerateLegalPaths:
    def test_all_results_legal_and_simple(self, g44, ud44):
        for src, dst in [(0, 15), (9, 2), (6, 6)]:
            paths = enumerate_legal_paths(g44, ud44, src, dst, max_len=5)
            assert paths
            for p in paths:
                assert p[0] == src and p[-1] == dst
                assert len(set(p)) == len(p)
                assert ud44.path_is_legal(g44, p)

    def test_respects_max_len(self, g44, ud44):
        for p in enumerate_legal_paths(g44, ud44, 0, 15, max_len=4):
            assert len(p) - 1 <= 4

    def test_respects_cap(self, g44, ud44):
        uncapped = enumerate_legal_paths(g44, ud44, 0, 15, max_len=6,
                                         max_paths=1000)
        assert len(uncapped) >= 2
        capped = enumerate_legal_paths(g44, ud44, 0, 15, max_len=6,
                                       max_paths=1)
        assert len(capped) == 1
        assert capped[0] in uncapped

    def test_finds_all_shortest_legal(self, g44, ud44):
        """With a generous cap, every shortest legal simple path found
        by brute force must be in the enumeration."""
        src, dst = 10, 3
        dist = legal_shortest_distances(g44, ud44, src)[dst]
        enum = set(enumerate_legal_paths(g44, ud44, src, dst, dist,
                                         max_paths=10_000))
        # brute force all simple paths of exactly length dist
        found = set()
        def walk(path):
            if len(path) - 1 == dist:
                if path[-1] == dst and ud44.path_is_legal(g44, path):
                    found.add(tuple(path))
                return
            for nb, _ in g44.neighbors(path[-1]):
                if nb not in path:
                    walk(path + [nb])
        walk([src])
        assert found == {p for p in enum if len(p) - 1 == dist}

    def test_zero_budget(self, g44, ud44):
        assert enumerate_legal_paths(g44, ud44, 0, 1, max_len=0) == []
        assert enumerate_legal_paths(g44, ud44, 2, 2, max_len=0) == [(2,)]

"""Resilience subsystem: sampling, campaign, report."""

from __future__ import annotations

import json

import pytest

from repro.experiments.profiles import TEST
from repro.orchestrator import Executor
from repro.resilience import (render_resilience_table, run_resilience,
                              sample_failed_links, sample_failed_switch)
from repro.resilience.campaign import _cell_payload, resilience_cell_task
from repro.topology import build_torus
from repro.topology.mutate import without_links
from repro.topology.validate import check_topology


@pytest.fixture(scope="module")
def torus33():
    return build_torus(rows=3, cols=3, hosts_per_switch=2)


class TestSampling:
    def test_deterministic(self, torus33):
        assert (sample_failed_links(torus33, 3, 7)
                == sample_failed_links(torus33, 3, 7))
        assert (sample_failed_switch(torus33, 7)
                == sample_failed_switch(torus33, 7))

    def test_seed_and_k_vary_the_set(self, torus33):
        sets = {sample_failed_links(torus33, 2, s) for s in range(8)}
        assert len(sets) > 1
        assert (sample_failed_links(torus33, 1, 7)
                != sample_failed_links(torus33, 3, 7))

    def test_survivors_stay_connected(self, torus33):
        for seed in range(5):
            for k in (1, 2, 4):
                failed = sample_failed_links(torus33, k, seed)
                assert len(failed) == k
                g = without_links(torus33, failed)
                assert g.is_connected()
                check_topology(g)

    def test_k_zero_and_negative(self, torus33):
        assert sample_failed_links(torus33, 0, 1) == ()
        with pytest.raises(ValueError):
            sample_failed_links(torus33, -1, 1)

    def test_failed_switch_is_removable(self, torus33):
        sw = sample_failed_switch(torus33, 3)
        assert 0 <= sw < torus33.num_switches


class TestCellTask:
    def test_payload_is_json_safe(self):
        payload = _cell_payload("torus", {"rows": 3, "cols": 3,
                                          "hosts_per_switch": 2},
                                (1, 5), "itb", "rr", TEST,
                                start_rate=0.005, probe_rate=0.01,
                                seed=1, root=0)
        assert json.loads(json.dumps(payload)) == payload
        assert payload["topology"] == "mutated"

    def test_healthy_payload_uses_base_topology(self):
        payload = _cell_payload("torus", {"rows": 3, "cols": 3},
                                (), "updown", "sp", TEST,
                                start_rate=0.005, probe_rate=0.01,
                                seed=1, root=0)
        assert payload["topology"] == "torus"

    def test_task_result_shape(self):
        payload = _cell_payload("torus", {"rows": 3, "cols": 3,
                                          "hosts_per_switch": 2},
                                (2,), "itb", "rr", TEST,
                                start_rate=0.01, probe_rate=0.01,
                                seed=1, root=0)
        res = resilience_cell_task(payload)
        assert json.loads(json.dumps(res)) == res
        assert res["throughput"] > 0
        assert 0.0 <= res["fraction_minimal"] <= 1.0
        assert 0.0 <= res["root_concentration"] <= 1.0
        assert res["runs"] >= 2


class TestCampaign:
    @pytest.fixture(scope="class")
    def report(self):
        return run_resilience(
            "torus", TEST, seed=1, ks=(1,),
            topology_kwargs={"rows": 3, "cols": 3,
                             "hosts_per_switch": 2},
            start_rate=0.01)

    def test_baseline_retention_is_unity(self, report):
        for cell in report.baseline.values():
            assert cell.k == 0
            assert cell.retention == 1.0
            assert cell.failed_links == ()

    def test_degraded_cells_cover_schemes(self, report):
        assert {c.label for c in report.cells} == {"UP/DOWN", "ITB-RR"}
        for cell in report.cells:
            assert cell.k == 1
            assert len(cell.failed_links) == 1
            assert cell.throughput > 0
            assert cell.retention > 0

    def test_parallel_run_matches_inline(self, report):
        ex = Executor(workers=2, store=None)
        par = run_resilience(
            "torus", TEST, seed=1, ks=(1,),
            topology_kwargs={"rows": 3, "cols": 3,
                             "hosts_per_switch": 2},
            start_rate=0.01, executor=ex)
        assert par == report

    def test_render(self, report):
        text = render_resilience_table(report)
        assert "Graceful degradation" in text
        assert "UP/DOWN" in text and "ITB-RR" in text
        assert "k=1" in text
        assert "100.0%" in text  # baseline retention

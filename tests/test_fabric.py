"""Distributed campaign fabric: wire protocol, lease discipline,
worker-death recovery and bit-identical-vs-sequential determinism.

Workers run as forked child processes serving a socket bound by the
parent (so the tests know the port without a rendezvous), which also
makes SIGKILL scenarios honest: the killed worker is a real OS
process whose sockets die with it.
"""

import multiprocessing as mp
import os
import signal
import socket
import threading
import time

import pytest

from repro.experiments.sweep import sweep_rates
from repro.orchestrator import Executor, FabricPool, FabricWorker, ResultStore
from repro.orchestrator.pool import Task
from repro.orchestrator.wire import (WIRE_FORMAT, FrameError, parse_addrs,
                                     recv_frame, send_frame)
from tests.conftest import small_config

_HERE = "tests.test_fabric"
_CTX = mp.get_context("fork")

pytestmark = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="fabric worker fixtures inherit a bound socket via fork")


def double_task(payload):
    return {"value": payload["x"] * 2}


def boom_task(payload):
    raise ValueError("boom")


def slow_task(payload):
    time.sleep(payload.get("seconds", 0.3))
    return {"value": payload["x"] * 2}


def hang_once_task(payload):
    """Hangs (until the lease expires) on the first run, then returns."""
    flag = payload["flag"]
    if not os.path.exists(flag):
        with open(flag, "w") as fh:
            fh.write("attempt 1\n")
        time.sleep(60)
    return {"recovered": True}


@pytest.fixture
def fleet():
    """Start fabric workers as forked processes; kill them on exit."""
    procs = []

    def start(n=1):
        started = []
        for _ in range(n):
            worker = FabricWorker()
            addr = worker.listen()
            proc = _CTX.Process(target=worker.serve_forever, daemon=True)
            proc.start()
            worker._sock.close()       # parent's copy; the child serves
            procs.append(proc)
            started.append((addr, proc))
        return started

    yield start
    for proc in procs:
        if proc.is_alive():
            os.kill(proc.pid, signal.SIGKILL)
        proc.join(timeout=5.0)


class TestWire:
    def test_frame_round_trip(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"type": "task", "payload": {"x": [1, 2]}})
            assert recv_frame(b) == {"type": "task",
                                     "payload": {"x": [1, 2]}}
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_mid_frame_eof_raises(self):
        a, b = socket.socketpair()
        a.sendall(b"\x00\x00")         # half a length prefix
        a.close()
        try:
            with pytest.raises(FrameError, match="mid-frame"):
                recv_frame(b)
        finally:
            b.close()

    def test_implausible_length_rejected(self):
        a, b = socket.socketpair()
        a.sendall(b"\xff\xff\xff\xff")  # ~4 GB frame: not a fabric peer
        try:
            with pytest.raises(FrameError, match="exceeds"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_undecodable_body_rejected(self):
        a, b = socket.socketpair()
        a.sendall(b"\x00\x00\x00\x03not")
        try:
            with pytest.raises(FrameError, match="undecodable|object"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_parse_addrs(self):
        assert parse_addrs("h1:7001, h2:7002") == [("h1", 7001),
                                                   ("h2", 7002)]
        with pytest.raises(ValueError, match="host:port"):
            parse_addrs("justahost")
        with pytest.raises(ValueError, match="no fabric"):
            parse_addrs(" , ")


class TestFabricPool:
    def test_two_workers_run_everything(self, fleet):
        (a1, _), (a2, _) = fleet(2)
        pool = FabricPool(f"{a1},{a2}")
        assert pool.workers == 2
        tasks = [Task(str(i), f"{_HERE}:double_task", {"x": i})
                 for i in range(8)]
        results = pool.run(tasks)
        assert [r.value["value"] for r in results] == \
            [2 * i for i in range(8)]
        assert all(r.ok and r.attempts == 1 for r in results)

    def test_clean_exception_fails_without_retry(self, fleet):
        ((addr, _),) = fleet(1)
        pool = FabricPool(addr, retries=3)
        results = pool.run([Task("t", f"{_HERE}:boom_task", {})])
        assert not results[0].ok
        assert results[0].attempts == 1
        assert "ValueError: boom" in results[0].error

    def test_empty_task_list(self, fleet):
        ((addr, _),) = fleet(1)
        assert FabricPool(addr).run([]) == []

    def test_duplicate_ids_rejected(self, fleet):
        ((addr, _),) = fleet(1)
        with pytest.raises(ValueError, match="unique"):
            FabricPool(addr).run(
                [Task("a", f"{_HERE}:double_task", {"x": 1}),
                 Task("a", f"{_HERE}:double_task", {"x": 2})])

    def test_sigkilled_worker_task_releases_zero_lost(self, fleet):
        """A worker SIGKILLed mid-campaign loses no points: its lease
        dies with its socket and the task re-runs elsewhere."""
        (a1, p1), (a2, _p2) = fleet(2)
        pool = FabricPool(f"{a1},{a2}", retries=2)
        tasks = [Task(str(i), f"{_HERE}:slow_task",
                      {"x": i, "seconds": 0.25}) for i in range(6)]
        killed = []

        def kill_first(_res):
            if not killed:
                os.kill(p1.pid, signal.SIGKILL)
                killed.append(True)

        results = pool.run(tasks, on_result=kill_first)
        assert killed
        assert all(r.ok for r in results)
        assert [r.value["value"] for r in results] == \
            [2 * i for i in range(6)]
        # exactly the lease in flight on the killed worker re-ran
        assert max(r.attempts for r in results) == 2

    def test_lease_timeout_regrants_to_other_worker(self, fleet,
                                                    tmp_path):
        """A hung lease expires and the task re-leases; the retry lands
        on the idle worker (the hung one is still wedged)."""
        (a1, _), (a2, _) = fleet(2)
        flag = str(tmp_path / "flag")
        pool = FabricPool(f"{a1},{a2}", lease_timeout_s=0.5, retries=1)
        t0 = time.monotonic()
        results = pool.run([Task("t", f"{_HERE}:hang_once_task",
                                 {"flag": flag})])
        assert time.monotonic() - t0 < 30
        assert results[0].ok
        assert results[0].value == {"recovered": True}
        assert results[0].attempts == 2

    def test_unreachable_worker_does_not_stall_fleet(self, fleet):
        ((addr, _),) = fleet(1)
        # port 1 refuses immediately; the dead address burns no attempts
        pool = FabricPool(f"127.0.0.1:1,{addr}",
                          connect_attempts=2, connect_backoff_s=0.05)
        tasks = [Task(str(i), f"{_HERE}:double_task", {"x": i})
                 for i in range(5)]
        results = pool.run(tasks)
        assert all(r.ok and r.attempts == 1 for r in results)

    def test_all_workers_unreachable_fails_loudly(self):
        pool = FabricPool("127.0.0.1:1", connect_attempts=2,
                          connect_backoff_s=0.05)
        results = pool.run([Task("t", f"{_HERE}:double_task", {"x": 1})])
        assert not results[0].ok
        assert "no reachable fabric workers" in results[0].error

    def test_version_mismatch_rejected(self):
        """A worker running different sources must not compute points:
        the coordinator refuses its hello."""
        srv = socket.socket()
        srv.bind(("127.0.0.1", 0))
        srv.listen(1)
        addr = f"127.0.0.1:{srv.getsockname()[1]}"

        def impostor():
            conn, _ = srv.accept()
            send_frame(conn, {"type": "hello", "pid": 1,
                              "version": "0.0.0-bogus",
                              "wire": WIRE_FORMAT})
            time.sleep(1.0)
            conn.close()

        thread = threading.Thread(target=impostor, daemon=True)
        thread.start()
        try:
            pool = FabricPool(addr, connect_attempts=1)
            results = pool.run([Task("t", f"{_HERE}:double_task",
                                     {"x": 1})])
            assert not results[0].ok
            assert "no reachable fabric workers" in results[0].error
        finally:
            srv.close()


class TestPerAddressGiveUp:
    """The connect_attempts budget: a persistently failing address is
    declared dead after exactly that many consecutive failures, without
    consuming any task attempts."""

    @pytest.fixture
    def accept_then_die(self):
        """A listener that accepts and instantly closes every dial --
        the accept-then-die failure mode (a worker wedged in accept,
        a half-up container).  Yields (addr, accept_counter)."""
        srv = socket.socket()
        srv.bind(("127.0.0.1", 0))
        srv.listen(16)
        srv.settimeout(0.2)
        accepts = []
        stop = threading.Event()

        def loop():
            while not stop.is_set():
                try:
                    conn, _ = srv.accept()
                except socket.timeout:
                    continue
                except OSError:
                    return
                accepts.append(1)
                conn.close()

        thread = threading.Thread(target=loop, daemon=True)
        thread.start()
        yield f"127.0.0.1:{srv.getsockname()[1]}", accepts
        stop.set()
        srv.close()
        thread.join(timeout=2.0)

    def test_flaky_address_gives_up_within_budget(self, fleet,
                                                  accept_then_die):
        ((good, _),) = fleet(1)
        flaky, accepts = accept_then_die
        budget = 3
        pool = FabricPool(f"{flaky},{good}", connect_attempts=budget,
                          connect_backoff_s=0.02)
        tasks = [Task(str(i), f"{_HERE}:double_task", {"x": i})
                 for i in range(6)]
        results = pool.run(tasks)
        # the campaign completed entirely on the good worker ...
        assert [r.value["value"] for r in results] == \
            [2 * i for i in range(6)]
        # ... and the flaky address was abandoned within its budget
        # rather than redialled for every remaining task
        assert 1 <= len(accepts) <= budget

    def test_give_up_consumes_no_task_attempts(self, fleet,
                                               accept_then_die):
        """Failed delivery re-queues without burning an attempt: even
        with retries=0 every task must succeed on its first (and only)
        attempt once it reaches a real worker."""
        ((good, _),) = fleet(1)
        flaky, _accepts = accept_then_die
        pool = FabricPool(f"{flaky},{good}", retries=0,
                          connect_attempts=2, connect_backoff_s=0.02)
        tasks = [Task(str(i), f"{_HERE}:double_task", {"x": i})
                 for i in range(6)]
        results = pool.run(tasks)
        assert all(r.ok and r.attempts == 1 for r in results)


_DATA = os.path.join(os.path.dirname(__file__), "data")
CERT_A = os.path.join(_DATA, "worker-a.crt")
KEY_A = os.path.join(_DATA, "worker-a.key")
CERT_B = os.path.join(_DATA, "worker-b.crt")


class TestFabricTls:
    """TLS-wrapped fabric sessions with CA pinning."""

    @pytest.fixture
    def tls_worker(self):
        worker = FabricWorker("127.0.0.1:0", tls_cert=CERT_A,
                              tls_key=KEY_A)
        addr = worker.listen()
        thread = threading.Thread(target=worker.serve_forever,
                                  daemon=True)
        thread.start()
        yield addr
        worker.close()

    def test_pinned_ca_round_trip(self, tls_worker):
        pool = FabricPool(tls_worker, tls_ca=CERT_A)
        results = pool.run([Task(str(i), f"{_HERE}:double_task",
                                 {"x": i}) for i in range(4)])
        assert [r.value["value"] for r in results] == [0, 2, 4, 6]
        assert all(r.ok and r.attempts == 1 for r in results)

    def test_cert_mismatch_rejected(self, tls_worker):
        """A worker serving a certificate the pinned bundle does not
        vouch for must fail the handshake and count as unreachable --
        no task is ever sent to it."""
        pool = FabricPool(tls_worker, tls_ca=CERT_B,
                          connect_attempts=2, connect_backoff_s=0.02)
        results = pool.run([Task("t", f"{_HERE}:double_task", {"x": 1})])
        assert not results[0].ok
        assert "no reachable fabric workers" in results[0].error
        # the rejected handshakes must not have wedged the worker
        good = FabricPool(tls_worker, tls_ca=CERT_A)
        assert good.run([Task("t", f"{_HERE}:double_task",
                              {"x": 2})])[0].value == {"value": 4}

    def test_plaintext_coordinator_rejected(self, tls_worker):
        pool = FabricPool(tls_worker, connect_attempts=2,
                          connect_backoff_s=0.02)
        results = pool.run([Task("t", f"{_HERE}:double_task", {"x": 1})])
        assert not results[0].ok

    def test_worker_requires_cert_and_key_together(self):
        with pytest.raises(ValueError, match="together"):
            FabricWorker(tls_cert=CERT_A)

    def test_executor_threads_tls_ca(self, tls_worker):
        ex = Executor(workers=tls_worker, tls_ca=CERT_A)
        assert isinstance(ex.pool, FabricPool)
        out = ex.run_configs([small_config()])
        assert out[0].messages_delivered > 0

    def test_executor_rejects_tls_without_fabric(self):
        with pytest.raises(ValueError, match="fabric"):
            Executor(workers=2, tls_ca=CERT_A)


class TestFabricExecutor:
    def test_campaign_bit_identical_to_sequential(self, fleet, tmp_path):
        """The acceptance bar: a 2-worker localhost fabric reproduces
        the sequential sweep field for field, bit for bit."""
        (a1, _), (a2, _) = fleet(2)
        base = small_config()
        rates = [0.004, 0.008, 0.02, 0.04]
        seq = sweep_rates(base, rates)
        ex = Executor(fabric=f"{a1},{a2}", store=ResultStore(tmp_path))
        par = sweep_rates(base, rates, executor=ex)
        assert ex.stats.simulated == len(rates)
        assert [r.to_dict() for r in par.runs] == \
            [r.to_dict() for r in seq.runs]

    def test_workers_string_means_fabric(self, fleet):
        ((addr, _),) = fleet(1)
        ex = Executor(workers=addr)
        assert isinstance(ex.pool, FabricPool)
        assert ex.workers == 1
        out = ex.run_configs([small_config()])
        assert out[0].messages_delivered > 0
        assert ex.stats.simulated == 1

    def test_fabric_rerun_is_served_from_store(self, fleet, tmp_path):
        (a1, _), = fleet(1)
        store = ResultStore(tmp_path)
        configs = [small_config(injection_rate=r) for r in (0.005, 0.01)]
        Executor(fabric=a1, store=store).run_configs(configs)
        ex = Executor(fabric=a1, store=store)
        ex.run_configs(configs)
        assert ex.stats.cached == 2 and ex.stats.simulated == 0

"""``repro serve``: spec parsing, NDJSON streaming, warm-cache reuse."""

import http.client
import json

import pytest

from repro.config import SimConfig
from repro.orchestrator import ReproServer, ResultStore
from repro.orchestrator.serve import points_from_spec
from tests.conftest import small_config


@pytest.fixture
def server(tmp_path):
    srv = ReproServer(store=ResultStore(tmp_path))
    srv.start_background()
    yield srv
    srv.shutdown()
    srv.server_close()


def _request(server, method, path, body=None):
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=120)
    headers = {"Content-Type": "application/json"} if body else {}
    conn.request(method, path,
                 json.dumps(body) if body is not None else None, headers)
    resp = conn.getresponse()
    raw = resp.read().decode("utf-8")
    conn.close()
    lines = [json.loads(line) for line in raw.splitlines() if line]
    return resp.status, lines


class TestSpecs:
    def test_rates_spec_expands_sorted(self):
        spec = {"config": small_config().to_dict(),
                "rates": [0.02, 0.004]}
        points = points_from_spec(spec)
        assert [p.config.injection_rate for p in points] == [0.004, 0.02]
        assert points[0].point_id == "rate:0.004"

    def test_points_spec_round_trips_configs(self):
        cfg = small_config()
        spec = {"points": [{"id": "a", "config": cfg.to_dict(),
                            "runner_kwargs": {"collect_links": False}}]}
        (point,) = points_from_spec(spec)
        assert point.point_id == "a"
        assert point.config == SimConfig.from_dict(cfg.to_dict())
        assert point.runner_kwargs == {"collect_links": False}

    def test_bad_specs_rejected(self):
        for bad in ([], {}, {"points": []}, {"points": [{"x": 1}]},
                    {"config": small_config().to_dict()},
                    {"config": small_config().to_dict(), "rates": []}):
            with pytest.raises(ValueError):
                points_from_spec(bad)


class TestEndpoints:
    def test_healthz_reports_store(self, server):
        status, (health,) = _request(server, "GET", "/healthz")
        assert status == 200
        assert health["ok"] is True
        assert health["store"]["enabled"] is True
        assert health["store"]["entries"] == 0

    def test_unknown_path_404(self, server):
        status, (body,) = _request(server, "GET", "/nope")
        assert status == 404 and "unknown path" in body["error"]
        status, (body,) = _request(server, "POST", "/nope", {"x": 1})
        assert status == 404

    def test_bad_spec_400(self, server):
        status, (body,) = _request(server, "POST", "/campaign",
                                   {"bogus": True})
        assert status == 400
        assert "campaign spec" in body["error"]


class TestCampaignStreaming:
    SPEC = {"rates": [0.004, 0.008]}

    def _spec(self):
        return dict(self.SPEC, config=small_config().to_dict())

    def test_streams_progress_then_results(self, server):
        status, lines = _request(server, "POST", "/campaign", self._spec())
        assert status == 200
        assert lines[0] == {"event": "accepted", "points": 2}
        points = [e for e in lines if e["event"] == "point"]
        assert len(points) == 2
        assert all(e["status"] == "done" and e["total"] == 2
                   for e in points)
        assert {e["completed"] for e in points} == {1, 2}
        done = lines[-1]
        assert done["event"] == "done"
        assert done["stats"] == {"simulated": 2, "cached": 0, "failed": 0}
        assert done["points"] == ["rate:0.004", "rate:0.008"]
        assert all(r["messages_delivered"] > 0 for r in done["results"])

    def test_second_request_reuses_warm_cache_bit_identically(self, server):
        _status, first = _request(server, "POST", "/campaign", self._spec())
        _status, second = _request(server, "POST", "/campaign", self._spec())
        points = [e for e in second if e["event"] == "point"]
        assert all(e["status"] == "cached" for e in points)
        assert second[-1]["stats"]["cached"] == 2
        # byte-for-byte the same summaries the first request computed
        assert second[-1]["results"] == first[-1]["results"]

    def test_concurrent_requests_share_one_warm_store(self, server):
        """Two clients submitting the same campaign at once must both
        stream to completion with bit-identical results: the shared
        store is concurrency-safe (concurrent misses may race to
        simulate, but the simulation is deterministic, so whichever
        write wins the readers agree), and afterwards the store is warm
        for both."""
        import threading

        outcomes = {}

        def submit(tag):
            outcomes[tag] = _request(server, "POST", "/campaign",
                                     self._spec())

        threads = [threading.Thread(target=submit, args=(tag,))
                   for tag in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=180)
        assert set(outcomes) == {"a", "b"}
        for tag, (status, lines) in outcomes.items():
            assert status == 200, tag
            assert lines[-1]["event"] == "done", (tag, lines[-1])
        done_a, done_b = outcomes["a"][1][-1], outcomes["b"][1][-1]
        assert done_a["results"] == done_b["results"]
        # the warm store now serves the campaign without simulating
        _status, third = _request(server, "POST", "/campaign",
                                  self._spec())
        assert third[-1]["stats"]["cached"] == 2
        assert third[-1]["results"] == done_a["results"]

    def test_failing_point_streams_error_event(self, server):
        spec = {"config": small_config().to_dict(), "rates": [-1.0]}
        status, lines = _request(server, "POST", "/campaign", spec)
        assert status == 200      # failure arrives in-stream
        assert lines[-1]["event"] == "error"
        assert "1 of 1" in lines[-1]["error"]

"""(r, b)-adversarial stability experiment: acceptance + smoke."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.adversary import (adversary_cell_task,
                                         render_stability_table,
                                         torus_adversary)
from repro.experiments.profiles import TEST


@pytest.fixture(scope="module")
def report():
    return torus_adversary(TEST)


class TestAdversaryStudy:
    def test_both_schemes_measured(self, report):
        assert set(report.saturation) == {"UP/DOWN", "ITB-RR"}
        for label, thr in report.saturation.items():
            assert thr > 0, label

    def test_full_fraction_grid(self, report):
        for label in report.saturation:
            fracs = [c.fraction for c in report.cells if c.label == label]
            assert fracs == list(report.fractions)

    def test_bounded_backlog_below_saturation(self, report):
        """The ISSUE's acceptance criterion: below saturation, both
        up*/down* and ITB keep the backlog bounded under the
        (r, b)-adversary at the lower operating points."""
        for label in ("UP/DOWN", "ITB-RR"):
            low = [c for c in report.cells
                   if c.label == label and c.fraction <= 0.6]
            assert low, label
            for c in low:
                assert c.stable, (label, c.fraction, c.backlog_growth)

    def test_probe_rates_scale_with_stable_rate(self, report):
        for c in report.cells:
            assert c.rate == pytest.approx(
                c.fraction * report.stable_rate[c.label])

    def test_render_and_serialize(self, report):
        text = render_stability_table(report)
        for needle in ("adversarial stability", "torus 4x4", "UP/DOWN",
                       "ITB-RR", "verdict", "stable"):
            assert needle in text
        blob = json.loads(json.dumps(report.to_dict()))
        assert len(blob["cells"]) == len(report.cells)
        assert blob["burst"] == report.burst

    def test_task_is_deterministic(self):
        from repro.experiments.adversary import _scheme_payload
        payload = _scheme_payload(
            "itb", "rr", "torus",
            {"rows": 3, "cols": 3, "hosts_per_switch": 2}, TEST,
            seed=1, burst=4, start_rate=0.005, fractions=(0.5,))
        assert json.dumps(adversary_cell_task(payload)) == \
            json.dumps(adversary_cell_task(payload))


class TestAdversaryCLI:
    def test_experiment_verb(self, capsys):
        rc = main(["experiment", "adversary", "--profile", "test",
                   "--no-cache"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "adversarial stability" in out
        assert "verdict" in out

"""Orchestrator: worker pool fault tolerance, executor caching,
campaign resume and parallel-vs-sequential determinism.

The crash/timeout task functions live at module level so worker
processes (forked children) can resolve them by ``module:callable``
path exactly like the real simulation tasks.
"""

import os
import time
from collections import deque

import pytest

import repro.orchestrator.pool as pool_mod
from repro.experiments.sweep import sweep_rates
from repro.orchestrator import (Campaign, CampaignError, Executor, Point,
                                ProgressReporter, ResultStore, Task,
                                WorkerPool)
from repro.units import ns
from tests.conftest import small_config

_HERE = "tests.test_orchestrator"


def double_task(payload):
    return {"value": payload["x"] * 2}


def boom_task(payload):
    raise ValueError("boom")


def crash_task(payload):
    os._exit(5)


def crash_once_task(payload):
    # crashes on the first attempt, succeeds on the retry: the flag
    # file is the only state surviving the dead worker process
    flag = payload["flag"]
    if not os.path.exists(flag):
        with open(flag, "w") as fh:
            fh.write("attempt 1\n")
        os._exit(3)
    return {"recovered": True}


def sleep_task(payload):
    time.sleep(payload["seconds"])
    return {"slept": True}


def hang_once_task(payload):
    """Hangs on the first attempt (until timed out), then succeeds.

    The flag file is the only state surviving the terminated worker.
    """
    flag = payload["flag"]
    if not os.path.exists(flag):
        with open(flag, "w") as fh:
            fh.write("attempt 1\n")
        time.sleep(60)
    return {"attempt": 2}


class TestWorkerPoolInline:
    def test_runs_in_order(self):
        pool = WorkerPool(workers=1)
        tasks = [Task(str(i), f"{_HERE}:double_task", {"x": i})
                 for i in range(5)]
        results = pool.run(tasks)
        assert [r.value["value"] for r in results] == [0, 2, 4, 6, 8]
        assert all(r.ok and r.attempts == 1 for r in results)

    def test_exception_reported_not_raised(self):
        pool = WorkerPool(workers=1)
        results = pool.run([Task("t", f"{_HERE}:boom_task", {})])
        assert not results[0].ok
        assert "ValueError: boom" in results[0].error

    def test_on_result_streams(self):
        seen = []
        pool = WorkerPool(workers=1)
        pool.run([Task(str(i), f"{_HERE}:double_task", {"x": i})
                  for i in range(3)],
                 on_result=lambda r: seen.append(r.task_id))
        assert seen == ["0", "1", "2"]

    def test_duplicate_ids_rejected(self):
        pool = WorkerPool(workers=1)
        with pytest.raises(ValueError, match="unique"):
            pool.run([Task("a", f"{_HERE}:double_task", {"x": 1}),
                      Task("a", f"{_HERE}:double_task", {"x": 2})])


class TestWorkerPoolParallel:
    def test_results_in_input_order(self):
        pool = WorkerPool(workers=3)
        tasks = [Task(str(i), f"{_HERE}:double_task", {"x": i})
                 for i in range(7)]
        results = pool.run(tasks)
        assert [r.value["value"] for r in results] == \
            [2 * i for i in range(7)]

    def test_clean_exception_not_retried(self):
        pool = WorkerPool(workers=2, retries=3)
        results = pool.run([Task("t", f"{_HERE}:boom_task", {})])
        assert not results[0].ok
        assert results[0].attempts == 1
        assert "ValueError: boom" in results[0].error

    def test_crashed_worker_retried_then_fails(self):
        pool = WorkerPool(workers=2, retries=1)
        results = pool.run([Task("t", f"{_HERE}:crash_task", {})])
        assert not results[0].ok
        assert results[0].attempts == 2
        assert "exit code 5" in results[0].error

    def test_crashed_worker_recovers_on_retry(self, tmp_path):
        pool = WorkerPool(workers=2, retries=1)
        flag = str(tmp_path / "flag")
        results = pool.run([Task("t", f"{_HERE}:crash_once_task",
                                 {"flag": flag})])
        assert results[0].ok
        assert results[0].value == {"recovered": True}
        assert results[0].attempts == 2

    def test_crash_does_not_poison_other_tasks(self, tmp_path):
        pool = WorkerPool(workers=2, retries=0)
        tasks = [Task("ok1", f"{_HERE}:double_task", {"x": 1}),
                 Task("bad", f"{_HERE}:crash_task", {}),
                 Task("ok2", f"{_HERE}:double_task", {"x": 2})]
        results = pool.run(tasks)
        assert results[0].ok and results[2].ok
        assert not results[1].ok

    def test_hung_worker_times_out(self):
        pool = WorkerPool(workers=2, timeout_s=0.5, retries=0)
        t0 = time.monotonic()
        results = pool.run([Task("t", f"{_HERE}:sleep_task",
                                 {"seconds": 60})])
        assert time.monotonic() - t0 < 30
        assert not results[0].ok
        assert "timed out" in results[0].error


class TestStaleResultAttribution:
    """Queue entries are attempt-tagged: a result flushed by a
    terminated earlier attempt must never be credited to a live retry
    of the same task (regression for the untagged-tuple race)."""

    def test_claim_accepts_matching_attempt(self):
        active = {"t": ("proc", "task", 2, 0.0)}
        rec = WorkerPool._claim(active, "t", 2)
        assert rec == ("proc", "task", 2, 0.0)
        assert "t" not in active        # claimed records leave the map

    def test_claim_drops_stale_attempt(self):
        # attempt 1 was timed out and terminated, but its result hit
        # the queue first; attempt 2 is the live one
        active = {"t": ("proc", "task", 2, 0.0)}
        assert WorkerPool._claim(active, "t", 1) is None
        assert "t" in active            # the live attempt stays in flight

    def test_claim_drops_unknown_task(self):
        assert WorkerPool._claim({}, "ghost", 1) is None

    def test_timed_out_task_result_comes_from_the_retry(self, tmp_path):
        """End to end: attempt 1 hangs past the timeout and is killed;
        the reported value must be attempt 2's."""
        pool = WorkerPool(workers=2, timeout_s=0.5, retries=1)
        flag = str(tmp_path / "flag")
        results = pool.run([Task("t", f"{_HERE}:hang_once_task",
                                 {"flag": flag})])
        assert results[0].ok
        assert results[0].value == {"attempt": 2}
        assert results[0].attempts == 2


class TestBackoffIdleSleep:
    """With every pending attempt backing off and nothing active, the
    supervisor sleeps until the earliest not_before instead of
    spinning on the result queue at 20 Hz."""

    def test_backoff_wait_helper(self):
        now = 100.0
        pending = deque([("t1", 2, 103.5), ("t2", 2, 101.25)])
        assert WorkerPool._backoff_wait_s(pending, now) == \
            pytest.approx(1.25)
        assert WorkerPool._backoff_wait_s(deque(), now) == 0.0
        # an already-expired backoff never produces a negative sleep
        assert WorkerPool._backoff_wait_s(
            deque([("t", 2, 99.0)]), now) == 0.0

    def test_idle_backoff_sleeps_instead_of_polling(self, tmp_path,
                                                    monkeypatch):
        """The sole pending task is backing off and nothing is active:
        the supervisor must cover the window with sleep, not with
        dozens of 50 ms queue polls."""
        sleeps = []
        real_sleep = time.sleep

        def recording_sleep(seconds):
            sleeps.append(seconds)
            real_sleep(seconds)

        monkeypatch.setattr(pool_mod.time, "sleep", recording_sleep)
        pool = WorkerPool(workers=2, retries=1, retry_backoff_s=0.6,
                          retry_jitter=0.0)
        flag = str(tmp_path / "flag")
        results = pool.run([Task("t", f"{_HERE}:crash_once_task",
                                 {"flag": flag})])
        assert results[0].ok and results[0].attempts == 2
        # one sleep spanning (most of) the 0.6 s backoff window
        assert any(s > 0.4 for s in sleeps)


class TestRetryBackoff:
    def test_zero_backoff_means_no_delay(self):
        pool = WorkerPool(workers=2)
        assert pool._retry_delay_s(1) == 0.0
        assert pool._retry_delay_s(5) == 0.0

    def test_delay_doubles_and_jitter_is_bounded(self):
        pool = WorkerPool(workers=2, retry_backoff_s=0.5,
                          retry_jitter=0.5)
        for attempt in (1, 2, 3):
            base = 0.5 * 2 ** (attempt - 1)
            for _ in range(20):
                d = pool._retry_delay_s(attempt)
                assert base <= d <= base * 1.5

    def test_no_jitter_is_deterministic(self):
        pool = WorkerPool(workers=2, retry_backoff_s=1.0,
                          retry_jitter=0.0)
        assert pool._retry_delay_s(1) == 1.0
        assert pool._retry_delay_s(3) == 4.0

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError, match="retry_backoff_s"):
            WorkerPool(retry_backoff_s=-1.0)
        with pytest.raises(ValueError, match="retry_jitter"):
            WorkerPool(retry_jitter=-0.1)

    def test_crash_retry_waits_out_the_backoff(self, tmp_path):
        pool = WorkerPool(workers=2, retries=1, retry_backoff_s=0.5,
                          retry_jitter=0.0)
        flag = str(tmp_path / "flag")
        t0 = time.monotonic()
        results = pool.run([Task("t", f"{_HERE}:crash_once_task",
                                 {"flag": flag})])
        assert results[0].ok
        assert results[0].attempts == 2
        assert time.monotonic() - t0 >= 0.5

    def test_backoff_does_not_stall_other_tasks(self, tmp_path):
        """While one task sits out its backoff, fresh tasks keep
        launching."""
        pool = WorkerPool(workers=2, retries=1, retry_backoff_s=1.0,
                          retry_jitter=0.0)
        flag = str(tmp_path / "flag")
        tasks = [Task("crash", f"{_HERE}:crash_once_task",
                      {"flag": flag})] + \
            [Task(f"ok{i}", f"{_HERE}:double_task", {"x": i})
             for i in range(4)]
        results = pool.run(tasks)
        assert all(r.ok for r in results)
        assert results[0].attempts == 2

    def test_executor_threads_backoff_through(self):
        executor = Executor(workers=2, retry_backoff_s=1.5)
        assert executor.pool.retry_backoff_s == 1.5


def _count_calls(monkeypatch):
    """Wrap the pool's run_simulation with a call counter (only
    observable on the in-process path, which is exactly the point:
    cached campaigns must not reach it at all)."""
    calls = []
    real = pool_mod.run_simulation

    def counting(config, **kwargs):
        calls.append(config)
        return real(config, **kwargs)

    monkeypatch.setattr(pool_mod, "run_simulation", counting)
    return calls


class TestExecutor:
    def test_completed_campaign_runs_zero_simulations(self, tmp_path,
                                                      monkeypatch):
        calls = _count_calls(monkeypatch)
        store = ResultStore(tmp_path)
        configs = [small_config(injection_rate=r) for r in (0.005, 0.01)]

        first = Executor(workers=1, store=store).run_configs(configs)
        assert len(calls) == 2

        ex = Executor(workers=1, store=store)
        second = ex.run_configs(configs)
        assert len(calls) == 2        # zero new run_simulation calls
        assert ex.stats.cached == 2 and ex.stats.simulated == 0
        assert [s.to_dict() for s in second] == \
            [s.to_dict() for s in first]

    def test_interrupted_campaign_resumes_missing_points_only(
            self, tmp_path, monkeypatch):
        calls = _count_calls(monkeypatch)
        store = ResultStore(tmp_path)
        rates = (0.004, 0.008, 0.012, 0.016)
        configs = [small_config(injection_rate=r) for r in rates]

        # campaign dies after two points (a killed worker / ^C leaves
        # exactly this on disk: the finished prefix, nothing else)
        Executor(workers=1, store=store).run_configs(configs[:2])
        assert len(calls) == 2

        ex = Executor(workers=1, store=store)
        summaries = ex.run_configs(configs)
        assert len(calls) == 4        # only the two missing points ran
        assert ex.stats.cached == 2 and ex.stats.simulated == 2
        assert [s.offered_flits_ns_switch for s in summaries] == \
            pytest.approx(list(rates))

    def test_failed_point_raises_campaign_error(self, tmp_path):
        ex = Executor(workers=1, store=ResultStore(tmp_path))
        bad = small_config().with_overrides(injection_rate=-1.0)
        with pytest.raises(CampaignError, match="1 of 1"):
            ex.run_configs([bad])
        assert ResultStore(tmp_path).info().entries == 0

    def test_live_graph_kwarg_rejected(self, torus44):
        ex = Executor(workers=1)
        with pytest.raises(ValueError, match="graph"):
            ex.run_points([Point("p", small_config(),
                                 {"graph": torus44})])

    def test_no_store_executor_works(self):
        ex = Executor(workers=1, store=None)
        out = ex.run_configs([small_config()])
        assert out[0].messages_delivered > 0
        assert ex.stats.simulated == 1 and ex.stats.cached == 0


class TestDeterminism:
    def test_parallel_campaign_bit_identical_to_sequential(self, tmp_path):
        """4-worker campaign == sequential path, field for field."""
        base = small_config()
        rates = [0.004, 0.008, 0.02, 0.04]
        seq = sweep_rates(base, rates)
        ex = Executor(workers=4, store=ResultStore(tmp_path))
        par = sweep_rates(base, rates, executor=ex)
        assert ex.stats.simulated == len(rates)
        assert len(par.runs) == len(seq.runs)
        # to_dict comparison pins *bit* equality of every float field
        assert [r.to_dict() for r in par.runs] == \
            [r.to_dict() for r in seq.runs]

    def test_wave_dispatch_preserves_early_stop(self, tmp_path):
        """Ascending waves keep stop_after_saturation's kept prefix
        identical to the sequential path's."""
        base = small_config(warmup_ps=ns(10_000), measure_ps=ns(40_000))
        rates = [0.004, 0.3, 0.4, 0.5, 0.6]
        seq = sweep_rates(base, rates, stop_after_saturation=1)
        assert 2 <= len(seq.runs) < len(rates)  # the stop actually fired
        ex = Executor(workers=2, store=ResultStore(tmp_path))
        par = sweep_rates(base, rates, stop_after_saturation=1,
                          executor=ex)
        assert [r.to_dict() for r in par.runs] == \
            [r.to_dict() for r in seq.runs]


class TestCampaign:
    def test_from_sweep_runs_and_reports(self, tmp_path, capsys):
        import io
        stream = io.StringIO()
        ex = Executor(workers=1, store=ResultStore(tmp_path),
                      reporter=ProgressReporter(stream))
        camp = Campaign.from_sweep("demo", small_config(), [0.01, 0.005])
        results = camp.run(ex)
        assert set(results) == {"demo:0.005", "demo:0.01"}
        assert results["demo:0.01"].messages_delivered > 0
        out = stream.getvalue()
        assert "[1/2]" in out and "[2/2]" in out
        assert "demo:" in out

    def test_rerun_is_all_cache_hits(self, tmp_path):
        store = ResultStore(tmp_path)
        camp = Campaign.from_sweep("demo", small_config(), [0.01, 0.005])
        camp.run(Executor(workers=1, store=store))
        ex = Executor(workers=1, store=store)
        camp.run(ex)
        assert ex.stats.cached == 2 and ex.stats.simulated == 0

"""Units and conversions."""

import pytest

from repro import units


def test_ns_round_trip():
    assert units.ns(6.25) == 6250
    assert units.to_ns(6250) == 6.25


def test_ns_exact_paper_constants():
    assert units.ns(49.2) == 49200
    assert units.ns(150.0) == 150_000
    assert units.ns(275.0) == 275_000
    assert units.ns(200.0) == 200_000


def test_us_ms():
    assert units.us(1) == 1_000_000
    assert units.ms(1) == 1_000_000_000
    assert units.us(0.5) == 500_000


def test_ns_rounds_to_nearest_ps():
    assert units.ns(0.0004) == 0  # 0.4 ps rounds down
    assert units.ns(0.0006) == 1  # 0.6 ps rounds up


def test_flits_per_ns():
    # 1000 flits over 1000 ns -> 1 flit/ns
    assert units.flits_per_ns(1000, units.ns(1000)) == pytest.approx(1.0)


def test_flits_per_ns_rejects_empty_window():
    with pytest.raises(ValueError):
        units.flits_per_ns(10, 0)


def test_size_constants():
    assert units.KB == 1024
    assert units.MB == 1024 * 1024

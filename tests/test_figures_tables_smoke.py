"""Smoke tests of the figure/table harness at paper-scale topologies.

These run the real 512/400-host networks, but under the tiny TEST
profile (short windows, aggressively thinned grids) so the whole module
finishes in well under a minute.  They verify structure and basic
physics, not the quantitative claims (the benchmarks do that).
"""

import pytest

from repro.experiments import figures, tables
from repro.experiments.profiles import TEST
from repro.experiments.registry import run_experiment
from repro.experiments.report import (render_figure, render_hotspot_table,
                                      render_link_map)


@pytest.fixture(scope="module")
def fig7a_result():
    return figures.fig7a(TEST)


class TestLatencyPanel:
    def test_three_series(self, fig7a_result):
        labels = [s.label for s in fig7a_result.series]
        assert labels == ["UP/DOWN", "ITB-SP", "ITB-RR"]

    def test_every_run_delivered_messages(self, fig7a_result):
        for s in fig7a_result.series:
            for r in s.runs:
                assert r.messages_delivered > 0
                assert r.avg_latency_ns is not None

    def test_itb_uses_itbs_updown_does_not(self, fig7a_result):
        ud, sp, rr = fig7a_result.series
        assert all(r.avg_itbs_per_message == 0 for r in ud.runs)
        assert any(r.avg_itbs_per_message > 0 for r in rr.runs)

    def test_measured_throughput_keys(self, fig7a_result):
        thr = fig7a_result.measured_throughput()
        assert set(thr) == {"UP/DOWN", "ITB-SP", "ITB-RR"}
        assert all(v > 0 for v in thr.values())

    def test_render(self, fig7a_result):
        text = render_figure(fig7a_result)
        assert "fig7a" in text and "ITB-RR" in text


class TestLinkMap:
    def test_fig8_panels(self):
        panels = figures.fig8(TEST)
        assert [p.fig_id for p in panels] == ["fig8a", "fig8b", "fig8c"]
        for p in panels:
            assert p.utilization.per_link.shape == (128,)  # torus cables
            assert (p.utilization.utilization >= 0).all()
            assert (p.utilization.utilization <= 1.0).all()
        # rendering with the torus grid works
        assert "per switch" in render_link_map(panels[0], grid=(8, 8))

    def test_fig11_panels(self):
        panels = figures.fig11(TEST)
        assert len(panels) == 2
        assert panels[0].label == "UP/DOWN"
        assert panels[1].label == "ITB-RR"


class TestHotspotTable:
    def test_table1_structure(self):
        tab = tables.table1(TEST)  # 1 location under the TEST profile
        assert tab.fractions == (0.05, 0.10)
        assert len(tab.locations) == 1
        avg = tab.averages()
        assert len(avg) == 6  # 2 fractions x 3 routings
        assert all(v > 0 for v in avg.values())
        factors = tab.improvement_factors()
        assert len(factors) == 4
        assert "table1" in render_hotspot_table(tab)


class TestRegistryDispatch:
    def test_run_experiment_matches_direct_call(self):
        via_registry = run_experiment("fig7a", TEST)
        direct = figures.fig7a(TEST)
        assert via_registry.measured_throughput() == \
            direct.measured_throughput()

"""RouteLeg / SourceRoute data-structure invariants."""

import pytest

from repro.routing.routes import RouteLeg, SourceRoute
from repro.topology import build_torus


@pytest.fixture(scope="module")
def g44():
    return build_torus(rows=4, cols=4, hosts_per_switch=2)


class TestRouteLeg:
    def test_from_switch_path(self, g44):
        leg = RouteLeg.from_switch_path(g44, (0, 1, 2))
        assert leg.hops == 2
        assert leg.start == 0 and leg.end == 2
        assert leg.links == (g44.link_between(0, 1), g44.link_between(1, 2))

    def test_single_switch(self, g44):
        leg = RouteLeg.from_switch_path(g44, (5,))
        assert leg.hops == 0
        assert leg.start == leg.end == 5

    def test_unlinked_pair_rejected(self, g44):
        with pytest.raises(ValueError):
            RouteLeg.from_switch_path(g44, (0, 5))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RouteLeg((), ())

    def test_link_count_mismatch(self):
        with pytest.raises(ValueError):
            RouteLeg((0, 1), ())


class TestSourceRoute:
    def test_single_leg(self, g44):
        r = SourceRoute.single_leg(g44, (0, 1, 2))
        assert r.src == 0 and r.dst == 2
        assert r.num_itbs == 0
        assert r.switch_hops == 2
        assert r.switch_path == (0, 1, 2)

    def test_multi_leg_chaining(self, g44):
        leg1 = RouteLeg.from_switch_path(g44, (0, 1, 2))
        leg2 = RouteLeg.from_switch_path(g44, (2, 3))
        itb_host = g44.hosts_at(2)[0]
        r = SourceRoute((leg1, leg2), (itb_host,))
        assert r.src == 0 and r.dst == 3
        assert r.num_itbs == 1
        assert r.switch_hops == 3
        assert r.switch_path == (0, 1, 2, 3)
        assert list(r.iter_links()) == list(leg1.links) + list(leg2.links)

    def test_broken_chain_rejected(self, g44):
        leg1 = RouteLeg.from_switch_path(g44, (0, 1))
        leg2 = RouteLeg.from_switch_path(g44, (2, 3))
        with pytest.raises(ValueError):
            SourceRoute((leg1, leg2), (g44.hosts_at(2)[0],))

    def test_itb_count_mismatch_rejected(self, g44):
        leg1 = RouteLeg.from_switch_path(g44, (0, 1))
        leg2 = RouteLeg.from_switch_path(g44, (1, 2))
        with pytest.raises(ValueError):
            SourceRoute((leg1, leg2), ())

    def test_no_legs_rejected(self):
        with pytest.raises(ValueError):
            SourceRoute(())

    def test_trivial_route(self, g44):
        r = SourceRoute((RouteLeg((7,), ()),))
        assert r.src == r.dst == 7
        assert r.switch_hops == 0
        assert r.switch_path == (7,)

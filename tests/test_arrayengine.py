"""Array-engine unit suite: invariants the batch engine pins on its
own, independent of the cross-engine parity tests.

* **stride invariance** -- the tick stride chops the timeline but may
  never change a computed timestamp;
* **scalar / vector identity** -- the numpy cohort kernel is an
  optimisation of the scalar walk, bit for bit;
* **batch inject == event-driven send** -- a primed schedule is just
  the ``send()`` stream without the per-message heap events;
* **capability honesty** -- declined capabilities raise instead of
  returning fabricated numbers;
* **schedule memoisation** -- the runner's cross-run schedule cache is
  observationally invisible.
"""

import random

import pytest

from repro.config import PAPER_PARAMS, SimConfig
from repro.experiments.runner import clear_caches, run_simulation
from repro.routing.policies import make_policy
from repro.routing.table import compute_tables
from repro.sim import (PacketTracer, Simulator, UnsupportedCapability,
                       engine_capabilities, make_network)
from repro.sim.arrayengine import ArrayNetwork
from repro.sim.base import (CAP_BATCH_DELIVERY, CAP_BATCH_INJECT,
                            CAP_INVARIANTS, CAP_LINK_STATS)
from repro.sim.faults import FaultPlan
from repro.topology import build_torus
from repro.units import ns

P = PAPER_PARAMS


@pytest.fixture(scope="module")
def graph():
    return build_torus(rows=4, cols=4, hosts_per_switch=2)


@pytest.fixture(scope="module")
def tables(graph):
    return compute_tables(graph, "itb")


def make_schedule(graph, count, spacing_ps, seed=11, jitter=True):
    """``count`` (t, src, dst) entries, ``spacing_ps`` apart (with some
    same-instant bursts when ``jitter``)."""
    rng = random.Random(seed)
    n = graph.num_hosts
    sched, t = [], 0
    while len(sched) < count:
        t += spacing_ps
        burst = rng.randrange(1, 4) if jitter else 1
        for _ in range(min(burst, count - len(sched))):
            s, d = rng.randrange(n), rng.randrange(n)
            if s == d:
                d = (d + 1) % n
            sched.append((t, s, d))
    return sched


def run_primed(graph, tables, sched, collect=True):
    """Prime ``sched`` into a fresh array engine, run to idle, return
    the delivery records and the per-channel flit map."""
    sim = Simulator()
    net = make_network("array", sim, graph, tables, make_policy("rr"), P)
    out = []
    if collect:
        net.add_delivery_callback(
            lambda p: out.append((p.pid, p.injected_ps, p.delivered_ps,
                                  p.num_itbs)))
    net.prime_schedule(sched)
    sim.run_until(10 ** 13)
    net.finalize()
    links = {(c.src, c.dst, c.link_id): (c.flits, c.reserved_ps)
             for c in net.link_flit_counts()}
    return sorted(out), net.delivered, links


class TestCapabilities:
    def test_declared_capabilities(self):
        assert engine_capabilities("array") == frozenset(
            {CAP_LINK_STATS, CAP_BATCH_INJECT, CAP_BATCH_DELIVERY,
             CAP_INVARIANTS})

    def test_declined_capabilities_raise(self, graph, tables):
        net = make_network("array", Simulator(), graph, tables,
                           make_policy("rr"), P)
        with pytest.raises(UnsupportedCapability, match="itb_pool"):
            net.itb_stats()
        with pytest.raises(UnsupportedCapability, match="trace"):
            net.tracer = PacketTracer()
        with pytest.raises(UnsupportedCapability,
                           match="reliable_delivery"):
            net.swap_tables(tables)
        with pytest.raises(UnsupportedCapability, match="dynamic_faults"):
            net.install_fault_plan(FaultPlan([]))

    def test_runner_rejects_capability_mismatch(self):
        cfg = SimConfig(engine="array", topology="torus",
                        topology_kwargs={"rows": 4, "cols": 4,
                                         "hosts_per_switch": 2},
                        routing="itb", policy="rr", traffic="uniform",
                        injection_rate=0.01, seed=3,
                        warmup_ps=ns(10_000), measure_ps=ns(30_000))
        with pytest.raises(UnsupportedCapability):
            run_simulation(cfg, fault_plan=FaultPlan([]))


class TestPrimeSchedule:
    def test_unsorted_schedule_rejected(self, graph, tables):
        net = make_network("array", Simulator(), graph, tables,
                           make_policy("rr"), P)
        with pytest.raises(ValueError, match="sorted"):
            net.prime_schedule([(2_000, 0, 1), (1_000, 2, 3)])

    def test_double_prime_rejected(self, graph, tables):
        net = make_network("array", Simulator(), graph, tables,
                           make_policy("rr"), P)
        net.prime_schedule([(1_000, 0, 1)])
        with pytest.raises(RuntimeError, match="already pending"):
            net.prime_schedule([(2_000, 2, 3)])

    def test_empty_schedule_is_noop(self, graph, tables):
        sim = Simulator()
        net = make_network("array", sim, graph, tables,
                           make_policy("rr"), P)
        net.prime_schedule([])
        sim.run_until_idle()
        assert net.generated == net.delivered == 0


class TestStrideInvariance:
    def test_timestamps_independent_of_stride(self, graph, tables,
                                              monkeypatch):
        sched = make_schedule(graph, 60, 40_000)
        results = []
        for stride in (7_777, 250_000, 4_000_000, 10 ** 9):
            monkeypatch.setattr(ArrayNetwork, "STRIDE_PS", stride)
            results.append(run_primed(graph, tables, sched))
        for other in results[1:]:
            assert other == results[0]


class TestScalarVectorIdentity:
    def test_vector_kernel_matches_scalar_walk(self, graph, tables,
                                               monkeypatch):
        # many same-instant cohorts (all-at-once bursts) so the vector
        # kernel actually fires when the threshold allows it
        rng = random.Random(5)
        n = graph.num_hosts
        sched = []
        for k in range(4):
            t = (k + 1) * 200_000
            for _ in range(48):
                s, d = rng.randrange(n), rng.randrange(n)
                if s == d:
                    d = (d + 1) % n
                sched.append((t, s, d))
        monkeypatch.setattr(ArrayNetwork, "VECTOR_THRESHOLD", 10 ** 9)
        scalar = run_primed(graph, tables, sched)
        monkeypatch.setattr(ArrayNetwork, "VECTOR_THRESHOLD", 2)
        vector = run_primed(graph, tables, sched)
        assert vector == scalar

    def test_vector_kernel_matches_scalar_on_sink_path(self, graph,
                                                       tables,
                                                       monkeypatch):
        sched = make_schedule(graph, 120, 3_000, seed=23)
        monkeypatch.setattr(ArrayNetwork, "VECTOR_THRESHOLD", 10 ** 9)
        scalar = run_primed(graph, tables, sched, collect=False)
        monkeypatch.setattr(ArrayNetwork, "VECTOR_THRESHOLD", 2)
        vector = run_primed(graph, tables, sched, collect=False)
        assert vector == scalar


class TestBatchInjectExactness:
    def test_primed_schedule_equals_event_driven_send(self, graph,
                                                      tables):
        sched = make_schedule(graph, 50, 25_000, seed=17)
        primed = run_primed(graph, tables, sched)

        sim = Simulator()
        net = make_network("array", sim, graph, tables,
                           make_policy("rr"), P)
        out = []
        net.add_delivery_callback(
            lambda p: out.append((p.pid, p.injected_ps, p.delivered_ps,
                                  p.num_itbs)))
        for (t, s, d) in sched:
            sim.at(t, lambda s=s, d=d: net.send(s, d))
        sim.run_until_idle()
        net.finalize()
        links = {(c.src, c.dst, c.link_id): (c.flits, c.reserved_ps)
                 for c in net.link_flit_counts()}
        assert (sorted(out), net.delivered, links) == primed


class TestUncontendedBitIdentity:
    def test_matches_packet_engine_when_uncontended(self, graph,
                                                    tables):
        """Widely spaced single packets: both wormhole regimes collapse
        to the same closed form, so timestamps agree bit for bit
        (compare ``pkt.delivered_ps`` -- the array engine's callbacks
        fire at tick time, its packet timestamps are exact)."""
        sched = make_schedule(graph, 12, 20_000_000, seed=29,
                              jitter=False)
        results = {}
        for name in ("packet", "array"):
            sim = Simulator()
            net = make_network(name, sim, graph, tables,
                               make_policy("rr"), P)
            out = []
            net.add_delivery_callback(
                lambda p: out.append((p.pid, p.injected_ps,
                                      p.delivered_ps, p.num_itbs)))
            if name == "array":
                net.prime_schedule(sched)
                sim.run_until(10 ** 13)
                net.finalize()
            else:
                for (t, s, d) in sched:
                    sim.at(t, lambda s=s, d=d: net.send(s, d))
                sim.run_until_idle()
            results[name] = sorted(out)
        assert results["array"] == results["packet"]
        assert len(results["array"]) == len(sched)


class TestScheduleMemoisation:
    CFG = dict(engine="array", topology="torus",
               topology_kwargs={"rows": 4, "cols": 4,
                                "hosts_per_switch": 2},
               routing="itb", policy="rr", traffic="uniform",
               injection_rate=0.02, seed=7,
               warmup_ps=ns(20_000), measure_ps=ns(60_000))

    def test_cache_hit_is_invisible(self):
        clear_caches()
        cold = run_simulation(SimConfig(**self.CFG))
        warm = run_simulation(SimConfig(**self.CFG))  # schedule-cache hit
        assert warm == cold
        clear_caches()
        fresh = run_simulation(SimConfig(**self.CFG))
        assert fresh == cold

    def test_cache_shared_across_engines(self):
        """The memo key excludes the engine: a packet run after an
        array run reuses the workload (paired comparisons), without
        changing either result."""
        clear_caches()
        pkt_cold = run_simulation(SimConfig(**{**self.CFG,
                                               "engine": "packet"}))
        run_simulation(SimConfig(**self.CFG))
        pkt_warm = run_simulation(SimConfig(**{**self.CFG,
                                               "engine": "packet"}))
        assert pkt_warm == pkt_cold

    def test_adopt_schedule_guards(self, graph, tables):
        from repro.traffic import TrafficProcess, per_host_interval_ps
        from repro.traffic.registry import make_workload

        def fresh():
            sim = Simulator()
            net = make_network("array", sim, graph, tables,
                               make_policy("rr"), P)
            interval = per_host_interval_ps(0.02, 512, graph)
            pattern, arrivals = make_workload(graph, "uniform", {},
                                              "constant", {}, interval)
            return TrafficProcess(sim, net, pattern, arrivals, seed=1)

        tr = fresh()
        sched = tr.pregenerate(ns(30_000))
        with pytest.raises(RuntimeError, match="already started"):
            tr.adopt_schedule(sched)
        tr2 = fresh()
        tr2.adopt_schedule(sched)
        assert tr2.generated == len(sched)

"""Runtime invariant auditor + deadlock diagnosis.

Three angles:

1. the auditor is *clean* on healthy runs -- zero violations across the
   full golden matrix (all three engines, every routing mode), audited
   at both window boundaries via ``run_simulation(check_invariants=
   True)``;
2. the auditor is not vacuous -- a deliberately corrupted counter is
   reported as a violation with a usable description;
3. a genuinely deadlocked configuration produces a
   :class:`DeadlockError` that *names its wait-for cycle* (worm pids
   and the channels they hold) instead of a bare "no progress".
"""

import pytest

from repro.config import PAPER_PARAMS, SimConfig
from repro.experiments.runner import run_simulation
from repro.routing.policies import SinglePathPolicy
from repro.routing.routes import SourceRoute
from repro.routing.table import RoutingTables, compute_tables
from repro.routing.updown import orient_links
from repro.sim.base import CAP_INVARIANTS, UnsupportedCapability
from repro.sim.engine import DeadlockError, Simulator
from repro.sim.invariants import (InvariantViolation, audit,
                                  find_wait_cycle)
from repro.sim.network import WormholeNetwork
from repro.topology import build_torus
from repro.units import ns
from tests.test_golden_values import MATRIX, _config


class TestGoldenMatrixClean:
    @pytest.mark.parametrize("label,engine,routing,policy", MATRIX,
                             ids=[m[0] for m in MATRIX])
    def test_zero_violations(self, label, engine, routing, policy):
        """Every golden-matrix point passes the full audit at the
        warmup boundary and the drained end-of-run boundary."""
        summary = run_simulation(_config(engine, routing, policy),
                                 check_invariants=True)
        assert summary.messages_delivered > 0

    def test_audited_run_is_bit_identical(self):
        """Auditing is observation only: it must not perturb a single
        timestamp of the run it watches."""
        cfg = _config("packet", "itb", "rr")
        plain = run_simulation(cfg)
        audited = run_simulation(cfg, check_invariants=True)
        assert audited.to_dict() == plain.to_dict()


class TestAuditApi:
    def _network(self):
        g = build_torus(rows=4, cols=4, hosts_per_switch=2)
        sim = Simulator()
        return WormholeNetwork(sim, g, compute_tables(g, "itb"),
                               SinglePathPolicy(), PAPER_PARAMS,
                               message_bytes=512)

    def test_fresh_network_is_clean_and_drained(self):
        report = audit(self._network(), drained=True)
        assert report.ok
        assert report.checks > 0
        report.raise_if_failed()       # no-op when clean

    def test_corrupted_pool_is_caught(self):
        net = self._network()
        net.nics[0].itb_bytes = -5     # simulated double release
        report = audit(net)
        assert not report.ok
        assert any("pool" in v or "itb" in v.lower()
                   for v in report.violations)
        with pytest.raises(InvariantViolation, match="invariant"):
            report.raise_if_failed()

    def test_corrupted_ledger_is_caught(self):
        net = self._network()
        net.delivered = 3              # delivered what was never made
        report = audit(net)
        assert not report.ok
        assert any("conservation" in v for v in report.violations)

    def test_report_serialises(self):
        d = audit(self._network()).to_dict()
        assert d["engine"] == "packet"
        assert d["violations"] == []

    def test_requires_capability(self):
        class Stub:
            name = "stub"

            def require(self, cap):
                raise UnsupportedCapability(f"{cap} unsupported")

        with pytest.raises(UnsupportedCapability):
            audit(Stub())


class TestWaitCycle:
    def test_simple_cycle_found_and_canonical(self):
        # 7 -> 3 -> 9 -> 7 plus a tail 1 -> 7 feeding into it
        edges = {7: 3, 3: 9, 9: 7, 1: 7}
        assert find_wait_cycle(edges) == [3, 9, 7]

    def test_chain_without_cycle(self):
        assert find_wait_cycle({1: 2, 2: 3, 3: 4}) is None
        assert find_wait_cycle({}) is None

    def test_self_wait(self):
        assert find_wait_cycle({5: 5}) == [5]


class TestDeadlockDiagnosis:
    def test_wedged_ring_names_its_cycle(self):
        """Minimal all-clockwise routing on a ring without ITBs is the
        canonical wormhole deadlock; the watchdog must report *which*
        worms hold *which* channels in a cycle, not just that progress
        stopped."""
        ring = build_torus(rows=1, cols=4, hosts_per_switch=2)
        ud = orient_links(ring, 0)
        routes = {}
        n = ring.num_switches
        for s in range(n):
            for d in range(n):
                path = [s]
                while path[-1] != d:
                    path.append((path[-1] + 1) % n)
                routes[(s, d)] = (
                    SourceRoute.single_leg(ring, tuple(path)),)
        tables = RoutingTables("itb", 0, ud, routes)
        cfg = SimConfig(
            topology="torus",
            topology_kwargs={"rows": 1, "cols": 4, "hosts_per_switch": 2},
            routing="itb", traffic="uniform", injection_rate=0.5,
            warmup_ps=ns(500_000), measure_ps=ns(2_000_000), seed=3)
        with pytest.raises(DeadlockError) as excinfo:
            run_simulation(cfg, tables=tables, watchdog_ps=ns(100_000))

        diagnosis = excinfo.value.diagnosis
        assert diagnosis is not None
        cycle = diagnosis["wait_for_cycle"]
        assert cycle, "deadlock dump must name the wait-for cycle"
        # the cycle is a closed loop: each waiter blocks on the next
        holders = [entry["held_by"] for entry in cycle]
        waiters = [entry["waiter"] for entry in cycle]
        assert sorted(holders) == sorted(waiters)
        for entry in cycle:
            assert "net" in entry["waits_on"]
        # the dump also carries the raw blocked state for post-mortems
        assert diagnosis["in_flight"] > 0
        assert diagnosis["blocked_worms"]
        assert diagnosis["channel_owners"]
        # and the rendered message is human-readable on its own
        assert "wait-for cycle:" in str(excinfo.value)
        assert "deadlock diagnosis:" in str(excinfo.value)

    def test_capability_declared_by_all_engines(self):
        from repro.sim.engines import available_engines, get_engine
        for name in available_engines():
            assert CAP_INVARIANTS in get_engine(name).CAPABILITIES, name

"""Topology builders: the paper's three networks plus the generators."""

import networkx as nx
import pytest

from repro.topology import (BUILDERS, build, build_cplant, build_irregular,
                            build_torus, build_torus_express, check_topology)
from repro.topology.cplant import (GROUP_SIZE, NUM_GROUPS,
                                   group_neighbour_pairs, group_switch)
from repro.topology.torus import switch_coords, switch_id


def to_networkx(g):
    nxg = nx.Graph()
    nxg.add_nodes_from(range(g.num_switches))
    nxg.add_edges_from((ln.a, ln.b) for ln in g.links)
    return nxg


class TestTorus:
    def test_paper_configuration(self, torus88):
        """64 switches, 8 hosts each (512 hosts), 4 links per switch,
        4 ports left open (Section 4.1)."""
        g = torus88
        assert g.num_switches == 64
        assert g.num_hosts == 512
        assert g.num_links == 128  # 64 switches * 4 links / 2
        for s in g.switches():
            assert g.degree(s) == 4
            assert len(g.hosts_at(s)) == 8
            assert g.ports_free(s) == 4

    def test_wraparound(self):
        g = build_torus(rows=4, cols=4, hosts_per_switch=1)
        # (0,0) connects to (0,3) and (3,0)
        assert g.link_between(switch_id(0, 0, 4), switch_id(0, 3, 4)) is not None
        assert g.link_between(switch_id(0, 0, 4), switch_id(3, 0, 4)) is not None

    def test_distances_match_manhattan_ring_metric(self, torus44):
        """BFS distance equals the wraparound Manhattan distance."""
        cols = rows = 4
        for src in torus44.switches():
            dist = torus44.shortest_distances(src)
            r0, c0 = switch_coords(src, cols)
            for dst in torus44.switches():
                r1, c1 = switch_coords(dst, cols)
                dr = min(abs(r0 - r1), rows - abs(r0 - r1))
                dc = min(abs(c0 - c1), cols - abs(c0 - c1))
                assert dist[dst] == dr + dc

    def test_degenerate_rings(self):
        g2 = build_torus(rows=2, cols=1, hosts_per_switch=1, switch_ports=4)
        assert g2.num_links == 1  # the wrap link coincides with the direct
        g1 = build_torus(rows=1, cols=1, hosts_per_switch=1, switch_ports=4)
        assert g1.num_links == 0

    def test_port_overflow_rejected(self):
        with pytest.raises(ValueError):
            build_torus(rows=8, cols=8, hosts_per_switch=15)

    def test_validates(self, torus44):
        check_topology(torus44)

    def test_vertex_transitive_degree(self, torus88):
        degs = {torus88.degree(s) for s in torus88.switches()}
        assert degs == {4}


class TestExpressTorus:
    def test_paper_configuration(self):
        """All 16 ports used: 4 torus + 4 express + 8 hosts (Section 4.1)."""
        g = build_torus_express()
        assert g.num_switches == 64
        assert g.num_hosts == 512
        assert g.num_links == 256  # exactly double the plain torus
        for s in g.switches():
            assert g.degree(s) == 8
            assert g.ports_free(s) == 0

    def test_express_channels_reach_two_hops(self):
        g = build_torus_express(rows=8, cols=8, hosts_per_switch=8)
        s = switch_id(2, 3, 8)
        assert g.link_between(s, switch_id(2, 5, 8)) is not None
        assert g.link_between(s, switch_id(4, 3, 8)) is not None
        assert g.link_between(s, switch_id(2, 1, 8)) is not None
        assert g.link_between(s, switch_id(0, 3, 8)) is not None

    def test_diameter_reduced(self, torus88):
        ge = build_torus_express()
        d_plain = max(max(row) for row in torus88.all_pairs_distances())
        d_exp = max(max(row) for row in ge.all_pairs_distances())
        assert d_exp < d_plain

    def test_avg_distance_roughly_halved(self, torus88):
        """Paper: 'average distance to message destinations is almost
        reduced to the half'."""
        ge = build_torus_express()
        def avg(g):
            rows = g.all_pairs_distances()
            n = g.num_switches
            return sum(map(sum, rows)) / (n * (n - 1))
        assert avg(ge) < 0.66 * avg(torus88)

    def test_ring_of_four_no_duplicate_express(self):
        g = build_torus_express(rows=4, cols=4, hosts_per_switch=2)
        # in a 4-ring, +2 and -2 reach the same switch: one express cable
        for s in g.switches():
            assert g.degree(s) == 6  # 4 torus + 2 express (one per dim)
        check_topology(g)

    def test_validates(self, express44):
        check_topology(express44)


class TestCplant:
    def test_paper_configuration(self, cplant):
        """50 switches, 400 nodes, 8 hosts per switch (Section 4.1)."""
        assert cplant.num_switches == 50
        assert cplant.num_hosts == 400
        for s in cplant.switches():
            assert len(cplant.hosts_at(s)) == 8

    def test_intra_group_is_cube_plus_complement(self, cplant):
        for grp in range(NUM_GROUPS):
            for b in range(GROUP_SIZE):
                s = group_switch(grp, b)
                expected = {group_switch(grp, b ^ bit)
                            for bit in (1, 2, 4)} | {group_switch(grp, b ^ 7)}
                intra = {nb for nb, _ in cplant.neighbors(s)
                         if nb // GROUP_SIZE == grp and nb < 48}
                assert intra == expected

    def test_group_graph_degree_three(self):
        pairs = group_neighbour_pairs()
        assert len(pairs) == 9
        deg = {g: 0 for g in range(NUM_GROUPS)}
        for a, b in pairs:
            deg[a] += 1
            deg[b] += 1
        assert all(d == 3 for d in deg.values())

    def test_not_completely_regular(self, cplant):
        """The paper notes the topology is not completely regular."""
        degrees = {cplant.degree(s) for s in cplant.switches()}
        assert len(degrees) > 1

    def test_port_budget(self, cplant):
        for s in cplant.switches():
            assert cplant.ports_used(s) <= 16

    def test_validates(self, cplant):
        check_topology(cplant)

    def test_diameter_small(self, cplant):
        d = max(max(row) for row in cplant.all_pairs_distances())
        assert d <= 6


class TestIrregular:
    def test_deterministic_for_seed(self):
        a = build_irregular(num_switches=12, seed=9)
        b = build_irregular(num_switches=12, seed=9)
        assert [(l.a, l.b) for l in a.links] == [(l.a, l.b) for l in b.links]

    def test_different_seeds_differ(self):
        a = build_irregular(num_switches=12, seed=1)
        b = build_irregular(num_switches=12, seed=2)
        assert [(l.a, l.b) for l in a.links] != [(l.a, l.b) for l in b.links]

    def test_connected_and_valid(self):
        for seed in range(5):
            g = build_irregular(num_switches=20, hosts_per_switch=2,
                                seed=seed)
            check_topology(g)
            assert g.is_connected()

    def test_degree_bound(self):
        g = build_irregular(num_switches=30, max_switch_links=4, seed=4)
        assert all(g.degree(s) <= 4 for s in g.switches())

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            build_irregular(num_switches=1)

    def test_port_budget_rejected(self):
        with pytest.raises(ValueError):
            build_irregular(num_switches=8, hosts_per_switch=14,
                            max_switch_links=4, switch_ports=16)


class TestRegistry:
    def test_build_by_name(self):
        g = build("torus", rows=4, cols=4, hosts_per_switch=2)
        assert g.num_switches == 16

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown topology"):
            build("hypertorus")

    def test_all_registered_buildable_small(self):
        kwargs = {
            "torus": {"rows": 4, "cols": 4, "hosts_per_switch": 2},
            "torus-express": {"rows": 5, "cols": 5, "hosts_per_switch": 2},
            "cplant": {},
            "irregular": {"num_switches": 8, "hosts_per_switch": 2},
            "mesh": {"rows": 3, "cols": 4, "hosts_per_switch": 2},
            "mutated": {"base": "torus",
                        "base_kwargs": {"rows": 3, "cols": 3,
                                        "hosts_per_switch": 2},
                        "failed_links": [0]},
        }
        for name in BUILDERS:
            g = build(name, **kwargs[name])
            check_topology(g)


class TestNetworkxCrossCheck:
    """Independent validation of connectivity/distance machinery."""

    def test_distances_match_networkx(self, cplant):
        nxg = to_networkx(cplant)
        for src in (0, 17, 49):
            ours = cplant.shortest_distances(src)
            theirs = nx.single_source_shortest_path_length(nxg, src)
            for dst in cplant.switches():
                assert ours[dst] == theirs[dst]

    def test_connectivity_matches_networkx(self, irregular16):
        assert nx.is_connected(to_networkx(irregular16)) == \
            irregular16.is_connected()

"""Reliable delivery and online reconfiguration (``CAP_RELIABLE_DELIVERY``).

The contract under test, for *both* engines: with the GM-style
transport in front of a lossy fabric, every accepted message is either
acknowledged or counted as a permanent loss -- never silently gone --
and with online reconfiguration every pair that stays connected keeps
delivering after a mid-run link death.  The off-path guarantee (a run
*without* the transport stays bit-identical to PR 4) is covered by the
golden-value suite.
"""

from __future__ import annotations

import pytest

from repro.config import PAPER_PARAMS
from repro.experiments.runner import run_simulation
from repro.metrics.recovery import RecoveryTracker
from repro.routing.policies import make_policy
from repro.routing.table import RoutingTables, compute_tables
from repro.sim import (FaultPlan, MessageSequencer, NetworkModel,
                       ReconfigParams, ReconfigurationManager,
                       ReliableParams, ReliableTransport, Simulator,
                       UnsupportedCapability, make_network)
from repro.topology import build_torus
from repro.units import ns
from tests.conftest import small_config

P = PAPER_PARAMS
ENGINES = ("packet", "flit")


def make_engine(name, graph, tables, seed=3, message_bytes=512):
    sim = Simulator()
    net = make_network(name, sim, graph, tables,
                       make_policy("rr", seed=seed), P,
                       message_bytes=message_bytes)
    return sim, net


@pytest.fixture(scope="module")
def torus44_graph():
    return build_torus(rows=4, cols=4, hosts_per_switch=2)


@pytest.fixture(scope="module")
def torus44_tables(torus44_graph):
    return compute_tables(torus44_graph, "itb")


def send_capturing_packet(transport, net, src, dst):
    """Send one message, returning ``(message, first attempt's packet)``."""
    captured = []
    original = net.send

    def wrapped(*args, **kwargs):
        pkt = original(*args, **kwargs)
        captured.append(pkt)
        return pkt

    net.send = wrapped
    try:
        msg = transport.send(src, dst)
    finally:
        del net.send  # restore the class's bound method
    return msg, captured[0]


class BareNetwork(NetworkModel):
    """An engine that never declared the capability."""

    name = "bare"
    CAPABILITIES = frozenset()

    def _build(self):
        pass

    def _inject(self, pkt):
        self._finish_delivery(pkt, self.sim.now)

    def _reset_engine_stats(self):
        pass


class TestParams:
    def test_reliable_round_trip(self):
        p = ReliableParams(timeout_ps=ns(5_000), backoff=1.5,
                           max_attempts=7, failover_after=3,
                           ack_delay_ps=ns(50))
        assert ReliableParams.from_dict(p.to_dict()) == p

    def test_reconfig_round_trip(self):
        p = ReconfigParams(policy="blacklist",
                           detection_latency_ps=ns(1_000))
        assert ReconfigParams.from_dict(p.to_dict()) == p

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            ReliableParams.from_dict({"timeout_ps": 1, "bogus": 2})
        with pytest.raises(ValueError, match="unknown"):
            ReconfigParams.from_dict({"bogus": 1})

    @pytest.mark.parametrize("bad", [
        dict(timeout_ps=0), dict(backoff=0.5), dict(max_attempts=0),
        dict(failover_after=-1), dict(ack_delay_ps=-1)])
    def test_reliable_validation(self, bad):
        with pytest.raises(ValueError):
            ReliableParams(**bad)

    @pytest.mark.parametrize("bad", [
        dict(policy="reroute"), dict(detection_latency_ps=-1)])
    def test_reconfig_validation(self, bad):
        with pytest.raises(ValueError):
            ReconfigParams(**bad)


class TestSequencer:
    def test_per_pair_sequences_independent(self):
        seq = MessageSequencer()
        assert seq.next_seq(0, 1) == 0
        assert seq.next_seq(0, 1) == 1
        assert seq.next_seq(0, 2) == 0
        assert seq.next_seq(1, 0) == 0

    def test_accept_exactly_once(self):
        seq = MessageSequencer()
        assert seq.accept(0, 1, 0) is True
        assert seq.accept(0, 1, 0) is False
        assert seq.accept(0, 1, 1) is True
        assert seq.accept(1, 0, 0) is True  # direction matters


class TestCapabilityGating:
    def _bare(self, torus44_graph, torus44_tables):
        return BareNetwork(Simulator(), torus44_graph, torus44_tables,
                           make_policy("sp"), P)

    def test_transport_requires_capability(self, torus44_graph,
                                           torus44_tables):
        net = self._bare(torus44_graph, torus44_tables)
        with pytest.raises(UnsupportedCapability, match="reliable"):
            ReliableTransport(net)

    def test_swap_tables_requires_capability(self, torus44_graph,
                                             torus44_tables):
        net = self._bare(torus44_graph, torus44_tables)
        with pytest.raises(UnsupportedCapability, match="reliable"):
            net.swap_tables(torus44_tables)

    def test_manager_requires_both(self, torus44_graph, torus44_tables):
        net = self._bare(torus44_graph, torus44_tables)
        with pytest.raises(UnsupportedCapability):
            ReconfigurationManager(net)


class TestFaultFreeTransport:
    """On a healthy fabric the transport is pure bookkeeping."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_every_message_first_try(self, engine, torus44_graph,
                                     torus44_tables):
        sim, net = make_engine(engine, torus44_graph, torus44_tables)
        transport = ReliableTransport(net)
        pairs = [(0, 9), (3, 17), (8, 30), (12, 1), (21, 5)]
        for src, dst in pairs:
            transport.send(src, dst)
        sim.run_until_idle(max_time_ps=ns(10_000_000))
        assert transport.messages == len(pairs)
        assert transport.acked == transport.delivered == len(pairs)
        assert transport.retransmissions == 0
        assert transport.recovered == 0
        assert transport.duplicates == 0
        assert transport.permanent_losses == 0
        assert transport.outstanding == 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_message_callback_sees_each_once(self, engine, torus44_graph,
                                             torus44_tables):
        sim, net = make_engine(engine, torus44_graph, torus44_tables)
        transport = ReliableTransport(net)
        seen = []
        transport.add_message_callback(lambda pkt: seen.append(pkt.pid))
        for src, dst in [(0, 9), (0, 9), (3, 17)]:
            transport.send(src, dst)
        sim.run_until_idle(max_time_ps=ns(10_000_000))
        assert len(seen) == 3
        assert len(set(seen)) == 3


class TestRetransmission:
    """A link dies under a worm; the transport retries it home."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_dropped_message_recovered(self, engine, torus44_graph,
                                       torus44_tables):
        sim, net = make_engine(engine, torus44_graph, torus44_tables)
        transport = ReliableTransport(
            net, ReliableParams(timeout_ps=ns(5_000)))
        msg, pkt = send_capturing_packet(
            transport, net, torus44_graph.hosts_at(0)[0],
            torus44_graph.hosts_at(10)[0])
        assert msg.attempts == 1
        # kill the first cable of the live attempt's route
        net.install_fault_plan(FaultPlan.at((ns(400),
                                             pkt.route.link_ids[0])))
        sim.run_until_idle(max_time_ps=ns(50_000_000))
        assert msg.acked
        assert transport.delivered == 1
        assert transport.recovered == 1
        assert transport.retransmissions >= 1
        assert transport.permanent_losses == 0
        assert transport.outstanding == 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_failover_forces_alternative(self, engine, torus44_graph,
                                         torus44_tables):
        """With ``failover_after=1`` the first failure already forces
        the next table alternative (blacklisting disabled, so only the
        failover steers around the dead cable)."""
        sim, net = make_engine(engine, torus44_graph, torus44_tables)
        net.blacklist_on_fault = False
        transport = ReliableTransport(
            net, ReliableParams(timeout_ps=ns(5_000), failover_after=1))
        msg, pkt = send_capturing_packet(
            transport, net, torus44_graph.hosts_at(0)[0],
            torus44_graph.hosts_at(10)[0])
        net.install_fault_plan(FaultPlan.at((ns(400),
                                             pkt.route.link_ids[0])))
        sim.run_until_idle(max_time_ps=ns(50_000_000))
        assert msg.acked
        assert msg.forced_index is not None
        assert transport.permanent_losses == 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_severed_pair_is_permanent_loss(self, engine, torus44_graph):
        """One route, its cable dead before the send, blacklist on:
        every attempt is refused and the budget expires."""
        base = compute_tables(torus44_graph, "updown")
        only = base.routes[(0, 2)][0]
        custom = dict(base.routes)
        custom[(0, 2)] = (only,)
        tables = RoutingTables("updown", 0, base.orientation, custom)
        sim, net = make_engine(engine, torus44_graph, tables)
        transport = ReliableTransport(
            net, ReliableParams(timeout_ps=ns(1_000), max_attempts=3))
        net.install_fault_plan(FaultPlan.at((0, only.link_ids[0])))
        sim.run_until_idle()  # fire the fault
        msg = transport.send(0, 4)
        sim.run_until_idle(max_time_ps=ns(50_000_000))
        assert msg.failed
        assert transport.permanent_losses == 1
        assert transport.messages == transport.acked + \
            transport.permanent_losses


class TestHotSwap:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_reconfigured_tables_avoid_dead_link(self, engine,
                                                 torus44_graph,
                                                 torus44_tables):
        sim, net = make_engine(engine, torus44_graph, torus44_tables)
        ReliableTransport(net)
        manager = ReconfigurationManager(net)
        assert net.blacklist_on_fault is False
        net.install_fault_plan(FaultPlan.at((ns(400), 0)))
        sim.run_until_idle(max_time_ps=ns(50_000_000))
        assert manager.reconfigurations == 1
        assert not manager.fallback_blacklist
        # swapped tables still speak the original link-id space...
        net.tables.validate(torus44_graph)
        # ...and no route touches the dead cable
        for alts in net.tables.routes.values():
            for route in alts:
                assert 0 not in route.link_ids

    @pytest.mark.parametrize("engine", ENGINES)
    def test_one_swap_covers_simultaneous_faults(self, engine,
                                                 torus44_graph,
                                                 torus44_tables):
        sim, net = make_engine(engine, torus44_graph, torus44_tables)
        ReliableTransport(net)
        manager = ReconfigurationManager(net)
        net.install_fault_plan(FaultPlan.at((ns(400), 0), (ns(400), 5)))
        sim.run_until_idle(max_time_ps=ns(50_000_000))
        # both detection events fire, but the dead set is identical by
        # the time either lands -- one recompute covers it
        assert manager.reconfigurations == 1

    def test_blacklist_policy_is_inert(self, torus44_graph,
                                       torus44_tables):
        sim, net = make_engine("packet", torus44_graph, torus44_tables)
        ReliableTransport(net)
        manager = ReconfigurationManager(
            net, ReconfigParams(policy="blacklist"))
        assert net.blacklist_on_fault is True
        net.install_fault_plan(FaultPlan.at((ns(400), 0)))
        sim.run_until_idle(max_time_ps=ns(50_000_000))
        assert manager.reconfigurations == 0


class TestAcceptance:
    """ISSUE acceptance: 4x4 torus, mid-run link death, reliability +
    reconfiguration on -- zero permanent losses, finite time-to-recover,
    and packet/flit parity on the message ledger."""

    PLAN = FaultPlan.at((ns(35_000), 29))

    def _run(self, engine):
        cfg = small_config(engine=engine, injection_rate=0.02, seed=7,
                           warmup_ps=ns(20_000), measure_ps=ns(60_000))
        return run_simulation(cfg, fault_plan=self.PLAN,
                              reliable=True, reconfig=True)

    def test_parity_and_recovery(self):
        packet = self._run("packet")
        flit = self._run("flit")
        for s in (packet, flit):
            assert s.permanent_losses == 0
            assert s.time_to_recover_ns is not None
            assert s.time_to_recover_ns > 0
            assert s.reconfigurations >= 1
            # the counters are window-scoped: a message generated just
            # before the measurement window opens can be delivered just
            # inside it -- allow that boundary drift, nothing else
            assert abs(s.messages_generated - s.messages_delivered) <= 1
        keys = ("messages_generated", "messages_delivered",
                "retransmissions", "duplicate_deliveries",
                "permanent_losses", "recovered_messages",
                "dropped_in_flight", "dropped_unroutable")
        pd, fd = packet.to_dict(), flit.to_dict()
        assert {k: pd[k] for k in keys} == {k: fd[k] for k in keys}

    def test_drop_split_sums_to_aggregate(self):
        s = self._run("packet")
        assert s.dropped_in_flight + s.dropped_unroutable == \
            s.messages_dropped


class TestRecoveryTracker:
    def test_recovers_after_dip(self):
        tracker = RecoveryTracker(window_ps=100)
        tracker.start(0)

        class Pkt:
            def __init__(self, t):
                self.delivered_ps = t
                self.payload_bytes = 10

        for t in (10, 110, 210, 310):       # steady 10 B/window
            tracker.on_delivered(Pkt(t))
        # fault at 400; windows 4..5 empty, traffic back in window 6
        for t in (610, 650, 710):
            tracker.on_delivered(Pkt(t))
        ttr = tracker.time_to_recover_ps(fault_ps=400, end_ps=800)
        assert ttr == 300  # window [600, 700) closes 300 ps after fault

    def test_none_without_baseline(self):
        tracker = RecoveryTracker(window_ps=100)
        tracker.start(0)
        assert tracker.time_to_recover_ps(fault_ps=50, end_ps=400) is None

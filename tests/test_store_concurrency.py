"""Multi-process ResultStore stress: many writers racing a cold store.

The store's contract under concurrency is *zero corrupt reads*: any
``meta.json``, record file or ``index.json`` that exists on disk parses
whole, no matter how many processes are mid-``put`` -- atomic renames
mean a reader can never observe a partially-written file.  These tests
read the raw files strictly (no ``get()`` corruption-tolerance) so a
torn write fails the suite instead of hiding as a cache miss.
"""

import json
import multiprocessing as mp
import random

import pytest

from repro.orchestrator.store import STORE_FORMAT, ResultStore

_CTX = mp.get_context("fork")

pytestmark = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="stress processes are forked")

#: shared key space: every process writes and reads the same records,
#: maximising same-file and same-shard contention
N_KEYS = 24
N_PROCS = 6
OPS_PER_PROC = 60


def _payload(i):
    return {"config": {"topology": "torus", "seed": i},
            "runner_kwargs": {"collect_links": False}}


def _result(i):
    return {"messages": i * 1000, "latency_ns": 123.456 + i}


def _stress_proc(root, proc_idx, barrier, errors):
    """One racing writer/reader; reports corruption via ``errors``."""
    store = ResultStore(root)
    keys = [store.key("point", _payload(i)) for i in range(N_KEYS)]
    rng = random.Random(proc_idx)
    barrier.wait()                     # all processes hit the cold
    try:                               # store at the same instant
        for op in range(OPS_PER_PROC):
            i = rng.randrange(N_KEYS)
            store.put(keys[i], "point", _payload(i), _result(i),
                      elapsed_s=0.25)
            # strict raw reads: existing files must parse whole
            meta_path = store.root / "meta.json"
            meta = json.loads(meta_path.read_text())
            if meta != {"format": STORE_FORMAT}:
                errors.put(f"p{proc_idx}: bad meta {meta!r}")
            j = rng.randrange(N_KEYS)
            path = store._path(keys[j])
            if path.exists():
                record = json.loads(path.read_text())
                if record["key"] != keys[j] \
                        or record["result"] != _result(j):
                    errors.put(f"p{proc_idx}: torn record for key {j}")
    except Exception as exc:           # noqa: BLE001 - reported to parent
        errors.put(f"p{proc_idx}: {type(exc).__name__}: {exc}")


def test_concurrent_cold_store_writers_never_corrupt(tmp_path):
    errors = _CTX.Queue()
    barrier = _CTX.Barrier(N_PROCS)
    procs = [_CTX.Process(target=_stress_proc,
                          args=(str(tmp_path), i, barrier, errors),
                          daemon=True)
             for i in range(N_PROCS)]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
    assert all(p.exitcode == 0 for p in procs)
    found = []
    while not errors.empty():
        found.append(errors.get())
    assert found == []
    # every record is present and intact afterwards
    store = ResultStore(tmp_path)
    assert store.info().entries == N_KEYS
    for i in range(N_KEYS):
        record = store.get(store.key("point", _payload(i)))
        assert record is not None
        assert record["result"] == _result(i)


def _put_burst_proc(root, proc_idx, barrier):
    store = ResultStore(root)
    barrier.wait()
    for i in range(N_KEYS):
        key = store.key("point", _payload(i))
        store.put(key, "point", _payload(i), _result(i))


def test_compact_races_concurrent_writers(tmp_path):
    """Compaction during a write burst loses nothing and the final
    pass indexes every record."""
    barrier = _CTX.Barrier(2 + 1)      # 2 writers + the compacting parent
    procs = [_CTX.Process(target=_put_burst_proc,
                          args=(str(tmp_path), i, barrier), daemon=True)
             for i in range(2)]
    for p in procs:
        p.start()
    store = ResultStore(tmp_path)
    barrier.wait()
    for _ in range(5):                 # sweep while puts are landing
        store.compact()
    for p in procs:
        p.join(timeout=60)
    assert all(p.exitcode == 0 for p in procs)
    stats = store.compact()
    assert stats.entries == N_KEYS
    assert stats.pruned == 0
    index = store.index()
    assert index is not None and len(index) == N_KEYS
    for i in range(N_KEYS):
        assert store.get(store.key("point", _payload(i))) is not None

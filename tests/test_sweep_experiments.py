"""Sweeps, profiles, the experiment registry and tables machinery."""

import pytest

from repro.experiments.profiles import BENCH, PAPER, TEST, Profile
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.sweep import sweep_rates
from repro.experiments.tables import pick_hotspots
from repro.units import ns
from tests.conftest import small_config


class TestSweep:
    def test_curve_shape(self):
        base = small_config(measure_ps=ns(150_000))
        res = sweep_rates(base, [0.005, 0.02, 0.08])
        assert res.label == "ITB-RR"
        assert res.rates == sorted(res.rates)
        assert len(res.runs) >= 2
        # latency must be non-decreasing in offered load (modulo noise)
        lats = [l for l in res.latencies_ns if l is not None]
        assert lats[-1] > lats[0]

    def test_stops_after_saturation(self):
        base = small_config(measure_ps=ns(100_000))
        res = sweep_rates(base, [0.01, 0.3, 0.5, 0.7, 0.9],
                          stop_after_saturation=1)
        # at most (first saturated + 1 more) simulated
        n_sat = sum(1 for r in res.runs if r.saturated)
        assert n_sat <= 2
        assert len(res.runs) < 5

    def test_throughput_and_saturation_rate(self):
        base = small_config(measure_ps=ns(100_000))
        res = sweep_rates(base, [0.01, 0.5])
        assert res.saturation_rate() == 0.5
        # throughput is the knee: the best *non-saturated* point
        stable = [r.accepted_flits_ns_switch for r in res.runs
                  if not r.saturated]
        assert res.throughput() == max(stable)

    def test_throughput_fallback_when_all_saturated(self):
        base = small_config(measure_ps=ns(100_000))
        res = sweep_rates(base, [0.5, 0.9])
        assert all(r.saturated for r in res.runs)
        assert res.throughput() == max(res.accepted)


class TestProfiles:
    def test_registry_profiles(self):
        for p in (BENCH, PAPER, TEST):
            assert isinstance(p, Profile)
            assert p.measure_ps > 0

    def test_thin_keeps_last(self):
        rates = [0.01, 0.02, 0.03, 0.04, 0.05]
        thinned = BENCH.thin(rates)  # stride 2
        assert thinned[0] == 0.01
        assert thinned[-1] == 0.05
        assert len(thinned) < len(rates)

    def test_thin_stride_one_identity(self):
        rates = [0.01, 0.02, 0.03]
        assert PAPER.thin(rates) == rates


class TestRegistry:
    def test_all_artifacts_registered(self):
        expected = {"fig7a", "fig7b", "fig7c", "fig8", "fig9", "fig10a",
                    "fig10b", "fig11", "fig12a", "fig12b", "fig12c",
                    "table1", "table2", "table3", "resilience", "recovery",
                    "tournament", "adversary"}
        assert set(EXPERIMENTS) == expected

    def test_kinds(self):
        assert EXPERIMENTS["fig7a"].kind == "latency-panel"
        assert EXPERIMENTS["fig8"].kind == "link-map"
        assert EXPERIMENTS["table1"].kind == "hotspot-table"
        assert EXPERIMENTS["recovery"].kind == "recovery-table"

    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            run_experiment("fig99", TEST)


class TestHotspotPicks:
    def test_deterministic(self):
        a = pick_hotspots("torus", 5)
        b = pick_hotspots("torus", 5)
        assert a == b

    def test_distinct_and_in_range(self):
        locs = pick_hotspots("torus", 10)
        assert len(set(locs)) == 10
        assert all(0 <= h < 512 for h in locs)

    def test_seed_changes_picks(self):
        assert pick_hotspots("torus", 5, seed=1) != \
            pick_hotspots("torus", 5, seed=2)

"""MyrinetParams / SimConfig validation and defaults."""

import dataclasses

import pytest

from repro.config import MyrinetParams, PAPER_PARAMS, SimConfig
from repro.units import ns


class TestMyrinetParams:
    def test_paper_defaults(self):
        """The defaults are the constants of paper Sections 4.3--4.5."""
        p = PAPER_PARAMS
        assert p.flit_cycle_ps == ns(6.25)
        assert p.link_prop_ps == ns(49.2)       # 10 m at 4.92 ns/m
        assert p.routing_delay_ps == ns(150)
        assert p.slack_buffer_bytes == 80
        assert p.stop_threshold_bytes == 56
        assert p.go_threshold_bytes == 40
        assert p.itb_detect_ps == ns(275)
        assert p.itb_dma_setup_ps == ns(200)
        assert p.itb_pool_bytes == 90 * 1024
        assert p.switch_ports == 16
        assert p.max_routes_per_pair == 10

    def test_itb_detect_matches_44_bytes(self):
        """275 ns is exactly 44 bytes received at link rate."""
        p = PAPER_PARAMS
        assert p.itb_detect_ps == 44 * p.flit_cycle_ps

    def test_itb_dma_matches_32_bytes(self):
        """200 ns is exactly 32 additional bytes at link rate."""
        p = PAPER_PARAMS
        assert p.itb_dma_setup_ps == 32 * p.flit_cycle_ps

    def test_validate_accepts_defaults(self):
        PAPER_PARAMS.validate()

    def test_with_overrides(self):
        p = PAPER_PARAMS.with_overrides(routing_delay_ps=ns(100))
        assert p.routing_delay_ps == ns(100)
        assert p.flit_cycle_ps == PAPER_PARAMS.flit_cycle_ps
        assert PAPER_PARAMS.routing_delay_ps == ns(150)  # original intact

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            PAPER_PARAMS.flit_cycle_ps = 1  # type: ignore[misc]

    @pytest.mark.parametrize("field,value", [
        ("flit_cycle_ps", 0),
        ("flit_cycle_ps", -1),
        ("link_prop_ps", -1),
        ("routing_delay_ps", -5),
        ("switch_ports", 1),
        ("max_routes_per_pair", 0),
    ])
    def test_validate_rejects_bad_scalars(self, field, value):
        with pytest.raises(ValueError):
            PAPER_PARAMS.with_overrides(**{field: value}).validate()

    @pytest.mark.parametrize("go,stop,slack", [
        (0, 56, 80),      # go must be positive
        (60, 56, 80),     # go > stop
        (40, 90, 80),     # stop > slack
    ])
    def test_validate_rejects_bad_flow_control(self, go, stop, slack):
        with pytest.raises(ValueError):
            PAPER_PARAMS.with_overrides(
                go_threshold_bytes=go, stop_threshold_bytes=stop,
                slack_buffer_bytes=slack).validate()

    def test_header_bytes(self):
        """One route flit per switch plus the 2-byte type field."""
        assert PAPER_PARAMS.header_bytes(0) == 2
        assert PAPER_PARAMS.header_bytes(5) == 7


class TestSimConfig:
    def test_defaults_valid(self):
        SimConfig().validate()

    def test_label(self):
        assert SimConfig(routing="updown").label() == "UP/DOWN"
        assert SimConfig(routing="itb", policy="sp").label() == "ITB-SP"
        assert SimConfig(routing="itb", policy="rr").label() == "ITB-RR"

    @pytest.mark.parametrize("kw", [
        {"injection_rate": 0.0},
        {"injection_rate": -0.1},
        {"message_bytes": 0},
        {"measure_ps": 0},
        {"warmup_ps": -1},
        {"routing": "dijkstra"},
        {"policy": "bogus"},
    ])
    def test_validate_rejects(self, kw):
        with pytest.raises(ValueError):
            SimConfig(**kw).validate()

    def test_with_overrides_returns_new(self):
        a = SimConfig()
        b = a.with_overrides(injection_rate=0.05)
        assert b.injection_rate == 0.05
        assert a.injection_rate != 0.05

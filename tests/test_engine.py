"""Discrete-event engine semantics."""

import pytest

from repro.sim.engine import DeadlockError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    log = []
    sim.at(30, lambda: log.append("c"))
    sim.at(10, lambda: log.append("a"))
    sim.at(20, lambda: log.append("b"))
    sim.run_until(100)
    assert log == ["a", "b", "c"]


def test_fifo_at_equal_times():
    sim = Simulator()
    log = []
    for i in range(5):
        sim.at(42, lambda i=i: log.append(i))
    sim.run_until(42)
    assert log == [0, 1, 2, 3, 4]


def test_now_advances_with_events():
    sim = Simulator()
    seen = []
    sim.at(7, lambda: seen.append(sim.now))
    sim.run_until(50)
    assert seen == [7]
    assert sim.now == 50


def test_after_is_relative():
    sim = Simulator()
    seen = []
    sim.at(10, lambda: sim.after(5, lambda: seen.append(sim.now)))
    sim.run_until(20)
    assert seen == [15]


def test_scheduling_in_past_rejected():
    sim = Simulator()
    sim.at(10, lambda: None)
    sim.run_until(10)
    with pytest.raises(ValueError):
        sim.at(5, lambda: None)


def test_run_until_leaves_future_events():
    sim = Simulator()
    log = []
    sim.at(10, lambda: log.append(1))
    sim.at(30, lambda: log.append(2))
    sim.run_until(20)
    assert log == [1]
    assert sim.pending_events == 1
    sim.run_until(30)
    assert log == [1, 2]


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    log = []

    def cascade():
        log.append(sim.now)
        if sim.now < 30:
            sim.after(10, cascade)

    sim.at(10, cascade)
    sim.run_until(100)
    assert log == [10, 20, 30]


def test_run_until_idle():
    sim = Simulator()
    log = []
    sim.at(5, lambda: log.append(1))
    sim.at(15, lambda: log.append(2))
    sim.run_until_idle()
    assert log == [1, 2]
    assert sim.pending_events == 0


def test_run_until_idle_with_cap():
    sim = Simulator()
    log = []
    sim.at(5, lambda: log.append(1))
    sim.at(50, lambda: log.append(2))
    sim.run_until_idle(max_time_ps=20)
    assert log == [1]
    assert sim.now == 20


def test_peek_time():
    sim = Simulator()
    assert sim.peek_time() is None
    sim.at(9, lambda: None)
    assert sim.peek_time() == 9


def test_watchdog_fires_periodically():
    sim = Simulator()
    ticks = []
    sim.set_watchdog(10, lambda: ticks.append(sim.now))
    sim.run_until(35)
    assert ticks == [10, 20, 30]


def test_watchdog_can_abort():
    sim = Simulator()

    def check():
        raise DeadlockError("stuck")

    sim.set_watchdog(10, check)
    with pytest.raises(DeadlockError):
        sim.run_until(100)


def test_watchdog_bad_interval():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.set_watchdog(0, lambda: None)

"""Packet event tracing."""

import pytest

from repro.config import PAPER_PARAMS
from repro.routing.policies import SinglePathPolicy
from repro.routing.routes import RouteLeg, SourceRoute
from repro.routing.table import RoutingTables, compute_tables
from repro.sim.engine import Simulator
from repro.sim.network import WormholeNetwork
from repro.sim.trace import PacketTracer, TraceEvent, format_trace
from repro.topology import build_torus


@pytest.fixture(scope="module")
def ring4():
    return build_torus(rows=1, cols=4, hosts_per_switch=2)


def traced_network(ring4, tables, tracer):
    sim = Simulator()
    net = WormholeNetwork(sim, ring4, tables, SinglePathPolicy(),
                          PAPER_PARAMS)
    net.tracer = tracer
    return sim, net


class TestTracerUnit:
    def test_record_and_filter(self):
        t = PacketTracer(pids=[1])
        t.record(10, "inject", 1, 0, 0)
        t.record(20, "inject", 2, 0, 0)  # filtered out
        assert len(t.events) == 1
        assert t.events[0] == TraceEvent(10, "inject", 1, 0, 0)
        assert t.events[0].time_ns == 0.01

    def test_trace_all_when_no_filter(self):
        t = PacketTracer()
        t.record(10, "inject", 1, 0, 0)
        t.record(20, "inject", 2, 0, 0)
        assert len(t.events) == 2

    def test_limit(self):
        t = PacketTracer(limit=2)
        for i in range(5):
            t.record(i, "grant", 0, 0, 0)
        assert len(t.events) == 2
        assert t.dropped == 3

    def test_unknown_event_rejected(self):
        t = PacketTracer()
        with pytest.raises(ValueError):
            t.record(0, "teleport", 0, 0, 0)

    def test_bad_limit(self):
        with pytest.raises(ValueError):
            PacketTracer(limit=0)

    def test_to_dicts(self):
        t = PacketTracer()
        t.record(5, "deliver", 3, 7, 1)
        assert t.to_dicts() == [{"time_ps": 5, "event": "deliver",
                                 "pid": 3, "node": 7, "leg": 1}]


class TestTracedSimulation:
    def test_single_leg_lifecycle(self, ring4):
        tables = compute_tables(ring4, "updown")
        tracer = PacketTracer()
        sim, net = traced_network(ring4, tables, tracer)
        pkt = net.send(0, 4)  # two hops on the ring
        sim.run_until_idle()
        events = [e.event for e in tracer.for_packet(pkt.pid)]
        # inject, one grant per switch traversed (incl. delivery port),
        # then deliver
        assert events[0] == "inject"
        assert events[-1] == "deliver"
        assert events.count("grant") == pkt.route.switch_hops + 1
        assert "eject" not in events

    def test_itb_lifecycle(self, ring4):
        tables = compute_tables(ring4, "updown")
        via = ring4.hosts_at(1)[0]
        custom = dict(tables.routes)
        custom[(0, 2)] = (SourceRoute(
            (RouteLeg.from_switch_path(ring4, (0, 1)),
             RouteLeg.from_switch_path(ring4, (1, 2))), (via,)),)
        t = RoutingTables("itb", 0, tables.orientation, custom)
        tracer = PacketTracer()
        sim, net = traced_network(ring4, t, tracer)
        pkt = net.send(0, 4)
        sim.run_until_idle()
        events = [e.event for e in tracer.for_packet(pkt.pid)]
        assert events.count("eject") == 1
        assert events.count("reinject") == 1
        assert events.index("eject") < events.index("reinject")
        # the eject is recorded at the in-transit host
        eject = [e for e in tracer.for_packet(pkt.pid)
                 if e.event == "eject"][0]
        assert eject.node == via
        assert eject.leg == 0

    def test_times_monotonic(self, ring4):
        tables = compute_tables(ring4, "updown")
        tracer = PacketTracer()
        sim, net = traced_network(ring4, tables, tracer)
        for i in range(6):
            net.send(i % 8, (i + 3) % 8)
        sim.run_until_idle()
        for pid in {e.pid for e in tracer.events}:
            times = [e.time_ps for e in tracer.for_packet(pid)]
            assert times == sorted(times)

    def test_hop_latencies(self, ring4):
        tables = compute_tables(ring4, "updown")
        tracer = PacketTracer()
        sim, net = traced_network(ring4, tables, tracer)
        pkt = net.send(0, 2)
        sim.run_until_idle()
        hops = tracer.hop_latencies_ns(pkt.pid)
        assert all(h >= 0 for h in hops)
        # final gap (last grant -> deliver) spans tail serialisation
        assert hops[-1] >= 512 * 6.25

    def test_format_trace(self, ring4):
        tables = compute_tables(ring4, "updown")
        tracer = PacketTracer()
        sim, net = traced_network(ring4, tables, tracer)
        pkt = net.send(0, 2)
        sim.run_until_idle()
        text = format_trace(tracer, pkt.pid)
        assert f"packet {pkt.pid}:" in text
        assert "inject" in text and "deliver" in text
        assert format_trace(tracer, 999) == "packet 999: no events recorded"

    def test_no_tracer_no_events(self, ring4):
        tables = compute_tables(ring4, "updown")
        sim, net = traced_network(ring4, tables, None)
        net.send(0, 2)
        sim.run_until_idle()  # must simply not crash

    def test_fault_events_traceable(self, ring4):
        """A traced run with a link death records the fault-time
        events (``link_down``, ``drop``) instead of rejecting them."""
        from repro.sim import FaultPlan
        from repro.units import ns
        tables = compute_tables(ring4, "itb")
        tracer = PacketTracer()
        sim, net = traced_network(ring4, tables, tracer)
        pkt = net.send(0, 4)
        net.install_fault_plan(FaultPlan.at((ns(400),
                                             pkt.route.link_ids[0])))
        sim.run_until_idle(max_time_ps=ns(10_000_000))
        events = {e.event for e in tracer.events}
        assert "link_down" in events
        assert "drop" in events

"""Knee detection on synthetic curves + p99 plumbing through the runner."""

from __future__ import annotations

import pytest

from repro.metrics.saturation import knee_from_runs, latency_knee
from repro.metrics.summary import RunSummary
from tests.conftest import small_config


def _rs(offered: float, latency, saturated: bool = False) -> RunSummary:
    """Minimal RunSummary for curve-shape tests."""
    return RunSummary(
        config=small_config(injection_rate=max(offered, 1e-6)),
        offered_flits_ns_switch=offered,
        accepted_flits_ns_switch=offered,
        messages_delivered=900, messages_generated=1000,
        avg_latency_ns=latency, avg_network_latency_ns=latency,
        max_latency_ns=latency, avg_itbs_per_message=0.0,
        itb_overflow_count=0, itb_peak_bytes=0, link_utilization=None,
        backlog_growth=900 if saturated else 0)


class TestLatencyKnee:
    def test_hockey_stick(self):
        offered = [1, 2, 3, 4, 5, 6]
        latency = [100, 105, 120, 180, 450, 2000]
        k = latency_knee(offered, latency, threshold=2.0)
        # baseline 100, threshold 200: the last compliant point is 4
        assert (k.offered, k.latency) == (4, 180)
        assert k.index == 3
        assert k.bracketed

    def test_unsorted_input_is_sorted_first(self):
        k = latency_knee([5, 1, 3], [450, 100, 120])
        assert k.offered == 3
        assert k.index == 1  # index in ascending-offered order

    def test_unbracketed_when_curve_never_bends(self):
        k = latency_knee([1, 2, 3], [100, 110, 130])
        assert k.offered == 3
        assert not k.bracketed

    def test_none_latencies_ignored(self):
        k = latency_knee([1, 2, 3, 4], [100, None, 150, 900])
        assert k.offered == 3
        assert k.bracketed

    def test_no_finite_points_gives_none(self):
        assert latency_knee([], []) is None
        assert latency_knee([1, 2], [None, None]) is None

    def test_degenerate_inputs_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            latency_knee([1], [100], threshold=1.0)
        with pytest.raises(ValueError, match="zero-load"):
            latency_knee([1, 2], [0.0, 100])

    def test_single_point_is_its_own_knee(self):
        k = latency_knee([2], [50])
        assert (k.offered, k.bracketed) == (2, False)


class TestKneeFromRuns:
    def test_saturated_runs_excluded(self):
        runs = [_rs(1, 100), _rs(2, 120), _rs(3, 150),
                # a saturated point with deceptively low window latency
                # must not be mistaken for a stable operating point
                _rs(4, 130, saturated=True), _rs(5, 900)]
        k = knee_from_runs(runs, threshold=2.0)
        assert k.offered == 3
        assert k.bracketed

    def test_all_saturated_gives_none(self):
        assert knee_from_runs([_rs(1, 100, saturated=True)]) is None


class TestP99Plumbing:
    def test_percentiles_off_by_default(self):
        from repro.experiments.runner import run_simulation
        s = run_simulation(small_config(injection_rate=0.004))
        assert s.p99_latency_ns is None

    def test_percentiles_collected_on_request(self):
        from repro.experiments.runner import run_simulation
        s = run_simulation(small_config(injection_rate=0.004),
                           collect_percentiles=True)
        assert s.messages_delivered > 0
        assert s.p99_latency_ns is not None
        # nearest-rank p99 sits between the mean and the maximum
        assert s.avg_latency_ns <= s.p99_latency_ns <= s.max_latency_ns
        # and survives the result-store round trip
        assert RunSummary.from_dict(s.to_dict()) == s

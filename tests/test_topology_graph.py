"""NetworkGraph construction, invariants and queries."""

import pytest

from repro.topology.graph import Host, Link, NetworkGraph


class TestLink:
    def test_canonical_order_enforced(self):
        with pytest.raises(ValueError):
            Link(0, 3, 1)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Link(0, 2, 2)

    def test_other(self):
        ln = Link(0, 1, 4)
        assert ln.other(1) == 4
        assert ln.other(4) == 1
        with pytest.raises(ValueError):
            ln.other(2)

    def test_endpoints(self):
        assert Link(0, 1, 4).endpoints() == (1, 4)


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            NetworkGraph(0)

    def test_add_link_both_orders_same_cable(self):
        g = NetworkGraph(3, 4)
        lid = g.add_link(2, 0)
        assert g.links[lid].endpoints() == (0, 2)
        assert g.link_between(0, 2) == lid
        assert g.link_between(2, 0) == lid

    def test_parallel_links_rejected(self):
        g = NetworkGraph(2, 4)
        g.add_link(0, 1)
        with pytest.raises(ValueError):
            g.add_link(1, 0)

    def test_port_budget_enforced(self):
        g = NetworkGraph(2, 2)
        g.add_link(0, 1)
        g.add_host(0)
        with pytest.raises(ValueError):
            g.add_host(0)  # switch 0's 2 ports are used

    def test_out_of_range_switch(self):
        g = NetworkGraph(2, 4)
        with pytest.raises(ValueError):
            g.add_host(2)
        with pytest.raises(ValueError):
            g.add_link(0, 5)

    def test_freeze_blocks_mutation(self):
        g = NetworkGraph(2, 4)
        g.add_link(0, 1)
        g.freeze()
        with pytest.raises(RuntimeError):
            g.add_host(0)
        with pytest.raises(RuntimeError):
            g.add_link(0, 1)

    def test_add_hosts_bulk(self):
        g = NetworkGraph(1, 8)
        ids = g.add_hosts(0, 3)
        assert ids == [0, 1, 2]
        assert list(g.hosts_at(0)) == [0, 1, 2]


class TestQueries:
    @pytest.fixture()
    def line(self):
        """0 -- 1 -- 2 with one host each."""
        g = NetworkGraph(3, 4, name="line")
        g.add_link(0, 1)
        g.add_link(1, 2)
        for s in range(3):
            g.add_host(s)
        return g.freeze()

    def test_counts(self, line):
        assert line.num_switches == 3
        assert line.num_hosts == 3
        assert line.num_links == 2

    def test_neighbors_and_degree(self, line):
        assert line.degree(1) == 2
        assert {nb for nb, _ in line.neighbors(1)} == {0, 2}
        assert line.degree(0) == 1

    def test_ports(self, line):
        assert line.ports_used(1) == 3  # two links + one host
        assert line.ports_free(1) == 1

    def test_host_switch(self, line):
        for h in line.hosts:
            assert line.host_switch(h.id) == h.switch

    def test_connected(self, line):
        assert line.is_connected()

    def test_disconnected_detected(self):
        g = NetworkGraph(3, 4)
        g.add_link(0, 1)
        assert not g.is_connected()

    def test_shortest_distances(self, line):
        assert line.shortest_distances(0) == [0, 1, 2]
        assert line.shortest_distances(1) == [1, 0, 1]

    def test_shortest_distances_unreachable(self):
        g = NetworkGraph(3, 4)
        g.add_link(0, 1)
        assert g.shortest_distances(0) == [0, 1, -1]

    def test_all_pairs_distances_symmetric(self, line):
        d = line.all_pairs_distances()
        for a in range(3):
            for b in range(3):
                assert d[a][b] == d[b][a]

    def test_host_dataclass(self):
        h = Host(3, 1)
        assert h.id == 3 and h.switch == 1

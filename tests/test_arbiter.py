"""Demand-slotted round-robin arbitration."""

import pytest

from repro.sim.arbiter import RoundRobinArbiter


def grants_of(arb, requests):
    """Issue (key, token) requests, then drain by releasing the owner
    repeatedly; returns the token grant order."""
    order = []
    for key, token in requests:
        arb.request(key, token, lambda t=token: order.append(t))
    while arb.busy:
        owner = arb.owner
        arb.release(owner)
    return order


def test_free_resource_grants_immediately():
    arb = RoundRobinArbiter()
    got = []
    assert arb.request("a", "t1", lambda: got.append(1)) is True
    assert got == [1]
    assert arb.owner == "t1"


def test_busy_resource_queues():
    arb = RoundRobinArbiter()
    got = []
    arb.request("a", "t1", lambda: got.append(1))
    assert arb.request("b", "t2", lambda: got.append(2)) is False
    assert got == [1]
    assert arb.waiting() == 1
    arb.release("t1")
    assert got == [1, 2]
    assert arb.owner == "t2"


def test_release_by_non_owner_rejected():
    arb = RoundRobinArbiter()
    arb.request("a", "t1", lambda: None)
    with pytest.raises(RuntimeError):
        arb.release("t2")


def test_fifo_within_one_key():
    arb = RoundRobinArbiter()
    order = grants_of(arb, [("a", f"t{i}") for i in range(4)])
    assert order == ["t0", "t1", "t2", "t3"]


def test_round_robin_across_keys():
    """With every input backlogged, grants must interleave inputs."""
    arb = RoundRobinArbiter()
    reqs = []
    for i in range(3):
        for key in ("a", "b", "c"):
            reqs.append((key, f"{key}{i}"))
    order = grants_of(arb, reqs)
    # a0 granted immediately; then RR pointer starts after 'a'
    assert order[0] == "a0"
    assert order == ["a0", "b0", "c0", "a1", "b1", "c1", "a2", "b2", "c2"]


def test_rr_skips_empty_queues():
    arb = RoundRobinArbiter()
    got = []
    arb.request("a", "A", lambda: got.append("A"))
    arb.request("b", "B", lambda: got.append("B"))
    arb.request("c", "C", lambda: got.append("C"))
    arb.release("A")          # grants B (next after a)
    arb.release("B")          # grants C
    arb.request("a", "A2", lambda: got.append("A2"))
    arb.release("C")          # back to a
    assert got == ["A", "B", "C", "A2"]


def test_no_starvation_under_asymmetric_load():
    """A key with one request must be served even when another key has
    many."""
    arb = RoundRobinArbiter()
    got = []
    arb.request("busy", "b0", lambda: got.append("b0"))
    for i in range(1, 5):
        arb.request("busy", f"b{i}", lambda i=i: got.append(f"b{i}"))
    arb.request("quiet", "q", lambda: got.append("q"))
    arb.release("b0")
    # quiet must be granted next (RR pointer moved past 'busy')
    assert got[-1] == "q"


def test_waiting_counter_consistent():
    arb = RoundRobinArbiter()
    arb.request("a", "t0", lambda: None)
    arb.request("a", "t1", lambda: None)
    arb.request("b", "t2", lambda: None)
    assert arb.waiting() == 2
    arb.release("t0")
    assert arb.waiting() == 1
    arb.release(arb.owner)
    arb.release(arb.owner)
    assert arb.waiting() == 0
    assert not arb.busy


def test_grant_after_idle_period():
    arb = RoundRobinArbiter()
    got = []
    arb.request("a", "t0", lambda: got.append(0))
    arb.release("t0")
    assert not arb.busy
    arb.request("a", "t1", lambda: got.append(1))
    assert got == [0, 1]

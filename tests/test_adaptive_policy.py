"""Latency-adaptive source selection policy (extension)."""

import pytest

from repro.config import PAPER_PARAMS
from repro.routing.policies import AdaptivePolicy, make_policy
from repro.routing.routes import SourceRoute
from repro.sim.packet import Packet
from repro.topology import build_torus


@pytest.fixture(scope="module")
def g():
    return build_torus(rows=4, cols=4, hosts_per_switch=2)


@pytest.fixture(scope="module")
def alts(g):
    return tuple(SourceRoute.single_leg(g, p)
                 for p in [(0, 1, 5), (0, 4, 5), (0, 3, 7, 6, 5)])


def deliver(policy, route, src, dst, latency_ps, alt_index=None,
            alts=None):
    """Synthesise a delivered packet over ``route`` and feed it back.

    Feedback is keyed by the alternative index the packet carries (as
    the network sets it at send time); when not given explicitly it is
    looked up in ``alts`` by identity.
    """
    if alt_index is None:
        alt_index = ([id(a) for a in alts].index(id(route))
                     if alts is not None else 0)
    pkt = Packet(0, src, dst, 512, route, created_ps=0,
                 params=PAPER_PARAMS, alt_index=alt_index)
    pkt.injected_ps = 0
    pkt.delivered_ps = latency_ps
    policy.feedback(pkt)


class TestAdaptivePolicy:
    def test_tries_every_alternative_first(self, alts):
        """Optimistic initialisation: unobserved routes are preferred."""
        p = AdaptivePolicy(seed=1, epsilon=0.0)
        seen = set()
        for _ in range(len(alts)):
            r = p.select(0, 10, alts)
            seen.add(id(r))
            deliver(p, r, 0, 10, 5_000_000, alts=alts)
        assert len(seen) == len(alts)

    def test_prefers_fastest(self, alts):
        p = AdaptivePolicy(seed=1, epsilon=0.0)
        p.register(0, 10, alts)
        # observe: alternative 1 is much faster than the others
        deliver(p, alts[0], 0, 10, 9_000_000, alt_index=0)
        deliver(p, alts[1], 0, 10, 2_000_000, alt_index=1)
        deliver(p, alts[2], 0, 10, 8_000_000, alt_index=2)
        for _ in range(5):
            chosen = p.select(0, 10, alts)
            assert chosen is alts[1]
            deliver(p, chosen, 0, 10, 2_000_000, alts=alts)

    def test_recovers_when_fast_route_degrades(self, alts):
        p = AdaptivePolicy(seed=1, epsilon=0.0, alpha=0.5)
        p.register(0, 10, alts)
        deliver(p, alts[0], 0, 10, 1_000_000, alt_index=0)
        deliver(p, alts[1], 0, 10, 5_000_000, alt_index=1)
        deliver(p, alts[2], 0, 10, 5_000_000, alt_index=2)
        assert p.select(0, 10, alts) is alts[0]
        # route 0 becomes congested; its EWMA climbs past the others
        for _ in range(6):
            deliver(p, alts[0], 0, 10, 20_000_000, alt_index=0)
        assert p.select(0, 10, alts) is not alts[0]

    def test_epsilon_explores(self, alts):
        p = AdaptivePolicy(seed=3, epsilon=1.0)  # always explore
        p.register(0, 10, alts)
        for r in alts:
            deliver(p, r, 0, 10, 5_000_000, alts=alts)
        picks = {id(p.select(0, 10, alts)) for _ in range(60)}
        assert len(picks) == len(alts)

    def test_pairs_independent(self, alts):
        p = AdaptivePolicy(seed=1, epsilon=0.0)
        p.register(0, 10, alts)
        deliver(p, alts[0], 0, 10, 1_000_000, alt_index=0)
        deliver(p, alts[1], 0, 10, 9_000_000, alt_index=1)
        deliver(p, alts[2], 0, 10, 9_000_000, alt_index=2)
        # pair (1, 10) has no observations: optimistic start, not
        # influenced by pair (0, 10)
        first = p.select(1, 10, alts)
        assert first is alts[0]  # deterministic first unobserved

    def test_feedback_for_unknown_pair_ignored(self, alts):
        p = AdaptivePolicy(seed=1)
        deliver(p, alts[0], 7, 8, 1_000_000)  # never selected: no crash

    def test_param_validation(self):
        with pytest.raises(ValueError):
            AdaptivePolicy(epsilon=1.5)
        with pytest.raises(ValueError):
            AdaptivePolicy(alpha=0.0)

    def test_make_policy(self):
        assert make_policy("adaptive").name == "adaptive"

    def test_feedback_survives_table_rebuild(self, g, alts):
        """Feedback is keyed by alternative index, not route object
        identity: packets routed before a routing-table rebuild (or
        over equal-but-distinct route objects, as after
        ``clear_caches()``) still update the right estimate."""
        p = AdaptivePolicy(seed=1, epsilon=0.0)
        p.register(0, 10, alts)
        deliver(p, alts[0], 0, 10, 9_000_000, alt_index=0)
        deliver(p, alts[2], 0, 10, 9_000_000, alt_index=2)
        # rebuild: fresh route objects, same paths, new ids
        rebuilt = tuple(SourceRoute.single_leg(g, path)
                        for path in [(0, 1, 5), (0, 4, 5),
                                     (0, 3, 7, 6, 5)])
        assert all(a is not b for a, b in zip(alts, rebuilt))
        # a packet that selected alternative 1 pre-rebuild delivers
        # post-rebuild: its feedback must land on index 1
        deliver(p, rebuilt[1], 0, 10, 2_000_000, alt_index=1)
        assert p.select(0, 10, rebuilt) is rebuilt[1]
        assert p._ewma[(0, 10)][1] == 2_000_000

    def test_feedback_out_of_range_index_ignored(self, alts):
        """An alternative index beyond the current table (tables can
        shrink on rebuild) is dropped instead of crashing or
        misattributing."""
        p = AdaptivePolicy(seed=1, epsilon=0.0)
        p.register(0, 10, alts)
        deliver(p, alts[0], 0, 10, 1_000_000, alt_index=len(alts))
        assert p._ewma[(0, 10)] == [None] * len(alts)

    def test_deterministic_per_seed(self, alts):
        runs = []
        for _ in range(2):
            p = AdaptivePolicy(seed=9, epsilon=0.3)
            seq = []
            for i in range(20):
                r = p.select(0, 10, alts)
                seq.append(id(r))
                deliver(p, r, 0, 10, 4_000_000 + i, alts=alts)
            runs.append(seq)
        assert runs[0] == runs[1]


class TestEndToEnd:
    def test_adaptive_runs_and_learns(self):
        from tests.conftest import small_config
        from repro.experiments.runner import run_simulation
        s = run_simulation(small_config(policy="adaptive",
                                        injection_rate=0.03))
        assert s.messages_delivered > 0
        assert not s.saturated

"""Latency-adaptive source selection policy (extension)."""

import pytest

from repro.config import PAPER_PARAMS
from repro.routing.policies import AdaptivePolicy, make_policy
from repro.routing.routes import SourceRoute
from repro.sim.packet import Packet
from repro.topology import build_torus


@pytest.fixture(scope="module")
def g():
    return build_torus(rows=4, cols=4, hosts_per_switch=2)


@pytest.fixture(scope="module")
def alts(g):
    return tuple(SourceRoute.single_leg(g, p)
                 for p in [(0, 1, 5), (0, 4, 5), (0, 3, 7, 6, 5)])


def deliver(policy, route, src, dst, latency_ps):
    """Synthesise a delivered packet over ``route`` and feed it back."""
    pkt = Packet(0, src, dst, 512, route, created_ps=0,
                 params=PAPER_PARAMS)
    pkt.injected_ps = 0
    pkt.delivered_ps = latency_ps
    policy.feedback(pkt)


class TestAdaptivePolicy:
    def test_tries_every_alternative_first(self, alts):
        """Optimistic initialisation: unobserved routes are preferred."""
        p = AdaptivePolicy(seed=1, epsilon=0.0)
        seen = set()
        for _ in range(len(alts)):
            r = p.select(0, 10, alts)
            seen.add(id(r))
            deliver(p, r, 0, 10, 5_000_000)
        assert len(seen) == len(alts)

    def test_prefers_fastest(self, alts):
        p = AdaptivePolicy(seed=1, epsilon=0.0)
        p.register(0, 10, alts)
        # observe: alternative 1 is much faster than the others
        deliver(p, alts[0], 0, 10, 9_000_000)
        deliver(p, alts[1], 0, 10, 2_000_000)
        deliver(p, alts[2], 0, 10, 8_000_000)
        for _ in range(5):
            chosen = p.select(0, 10, alts)
            assert chosen is alts[1]
            deliver(p, chosen, 0, 10, 2_000_000)

    def test_recovers_when_fast_route_degrades(self, alts):
        p = AdaptivePolicy(seed=1, epsilon=0.0, alpha=0.5)
        p.register(0, 10, alts)
        deliver(p, alts[0], 0, 10, 1_000_000)
        deliver(p, alts[1], 0, 10, 5_000_000)
        deliver(p, alts[2], 0, 10, 5_000_000)
        assert p.select(0, 10, alts) is alts[0]
        # route 0 becomes congested; its EWMA climbs past the others
        for _ in range(6):
            deliver(p, alts[0], 0, 10, 20_000_000)
        assert p.select(0, 10, alts) is not alts[0]

    def test_epsilon_explores(self, alts):
        p = AdaptivePolicy(seed=3, epsilon=1.0)  # always explore
        p.register(0, 10, alts)
        for r in alts:
            deliver(p, r, 0, 10, 5_000_000)
        picks = {id(p.select(0, 10, alts)) for _ in range(60)}
        assert len(picks) == len(alts)

    def test_pairs_independent(self, alts):
        p = AdaptivePolicy(seed=1, epsilon=0.0)
        p.register(0, 10, alts)
        deliver(p, alts[0], 0, 10, 1_000_000)
        deliver(p, alts[1], 0, 10, 9_000_000)
        deliver(p, alts[2], 0, 10, 9_000_000)
        # pair (1, 10) has no observations: optimistic start, not
        # influenced by pair (0, 10)
        first = p.select(1, 10, alts)
        assert first is alts[0]  # deterministic first unobserved

    def test_feedback_for_unknown_pair_ignored(self, alts):
        p = AdaptivePolicy(seed=1)
        deliver(p, alts[0], 7, 8, 1_000_000)  # never selected: no crash

    def test_param_validation(self):
        with pytest.raises(ValueError):
            AdaptivePolicy(epsilon=1.5)
        with pytest.raises(ValueError):
            AdaptivePolicy(alpha=0.0)

    def test_make_policy(self):
        assert make_policy("adaptive").name == "adaptive"

    def test_deterministic_per_seed(self, alts):
        runs = []
        for _ in range(2):
            p = AdaptivePolicy(seed=9, epsilon=0.3)
            seq = []
            for i in range(20):
                r = p.select(0, 10, alts)
                seq.append(id(r))
                deliver(p, r, 0, 10, 4_000_000 + i)
            runs.append(seq)
        assert runs[0] == runs[1]


class TestEndToEnd:
    def test_adaptive_runs_and_learns(self):
        from tests.conftest import small_config
        from repro.experiments.runner import run_simulation
        s = run_simulation(small_config(policy="adaptive",
                                        injection_rate=0.03))
        assert s.messages_delivered > 0
        assert not s.saturated

"""Route-quality statistics, including the paper's in-text numbers."""

import pytest

from repro.routing.analysis import route_statistics
from repro.routing.table import compute_tables
from repro.topology import build_torus, build_torus_express


@pytest.fixture(scope="module")
def g88():
    return build_torus(rows=8, cols=8, hosts_per_switch=8)


class TestTorusPaperNumbers:
    """Section 4.7.1's quantitative claims about the 8x8 torus."""

    @pytest.fixture(scope="class")
    def updown_stats(self, g88):
        return route_statistics(g88, compute_tables(g88, "updown"))

    @pytest.fixture(scope="class")
    def itb_stats(self, g88):
        return route_statistics(g88, compute_tables(g88, "itb"))

    def test_updown_80_percent_minimal(self, updown_stats):
        """Paper: '80% of the paths computed by the original Myrinet
        routing algorithm are minimal paths'."""
        assert 0.75 <= updown_stats.fraction_minimal <= 0.87

    def test_updown_avg_distance_4_57(self, updown_stats):
        """Paper: average distance 4.57 for up*/down*."""
        assert updown_stats.avg_distance_sp == pytest.approx(4.57, abs=0.08)

    def test_itb_always_minimal(self, itb_stats):
        assert itb_stats.fraction_minimal == 1.0

    def test_itb_avg_distance_4_06(self, itb_stats):
        """Paper: 4.06 with the in-transit buffer mechanism."""
        assert itb_stats.avg_distance_sp == pytest.approx(4.06, abs=0.02)
        assert itb_stats.avg_distance_rr == pytest.approx(4.06, abs=0.02)

    def test_itbs_per_message(self, itb_stats):
        """Paper: 0.43 (SP) and 0.54 (RR) in-transit buffers per message
        under uniform traffic; these route-table expectations bracket
        the same behaviour."""
        assert 0.3 <= itb_stats.avg_itbs_sp <= 0.6
        assert itb_stats.avg_itbs_rr == pytest.approx(0.54, abs=0.05)

    def test_rr_uses_more_itbs_than_minimum(self, itb_stats):
        assert itb_stats.avg_itbs_rr >= itb_stats.avg_itbs_sp - 0.05
        assert itb_stats.max_itbs >= 1


class TestExpressTorus:
    def test_94_percent_minimal(self):
        """Paper: 'the percentage of minimal paths is 94%' for UP/DOWN
        on the express torus."""
        g = build_torus_express()
        stats = route_statistics(g, compute_tables(g, "updown"))
        assert 0.90 <= stats.fraction_minimal <= 0.98


class TestGeneralInvariants:
    def test_minimal_is_lower_bound(self, g88):
        for scheme in ("updown", "itb"):
            st = route_statistics(g88, compute_tables(g88, scheme))
            assert st.avg_distance_sp >= st.avg_minimal_distance - 1e-9
            assert st.avg_distance_rr >= st.avg_minimal_distance - 1e-9

    def test_updown_has_no_itbs(self, g88):
        st = route_statistics(g88, compute_tables(g88, "updown"))
        assert st.avg_itbs_sp == 0.0
        assert st.avg_itbs_rr == 0.0
        assert st.max_itbs == 0
        assert st.avg_alternatives == 1.0

    def test_single_switch_rejected(self):
        from repro.topology.graph import NetworkGraph
        from repro.routing.analysis import route_statistics as rs
        from repro.routing.table import compute_tables as ct
        g = NetworkGraph(1, 4)
        g.add_host(0)
        g.add_host(0)
        g.freeze()
        with pytest.raises(ValueError):
            rs(g, ct(g, "updown"))

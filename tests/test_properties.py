"""Property-based tests (hypothesis) on the core invariants.

Random irregular topologies are the adversarial input here: every
routing-layer guarantee the paper's deadlock-freedom argument rests on
must hold on *any* connected switch graph, not just the three evaluated
topologies.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.routing.itb import build_itb_routes, split_path_at_violations
from repro.routing.minimal import count_minimal_paths, enumerate_minimal_paths
from repro.routing.simple_routes import compute_simple_routes
from repro.routing.spanning_tree import build_spanning_tree
from repro.routing.updown import (enumerate_legal_paths,
                                  legal_shortest_distances, orient_links)
from repro.sim.arbiter import RoundRobinArbiter
from repro.topology import build_irregular, check_topology
from repro.traffic.bitreversal import reverse_bits

# keep generated networks small: every property walks all pairs
graphs = st.builds(
    build_irregular,
    num_switches=st.integers(min_value=2, max_value=12),
    hosts_per_switch=st.just(2),
    max_switch_links=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)

SLOW = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@given(graphs)
@SLOW
def test_generated_topologies_valid(g):
    check_topology(g)


@given(graphs, st.integers(min_value=0, max_value=11))
@SLOW
def test_spanning_tree_levels_are_bfs_distances(g, root_raw):
    root = root_raw % g.num_switches
    tree = build_spanning_tree(g, root)
    assert list(tree.level) == g.shortest_distances(root)


@given(graphs)
@SLOW
def test_updown_orientation_is_acyclic(g):
    """Following only 'up' traversals can never cycle: up-links form a
    DAG ordered by (level, id) -- this is the heart of the
    deadlock-freedom argument."""
    ud = orient_links(g, 0)
    lvl = ud.tree.level
    for link in g.links:
        up = ud.up_end[link.id]
        down = link.other(up)
        assert (lvl[up], up) < (lvl[down], down)


@given(graphs)
@SLOW
def test_legal_distances_bounded_by_double_tree_depth(g):
    """Any pair is reachable legally via the root (up to root, down to
    destination), so legal distance <= level(src) + level(dst)."""
    ud = orient_links(g, 0)
    lvl = ud.tree.level
    for src in g.switches():
        legal = legal_shortest_distances(g, ud, src)
        for dst in g.switches():
            assert legal[dst] <= lvl[src] + lvl[dst]


@given(graphs)
@SLOW
def test_every_minimal_path_splits_into_legal_segments(g):
    ud = orient_links(g, 0)
    for dst in g.switches():
        dist = g.shortest_distances(dst)
        for src in g.switches():
            if src == dst:
                continue
            for p in enumerate_minimal_paths(g, src, dst, dist, 3):
                segs = split_path_at_violations(g, ud, p)
                # segments chain and are each legal
                for seg in segs:
                    assert ud.path_is_legal(g, seg)
                flat = list(segs[0])
                for seg in segs[1:]:
                    assert seg[0] == flat[-1]
                    flat.extend(seg[1:])
                assert tuple(flat) == p


@given(graphs)
@SLOW
def test_itb_routes_minimal_and_boundary_hosts_correct(g):
    ud = orient_links(g, 0)
    routes = build_itb_routes(g, ud, max_routes_per_pair=3)
    for dst in g.switches():
        dist = g.shortest_distances(dst)
        for src in g.switches():
            for r in routes[(src, dst)]:
                assert r.switch_hops == max(dist[src], 0)
                for host, (a, b) in zip(r.itb_hosts,
                                        zip(r.legs, r.legs[1:])):
                    assert g.host_switch(host) == a.end == b.start


@given(graphs)
@SLOW
def test_simple_routes_all_legal_and_complete(g):
    ud = orient_links(g, 0)
    routes = compute_simple_routes(g, ud, max_candidates=8)
    n = g.num_switches
    assert len(routes) == n * n
    for (src, dst), path in routes.items():
        assert path[0] == src and path[-1] == dst
        assert ud.path_is_legal(g, path)


@given(graphs, st.integers(min_value=0, max_value=10_000))
@SLOW
def test_legal_path_enumeration_sound(g, seed):
    ud = orient_links(g, 0)
    rng = random.Random(seed)
    src = rng.randrange(g.num_switches)
    dst = rng.randrange(g.num_switches)
    legal = legal_shortest_distances(g, ud, src)
    paths = enumerate_legal_paths(g, ud, src, dst, legal[dst] + 1,
                                  max_paths=16)
    assert paths, "at least the shortest legal path must be found"
    for p in paths:
        assert ud.path_is_legal(g, p)
        assert len(set(p)) == len(p)
        assert len(p) - 1 <= legal[dst] + 1


@given(graphs)
@SLOW
def test_minimal_count_consistent_with_enumeration(g):
    dst = g.num_switches - 1
    dist = g.shortest_distances(dst)
    counts = count_minimal_paths(g, dst, dist)
    for src in g.switches():
        enum = enumerate_minimal_paths(g, src, dst, dist,
                                       max_paths=10_000)
        assert counts[src] == len(enum)


@given(st.integers(min_value=0, max_value=511),
       st.integers(min_value=1, max_value=9))
def test_reverse_bits_involution(value, width):
    v = value % (1 << width)
    assert reverse_bits(reverse_bits(v, width), width) == v


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                          st.integers(min_value=0, max_value=99)),
                min_size=1, max_size=40))
def test_arbiter_grants_every_request_exactly_once(reqs):
    """Any request sequence drains completely, each token granted once."""
    arb = RoundRobinArbiter()
    granted = []
    for i, (key, _) in enumerate(reqs):
        arb.request(key, i, lambda i=i: granted.append(i))
    while arb.busy:
        arb.release(arb.owner)
    assert sorted(granted) == list(range(len(reqs)))
    assert arb.waiting() == 0


@given(st.data())
def test_arbiter_no_starvation(data):
    """Under continuous backlog on other keys, a queued request is
    granted within (number of keys) releases of its arrival."""
    arb = RoundRobinArbiter()
    keys = data.draw(st.lists(st.sampled_from("abcd"), min_size=4,
                              max_size=20))
    granted = []
    token = 0
    for k in keys:
        arb.request(k, token, lambda t=token: granted.append(t))
        token += 1
    # victim request on its own key
    arb.request("victim", "V", lambda: granted.append("V"))
    releases = 0
    while arb.busy and "V" not in granted:
        arb.release(arb.owner)
        releases += 1
        assert releases <= 5  # 4 data keys + victim

"""Two-regime release model of the packet engine.

Packets that fit in one 80-byte slack buffer travel in a
virtual-cut-through regime (upstream channels release as the packet
drains forward, even while its head is blocked); larger packets hold
their whole path in the classic wormhole regime.  These tests pin the
behavioural difference down directly.
"""

import pytest

from repro.config import PAPER_PARAMS
from repro.routing.policies import SinglePathPolicy
from repro.routing.routes import SourceRoute
from repro.routing.table import RoutingTables, compute_tables
from repro.sim.engine import Simulator
from repro.sim.network import WormholeNetwork
from repro.topology import build_torus

P = PAPER_PARAMS


@pytest.fixture(scope="module")
def line4():
    """1x4 ring; we route only along the line 0-1-2-3."""
    return build_torus(rows=1, cols=4, hosts_per_switch=2)


def forced_tables(g):
    """All pairs routed along ascending switch ids (line routes)."""
    ud = compute_tables(g, "updown").orientation
    routes = {}
    for s in g.switches():
        for d in g.switches():
            lo, hi = min(s, d), max(s, d)
            path = tuple(range(lo, hi + 1))
            if s > d:
                path = path[::-1]
            routes[(s, d)] = (SourceRoute.single_leg(g, path),)
    return RoutingTables("updown", 0, ud, routes)


def make(g, message_bytes):
    sim = Simulator()
    net = WormholeNetwork(sim, g, forced_tables(g), SinglePathPolicy(), P,
                          message_bytes=message_bytes)
    return sim, net


def _blocked_source_can_reuse_injection(g, nbytes):
    """Send A (0 -> switch 3) which must wait behind a long blocker on
    the 2->3 channel; then send B (0 -> switch 1, clear path).  Returns
    (A, B, blocker) after the run."""
    sim, net = make(g, nbytes)
    # blocker: a long packet from switch 2's host to switch 3, sent
    # first so it owns the 2->3 channel
    blocker = net.send(g.hosts_at(2)[0], g.hosts_at(3)[0], nbytes=4_000)
    sim.run_until(200_000)  # let the blocker acquire 2->3
    a = net.send(g.hosts_at(0)[0], g.hosts_at(3)[1])
    b = None

    # B leaves the same source 100 us later toward the unblocked switch 1
    def send_b():
        nonlocal b
        b = net.send(g.hosts_at(0)[0], g.hosts_at(1)[0])
    sim.at(1_300_000, send_b)
    sim.run_until_idle()
    return a, b, blocker


def test_short_packet_releases_injection_while_blocked(line4):
    """32 B: A parks in a slack buffer, so B's injection is not delayed
    by A's blocking -- B is delivered long before A."""
    a, b, _ = _blocked_source_can_reuse_injection(line4, 32)
    assert a.delivered and b.delivered
    assert b.delivered_ps < a.delivered_ps


def test_long_packet_holds_injection_while_blocked(line4):
    """2000 B: A cannot fit in slack buffers, so it holds the whole
    path including the injection channel; B waits behind it and is
    delivered after A."""
    a, b, _ = _blocked_source_can_reuse_injection(line4, 2_000)
    assert a.delivered and b.delivered
    assert b.delivered_ps > a.delivered_ps


def test_regime_boundary_is_slack_size(line4):
    """Packets at exactly the slack size use the VCT regime; one byte
    of wire overhead above it switches to wormhole."""
    sim, net = make(line4, P.slack_buffer_bytes)
    pkt = net.send(line4.hosts_at(0)[0], line4.hosts_at(1)[0])
    # wire = 80 + 2 + 1 > 80 -> long regime even at nominal 80 B payload
    assert pkt.wire_bytes(0) > P.slack_buffer_bytes
    tiny = net.send(line4.hosts_at(0)[1],
                    line4.hosts_at(1)[1],
                    nbytes=P.slack_buffer_bytes - 4)
    assert tiny.wire_bytes(0) <= P.slack_buffer_bytes
    sim.run_until_idle()
    assert pkt.delivered and tiny.delivered


def test_zero_load_delivery_identical_between_regimes(line4):
    """At zero load the regimes must agree on delivery times (same
    wire, same path, nothing to absorb)."""
    from tests.test_network import zero_load_delivery_ps
    for nbytes in (16, 60, 100, 512):
        sim, net = make(line4, nbytes)
        pkt = net.send(line4.hosts_at(0)[0], line4.hosts_at(1)[0])
        sim.run_until_idle()
        assert pkt.delivered_ps == zero_load_delivery_ps(1, nbytes), nbytes

"""Cross-cutting integration invariants at paper scale.

Short windows keep these fast, but they run the real 512/400-host
networks end to end and check the conservation and sanity properties
that hold regardless of load."""

import pytest

from repro.config import SimConfig
from repro.experiments.runner import get_graph, get_tables, run_simulation
from repro.routing.policies import make_policy
from repro.sim.engine import Simulator
from repro.sim.network import WormholeNetwork
from repro.traffic import make_pattern
from repro.traffic.base import TrafficProcess, per_host_interval_ps
from repro.units import ns


def run_raw(topology, routing, policy, traffic, rate, horizon_ps,
            seed=3, traffic_kwargs=None):
    """Run without the measurement scaffolding; return the network."""
    g = get_graph(topology, {})
    tables = get_tables(g, (topology, ()), routing)
    sim = Simulator()
    net = WormholeNetwork(sim, g, tables, make_policy(policy, seed),
                          __import__("repro.config",
                                     fromlist=["PAPER_PARAMS"]).PAPER_PARAMS)
    pattern = make_pattern(traffic, g, **(traffic_kwargs or {}))
    proc = TrafficProcess(sim, net, pattern,
                          per_host_interval_ps(rate, 512, g), seed)
    proc.start()
    sim.run_until(horizon_ps)
    return sim, net, proc


class TestConservation:
    @pytest.mark.parametrize("topology,routing,policy,rate", [
        ("torus", "updown", "sp", 0.012),
        ("torus", "itb", "rr", 0.025),
        ("cplant", "itb", "sp", 0.05),
    ])
    def test_generated_equals_delivered_plus_in_flight(
            self, topology, routing, policy, rate):
        sim, net, proc = run_raw(topology, routing, policy, "uniform",
                                 rate, ns(150_000))
        assert net.generated == proc.generated
        assert net.delivered + net.in_flight == net.generated
        assert net.delivered > 0

    def test_draining_after_generation_stops(self):
        """Once generation stops, everything in flight gets delivered
        (no packet is ever lost or stuck below saturation)."""
        sim, net, proc = run_raw("torus", "itb", "rr", "uniform", 0.02,
                                 ns(100_000))
        in_flight = net.in_flight
        assert in_flight > 0
        proc.stop()
        sim.run_until(sim.now + ns(300_000))
        assert net.in_flight == 0
        assert net.delivered == net.generated


class TestChannelInvariants:
    def test_utilisation_bounded_and_consistent(self):
        cfg = SimConfig(topology="torus", routing="itb", policy="rr",
                        traffic="uniform", injection_rate=0.03,
                        warmup_ps=ns(50_000), measure_ps=ns(150_000))
        s = run_simulation(cfg, collect_links=True)
        u = s.link_utilization
        assert (u.utilization >= 0).all()
        assert (u.utilization <= 1.0 + 1e-9).all()
        assert (u.reserved <= 1.0 + 1e-9).all()
        # a channel can never transfer more than it was reserved
        assert (u.blocked_fraction() >= -1e-9).all()

    def test_itb_pool_accounting_balances(self):
        sim, net, _ = run_raw("torus", "itb", "rr", "uniform", 0.02,
                              ns(150_000))
        # drain
        sim.run_until(sim.now + ns(400_000))
        if net.in_flight == 0:
            for nic in net.nics:
                assert nic.itb_bytes == 0

    def test_every_nic_shares_itb_duty(self):
        """With the shared host cycler, in-transit duty is spread: at
        least half the NICs processed at least one in-transit packet
        under sustained RR traffic."""
        sim, net, _ = run_raw("torus", "itb", "rr", "uniform", 0.025,
                              ns(400_000))
        active = sum(1 for nic in net.nics if nic.itb_packets > 0)
        assert active > len(net.nics) / 2


class TestSeedSensitivity:
    def test_different_seeds_same_ballpark(self):
        """Determinism per seed is tested elsewhere; here: independent
        seeds must agree on the physics (accepted traffic within 10 %
        well below saturation)."""
        vals = []
        for seed in (1, 2, 3):
            cfg = SimConfig(topology="torus", routing="itb", policy="rr",
                            traffic="uniform", injection_rate=0.015,
                            warmup_ps=ns(60_000), measure_ps=ns(250_000),
                            seed=seed)
            vals.append(run_simulation(cfg).accepted_flits_ns_switch)
        assert max(vals) - min(vals) <= 0.10 * max(vals)

"""In-transit buffer route construction (path splitting and host choice)."""

import pytest

from repro.routing.itb import (balance_first_alternatives, build_itb_routes,
                               split_path_at_violations)
from repro.routing.minimal import enumerate_minimal_paths
from repro.routing.updown import orient_links
from repro.topology import build_torus


@pytest.fixture(scope="module")
def g88():
    return build_torus(rows=8, cols=8, hosts_per_switch=2)


@pytest.fixture(scope="module")
def ud88(g88):
    return orient_links(g88, root=0)


class TestSplit:
    def test_legal_path_single_segment(self, g88, ud88):
        # spanning-tree walk root-ward then leaf-ward is always legal
        path = [18, 10, 2, 1, 0]
        assert ud88.path_is_legal(g88, path)
        assert split_path_at_violations(g88, ud88, path) == [tuple(path)]

    def test_segments_reassemble_to_path(self, g88, ud88):
        for dst in (0, 9, 63):
            dist = g88.shortest_distances(dst)
            for src in range(0, 64, 7):
                for p in enumerate_minimal_paths(g88, src, dst, dist, 5):
                    segs = split_path_at_violations(g88, ud88, p)
                    flat = list(segs[0])
                    for seg in segs[1:]:
                        assert seg[0] == flat[-1]
                        flat.extend(seg[1:])
                    assert tuple(flat) == p

    def test_every_segment_legal(self, g88, ud88):
        checked = 0
        for dst in (0, 27, 63):
            dist = g88.shortest_distances(dst)
            for src in range(64):
                for p in enumerate_minimal_paths(g88, src, dst, dist, 3):
                    for seg in split_path_at_violations(g88, ud88, p):
                        assert ud88.path_is_legal(g88, seg)
                        checked += 1
        assert checked > 100

    def test_illegal_path_gets_split(self, g88, ud88):
        """Find a minimal path that violates up*/down* and check the
        split produces >= 2 segments."""
        found = False
        for dst in g88.switches():
            dist = g88.shortest_distances(dst)
            for src in g88.switches():
                for p in enumerate_minimal_paths(g88, src, dst, dist, 3):
                    if not ud88.path_is_legal(g88, p):
                        segs = split_path_at_violations(g88, ud88, p)
                        assert len(segs) >= 2
                        found = True
            if found:
                break
        assert found

    def test_split_is_minimal_cut_count(self, g88, ud88):
        """Greedy split = fewest segments: no single-segment split can
        cover an illegal path, and removing any one cut from the greedy
        answer leaves an illegal segment."""
        for dst in (0, 45):
            dist = g88.shortest_distances(dst)
            for src in range(0, 64, 5):
                for p in enumerate_minimal_paths(g88, src, dst, dist, 2):
                    segs = split_path_at_violations(g88, ud88, p)
                    if len(segs) < 2:
                        continue
                    # merging any adjacent pair must be illegal
                    for i in range(len(segs) - 1):
                        merged = segs[i] + segs[i + 1][1:]
                        assert not ud88.path_is_legal(g88, merged)

    def test_unlinked_path_raises(self, g88, ud88):
        with pytest.raises(ValueError):
            split_path_at_violations(g88, ud88, [0, 9])


class TestBuildItbRoutes:
    @pytest.fixture(scope="class")
    def routes(self, g88, ud88):
        return build_itb_routes(g88, ud88, max_routes_per_pair=4)

    def test_every_pair_covered(self, g88, routes):
        n = g88.num_switches
        assert len(routes) == n * n

    def test_routes_minimal(self, g88, routes):
        for dst in (0, 20, 63):
            dist = g88.shortest_distances(dst)
            for src in g88.switches():
                for r in routes[(src, dst)]:
                    assert r.switch_hops == dist[src]

    def test_cap_respected(self, routes):
        assert all(1 <= len(alts) <= 4 for alts in routes.values())

    def test_itb_hosts_on_boundary_switches(self, g88, routes):
        for (src, dst), alts in routes.items():
            for r in alts:
                for host, (a, b) in zip(r.itb_hosts,
                                        zip(r.legs, r.legs[1:])):
                    assert g88.host_switch(host) == a.end == b.start

    def test_legs_individually_legal(self, g88, ud88, routes):
        """The deadlock-freedom requirement of Section 3."""
        for alts in routes.values():
            for r in alts:
                for leg in r.legs:
                    assert ud88.path_is_legal(g88, leg.switches)

    def test_some_routes_need_itbs(self, routes):
        assert any(r.num_itbs > 0
                   for alts in routes.values() for r in alts)

    def test_itb_duty_spread_over_hosts(self, g88, routes):
        """The shared host cycler should not put every in-transit stop
        on host 0 of each switch."""
        used = {h for alts in routes.values() for r in alts
                for h in r.itb_hosts}
        switches_used = {g88.host_switch(h) for h in used}
        # at least one switch has more than one of its hosts on ITB duty
        assert any(len([h for h in used if g88.host_switch(h) == s]) > 1
                   for s in switches_used)

    def test_sort_by_itbs_orders_front(self, g88, ud88):
        routes = build_itb_routes(g88, ud88, max_routes_per_pair=6,
                                  sort_by_itbs=True, balance_sp=False)
        for alts in routes.values():
            itbs = [r.num_itbs for r in alts]
            assert itbs == sorted(itbs)


class TestBalanceFirstAlternatives:
    def test_same_route_sets(self, g88, ud88):
        raw = build_itb_routes(g88, ud88, max_routes_per_pair=4,
                               balance_sp=False)
        bal = balance_first_alternatives(g88, raw)
        for pair in raw:
            assert set(raw[pair]) == set(bal[pair])

    def test_balancing_reduces_max_link_load(self, g88, ud88):
        """First-alternative link load must be flatter after balancing."""
        raw = build_itb_routes(g88, ud88, max_routes_per_pair=4,
                               balance_sp=False)
        bal = balance_first_alternatives(g88, raw)

        def max_load(routes):
            load = [0] * g88.num_links
            for (s, d), alts in routes.items():
                if s == d:
                    continue
                for lid in alts[0].iter_links():
                    load[lid] += 1
            return max(load)

        assert max_load(bal) < max_load(raw)

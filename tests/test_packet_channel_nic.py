"""Packet wire-length accounting, channel statistics, NIC pool."""

import pytest

from repro.config import PAPER_PARAMS
from repro.routing.routes import RouteLeg, SourceRoute
from repro.sim.channel import Channel, DEL, INJ, NET
from repro.sim.nic import Nic
from repro.sim.packet import Packet
from repro.topology import build_torus

P = PAPER_PARAMS


@pytest.fixture(scope="module")
def g():
    return build_torus(rows=4, cols=4, hosts_per_switch=2)


def two_leg_packet(g, payload=512):
    """0 ->(2 hops) 2 | itb | 2 ->(1 hop) 3 route, as a packet."""
    leg1 = RouteLeg.from_switch_path(g, (0, 1, 2))
    leg2 = RouteLeg.from_switch_path(g, (2, 3))
    via = g.hosts_at(2)[0]
    route = SourceRoute((leg1, leg2), (via,))
    return Packet(0, g.hosts_at(0)[0], g.hosts_at(3)[0], payload, route,
                  created_ps=0, params=P)


class TestPacketWireBytes:
    def test_first_leg_carries_everything(self, g):
        pkt = two_leg_packet(g)
        # payload + type(2) + 3 route flits (2 + 1 hops) + 1 ITB mark
        assert pkt.wire_bytes(0) == 512 + 2 + 3 + 1

    def test_second_leg_stripped(self, g):
        pkt = two_leg_packet(g)
        # the in-transit host consumed leg-1 route flits and the mark
        assert pkt.wire_bytes(1) == 512 + 2 + 1

    def test_single_leg(self, g):
        route = SourceRoute.single_leg(g, (0, 1))
        pkt = Packet(1, 0, 2, 100, route, 0, P)
        assert pkt.wire_bytes(0) == 100 + 2 + 1

    def test_num_properties(self, g):
        pkt = two_leg_packet(g)
        assert pkt.num_legs == 2
        assert pkt.num_itbs == 1

    def test_latency_before_delivery_raises(self, g):
        pkt = two_leg_packet(g)
        with pytest.raises(ValueError):
            pkt.latency_ps()
        with pytest.raises(ValueError):
            pkt.network_latency_ps()

    def test_latency_after_delivery(self, g):
        pkt = two_leg_packet(g)
        pkt.injected_ps = 100
        pkt.delivered_ps = 5_100
        assert pkt.latency_ps() == 5_100
        assert pkt.network_latency_ps() == 5_000


class TestChannel:
    def test_passage_accounting(self):
        ch = Channel(0, NET, 1, 2, link_id=7)
        ch.record_passage(flits=500, granted_ps=1_000, released_ps=11_000)
        ch.record_passage(flits=100, granted_ps=20_000, released_ps=22_000)
        assert ch.transfer_flits == 600
        assert ch.reserved_ps == 12_000

    def test_utilization(self):
        ch = Channel(0, NET, 1, 2)
        ch.record_passage(800, 0, 10_000)
        # 800 flits * 6250 ps over a 10_000_000 ps window
        assert ch.utilization(10_000_000, P.flit_cycle_ps) == \
            pytest.approx(0.5)
        assert ch.reserved_fraction(10_000_000) == pytest.approx(0.001)

    def test_reset(self):
        ch = Channel(0, INJ, 1, 2)
        ch.record_passage(10, 0, 100)
        ch.reset_stats()
        assert ch.transfer_flits == 0
        assert ch.reserved_ps == 0

    def test_kinds(self):
        assert Channel(0, INJ, 0, 0).kind == INJ
        assert Channel(1, DEL, 0, 0).kind == DEL
        assert Channel(2, NET, 0, 1, link_id=3).link_id == 3

    def test_boundary_straddling_hold_clamped_to_reset(self):
        """A packet granted before the stats reset but released inside
        the window only contributes its in-window hold, so
        ``reserved_fraction`` cannot exceed 1."""
        ch = Channel(0, NET, 1, 2)
        ch.record_passage(10, 0, 50_000)       # fully pre-window
        ch.reset_stats(100_000)                # warm-up ends at t=100us
        # granted during warm-up, released 40us into a 100us window
        ch.record_passage(515, granted_ps=20_000, released_ps=140_000)
        assert ch.reserved_ps == 40_000        # not 120_000
        assert ch.reserved_fraction(100_000) <= 1.0
        # a fully in-window passage is unaffected by the clamp
        ch.record_passage(515, granted_ps=150_000, released_ps=160_000)
        assert ch.reserved_ps == 50_000

    def test_boundary_straddling_flits_clamped_with_cycle(self):
        """With the flit cycle supplied (as the packet engine does),
        flits that crossed before the reset are excluded too, keeping
        utilisation <= reserved per channel."""
        ch = Channel(0, NET, 1, 2)
        ch.reset_stats(100_000)
        ch.record_passage(515, granted_ps=20_000, released_ps=140_000,
                          flit_cycle_ps=6_250)
        # flits stream at link rate up to the release: only the last
        # 40_000 ps of the passage are in-window -> 40_000 // 6250 = 6
        assert ch.transfer_flits == 6
        assert ch.reserved_ps == 40_000
        assert (ch.transfer_flits * 6_250) <= ch.reserved_ps
        # non-straddling passages keep their full flit count
        ch.record_passage(515, granted_ps=150_000, released_ps=160_000,
                          flit_cycle_ps=6_250)
        assert ch.transfer_flits == 6 + 515

    def test_boundary_straddling_run_reserved_fraction_bounded(self):
        """End to end on both engines: with a warm-up short enough that
        long holds straddle the boundary, no channel reports more
        reserved time than the measurement window."""
        from repro.config import SimConfig
        from repro.experiments.runner import run_simulation
        from repro.units import ns
        for engine in ("packet", "flit"):
            cfg = SimConfig(
                engine=engine, topology="torus",
                topology_kwargs={"rows": 4, "cols": 4,
                                 "hosts_per_switch": 2},
                routing="itb", policy="rr", traffic="uniform",
                injection_rate=0.12,          # saturated: very long holds
                warmup_ps=ns(20_000), measure_ps=ns(8_000))
            s = run_simulation(cfg, collect_links=True)
            assert s.link_utilization is not None
            assert float(s.link_utilization.reserved.max()) <= 1.0


class TestNic:
    def make(self):
        inj = Channel(0, INJ, 5, 2)
        dlv = Channel(1, DEL, 2, 5)
        return Nic(5, 2, inj, dlv)

    def test_admit_within_pool(self):
        nic = self.make()
        assert nic.itb_admit(500, pool_bytes=1_000) is True
        assert nic.itb_bytes == 500
        assert nic.itb_peak_bytes == 500
        assert nic.itb_overflows == 0
        assert nic.itb_packets == 1

    def test_admit_overflow(self):
        nic = self.make()
        nic.itb_admit(800, pool_bytes=1_000)
        assert nic.itb_admit(500, pool_bytes=1_000) is False
        assert nic.itb_overflows == 1
        assert nic.itb_bytes == 1_300       # still tracked (host memory)
        assert nic.itb_peak_bytes == 1_300

    def test_release(self):
        nic = self.make()
        nic.itb_admit(500, 1_000)
        nic.itb_release(500)
        assert nic.itb_bytes == 0
        assert nic.itb_peak_bytes == 500    # peak survives release

    def test_negative_occupancy_caught(self):
        nic = self.make()
        with pytest.raises(AssertionError):
            nic.itb_release(1)

    def test_reset_preserves_occupancy(self):
        nic = self.make()
        nic.itb_admit(2_000, 1_000)     # overflowing packet in flight
        nic.reset_stats()
        assert nic.itb_bytes == 2_000   # state kept
        assert nic.itb_overflows == 0   # statistic cleared
        assert nic.itb_peak_bytes == 2_000
        assert nic.itb_packets == 0

"""Packet-level wormhole network model: timing, contention, ITB
forwarding, deadlock detection."""

import pytest

from repro.config import PAPER_PARAMS, SimConfig
from repro.experiments.runner import run_simulation
from repro.routing.policies import SinglePathPolicy
from repro.routing.routes import RouteLeg, SourceRoute
from repro.routing.table import RoutingTables, compute_tables
from repro.routing.updown import orient_links
from repro.sim.engine import DeadlockError, Simulator
from repro.sim.network import WormholeNetwork
from repro.topology import build_torus
from repro.units import ns

P = PAPER_PARAMS


def make_network(g, tables, message_bytes=512):
    sim = Simulator()
    net = WormholeNetwork(sim, g, tables, SinglePathPolicy(), P,
                          message_bytes=message_bytes)
    return sim, net


@pytest.fixture(scope="module")
def ring4():
    """4-switch ring (1x4 torus), 2 hosts per switch."""
    return build_torus(rows=1, cols=4, hosts_per_switch=2)


@pytest.fixture(scope="module")
def ring4_tables(ring4):
    return compute_tables(ring4, "updown")


def zero_load_delivery_ps(switch_hops, payload):
    """Hand-derived zero-contention delivery time for a single-leg route
    injected at t=0:

    inject grant at 0 -> head at first switch after one cable (prop);
    each of the (hops+1) switches adds routing + prop (the last one
    toward the NIC); the tail follows wire_bytes flit cycles behind.
    """
    wire = payload + P.header_type_bytes + switch_hops
    head = P.link_prop_ps + (switch_hops + 1) * (P.routing_delay_ps
                                                 + P.link_prop_ps)
    return head + wire * P.flit_cycle_ps


class TestSinglePacketTiming:
    def test_one_hop_delivery_time(self, ring4, ring4_tables):
        sim, net = make_network(ring4, ring4_tables)
        # host 0 on switch 0 -> host 2 on switch 1 (adjacent)
        pkt = net.send(0, 2)
        assert pkt.route.switch_hops == 1
        sim.run_until_idle()
        assert pkt.delivered
        assert pkt.injected_ps == 0
        assert pkt.delivered_ps == zero_load_delivery_ps(1, 512)

    def test_same_switch_delivery_time(self, ring4, ring4_tables):
        sim, net = make_network(ring4, ring4_tables)
        pkt = net.send(0, 1)  # both hosts on switch 0
        assert pkt.route.switch_hops == 0
        sim.run_until_idle()
        assert pkt.delivered_ps == zero_load_delivery_ps(0, 512)

    def test_message_size_scales_serialisation(self, ring4, ring4_tables):
        for size in (32, 512, 1024):
            sim, net = make_network(ring4, ring4_tables, message_bytes=size)
            pkt = net.send(0, 2)
            sim.run_until_idle()
            assert pkt.delivered_ps == zero_load_delivery_ps(1, size)

    def test_latency_accessors(self, ring4, ring4_tables):
        sim, net = make_network(ring4, ring4_tables)
        pkt = net.send(0, 2)
        sim.run_until_idle()
        assert pkt.latency_ps() == pkt.delivered_ps - pkt.created_ps
        assert pkt.network_latency_ps() == pkt.delivered_ps - pkt.injected_ps

    def test_send_to_self_rejected(self, ring4, ring4_tables):
        _, net = make_network(ring4, ring4_tables)
        with pytest.raises(ValueError):
            net.send(3, 3)


class TestContention:
    def test_source_nic_serialises(self, ring4, ring4_tables):
        """Two back-to-back messages from one host share the injection
        channel: the second cannot be injected until the first's tail
        has left the NIC."""
        sim, net = make_network(ring4, ring4_tables)
        p1 = net.send(0, 2)
        p2 = net.send(0, 2)
        sim.run_until_idle()
        assert p1.injected_ps == 0
        assert p2.injected_ps > p1.injected_ps
        assert p2.delivered_ps > p1.delivered_ps

    def test_delivery_channel_contention(self, ring4, ring4_tables):
        """Messages from different sources to one host serialise on the
        delivery channel."""
        sim, net = make_network(ring4, ring4_tables)
        pa = net.send(0, 5)  # switch 0 -> host on switch 2
        pb = net.send(7, 5)  # switch 3 -> same destination host
        sim.run_until_idle()
        assert pa.delivered and pb.delivered
        first, second = sorted((pa, pb), key=lambda p: p.delivered_ps)
        # the later delivery starts only after the earlier tail is done:
        # a full wire worth of flits separates the two tails
        assert (second.delivered_ps - first.delivered_ps
                >= 512 * P.flit_cycle_ps)

    def test_conservation(self, ring4, ring4_tables):
        sim, net = make_network(ring4, ring4_tables)
        for i in range(20):
            net.send(i % 8, (i + 3) % 8)
        sim.run_until_idle()
        assert net.generated == 20
        assert net.delivered == 20
        assert net.in_flight == 0


def itb_route(g, via_host):
    """Two-leg route 0 -> 2 with an in-transit stop at switch 1."""
    leg1 = RouteLeg.from_switch_path(g, (0, 1))
    leg2 = RouteLeg.from_switch_path(g, (1, 2))
    return SourceRoute((leg1, leg2), (via_host,))


class TestInTransitBuffers:
    def make_custom(self, ring4, route):
        tables = compute_tables(ring4, "updown")
        custom = dict(tables.routes)
        custom[(0, 2)] = (route,)
        t = RoutingTables("itb", 0, tables.orientation, custom)
        return make_network(ring4, t)

    def test_itb_adds_detection_and_dma_delay(self, ring4):
        via = ring4.hosts_at(1)[0]
        sim, net = self.make_custom(ring4, itb_route(ring4, via))
        pkt = net.send(0, 4)  # host 4 is on switch 2
        sim.run_until_idle()
        assert pkt.delivered
        assert pkt.num_itbs == 1
        # must be strictly slower than a direct 2-hop route by at least
        # the detection + DMA set-up time
        direct = zero_load_delivery_ps(2, 512)
        assert pkt.delivered_ps >= direct + P.itb_detect_ps + P.itb_dma_setup_ps

    def test_itb_nic_counts_packet(self, ring4):
        via = ring4.hosts_at(1)[0]
        sim, net = self.make_custom(ring4, itb_route(ring4, via))
        net.send(0, 4)
        sim.run_until_idle()
        nic = net.nics[via]
        assert nic.itb_packets == 1
        assert nic.itb_bytes == 0          # released after re-injection
        assert nic.itb_peak_bytes > 0
        assert nic.itb_overflows == 0

    def test_itb_pool_overflow_penalised(self, ring4):
        via = ring4.hosts_at(1)[0]
        tiny = P.with_overrides(itb_pool_bytes=100)  # < one packet
        tables = compute_tables(ring4, "updown")
        custom = dict(tables.routes)
        custom[(0, 2)] = (itb_route(ring4, via),)
        t = RoutingTables("itb", 0, tables.orientation, custom)
        sim = Simulator()
        net = WormholeNetwork(sim, ring4, t, SinglePathPolicy(), tiny,
                              message_bytes=512)
        pkt = net.send(0, 4)
        sim.run_until_idle()
        assert pkt.itb_overflows == 1
        assert net.nics[via].itb_overflows == 1

    def test_itb_shares_injection_channel_with_host(self, ring4):
        """An in-transit packet and the in-transit host's own message
        contend for the same injection channel."""
        via = ring4.hosts_at(1)[0]
        sim, net = self.make_custom(ring4, itb_route(ring4, via))
        transit = net.send(0, 4)
        own = net.send(via, 4)   # the ITB host sends its own message
        sim.run_until_idle()
        assert transit.delivered and own.delivered
        # both crossed the same injection channel; they cannot overlap
        assert abs(own.delivered_ps - transit.delivered_ps) \
            >= 512 * P.flit_cycle_ps


class TestDeadlock:
    def test_cyclic_routing_deadlocks_and_is_detected(self, ring4):
        """Minimal source routing *without* in-transit buffers on a ring
        has a cyclic channel dependency; the watchdog must turn the hang
        into a DeadlockError.  (This is the deadlock the ITB mechanism
        exists to break.)"""
        # all-clockwise routes: s -> d always via +1 steps
        ud = orient_links(ring4, 0)
        routes = {}
        n = ring4.num_switches
        for s in range(n):
            for d in range(n):
                path = [s]
                while path[-1] != d:
                    path.append((path[-1] + 1) % n)
                routes[(s, d)] = (SourceRoute.single_leg(ring4, tuple(path)),)
        t = RoutingTables("itb", 0, ud, routes)
        cfg = SimConfig(
            topology="torus",
            topology_kwargs={"rows": 1, "cols": 4, "hosts_per_switch": 2},
            routing="itb", traffic="uniform", injection_rate=0.5,
            warmup_ps=ns(500_000), measure_ps=ns(2_000_000), seed=3)
        with pytest.raises(DeadlockError):
            run_simulation(cfg, tables=t, watchdog_ps=ns(100_000))

    def test_itb_routing_does_not_deadlock_same_load(self):
        """The same offered load with proper ITB routes completes."""
        cfg = SimConfig(
            topology="torus",
            topology_kwargs={"rows": 1, "cols": 4, "hosts_per_switch": 2},
            routing="itb", policy="rr", traffic="uniform",
            injection_rate=0.5,
            warmup_ps=ns(500_000), measure_ps=ns(2_000_000), seed=3)
        summary = run_simulation(cfg, watchdog_ps=ns(100_000))
        assert summary.messages_delivered > 0

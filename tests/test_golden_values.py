"""Golden-value pin of the simulation core's observable behaviour.

The hot-path optimisations (pre-resolved route-leg channel caches,
allocation-free event dispatch) must not change a single simulated
timestamp.  This suite pins, for a fixed-seed matrix of
{packet, flit, array} x {updown, itb-sp, itb-rr} on the
validation-size torus, every scalar ``RunSummary`` field plus a digest of the
per-directed-channel flit counts and reserved times.  Any rewrite of
the engines that perturbs event ordering or timing fails here with a
field-level diff.

The values were captured after the traffic-fabric refactor separated
the destination and arrival RNG streams (an intentional semantic
change: per-host destination sequences are now rate-invariant);
regenerate them only when another intentional semantic change lands::

    PYTHONPATH=src python tests/test_golden_values.py --regen
"""

import hashlib

import pytest

from repro.config import SimConfig
from repro.experiments.runner import run_simulation
from repro.units import ns

#: the fixed-seed matrix: (label, engine, routing, policy)
MATRIX = [
    ("packet-updown-sp", "packet", "updown", "sp"),
    ("packet-itb-sp", "packet", "itb", "sp"),
    ("packet-itb-rr", "packet", "itb", "rr"),
    ("flit-updown-sp", "flit", "updown", "sp"),
    ("flit-itb-sp", "flit", "itb", "sp"),
    ("flit-itb-rr", "flit", "itb", "rr"),
    ("array-updown-sp", "array", "updown", "sp"),
    ("array-itb-sp", "array", "itb", "sp"),
    ("array-itb-rr", "array", "itb", "rr"),
]

#: RunSummary fields compared bit-exactly (floats included: every run
#: is integer-timestamped and deterministic, so repr round-trips)
SUMMARY_FIELDS = (
    "offered_flits_ns_switch", "accepted_flits_ns_switch",
    "messages_delivered", "messages_generated", "avg_latency_ns",
    "avg_network_latency_ns", "max_latency_ns", "avg_itbs_per_message",
    "itb_overflow_count", "itb_peak_bytes", "backlog_growth",
)


def _config(engine: str, routing: str, policy: str) -> SimConfig:
    return SimConfig(
        engine=engine, topology="torus",
        topology_kwargs={"rows": 4, "cols": 4, "hosts_per_switch": 2},
        routing=routing, policy=policy, traffic="uniform",
        injection_rate=0.02, message_bytes=512, seed=7,
        warmup_ps=ns(20_000), measure_ps=ns(60_000))


def fingerprint(engine: str, routing: str, policy: str) -> dict:
    """Run one matrix point and reduce it to the pinned observables."""
    s = run_simulation(_config(engine, routing, policy),
                       collect_links=True)
    lu = s.link_utilization
    # per directed channel: (src, dst, link, utilisation, reserved) --
    # both fractions are int-flit / int-window quotients, so they are
    # bit-identical iff the underlying counters are
    rows = sorted(zip((tuple(e) for e in lu.channel_ends),
                      lu.utilization.tolist(), lu.reserved.tolist()))
    out = {f: getattr(s, f) for f in SUMMARY_FIELDS}
    out["link_digest"] = hashlib.sha256(
        repr(rows).encode()).hexdigest()[:16]
    return out


GOLDEN = {'packet-updown-sp': {'offered_flits_ns_switch': 0.02,
                      'accepted_flits_ns_switch': 0.0208,
                      'messages_delivered': 39,
                      'messages_generated': 36,
                      'avg_latency_ns': 4390.830230769231,
                      'avg_network_latency_ns': 4390.830230769231,
                      'max_latency_ns': 7584.832,
                      'avg_itbs_per_message': 0.0,
                      'itb_overflow_count': 0,
                      'itb_peak_bytes': 0,
                      'backlog_growth': -3,
                      'link_digest': 'b485a27701e650f7'},
 'packet-itb-sp': {'offered_flits_ns_switch': 0.02,
                   'accepted_flits_ns_switch': 0.020266666666666665,
                   'messages_delivered': 38,
                   'messages_generated': 36,
                   'avg_latency_ns': 4407.671605263158,
                   'avg_network_latency_ns': 4327.61652631579,
                   'max_latency_ns': 6318.034,
                   'avg_itbs_per_message': 0.3684210526315789,
                   'itb_overflow_count': 0,
                   'itb_peak_bytes': 519,
                   'backlog_growth': -2,
                   'link_digest': 'dc3b26de4810ab8c'},
 'packet-itb-rr': {'offered_flits_ns_switch': 0.02,
                   'accepted_flits_ns_switch': 0.020266666666666665,
                   'messages_delivered': 38,
                   'messages_generated': 36,
                   'avg_latency_ns': 4900.515184210527,
                   'avg_network_latency_ns': 4786.503315789473,
                   'max_latency_ns': 11580.765,
                   'avg_itbs_per_message': 0.4473684210526316,
                   'itb_overflow_count': 0,
                   'itb_peak_bytes': 1036,
                   'backlog_growth': -2,
                   'link_digest': '4e4a4883ebcb2fd2'},
 'flit-updown-sp': {'offered_flits_ns_switch': 0.02,
                    'accepted_flits_ns_switch': 0.0208,
                    'messages_delivered': 39,
                    'messages_generated': 36,
                    'avg_latency_ns': 4251.632794871795,
                    'avg_network_latency_ns': 4251.632794871795,
                    'max_latency_ns': 6867.682,
                    'avg_itbs_per_message': 0.0,
                    'itb_overflow_count': 0,
                    'itb_peak_bytes': 0,
                    'backlog_growth': -3,
                    'link_digest': '1caedcc71b4289b6'},
 'flit-itb-sp': {'offered_flits_ns_switch': 0.02,
                 'accepted_flits_ns_switch': 0.020266666666666665,
                 'messages_delivered': 38,
                 'messages_generated': 36,
                 'avg_latency_ns': 4348.11502631579,
                 'avg_network_latency_ns': 4286.4388947368425,
                 'max_latency_ns': 5962.584,
                 'avg_itbs_per_message': 0.3684210526315789,
                 'itb_overflow_count': 0,
                 'itb_peak_bytes': 519,
                 'backlog_growth': -2,
                 'link_digest': '80ecb0f352112f0e'},
 'flit-itb-rr': {'offered_flits_ns_switch': 0.02,
                 'accepted_flits_ns_switch': 0.020266666666666665,
                 'messages_delivered': 38,
                 'messages_generated': 36,
                 'avg_latency_ns': 4789.174394736842,
                 'avg_network_latency_ns': 4717.49147368421,
                 'max_latency_ns': 11019.865,
                 'avg_itbs_per_message': 0.4473684210526316,
                 'itb_overflow_count': 0,
                 'itb_peak_bytes': 1036,
                 'backlog_growth': -2,
                 'link_digest': 'f9e67200279308dd'},
 # array rows: counts and ITB loads match the packet rows exactly; the
 # latencies sit slightly below them (greedy reservation never blocks
 # upstream channels) and itb_peak_bytes is 0 (the pool is modelled as
 # infinite -- the capability is declined, not faked)
 'array-updown-sp': {'offered_flits_ns_switch': 0.02,
                     'accepted_flits_ns_switch': 0.0208,
                     'messages_delivered': 39,
                     'messages_generated': 36,
                     'avg_latency_ns': 4216.922538461538,
                     'avg_network_latency_ns': 4216.922538461538,
                     'max_latency_ns': 6703.677,
                     'avg_itbs_per_message': 0.0,
                     'itb_overflow_count': 0,
                     'itb_peak_bytes': 0,
                     'backlog_growth': -3,
                     'link_digest': '477140b979b0321f'},
 'array-itb-sp': {'offered_flits_ns_switch': 0.02,
                  'accepted_flits_ns_switch': 0.020266666666666665,
                  'messages_delivered': 38,
                  'messages_generated': 36,
                  'avg_latency_ns': 4335.45055263158,
                  'avg_network_latency_ns': 4273.774421052632,
                  'max_latency_ns': 5968.834,
                  'avg_itbs_per_message': 0.3684210526315789,
                  'itb_overflow_count': 0,
                  'itb_peak_bytes': 0,
                  'backlog_growth': -2,
                  'link_digest': 'de14cfa9f0f46e59'},
 'array-itb-rr': {'offered_flits_ns_switch': 0.02,
                  'accepted_flits_ns_switch': 0.020266666666666665,
                  'messages_delivered': 38,
                  'messages_generated': 36,
                  'avg_latency_ns': 4809.032421052632,
                  'avg_network_latency_ns': 4743.657,
                  'max_latency_ns': 8767.524,
                  'avg_itbs_per_message': 0.4473684210526316,
                  'itb_overflow_count': 0,
                  'itb_peak_bytes': 0,
                  'backlog_growth': -2,
                  'link_digest': '4b9ca36583b06a75'}}


@pytest.mark.parametrize("label,engine,routing,policy", MATRIX,
                         ids=[m[0] for m in MATRIX])
def test_golden(label, engine, routing, policy):
    assert GOLDEN, "golden values missing; regenerate with --regen"
    got = fingerprint(engine, routing, policy)
    assert got == GOLDEN[label]


def _regen() -> None:
    import pprint
    values = {label: fingerprint(engine, routing, policy)
              for label, engine, routing, policy in MATRIX}
    print("GOLDEN = \\")
    pprint.pprint(values, sort_dicts=False)


if __name__ == "__main__":
    import sys
    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)

"""Golden-value pin of the simulation core's observable behaviour.

The hot-path optimisations (pre-resolved route-leg channel caches,
allocation-free event dispatch) must not change a single simulated
timestamp.  This suite pins, for a fixed-seed matrix of
{packet, flit} x {updown, itb-sp, itb-rr} on the validation-size
torus, every scalar ``RunSummary`` field plus a digest of the
per-directed-channel flit counts and reserved times.  Any rewrite of
the engines that perturbs event ordering or timing fails here with a
field-level diff.

The values were captured after the measurement-boundary accounting
fixes (channel warm-up clamp, adaptive-feedback keying) and before the
performance overhaul; regenerate them only when an intentional
semantic change lands::

    PYTHONPATH=src python tests/test_golden_values.py --regen
"""

import hashlib

import pytest

from repro.config import SimConfig
from repro.experiments.runner import run_simulation
from repro.units import ns

#: the fixed-seed matrix: (label, engine, routing, policy)
MATRIX = [
    ("packet-updown-sp", "packet", "updown", "sp"),
    ("packet-itb-sp", "packet", "itb", "sp"),
    ("packet-itb-rr", "packet", "itb", "rr"),
    ("flit-updown-sp", "flit", "updown", "sp"),
    ("flit-itb-sp", "flit", "itb", "sp"),
    ("flit-itb-rr", "flit", "itb", "rr"),
]

#: RunSummary fields compared bit-exactly (floats included: every run
#: is integer-timestamped and deterministic, so repr round-trips)
SUMMARY_FIELDS = (
    "offered_flits_ns_switch", "accepted_flits_ns_switch",
    "messages_delivered", "messages_generated", "avg_latency_ns",
    "avg_network_latency_ns", "max_latency_ns", "avg_itbs_per_message",
    "itb_overflow_count", "itb_peak_bytes", "backlog_growth",
)


def _config(engine: str, routing: str, policy: str) -> SimConfig:
    return SimConfig(
        engine=engine, topology="torus",
        topology_kwargs={"rows": 4, "cols": 4, "hosts_per_switch": 2},
        routing=routing, policy=policy, traffic="uniform",
        injection_rate=0.02, message_bytes=512, seed=7,
        warmup_ps=ns(20_000), measure_ps=ns(60_000))


def fingerprint(engine: str, routing: str, policy: str) -> dict:
    """Run one matrix point and reduce it to the pinned observables."""
    s = run_simulation(_config(engine, routing, policy),
                       collect_links=True)
    lu = s.link_utilization
    # per directed channel: (src, dst, link, utilisation, reserved) --
    # both fractions are int-flit / int-window quotients, so they are
    # bit-identical iff the underlying counters are
    rows = sorted(zip((tuple(e) for e in lu.channel_ends),
                      lu.utilization.tolist(), lu.reserved.tolist()))
    out = {f: getattr(s, f) for f in SUMMARY_FIELDS}
    out["link_digest"] = hashlib.sha256(
        repr(rows).encode()).hexdigest()[:16]
    return out


GOLDEN = {'packet-updown-sp': {'offered_flits_ns_switch': 0.02,
                      'accepted_flits_ns_switch': 0.019733333333333332,
                      'messages_delivered': 37,
                      'messages_generated': 37,
                      'avg_latency_ns': 4066.886864864865,
                      'avg_network_latency_ns': 4066.886864864865,
                      'max_latency_ns': 6237.57,
                      'avg_itbs_per_message': 0.0,
                      'itb_overflow_count': 0,
                      'itb_peak_bytes': 0,
                      'backlog_growth': 0,
                      'link_digest': '3f72100c8284b1d7'},
 'packet-itb-sp': {'offered_flits_ns_switch': 0.02,
                   'accepted_flits_ns_switch': 0.019733333333333332,
                   'messages_delivered': 37,
                   'messages_generated': 37,
                   'avg_latency_ns': 4280.902594594595,
                   'avg_network_latency_ns': 4280.902594594595,
                   'max_latency_ns': 7619.037,
                   'avg_itbs_per_message': 0.2702702702702703,
                   'itb_overflow_count': 0,
                   'itb_peak_bytes': 519,
                   'backlog_growth': 0,
                   'link_digest': '3da43e875791785e'},
 'packet-itb-rr': {'offered_flits_ns_switch': 0.02,
                   'accepted_flits_ns_switch': 0.019733333333333332,
                   'messages_delivered': 37,
                   'messages_generated': 37,
                   'avg_latency_ns': 4289.169,
                   'avg_network_latency_ns': 4289.169,
                   'max_latency_ns': 8804.947,
                   'avg_itbs_per_message': 0.2702702702702703,
                   'itb_overflow_count': 0,
                   'itb_peak_bytes': 519,
                   'backlog_growth': 0,
                   'link_digest': 'b5f2f7c4d299f601'},
 'flit-updown-sp': {'offered_flits_ns_switch': 0.02,
                    'accepted_flits_ns_switch': 0.019733333333333332,
                    'messages_delivered': 37,
                    'messages_generated': 37,
                    'avg_latency_ns': 3986.0771621621625,
                    'avg_network_latency_ns': 3986.0771621621625,
                    'max_latency_ns': 5520.42,
                    'avg_itbs_per_message': 0.0,
                    'itb_overflow_count': 0,
                    'itb_peak_bytes': 0,
                    'backlog_growth': 0,
                    'link_digest': 'a7d9634bbba6ec98'},
 'flit-itb-sp': {'offered_flits_ns_switch': 0.02,
                 'accepted_flits_ns_switch': 0.019733333333333332,
                 'messages_delivered': 37,
                 'messages_generated': 37,
                 'avg_latency_ns': 4210.472405405405,
                 'avg_network_latency_ns': 4210.472405405405,
                 'max_latency_ns': 6874.598,
                 'avg_itbs_per_message': 0.2702702702702703,
                 'itb_overflow_count': 0,
                 'itb_peak_bytes': 519,
                 'backlog_growth': 0,
                 'link_digest': '9ceb97e4b7e8d3a9'},
 'flit-itb-rr': {'offered_flits_ns_switch': 0.02,
                 'accepted_flits_ns_switch': 0.019733333333333332,
                 'messages_delivered': 37,
                 'messages_generated': 37,
                 'avg_latency_ns': 4253.440621621622,
                 'avg_network_latency_ns': 4253.440621621622,
                 'max_latency_ns': 8232.997,
                 'avg_itbs_per_message': 0.2702702702702703,
                 'itb_overflow_count': 0,
                 'itb_peak_bytes': 519,
                 'backlog_growth': 0,
                 'link_digest': '552d53e9cb516c48'}}


@pytest.mark.parametrize("label,engine,routing,policy", MATRIX,
                         ids=[m[0] for m in MATRIX])
def test_golden(label, engine, routing, policy):
    assert GOLDEN, "golden values missing; regenerate with --regen"
    got = fingerprint(engine, routing, policy)
    assert got == GOLDEN[label]


def _regen() -> None:
    import pprint
    values = {label: fingerprint(engine, routing, policy)
              for label, engine, routing, policy in MATRIX}
    print("GOLDEN = \\")
    pprint.pprint(values, sort_dicts=False)


if __name__ == "__main__":
    import sys
    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)

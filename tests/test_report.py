"""ASCII report rendering (smoke + content checks on synthetic data)."""

import numpy as np
import pytest

from repro.config import SimConfig
from repro.experiments.figures import FigureResult, LinkMapResult
from repro.experiments.report import (render_figure, render_hotspot_table,
                                      render_link_map,
                                      render_throughput_summary)
from repro.experiments.sweep import SweepResult
from repro.experiments.tables import HotspotTable
from repro.metrics.linkstats import LinkUtilization
from repro.metrics.summary import RunSummary


def mk_summary(rate, accepted, label_routing="updown"):
    return RunSummary(
        config=SimConfig(routing=label_routing, injection_rate=rate),
        offered_flits_ns_switch=rate, accepted_flits_ns_switch=accepted,
        messages_delivered=10, messages_generated=10,
        avg_latency_ns=5_000.0, avg_network_latency_ns=4_500.0,
        max_latency_ns=9_000.0, avg_itbs_per_message=0.4,
        itb_overflow_count=0, itb_peak_bytes=1024, link_utilization=None)


def test_render_figure_contains_series_and_paper_values():
    fig = FigureResult(
        "figX", "Synthetic panel",
        [SweepResult("UP/DOWN", [mk_summary(0.01, 0.01),
                                 mk_summary(0.02, 0.015)])],
        {"UP/DOWN": 0.015})
    text = render_figure(fig)
    assert "figX" in text and "Synthetic panel" in text
    assert "UP/DOWN" in text
    assert "(paper: 0.015)" in text
    assert "0.0150" in text


def test_render_link_map_with_grid():
    ends = [(0, 1, 0), (1, 0, 0), (2, 3, 1), (3, 2, 1)]
    util = np.array([0.5, 0.1, 0.2, 0.05])
    resv = util + 0.1
    per_link = np.array([0.5, 0.2])
    lu = LinkUtilization(1000, ends, util, resv, per_link)
    res = LinkMapResult("fig8x", "Synthetic map", "UP/DOWN", 0.015, lu,
                        mk_summary(0.015, 0.015))
    text = render_link_map(res, grid=(2, 2))
    assert "fig8x" in text
    assert "max=50.0%" in text
    assert "hottest" in text
    assert "per switch" in text


def test_link_utilization_summary_stats():
    ends = [(0, 1, 0), (1, 0, 0)]
    lu = LinkUtilization(1000, ends, np.array([0.4, 0.05]),
                         np.array([0.5, 0.06]), np.array([0.4, 0.05]))
    s = lu.summary()
    assert s["max"] == 0.4
    assert s["frac_below_10pct"] == 0.5
    assert s["frac_above_30pct"] == 0.5
    hot = lu.hottest(1)
    assert hot[0][0] == 0.4


def test_render_hotspot_table():
    tab = HotspotTable(
        "table1", "Synthetic hotspot", "torus", (0.05,), (3, 7),
        {(0.05, 3, "UP/DOWN"): 0.012, (0.05, 3, "ITB-SP"): 0.024,
         (0.05, 3, "ITB-RR"): 0.026, (0.05, 7, "UP/DOWN"): 0.014,
         (0.05, 7, "ITB-SP"): 0.028, (0.05, 7, "ITB-RR"): 0.028})
    text = render_hotspot_table(tab)
    assert "table1" in text
    assert "Avg" in text
    assert "paper" in text          # Table 1 has paper reference values
    assert "x UP/DOWN" in text
    avg = tab.averages()
    assert avg[(0.05, "UP/DOWN")] == pytest.approx(0.013)
    factors = tab.improvement_factors()
    assert factors[(0.05, "ITB-SP")] == pytest.approx(0.026 / 0.013)


def test_render_throughput_summary():
    text = render_throughput_summary(
        {"fig7a": {"UP/DOWN": 0.016, "ITB-RR": 0.031}},
        {"fig7a": {"UP/DOWN": 0.015, "ITB-RR": 0.032}})
    assert "fig7a" in text
    assert "0.0160" in text
    assert "0.0150" in text

"""Minimal-path enumeration, cross-checked against networkx and a DP count."""

import networkx as nx
import pytest

from repro.routing.minimal import count_minimal_paths, enumerate_minimal_paths
from repro.topology import build_torus


@pytest.fixture(scope="module")
def g44():
    return build_torus(rows=4, cols=4, hosts_per_switch=1)


def nx_graph(g):
    nxg = nx.Graph()
    nxg.add_nodes_from(range(g.num_switches))
    nxg.add_edges_from((ln.a, ln.b) for ln in g.links)
    return nxg


def test_paths_are_shortest(g44):
    for dst in (0, 6, 15):
        dist = g44.shortest_distances(dst)
        for src in g44.switches():
            for p in enumerate_minimal_paths(g44, src, dst, dist,
                                             max_paths=1000):
                assert len(p) - 1 == dist[src]
                assert p[0] == src and p[-1] == dst


def test_matches_networkx_all_shortest_paths(g44):
    nxg = nx_graph(g44)
    for src, dst in [(0, 15), (3, 12), (5, 10), (1, 2)]:
        dist = g44.shortest_distances(dst)
        ours = set(enumerate_minimal_paths(g44, src, dst, dist,
                                           max_paths=100_000))
        theirs = {tuple(p) for p in nx.all_shortest_paths(nxg, src, dst)}
        assert ours == theirs


def test_cap_respected(g44):
    dist = g44.shortest_distances(15)
    # 0 -> 15 is the wraparound corner pair with several shortest paths
    all_paths = enumerate_minimal_paths(g44, 0, 15, dist, max_paths=1000)
    assert len(all_paths) >= 2
    capped = enumerate_minimal_paths(g44, 0, 15, dist, max_paths=2)
    assert len(capped) == 2
    assert set(capped) <= set(all_paths)


def test_same_switch(g44):
    dist = g44.shortest_distances(3)
    assert enumerate_minimal_paths(g44, 3, 3, dist) == [(3,)]


def test_deterministic(g44):
    dist = g44.shortest_distances(9)
    a = enumerate_minimal_paths(g44, 2, 9, dist, max_paths=10)
    b = enumerate_minimal_paths(g44, 2, 9, dist, max_paths=10)
    assert a == b


def test_count_matches_enumeration(g44):
    for dst in (0, 11):
        dist = g44.shortest_distances(dst)
        counts = count_minimal_paths(g44, dst, dist)
        for src in g44.switches():
            enum = enumerate_minimal_paths(g44, src, dst, dist,
                                           max_paths=100_000)
            assert counts[src] == len(enum)


def test_count_matches_networkx(g44):
    nxg = nx_graph(g44)
    dst = 10
    dist = g44.shortest_distances(dst)
    counts = count_minimal_paths(g44, dst, dist)
    for src in g44.switches():
        if src == dst:
            continue
        expected = len(list(nx.all_shortest_paths(nxg, src, dst)))
        assert counts[src] == expected

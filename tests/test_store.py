"""Content-addressed result store: keys, round trips, maintenance."""

import json

from repro.orchestrator.store import STORE_FORMAT, ResultStore


def _payload(x=1):
    return {"config": {"topology": "torus", "seed": x},
            "runner_kwargs": {}}


class TestKeys:
    def test_key_is_stable(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.key("point", _payload()) == store.key("point",
                                                           _payload())

    def test_key_ignores_dict_order(self, tmp_path):
        store = ResultStore(tmp_path)
        a = store.key("point", {"a": 1, "b": {"c": 2, "d": 3}})
        b = store.key("point", {"b": {"d": 3, "c": 2}, "a": 1})
        assert a == b

    def test_key_distinguishes_payloads_and_kinds(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.key("point", _payload(1)) != \
            store.key("point", _payload(2))
        assert store.key("point", _payload(1)) != \
            store.key("saturation", _payload(1))


class TestRecords:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        key = store.key("point", _payload())
        store.put(key, "point", _payload(), {"value": 1.25},
                  elapsed_s=0.5)
        record = store.get(key)
        assert record is not None
        assert record["result"] == {"value": 1.25}
        assert record["payload"] == _payload()
        assert record["kind"] == "point"
        assert record["format"] == STORE_FORMAT
        assert record["elapsed_s"] == 0.5
        assert store.contains(key)

    def test_missing_key_is_none(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("0" * 64) is None
        assert not store.contains("0" * 64)

    def test_corrupt_record_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = store.key("point", _payload())
        store.put(key, "point", _payload(), {"value": 1})
        path = store._path(key)
        path.write_text("{truncated")
        assert store.get(key) is None

    def test_mismatched_key_field_reads_as_miss(self, tmp_path):
        # a record copied under the wrong name must not be served
        store = ResultStore(tmp_path)
        key = store.key("point", _payload())
        store.put(key, "point", _payload(), {"value": 1})
        other = "f" * 64
        target = store._path(other)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(store._path(key).read_text())
        assert store.get(other) is None

    def test_record_is_plain_json(self, tmp_path):
        # external tooling reads records without importing repro
        store = ResultStore(tmp_path)
        key = store.key("point", _payload())
        store.put(key, "point", _payload(), {"value": 2})
        with open(store._path(key)) as fh:
            assert json.load(fh)["result"]["value"] == 2


class TestMetaCreation:
    def test_meta_written_atomically_on_first_put(self, tmp_path):
        store = ResultStore(tmp_path)
        key = store.key("point", _payload())
        store.put(key, "point", _payload(), {"value": 1})
        meta = json.loads((tmp_path / "meta.json").read_text())
        assert meta == {"format": STORE_FORMAT}
        # no half-written temp artefacts survive the put
        assert not list(tmp_path.glob("*.tmp"))

    def test_existing_meta_left_alone(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(store.key("point", _payload()), "point", _payload(),
                  {"value": 1})
        before = (tmp_path / "meta.json").stat().st_mtime_ns
        store.put(store.key("point", _payload(2)), "point", _payload(2),
                  {"value": 2})
        assert (tmp_path / "meta.json").stat().st_mtime_ns == before


class TestCompaction:
    def _fill(self, store, n=5):
        keys = []
        for i in range(n):
            key = store.key("point", _payload(i))
            store.put(key, "point", _payload(i), {"value": i},
                      elapsed_s=float(i))
            keys.append(key)
        return keys

    def test_compact_builds_index(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = self._fill(store)
        stats = store.compact()
        assert stats.entries == 5 and stats.pruned == 0
        index = store.index()
        assert set(index) == set(keys)
        for key in keys:
            assert index[key]["kind"] == "point"
            assert index[key]["bytes"] > 0
        # records still read back after the pass
        assert all(store.get(k) is not None for k in keys)

    def test_compact_prunes_corrupt_and_misfiled(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = self._fill(store, 3)
        store._path(keys[0]).write_text("{truncated")
        misfiled = store._path("f" * 64)
        misfiled.parent.mkdir(parents=True, exist_ok=True)
        misfiled.write_text(store._path(keys[1]).read_text())
        stats = store.compact()
        assert stats.entries == 2
        assert stats.pruned == 2
        assert not store._path(keys[0]).exists()
        assert not misfiled.exists()
        assert set(store.index()) == set(keys[1:])

    def test_compact_removes_empty_shards(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = self._fill(store, 4)
        for key in keys[:2]:
            store._path(key).unlink()
        stats = store.compact()
        subdirs = {p.name for p in (tmp_path / "objects").iterdir()}
        assert subdirs == {k[:2] for k in keys[2:]}
        assert stats.removed_dirs >= 1

    def test_compact_empty_store(self, tmp_path):
        stats = ResultStore(tmp_path / "cold").compact()
        assert stats.entries == 0 and stats.pruned == 0
        assert ResultStore(tmp_path / "cold").index() == {}

    def test_index_absent_before_compact(self, tmp_path):
        assert ResultStore(tmp_path).index() is None


class TestMaintenance:
    def test_info_counts_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.info().entries == 0
        for i in range(3):
            key = store.key("point", _payload(i))
            store.put(key, "point", _payload(i), {"value": i})
        info = store.info()
        assert info.entries == 3
        assert info.total_bytes > 0
        assert str(tmp_path) in info.oneline()

    def test_clear_removes_everything(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = []
        for i in range(4):
            key = store.key("point", _payload(i))
            store.put(key, "point", _payload(i), {"value": i})
            keys.append(key)
        assert store.clear() == 4
        assert store.info().entries == 0
        assert all(store.get(k) is None for k in keys)

    def test_clear_removes_empty_shard_dirs_and_index(self, tmp_path):
        store = ResultStore(tmp_path)
        for i in range(4):
            key = store.key("point", _payload(i))
            store.put(key, "point", _payload(i), {"value": i})
        store.compact()
        store.clear()
        assert list((tmp_path / "objects").iterdir()) == []
        assert not (tmp_path / "index.json").exists()

    def test_clear_empty_store(self, tmp_path):
        assert ResultStore(tmp_path / "never-created").clear() == 0

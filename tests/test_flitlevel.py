"""Flit-level engine: exact timing, stop&go, and cross-engine validation.

The flit engine is the ground truth for the packet engine's "tail wave"
approximation; the cross-validation tests here are the quantitative
justification for using the fast model at paper scale (DESIGN.md
Section 5).
"""

import pytest

from repro.config import PAPER_PARAMS
from repro.experiments.runner import run_simulation
from repro.routing.policies import SinglePathPolicy
from repro.routing.table import compute_tables
from repro.sim.engine import Simulator
from repro.sim.flitlevel import FlitLevelNetwork
from repro.topology import build_torus
from repro.units import ns
from tests.conftest import small_config

P = PAPER_PARAMS


@pytest.fixture(scope="module")
def ring4():
    return build_torus(rows=1, cols=4, hosts_per_switch=2)


@pytest.fixture(scope="module")
def ring4_tables(ring4):
    return compute_tables(ring4, "updown")


def make_flit_network(g, tables, message_bytes=512):
    sim = Simulator()
    net = FlitLevelNetwork(sim, g, tables, SinglePathPolicy(), P,
                           message_bytes=message_bytes)
    return sim, net


def flit_zero_load_delivery_ps(switch_hops, payload):
    """Exact single-packet delivery time in the flit engine.

    The header flit crosses ``hops + 2`` wires (inj + hops + delivery)
    and pays routing at each of the ``hops + 1`` switches; the last of
    the ``wire`` flits follows ``wire - 1`` flit cycles behind.
    """
    wire = payload + P.header_type_bytes + switch_hops
    head = ((switch_hops + 2) * P.link_prop_ps
            + (switch_hops + 1) * P.routing_delay_ps)
    return head + (wire - 1) * P.flit_cycle_ps


class TestExactTiming:
    def test_one_hop(self, ring4, ring4_tables):
        sim, net = make_flit_network(ring4, ring4_tables)
        pkt = net.send(0, 2)
        assert pkt.route.switch_hops == 1
        sim.run_until_idle()
        assert pkt.delivered_ps == flit_zero_load_delivery_ps(1, 512)

    def test_same_switch(self, ring4, ring4_tables):
        sim, net = make_flit_network(ring4, ring4_tables)
        pkt = net.send(0, 1)
        sim.run_until_idle()
        assert pkt.delivered_ps == flit_zero_load_delivery_ps(0, 512)

    def test_two_hops(self, ring4, ring4_tables):
        sim, net = make_flit_network(ring4, ring4_tables)
        pkt = net.send(0, 4)  # switch 0 -> switch 2
        assert pkt.route.switch_hops == 2
        sim.run_until_idle()
        assert pkt.delivered_ps == flit_zero_load_delivery_ps(2, 512)

    def test_small_message(self, ring4, ring4_tables):
        sim, net = make_flit_network(ring4, ring4_tables, message_bytes=32)
        pkt = net.send(0, 2)
        sim.run_until_idle()
        assert pkt.delivered_ps == flit_zero_load_delivery_ps(1, 32)

    def test_packet_engine_matches_within_one_flit_cycle(
            self, ring4, ring4_tables):
        """At zero load the two engines differ by exactly the tail
        fence-post (one flit cycle)."""
        from tests.test_network import make_network, zero_load_delivery_ps
        for hops, dst in ((1, 2), (2, 4)):
            sim, net = make_flit_network(ring4, ring4_tables)
            pkt = net.send(0, dst)
            sim.run_until_idle()
            assert (zero_load_delivery_ps(hops, 512) - pkt.delivered_ps
                    == P.flit_cycle_ps)


class TestStopAndGo:
    def test_slack_buffers_never_overflow_under_overload(self, ring4,
                                                         ring4_tables):
        """The _RxBuffer raises if stop&go fails to pace senders; heavy
        load must not trigger it."""
        sim, net = make_flit_network(ring4, ring4_tables)
        for i in range(40):
            src, dst = i % 8, (i * 3 + 2) % 8
            if src == dst:
                dst = (dst + 1) % 8
            net.send(src, dst)
        sim.run_until_idle()  # would raise AssertionError on overflow
        assert net.delivered == 40

    def test_blocked_packet_backpressures_source(self, ring4,
                                                 ring4_tables):
        """Two long packets to the same destination: the loser of the
        delivery port must be paced by stop&go while it waits, and both
        must still be delivered in full."""
        sim, net = make_flit_network(ring4, ring4_tables,
                                     message_bytes=2048)
        pa = net.send(0, 5)
        pb = net.send(7, 5)
        sim.run_until_idle()
        assert pa.delivered and pb.delivered
        gap = abs(pa.delivered_ps - pb.delivered_ps)
        assert gap >= 2048 * P.flit_cycle_ps  # serialised on delivery


class TestInTransit:
    def test_itb_flows_end_to_end(self, ring4):
        """Force a 2-leg ITB route and verify flit-level forwarding."""
        from repro.routing.routes import RouteLeg, SourceRoute
        from repro.routing.table import RoutingTables
        tables = compute_tables(ring4, "updown")
        via = ring4.hosts_at(1)[0]
        leg1 = RouteLeg.from_switch_path(ring4, (0, 1))
        leg2 = RouteLeg.from_switch_path(ring4, (1, 2))
        custom = dict(tables.routes)
        custom[(0, 2)] = (SourceRoute((leg1, leg2), (via,)),)
        t = RoutingTables("itb", 0, tables.orientation, custom)
        sim, net = make_flit_network(ring4, t)
        pkt = net.send(0, 4)
        sim.run_until_idle()
        assert pkt.delivered
        assert pkt.num_itbs == 1
        # slower than a direct two-hop route by at least detect + DMA
        direct = flit_zero_load_delivery_ps(2, 512)
        assert pkt.delivered_ps >= direct + P.itb_detect_ps \
            + P.itb_dma_setup_ps

    def test_itb_counters_cleaned_up(self, ring4):
        from repro.routing.routes import RouteLeg, SourceRoute
        from repro.routing.table import RoutingTables
        tables = compute_tables(ring4, "updown")
        via = ring4.hosts_at(1)[0]
        custom = dict(tables.routes)
        custom[(0, 2)] = (SourceRoute(
            (RouteLeg.from_switch_path(ring4, (0, 1)),
             RouteLeg.from_switch_path(ring4, (1, 2))), (via,)),)
        t = RoutingTables("itb", 0, tables.orientation, custom)
        sim, net = make_flit_network(ring4, t)
        net.send(0, 4)
        sim.run_until_idle()
        assert net._itb_rx == {}


class TestCrossEngineValidation:
    """The packet-level model must track the flit-level ground truth."""

    @pytest.mark.parametrize("rate", [0.005, 0.02])
    def test_latency_agreement_below_saturation(self, rate):
        results = {}
        for engine in ("packet", "flit"):
            cfg = small_config(injection_rate=rate, engine=engine,
                               warmup_ps=ns(60_000),
                               measure_ps=ns(300_000))
            results[engine] = run_simulation(cfg)
        pkt, flit = results["packet"], results["flit"]
        assert pkt.avg_latency_ns == pytest.approx(
            flit.avg_latency_ns, rel=0.05)
        assert pkt.accepted_flits_ns_switch == pytest.approx(
            flit.accepted_flits_ns_switch, rel=0.05)

    def test_packet_engine_pessimistic_near_saturation(self):
        """Ignoring slack absorption makes the fast model's latency an
        upper bound (within noise) when contention matters."""
        cfg = dict(injection_rate=0.05, warmup_ps=ns(60_000),
                   measure_ps=ns(300_000))
        pkt = run_simulation(small_config(engine="packet", **cfg))
        flit = run_simulation(small_config(engine="flit", **cfg))
        assert pkt.avg_latency_ns >= 0.95 * flit.avg_latency_ns

    def test_updown_agreement(self):
        for engine in ("packet", "flit"):
            pass
        cfg = dict(routing="updown", policy="sp", injection_rate=0.02,
                   warmup_ps=ns(60_000), measure_ps=ns(300_000))
        pkt = run_simulation(small_config(engine="packet", **cfg))
        flit = run_simulation(small_config(engine="flit", **cfg))
        assert pkt.avg_latency_ns == pytest.approx(
            flit.avg_latency_ns, rel=0.05)


class TestRunnerIntegration:
    def test_flit_engine_via_config(self):
        s = run_simulation(small_config(engine="flit",
                                        measure_ps=ns(100_000)))
        assert s.messages_delivered > 0

    def test_link_stats_supported(self):
        """The unified NetworkModel surface made ``collect_links`` work
        for the flit engine too (it used to raise)."""
        s = run_simulation(small_config(engine="flit",
                                        measure_ps=ns(100_000)),
                           collect_links=True)
        assert s.link_utilization is not None
        assert len(s.link_utilization.per_link) == 32  # 4x4 torus links
        assert s.link_utilization.per_link.max() > 0

    def test_bad_engine_rejected(self):
        with pytest.raises(ValueError):
            small_config(engine="quantum").validate()

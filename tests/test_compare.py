"""A/B comparison harness."""

import pytest

from repro.experiments.compare import compare_configs
from repro.metrics.stats import replication_interval
from tests.conftest import small_config


class TestReplicationInterval:
    def test_basic(self):
        ci = replication_interval([10.0, 12.0, 11.0, 9.0, 13.0])
        assert ci.mean == 11.0
        assert ci.half_width > 0
        assert ci.batches == 5

    def test_needs_two(self):
        with pytest.raises(ValueError):
            replication_interval([5.0])


class TestCompareConfigs:
    def test_updown_vs_itb_at_contested_load(self):
        """On the paper's 8x8 torus above UP/DOWN's knee, ITB must win
        the latency verdict decisively across seeds."""
        from repro.config import SimConfig
        from repro.units import ns
        window = dict(topology="torus", traffic="uniform",
                      injection_rate=0.02,
                      warmup_ps=ns(40_000), measure_ps=ns(150_000))
        a = SimConfig(routing="updown", policy="sp", **window)
        b = SimConfig(routing="itb", policy="rr", **window)
        res = compare_configs(a, b, seeds=(1, 2, 3))
        assert res.latency_verdict == "b"
        text = res.render()
        assert "UP/DOWN" in text and "ITB-RR" in text
        assert "lower latency" in text

    def test_self_comparison_is_tie(self):
        cfg = small_config(injection_rate=0.02)
        res = compare_configs(cfg, cfg, seeds=(1, 2, 3))
        assert res.latency_verdict == "tie"
        assert res.throughput_verdict == "tie"

    def test_needs_two_seeds(self):
        cfg = small_config()
        with pytest.raises(ValueError):
            compare_configs(cfg, cfg, seeds=(1,))

    def test_empty_window_rejected(self):
        cfg = small_config(injection_rate=0.0005, measure_ps=1_000_000,
                           warmup_ps=0)
        with pytest.raises(ValueError, match="nothing delivered"):
            compare_configs(cfg, cfg, seeds=(1, 2))

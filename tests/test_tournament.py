"""Tournament smoke: small matrix, inline + orchestrated, CLI verb."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.profiles import TEST
from repro.experiments.tournament import (TopologySpec, default_entries,
                                          render_tournament,
                                          run_tournament,
                                          tournament_cell_task)

TORUS33 = TopologySpec("torus", {"rows": 3, "cols": 3,
                                 "hosts_per_switch": 2}, "torus 3x3")
IRREG = TopologySpec("irregular", {}, "irregular")


@pytest.fixture(scope="module")
def report():
    return run_tournament(default_entries(["updown", "itb", "outflank"]),
                          (TORUS33, IRREG), ("uniform",), TEST,
                          seed=1, failures=1)


class TestRunTournament:
    def test_full_cross_product_reported(self, report):
        assert len(report.cells) == 3 * 2 * 1

    def test_supported_cells_carry_all_metrics(self, report):
        c = report.cell("ITB-RR", "torus 3x3", "uniform")
        assert c.supported
        assert c.throughput > 0
        assert c.knee_offered is not None and c.knee_offered > 0
        assert c.p99_latency_ns is not None and c.p99_latency_ns > 0
        assert c.probe_rate is not None and c.probe_rate > 0
        # one link down on a 3x3 torus leaves plenty of fabric
        assert c.retention is not None and 0 < c.retention <= 1.5

    def test_default_policies_follow_multipath_flag(self, report):
        by_routing = {e.routing: e.policy for e in report.schemes}
        assert by_routing == {"updown": "sp", "itb": "rr",
                              "outflank": "rr"}

    def test_unsupported_cell_marked_not_simulated(self, report):
        c = report.cell("OFR-RR", "irregular", "uniform")
        assert not c.supported
        assert c.throughput == 0.0 and c.p99_latency_ns is None

    def test_grid_scheme_loses_retention_not_the_cell(self, report):
        # the mutated (degraded) graph has no grid geometry, so the
        # grid-bound scheme keeps its healthy metrics but reports no
        # retention instead of crashing
        c = report.cell("OFR-RR", "torus 3x3", "uniform")
        assert c.supported and c.throughput > 0
        assert c.retention is None

    def test_unknown_scheme_rejected_up_front(self):
        with pytest.raises(ValueError, match="unknown routing scheme"):
            default_entries(["updown", "teleport"])

    def test_report_renders_and_serializes(self, report):
        text = render_tournament(report)
        for needle in ("saturation throughput", "latency knee",
                       "p99 latency", "retention after 1 link",
                       "ITB-RR", "torus 3x3", "--"):
            assert needle in text
        blob = json.loads(json.dumps(report.to_dict()))
        assert len(blob["cells"]) == len(report.cells)
        assert blob["failures"] == 1

    def test_workload_specs_and_pattern_gating(self):
        """Composite 'pattern+arrival' specs run, and patterns whose
        capability declaration rejects the topology (bit-reversal on
        the 18-host torus 3x3) yield unsupported cells, not crashes."""
        rep = run_tournament(default_entries(["itb"]), (TORUS33,),
                             ("uniform+onoff", "bit-reversal"), TEST,
                             seed=1)
        bursty = rep.cell("ITB-RR", "torus 3x3", "uniform+onoff")
        assert bursty.supported and bursty.throughput > 0
        gated = rep.cell("ITB-RR", "torus 3x3", "bit-reversal")
        assert not gated.supported

    def test_bad_workload_spec_rejected_up_front(self):
        with pytest.raises(ValueError, match="unknown arrival"):
            run_tournament(default_entries(["itb"]), (TORUS33,),
                           ("uniform+weibull",), TEST)

    def test_cell_task_is_deterministic(self):
        entry = default_entries(["updown"])[0]
        from repro.experiments.tournament import _cell_payload
        payload = _cell_payload(entry, TORUS33, "uniform", TEST,
                                start_rate=0.005, seed=1,
                                failed_links=())
        assert json.dumps(tournament_cell_task(payload)) == \
            json.dumps(tournament_cell_task(payload))


class TestTournamentCLI:
    def test_cli_smoke(self, tmp_path, capsys):
        out = tmp_path / "tournament.json"
        rc = main(["tournament", "--profile", "test",
                   "--schemes", "updown,updown-opt",
                   "--topologies", "torus", "--rows", "3", "--cols", "3",
                   "--hosts-per-switch", "2",
                   "--patterns", "uniform",
                   "--json", str(out), "--no-cache"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "UD-OPT" in text and "saturation throughput" in text
        blob = json.loads(out.read_text())
        assert {c["label"] for c in blob["cells"]} == {"UP/DOWN",
                                                       "UD-OPT"}

    def test_schemes_verb(self, capsys):
        assert main(["schemes"]) == 0
        text = capsys.readouterr().out
        for name in ("updown", "itb", "updown-opt", "outflank", "dor"):
            assert name in text

"""Traffic fabric: patterns, arrival processes, registry, driver.

Property suite over the full registry: every destination pattern is
checked for in-range / never-self destinations and determinism, every
arrival process for mean-rate preservation, and the driver for the
destination/arrival RNG separation that makes destination sequences
rate-invariant (the paired-comparison guarantee).
"""

import random
from collections import Counter, defaultdict

import pytest

from repro.config import PAPER_PARAMS, SimConfig
from repro.routing.policies import SinglePathPolicy
from repro.routing.table import compute_tables
from repro.sim.engine import Simulator
from repro.sim.network import WormholeNetwork
from repro.topology import build_torus
from repro.traffic import make_pattern
from repro.traffic.arrivals import (AdversarialArrivals, ConstantArrivals,
                                    OnOffArrivals, ParetoOnOffArrivals,
                                    PoissonArrivals, PoissonBurstArrivals)
from repro.traffic.base import TrafficProcess, per_host_interval_ps
from repro.traffic.bitreversal import BitReversalTraffic, reverse_bits
from repro.traffic.collective import (AllReduceTraffic, AllToAllTraffic,
                                      IncastTraffic)
from repro.traffic.hotspot import HotspotTraffic
from repro.traffic.local import LocalTraffic
from repro.traffic.permutation import ComplementTraffic, TransposeTraffic
from repro.traffic.registry import (REQUIRED, available_arrivals,
                                    available_patterns, get_pattern_spec,
                                    make_workload, parse_workload,
                                    supported_patterns, validate_workload,
                                    workload_label)
from repro.traffic.trace import TraceReplay, parse_trace_csv
from repro.traffic.uniform import UniformTraffic
from repro.units import PS_PER_NS


@pytest.fixture(scope="module")
def g():
    return build_torus(rows=4, cols=4, hosts_per_switch=2)  # 32 hosts


class TestUniform:
    def test_never_self(self, g):
        pat = UniformTraffic(g)
        rng = random.Random(1)
        for _ in range(500):
            assert pat.destination(7, rng) != 7

    def test_all_destinations_reachable(self, g):
        pat = UniformTraffic(g)
        rng = random.Random(2)
        seen = {pat.destination(0, rng) for _ in range(5000)}
        assert seen == set(range(1, g.num_hosts))

    def test_roughly_uniform(self, g):
        pat = UniformTraffic(g)
        rng = random.Random(3)
        counts = Counter(pat.destination(5, rng) for _ in range(31_000))
        assert min(counts.values()) > 600  # E = 1000 per destination
        assert max(counts.values()) < 1400


class TestBitReversal:
    def test_reverse_bits(self):
        assert reverse_bits(0b00001, 5) == 0b10000
        assert reverse_bits(0b10110, 5) == 0b01101
        assert reverse_bits(0, 5) == 0
        with pytest.raises(ValueError):
            reverse_bits(32, 5)

    def test_fixed_permutation(self, g):
        pat = BitReversalTraffic(g)  # 32 hosts -> 5 bits
        rng = random.Random(1)
        assert pat.destination(1, rng) == 16
        assert pat.destination(16, rng) == 1

    def test_palindromes_inactive(self, g):
        pat = BitReversalTraffic(g)
        rng = random.Random(1)
        assert pat.destination(0, rng) is None       # 00000
        assert pat.destination(0b10001, rng) is None
        assert 0 not in pat.active_hosts()

    def test_active_host_count(self, g):
        # 5-bit palindromes: 2^3 = 8 of 32
        pat = BitReversalTraffic(g)
        assert len(pat.active_hosts()) == 32 - 8

    def test_non_power_of_two_rejected(self):
        g3 = build_torus(rows=1, cols=3, hosts_per_switch=1)
        with pytest.raises(ValueError):
            BitReversalTraffic(g3)

    def test_involution(self, g):
        pat = BitReversalTraffic(g)
        rng = random.Random(1)
        for h in pat.active_hosts():
            d = pat.destination(h, rng)
            assert pat.destination(d, rng) == h


class TestHotspot:
    def test_hotspot_share(self, g):
        pat = HotspotTraffic(g, hotspot=9, fraction=0.2)
        rng = random.Random(4)
        n = 20_000
        hits = sum(pat.destination(3, rng) == 9 for _ in range(n))
        # ~20% explicit hotspot picks plus ~1/31 uniform residue
        assert 0.18 < hits / n < 0.28

    def test_realized_fraction_matches_nominal(self, g):
        """The directed hot share of *all* traffic must equal the
        nominal fraction: the per-source probability is compensated by
        H/(H-1) because the hotspot host itself never directs traffic
        at the hotspot.  Sources generate at equal rates, so sampling
        cycles through every source."""
        frac = 0.2
        pat = HotspotTraffic(g, hotspot=9, fraction=frac)
        h = g.num_hosts
        assert pat.directed_fraction == pytest.approx(frac * h / (h - 1))
        rng = random.Random(11)
        n = 50_000
        hits = sum(pat.destination(i % h, rng) == 9 for i in range(n))
        expected = pat.realized_hot_fraction()
        # total-on-hotspot share: nominal directed fraction plus the
        # uniform spill; 4-sigma band on the binomial sample
        sigma = (expected * (1 - expected) / n) ** 0.5
        assert abs(hits / n - expected) < 4 * sigma
        # the realized share can no longer drift below nominal
        assert expected >= frac

    def test_unrealizable_fraction_rejected(self, g):
        # fraction so high that the compensated per-source probability
        # would exceed 1
        h = g.num_hosts
        with pytest.raises(ValueError, match="realizable"):
            HotspotTraffic(g, hotspot=0, fraction=(h - 1) / h + 0.001)

    def test_hotspot_host_sends_uniform(self, g):
        pat = HotspotTraffic(g, hotspot=9, fraction=0.5)
        rng = random.Random(5)
        for _ in range(200):
            assert pat.destination(9, rng) != 9

    def test_never_self(self, g):
        pat = HotspotTraffic(g, hotspot=9, fraction=0.3)
        rng = random.Random(6)
        for src in (0, 9, 31):
            for _ in range(200):
                assert pat.destination(src, rng) != src

    def test_param_validation(self, g):
        with pytest.raises(ValueError):
            HotspotTraffic(g, hotspot=99)
        with pytest.raises(ValueError):
            HotspotTraffic(g, hotspot=0, fraction=0.0)
        with pytest.raises(ValueError):
            HotspotTraffic(g, hotspot=0, fraction=1.0)


class TestLocal:
    def test_destinations_within_radius(self, g):
        pat = LocalTraffic(g, radius=2)
        rng = random.Random(7)
        for src in (0, 13, 31):
            src_sw = g.host_switch(src)
            dist = g.shortest_distances(src_sw)
            for _ in range(300):
                d = pat.destination(src, rng)
                assert d != src
                assert dist[g.host_switch(d)] <= 2

    def test_radius_zero_same_switch_only(self, g):
        pat = LocalTraffic(g, radius=0)
        rng = random.Random(8)
        for src in range(g.num_hosts):
            d = pat.destination(src, rng)
            assert g.host_switch(d) == g.host_switch(src)
            assert d != src

    def test_radius_covers_everything(self, g):
        pat = LocalTraffic(g, radius=99)
        rng = random.Random(9)
        seen = {pat.destination(0, rng) for _ in range(3000)}
        assert len(seen) == g.num_hosts - 1

    def test_negative_radius_rejected(self, g):
        with pytest.raises(ValueError):
            LocalTraffic(g, radius=-1)

    def test_radius_zero_single_host_per_switch_rejected(self):
        g1 = build_torus(rows=2, cols=2, hosts_per_switch=1)
        with pytest.raises(ValueError):
            LocalTraffic(g1, radius=0)


class TestPermutations:
    def test_complement(self, g):
        pat = ComplementTraffic(g)
        rng = random.Random(1)
        assert pat.destination(0, rng) == 31
        assert pat.destination(31, rng) == 0

    def test_transpose_involution(self):
        g16 = build_torus(rows=4, cols=4, hosts_per_switch=1)  # 16 hosts
        pat = TransposeTraffic(g16)
        rng = random.Random(1)
        for h in pat.active_hosts():
            assert pat.destination(pat.destination(h, rng), rng) == h

    def test_transpose_needs_even_width(self, g):
        with pytest.raises(ValueError):
            TransposeTraffic(g)  # 32 hosts -> 5 bits, odd


class TestMakePattern:
    def test_registry(self, g):
        assert make_pattern("uniform", g).name == "uniform"
        assert make_pattern("hotspot", g, hotspot=3).hotspot == 3
        with pytest.raises(ValueError):
            make_pattern("zipf", g)


class TestInterval:
    def test_paper_unit_round_trip(self, g):
        """rate * switches == hosts * msg / interval (flits/ns)."""
        rate = 0.02
        interval = per_host_interval_ps(rate, 512, g)
        implied = 512 * g.num_hosts * PS_PER_NS / (interval * g.num_switches)
        assert implied == pytest.approx(rate, rel=1e-6)

    def test_bad_rate(self, g):
        with pytest.raises(ValueError):
            per_host_interval_ps(0, 512, g)


class TestTrafficProcess:
    def make(self, g, seed=1, interval=200_000, max_messages=0):
        sim = Simulator()
        tables = compute_tables(g, "updown")
        net = WormholeNetwork(sim, g, tables, SinglePathPolicy(),
                              PAPER_PARAMS, message_bytes=64)
        pat = UniformTraffic(g)
        proc = TrafficProcess(sim, net, pat, interval, seed,
                              max_messages=max_messages)
        return sim, net, proc

    def test_constant_rate(self, g):
        sim, net, proc = self.make(g, interval=250_000)
        proc.start()
        horizon = 10_000_000
        sim.run_until(horizon)
        expected = g.num_hosts * horizon / 250_000
        assert abs(net.generated - expected) / expected < 0.05

    def test_deterministic_per_seed(self, g):
        results = []
        for _ in range(2):
            sim, net, proc = self.make(g, seed=42)
            proc.start()
            sim.run_until(3_000_000)
            results.append(net.generated)
        assert results[0] == results[1]

    def test_max_messages_cap(self, g):
        sim, net, proc = self.make(g, max_messages=10)
        proc.start()
        sim.run_until(50_000_000)
        assert proc.generated == 10

    def test_double_start_rejected(self, g):
        _, _, proc = self.make(g)
        proc.start()
        with pytest.raises(RuntimeError):
            proc.start()

    def test_bad_interval(self, g):
        sim, net, _ = self.make(g)
        with pytest.raises(ValueError):
            TrafficProcess(sim, net, UniformTraffic(g), 0, 1)

    def test_non_process_arrivals_rejected(self, g):
        sim, net, _ = self.make(g)
        with pytest.raises(TypeError):
            TrafficProcess(sim, net, UniformTraffic(g), "constant", 1)


# -- registry-wide property suite --------------------------------------------


class RecordingNetwork:
    """Minimal NetworkModel stand-in: records (time, src, dst) sends."""

    def __init__(self, sim):
        self.sim = sim
        self.sent = []

    def send(self, src, dst):
        self.sent.append((self.sim.now, src, dst))


@pytest.fixture
def trace_csv(tmp_path):
    path = tmp_path / "trace.csv"
    path.write_text("time_ns,src,dst\n"
                    "0,0,1\n"
                    "100,1,2\n"
                    "250,0,3\n"
                    "400,2,0\n")
    return str(path)


def _required_kwargs(name, trace_csv):
    """Minimal kwargs satisfying a pattern's REQUIRED declarations."""
    kwargs = {}
    for k in get_pattern_spec(name).kwargs:
        if k.default is REQUIRED:
            assert k.name == "path", (
                f"update the test fixture: pattern {name} requires "
                f"unknown kwarg {k.name}")
            kwargs[k.name] = trace_csv
    return kwargs


def _drive(g, traffic, traffic_kwargs, arrival, seed=5,
           interval=300_000, horizon=20_000_000):
    """Run one workload on the recording network; return the sends."""
    sim = Simulator()
    net = RecordingNetwork(sim)
    pattern, arrivals = make_workload(g, traffic, traffic_kwargs,
                                      arrival, {}, interval)
    proc = TrafficProcess(sim, net, pattern, arrivals, seed)
    proc.start()
    sim.run_until(horizon)
    return net.sent


class TestEveryWorkload:
    """Every registered pattern x every arrival process."""

    @pytest.mark.parametrize("traffic", available_patterns())
    @pytest.mark.parametrize("arrival", available_arrivals())
    def test_destinations_in_range_never_self(self, g, traffic, arrival,
                                              trace_csv):
        if get_pattern_spec(traffic).provides_arrivals \
                and arrival != "constant":
            with pytest.raises(ValueError):
                validate_workload(traffic,
                                  _required_kwargs(traffic, trace_csv),
                                  arrival, {})
            return
        if not get_pattern_spec(traffic).supports(g):
            return
        sent = _drive(g, traffic, _required_kwargs(traffic, trace_csv),
                      arrival)
        assert sent, f"{traffic}+{arrival} generated nothing"
        for _, src, dst in sent:
            assert 0 <= dst < g.num_hosts
            assert dst != src

    @pytest.mark.parametrize("traffic", available_patterns())
    def test_deterministic_under_fixed_seed(self, g, traffic, trace_csv):
        if not get_pattern_spec(traffic).supports(g):
            return
        kwargs = _required_kwargs(traffic, trace_csv)
        a = _drive(g, traffic, kwargs, "constant", seed=9)
        b = _drive(g, traffic, kwargs, "constant", seed=9)
        assert a == b


class TestRngSeparation:
    """The PR's regression pin: arrival timing draws must never perturb
    destination draws, so per-host destination sequences are identical
    across injection rates and across arrival processes."""

    def _sequences(self, g, arrival, interval):
        seqs = defaultdict(list)
        for _, src, dst in _drive(g, "uniform", {}, arrival,
                                  seed=3, interval=interval):
            seqs[src].append(dst)
        return seqs

    def test_rate_invariant_destinations(self, g):
        slow = self._sequences(g, "constant", interval=600_000)
        fast = self._sequences(g, "constant", interval=150_000)
        for host in slow:
            n = min(len(slow[host]), len(fast[host]))
            assert n > 0
            assert slow[host][:n] == fast[host][:n]

    def test_arrival_process_invariant_destinations(self, g):
        baseline = self._sequences(g, "constant", interval=300_000)
        for arrival in available_arrivals():
            other = self._sequences(g, arrival, interval=300_000)
            for host in baseline:
                n = min(len(baseline[host]), len(other.get(host, [])))
                assert baseline[host][:n] == other[host][:n], arrival


class TestArrivalProcesses:
    """Mean-rate preservation and shape pins for every process."""

    INTERVAL = 10_000

    def _mean_gap(self, proc, n=100_000):
        rng = random.Random(42)
        now = 0
        for _ in range(n):
            now = proc.next_fire_ps(0, now, rng)
        return now / n

    @pytest.mark.parametrize("factory", [
        lambda i: ConstantArrivals(i),
        lambda i: PoissonArrivals(i),
        lambda i: OnOffArrivals(i, duty=0.25, burst=8),
        lambda i: ParetoOnOffArrivals(i, duty=0.25, burst=8, alpha=1.5),
        lambda i: PoissonBurstArrivals(i, burst=8, spacing_ps=100),
        lambda i: AdversarialArrivals(i, burst=16, spacing_ps=100),
    ], ids=["constant", "poisson", "onoff", "pareto-onoff", "burst",
            "adversarial"])
    def test_mean_rate_preserved(self, factory):
        mean = self._mean_gap(factory(self.INTERVAL))
        assert mean == pytest.approx(self.INTERVAL, rel=0.03)

    def test_onoff_duty_cycle_pin(self):
        """Within-train gaps run at the peak interval (duty * mean) and
        make up ~ (burst-1)/burst of all gaps."""
        duty, burst = 0.25, 8
        proc = OnOffArrivals(self.INTERVAL, duty=duty, burst=burst)
        assert proc.peak_interval_ps == round(self.INTERVAL * duty)
        rng = random.Random(7)
        now, gaps = 0, []
        for _ in range(50_000):
            t = proc.next_fire_ps(0, now, rng)
            gaps.append(t - now)
            now = t
        peak = sum(1 for gap in gaps if gap == proc.peak_interval_ps)
        assert peak / len(gaps) == pytest.approx((burst - 1) / burst,
                                                 abs=0.02)

    def test_pareto_onoff_tail_is_heavy(self):
        """The OFF gaps are power-law: silences beyond 20x the mean OFF
        gap occur at a rate an exponential tail cannot produce.

        With mean-8 trains at duty 0.25 the mean OFF gap is ~57 500 ps;
        an exponential silence exceeds 20x that with probability e^-20
        (never, in 50k draws), while Pareto(alpha=1.5) does so with
        probability ~(3/40)^1.5 / ... -- comfortably often.  This is
        the property that makes the aggregate self-similar.
        """
        duty, burst, alpha = 0.25, 8, 1.5
        proc = ParetoOnOffArrivals(self.INTERVAL, duty=duty, burst=burst,
                                   alpha=alpha)
        peak = proc.peak_interval_ps
        mean_off = burst * self.INTERVAL - (burst - 1) * peak
        rng = random.Random(3)
        now, off_gaps = 0, []
        for _ in range(50_000):
            t = proc.next_fire_ps(0, now, rng)
            if t - now != peak:
                off_gaps.append(t - now)
            now = t
        huge = sum(1 for gap in off_gaps if gap > 20 * mean_off)
        assert huge >= 10          # exponential: P ~ e^-20 per draw
        # and the same aggregate rate discipline as plain onoff: within-
        # train gaps still run at the peak interval
        assert (len(off_gaps) / 50_000
                == pytest.approx(1 / burst, abs=0.02))

    def test_pareto_onoff_registered(self):
        assert "pareto-onoff" in available_arrivals()

    def test_adversarial_rb_envelope(self):
        """Injections in any window [s, t] stay under r(t-s) + b."""
        burst, spacing = 16, 100
        proc = AdversarialArrivals(self.INTERVAL, burst=burst,
                                   spacing_ps=spacing)
        rng = random.Random(1)
        now, times = 0, []
        for _ in range(10 * burst):
            now = proc.next_fire_ps(0, now, rng)
            times.append(now)
        r = 1.0 / self.INTERVAL
        for i, s in enumerate(times):
            for j in range(i, len(times)):
                window = times[j] - s
                count = j - i + 1
                assert count <= r * window + burst + 1e-9

    def test_adversarial_infeasible_volley_rejected(self):
        with pytest.raises(ValueError):
            AdversarialArrivals(100, burst=16, spacing_ps=200)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            OnOffArrivals(self.INTERVAL, duty=0.0)
        with pytest.raises(ValueError, match="alpha"):
            ParetoOnOffArrivals(self.INTERVAL, alpha=1.0)
        with pytest.raises(ValueError, match="alpha"):
            ParetoOnOffArrivals(self.INTERVAL, alpha=2.5)
        with pytest.raises(ValueError):
            OnOffArrivals(self.INTERVAL, burst=0)
        with pytest.raises(ValueError):
            PoissonBurstArrivals(self.INTERVAL, spacing_ps=0)
        with pytest.raises(ValueError):
            ConstantArrivals(0)


class TestCollectives:
    def test_all_to_all_cycles_every_peer(self, g):
        pat = AllToAllTraffic(g)
        rng = random.Random(1)
        n = g.num_hosts
        dests = [pat.destination(4, rng) for _ in range(n - 1)]
        assert sorted(dests) == sorted(h for h in range(n) if h != 4)
        # the cycle repeats deterministically
        assert [pat.destination(4, rng) for _ in range(n - 1)] == dests

    def test_allreduce_ring_successor(self, g):
        pat = AllReduceTraffic(g, mode="ring")
        rng = random.Random(1)
        for h in range(g.num_hosts):
            assert pat.destination(h, rng) == (h + 1) % g.num_hosts

    def test_allreduce_tree_talks_to_tree_neighbours(self, g):
        pat = AllReduceTraffic(g, mode="tree")
        rng = random.Random(1)
        n = g.num_hosts
        for h in range(n):
            neighbours = {p for p in ((h - 1) // 2,) if h > 0}
            neighbours |= {c for c in (2 * h + 1, 2 * h + 2) if c < n}
            for _ in range(4):
                assert pat.destination(h, rng) in neighbours

    def test_allreduce_bad_mode(self, g):
        with pytest.raises(ValueError):
            AllReduceTraffic(g, mode="butterfly")

    def test_incast_all_roads_lead_to_target(self, g):
        pat = IncastTraffic(g, target=5)
        rng = random.Random(1)
        for h in pat.active_hosts():
            assert pat.destination(h, rng) == 5
        assert 5 not in pat.active_hosts()

    def test_incast_bad_target(self, g):
        with pytest.raises(ValueError):
            IncastTraffic(g, target=g.num_hosts)


class TestTraceReplay:
    def test_parse_and_fidelity(self, g, trace_csv):
        sent = _drive(g, "trace", {"path": trace_csv}, "constant")
        # replayed exactly: time_ns * 1000 ps, same (src, dst) pairs
        assert sorted(sent) == [(0, 0, 1), (100_000, 1, 2),
                                (250_000, 0, 3), (400_000, 2, 0)]

    def test_time_scale(self, g, trace_csv):
        pat = TraceReplay(g, trace_csv, time_scale=2.0)
        assert pat.total_messages == 4
        sim = Simulator()
        net = RecordingNetwork(sim)
        proc = TrafficProcess(sim, net, pat, pat, seed=1)
        proc.start()
        sim.run_until(10_000_000)
        assert sorted(net.sent) == [(0, 0, 1), (200_000, 1, 2),
                                    (500_000, 0, 3), (800_000, 2, 0)]

    def test_headerless_and_errors(self, g, tmp_path):
        p = tmp_path / "t.csv"
        p.write_text("0,0,1\n5,1,0\n")
        assert len(parse_trace_csv(str(p))) == 2
        p.write_text("")
        with pytest.raises(ValueError):
            parse_trace_csv(str(p))
        p.write_text("-5,0,1\n")
        with pytest.raises(ValueError):
            parse_trace_csv(str(p))
        p.write_text("0,0,999\n")
        with pytest.raises(ValueError):
            TraceReplay(g, str(p))

    def test_rejects_composed_arrivals(self, g, trace_csv):
        with pytest.raises(ValueError, match="own message timing"):
            validate_workload("trace", {"path": trace_csv}, "poisson", {})


class TestRegistryGating:
    def test_supports_counterexamples(self):
        g3 = build_torus(rows=1, cols=3, hosts_per_switch=1)  # 3 hosts
        names = supported_patterns(g3)
        assert "uniform" in names
        assert "bit-reversal" not in names
        assert "complement" not in names
        with pytest.raises(ValueError, match="power-of-two"):
            make_pattern("bit-reversal", g3)

    def test_transpose_needs_power_of_four(self, g):
        # 32 hosts: power of two but not of four
        assert not get_pattern_spec("transpose").supports(g)
        g16 = build_torus(rows=4, cols=4, hosts_per_switch=1)
        assert get_pattern_spec("transpose").supports(g16)

    def test_unknown_names(self, g):
        with pytest.raises(ValueError, match="unknown traffic pattern"):
            validate_workload("zipf", {})
        with pytest.raises(ValueError, match="unknown arrival"):
            validate_workload("uniform", {}, "weibull", {})

    def test_kwarg_declarations_enforced(self):
        with pytest.raises(ValueError, match="unknown kwargs"):
            validate_workload("uniform", {"alpha": 1.0})
        with pytest.raises(ValueError, match="wants int"):
            validate_workload("hotspot", {"hotspot": True})
        with pytest.raises(ValueError, match="wants float"):
            validate_workload("hotspot", {"fraction": "hot"})
        with pytest.raises(ValueError, match="requires kwarg"):
            validate_workload("trace", {})
        with pytest.raises(ValueError, match="unknown kwargs"):
            validate_workload("uniform", {}, "onoff", {"burstiness": 2})

    def test_parse_workload_specs(self):
        assert parse_workload("uniform") == ("uniform", "constant")
        assert parse_workload("uniform+onoff") == ("uniform", "onoff")
        with pytest.raises(ValueError):
            parse_workload("uniform+weibull")
        with pytest.raises(ValueError):
            parse_workload("zipf+onoff")

    def test_workload_labels(self):
        assert workload_label("uniform", {}) == "uniform"
        assert "+" in workload_label("uniform", {}, "onoff", {})
        assert "10%" in workload_label("hotspot", {"fraction": 0.10})

    def test_new_pattern_needs_zero_config_edits(self, g):
        """The acceptance criterion of the registry refactor: register
        a pattern and it is immediately buildable, validatable and
        labelled everywhere -- no CLI or config edits."""
        from repro.traffic.registry import (Kwarg, PatternSpec,
                                            register_pattern,
                                            unregister_pattern)

        class EchoTraffic(UniformTraffic):
            def __init__(self, graph, alpha=1.0):
                super().__init__(graph)
                self.alpha = alpha

        register_pattern(PatternSpec(
            name="echo-test", description="throwaway",
            build=EchoTraffic,
            kwargs=(Kwarg("alpha", float, 1.0, "skew"),)))
        try:
            assert "echo-test" in available_patterns()
            cfg = SimConfig(traffic="echo-test",
                            traffic_kwargs={"alpha": 1.5})
            cfg.validate()
            assert cfg.workload_label() == "echo-test(alpha=1.5)"
            pat = make_pattern("echo-test", g, alpha=1.5)
            assert pat.alpha == 1.5
            with pytest.raises(ValueError):
                register_pattern(PatternSpec(
                    name="echo-test", description="dup",
                    build=EchoTraffic))
        finally:
            unregister_pattern("echo-test")
        assert "echo-test" not in available_patterns()

    def test_simconfig_round_trip_every_pattern(self, trace_csv):
        """Registry names survive SimConfig validate + dict round trip
        (what the orchestrator's content-addressed store keys on)."""
        for traffic in available_patterns():
            kwargs = _required_kwargs(traffic, trace_csv)
            cfg = SimConfig(traffic=traffic, traffic_kwargs=kwargs)
            cfg.validate()
            assert SimConfig.from_dict(cfg.to_dict()) == cfg
        for arrival in available_arrivals():
            cfg = SimConfig(arrival=arrival)
            cfg.validate()
            assert SimConfig.from_dict(cfg.to_dict()) == cfg

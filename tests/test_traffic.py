"""Traffic patterns and the constant-rate generation process."""

import random
from collections import Counter

import pytest

from repro.config import PAPER_PARAMS
from repro.routing.policies import SinglePathPolicy
from repro.routing.table import compute_tables
from repro.sim.engine import Simulator
from repro.sim.network import WormholeNetwork
from repro.topology import build_torus
from repro.traffic import make_pattern
from repro.traffic.base import TrafficProcess, per_host_interval_ps
from repro.traffic.bitreversal import BitReversalTraffic, reverse_bits
from repro.traffic.hotspot import HotspotTraffic
from repro.traffic.local import LocalTraffic
from repro.traffic.permutation import ComplementTraffic, TransposeTraffic
from repro.traffic.uniform import UniformTraffic
from repro.units import PS_PER_NS


@pytest.fixture(scope="module")
def g():
    return build_torus(rows=4, cols=4, hosts_per_switch=2)  # 32 hosts


class TestUniform:
    def test_never_self(self, g):
        pat = UniformTraffic(g)
        rng = random.Random(1)
        for _ in range(500):
            assert pat.destination(7, rng) != 7

    def test_all_destinations_reachable(self, g):
        pat = UniformTraffic(g)
        rng = random.Random(2)
        seen = {pat.destination(0, rng) for _ in range(5000)}
        assert seen == set(range(1, g.num_hosts))

    def test_roughly_uniform(self, g):
        pat = UniformTraffic(g)
        rng = random.Random(3)
        counts = Counter(pat.destination(5, rng) for _ in range(31_000))
        assert min(counts.values()) > 600  # E = 1000 per destination
        assert max(counts.values()) < 1400


class TestBitReversal:
    def test_reverse_bits(self):
        assert reverse_bits(0b00001, 5) == 0b10000
        assert reverse_bits(0b10110, 5) == 0b01101
        assert reverse_bits(0, 5) == 0
        with pytest.raises(ValueError):
            reverse_bits(32, 5)

    def test_fixed_permutation(self, g):
        pat = BitReversalTraffic(g)  # 32 hosts -> 5 bits
        rng = random.Random(1)
        assert pat.destination(1, rng) == 16
        assert pat.destination(16, rng) == 1

    def test_palindromes_inactive(self, g):
        pat = BitReversalTraffic(g)
        rng = random.Random(1)
        assert pat.destination(0, rng) is None       # 00000
        assert pat.destination(0b10001, rng) is None
        assert 0 not in pat.active_hosts()

    def test_active_host_count(self, g):
        # 5-bit palindromes: 2^3 = 8 of 32
        pat = BitReversalTraffic(g)
        assert len(pat.active_hosts()) == 32 - 8

    def test_non_power_of_two_rejected(self):
        g3 = build_torus(rows=1, cols=3, hosts_per_switch=1)
        with pytest.raises(ValueError):
            BitReversalTraffic(g3)

    def test_involution(self, g):
        pat = BitReversalTraffic(g)
        rng = random.Random(1)
        for h in pat.active_hosts():
            d = pat.destination(h, rng)
            assert pat.destination(d, rng) == h


class TestHotspot:
    def test_hotspot_share(self, g):
        pat = HotspotTraffic(g, hotspot=9, fraction=0.2)
        rng = random.Random(4)
        n = 20_000
        hits = sum(pat.destination(3, rng) == 9 for _ in range(n))
        # ~20% explicit hotspot picks plus ~1/31 uniform residue
        assert 0.18 < hits / n < 0.28

    def test_realized_fraction_matches_nominal(self, g):
        """The directed hot share of *all* traffic must equal the
        nominal fraction: the per-source probability is compensated by
        H/(H-1) because the hotspot host itself never directs traffic
        at the hotspot.  Sources generate at equal rates, so sampling
        cycles through every source."""
        frac = 0.2
        pat = HotspotTraffic(g, hotspot=9, fraction=frac)
        h = g.num_hosts
        assert pat.directed_fraction == pytest.approx(frac * h / (h - 1))
        rng = random.Random(11)
        n = 50_000
        hits = sum(pat.destination(i % h, rng) == 9 for i in range(n))
        expected = pat.realized_hot_fraction()
        # total-on-hotspot share: nominal directed fraction plus the
        # uniform spill; 4-sigma band on the binomial sample
        sigma = (expected * (1 - expected) / n) ** 0.5
        assert abs(hits / n - expected) < 4 * sigma
        # the realized share can no longer drift below nominal
        assert expected >= frac

    def test_unrealizable_fraction_rejected(self, g):
        # fraction so high that the compensated per-source probability
        # would exceed 1
        h = g.num_hosts
        with pytest.raises(ValueError, match="realizable"):
            HotspotTraffic(g, hotspot=0, fraction=(h - 1) / h + 0.001)

    def test_hotspot_host_sends_uniform(self, g):
        pat = HotspotTraffic(g, hotspot=9, fraction=0.5)
        rng = random.Random(5)
        for _ in range(200):
            assert pat.destination(9, rng) != 9

    def test_never_self(self, g):
        pat = HotspotTraffic(g, hotspot=9, fraction=0.3)
        rng = random.Random(6)
        for src in (0, 9, 31):
            for _ in range(200):
                assert pat.destination(src, rng) != src

    def test_param_validation(self, g):
        with pytest.raises(ValueError):
            HotspotTraffic(g, hotspot=99)
        with pytest.raises(ValueError):
            HotspotTraffic(g, hotspot=0, fraction=0.0)
        with pytest.raises(ValueError):
            HotspotTraffic(g, hotspot=0, fraction=1.0)


class TestLocal:
    def test_destinations_within_radius(self, g):
        pat = LocalTraffic(g, radius=2)
        rng = random.Random(7)
        for src in (0, 13, 31):
            src_sw = g.host_switch(src)
            dist = g.shortest_distances(src_sw)
            for _ in range(300):
                d = pat.destination(src, rng)
                assert d != src
                assert dist[g.host_switch(d)] <= 2

    def test_radius_zero_same_switch_only(self, g):
        pat = LocalTraffic(g, radius=0)
        rng = random.Random(8)
        for src in range(g.num_hosts):
            d = pat.destination(src, rng)
            assert g.host_switch(d) == g.host_switch(src)
            assert d != src

    def test_radius_covers_everything(self, g):
        pat = LocalTraffic(g, radius=99)
        rng = random.Random(9)
        seen = {pat.destination(0, rng) for _ in range(3000)}
        assert len(seen) == g.num_hosts - 1

    def test_negative_radius_rejected(self, g):
        with pytest.raises(ValueError):
            LocalTraffic(g, radius=-1)

    def test_radius_zero_single_host_per_switch_rejected(self):
        g1 = build_torus(rows=2, cols=2, hosts_per_switch=1)
        with pytest.raises(ValueError):
            LocalTraffic(g1, radius=0)


class TestPermutations:
    def test_complement(self, g):
        pat = ComplementTraffic(g)
        rng = random.Random(1)
        assert pat.destination(0, rng) == 31
        assert pat.destination(31, rng) == 0

    def test_transpose_involution(self):
        g16 = build_torus(rows=4, cols=4, hosts_per_switch=1)  # 16 hosts
        pat = TransposeTraffic(g16)
        rng = random.Random(1)
        for h in pat.active_hosts():
            assert pat.destination(pat.destination(h, rng), rng) == h

    def test_transpose_needs_even_width(self, g):
        with pytest.raises(ValueError):
            TransposeTraffic(g)  # 32 hosts -> 5 bits, odd


class TestMakePattern:
    def test_registry(self, g):
        assert make_pattern("uniform", g).name == "uniform"
        assert make_pattern("hotspot", g, hotspot=3).hotspot == 3
        with pytest.raises(ValueError):
            make_pattern("zipf", g)


class TestInterval:
    def test_paper_unit_round_trip(self, g):
        """rate * switches == hosts * msg / interval (flits/ns)."""
        rate = 0.02
        interval = per_host_interval_ps(rate, 512, g)
        implied = 512 * g.num_hosts * PS_PER_NS / (interval * g.num_switches)
        assert implied == pytest.approx(rate, rel=1e-6)

    def test_bad_rate(self, g):
        with pytest.raises(ValueError):
            per_host_interval_ps(0, 512, g)


class TestTrafficProcess:
    def make(self, g, seed=1, interval=200_000, max_messages=0):
        sim = Simulator()
        tables = compute_tables(g, "updown")
        net = WormholeNetwork(sim, g, tables, SinglePathPolicy(),
                              PAPER_PARAMS, message_bytes=64)
        pat = UniformTraffic(g)
        proc = TrafficProcess(sim, net, pat, interval, seed,
                              max_messages=max_messages)
        return sim, net, proc

    def test_constant_rate(self, g):
        sim, net, proc = self.make(g, interval=250_000)
        proc.start()
        horizon = 10_000_000
        sim.run_until(horizon)
        expected = g.num_hosts * horizon / 250_000
        assert abs(net.generated - expected) / expected < 0.05

    def test_deterministic_per_seed(self, g):
        results = []
        for _ in range(2):
            sim, net, proc = self.make(g, seed=42)
            proc.start()
            sim.run_until(3_000_000)
            results.append(net.generated)
        assert results[0] == results[1]

    def test_max_messages_cap(self, g):
        sim, net, proc = self.make(g, max_messages=10)
        proc.start()
        sim.run_until(50_000_000)
        assert proc.generated == 10

    def test_double_start_rejected(self, g):
        _, _, proc = self.make(g)
        proc.start()
        with pytest.raises(RuntimeError):
            proc.start()

    def test_bad_interval(self, g):
        sim, net, _ = self.make(g)
        with pytest.raises(ValueError):
            TrafficProcess(sim, net, UniformTraffic(g), 0, 1)

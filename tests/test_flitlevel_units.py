"""Flit-level engine internals: stop&go thresholds and pump pacing.

The cross-engine tests validate behaviour end to end; these unit tests
pin the stop&go protocol itself -- the exact 56/40-byte thresholds and
the control-flit round trip -- against hand-built wire/buffer pairs.
"""

import pytest

from repro.config import PAPER_PARAMS
from repro.routing.policies import SinglePathPolicy
from repro.routing.table import compute_tables
from repro.sim.engine import Simulator
from repro.sim.flitlevel import FlitLevelNetwork, _RxBuffer, _TxPort, _Wire
from repro.topology import build_torus

P = PAPER_PARAMS


class _ScriptedTx(_TxPort):
    """Transmitter that always has flits of one fake packet available."""

    __slots__ = ("flits_left", "pkt")

    def __init__(self, sim, wire, params, pkt, count):
        super().__init__(sim, wire, params)
        self.pkt = pkt
        self.flits_left = count

    def _next_flit(self):
        if self.flits_left <= 0:
            return None
        self.flits_left -= 1
        first = False  # never trigger routing in these tests
        last = self.flits_left == 0
        return (self.pkt, 0, first, last)


class _FakeNet:
    """Just enough of FlitLevelNetwork's surface for an _RxBuffer."""

    def __init__(self, sim):
        self.sim = sim
        self.params = P
        self._dropped_pids = set()

    def _header_at_switch(self, buf, pkt, leg):  # pragma: no cover
        raise AssertionError("no headers expected")

    def _nic_flit_received(self, nic, flit):  # pragma: no cover
        raise AssertionError("no NIC deliveries expected")


def wire_with_buffer():
    sim = Simulator()
    w = _Wire(sim, P.link_prop_ps, "test")
    net = _FakeNet(sim)
    buf = _RxBuffer(net, w, channel_key=0, switch=0)
    return sim, w, buf


class TestStopAndGoThresholds:
    def test_stop_sent_at_threshold(self):
        """With no consumer, the sender is paused after exactly
        stop_threshold flits have been buffered (plus the control and
        data flits already in flight)."""
        sim, w, buf = wire_with_buffer()
        tx = _ScriptedTx(sim, w, P, object(), 200)
        tx.wake()
        sim.run_until_idle()
        assert tx.paused
        # occupancy: stop issued at 56; stop takes one prop to arrive,
        # during which ~prop/flit_cycle more flits were sent, plus the
        # ~8 already in flight -- all well under the 80-byte capacity
        assert P.stop_threshold_bytes <= buf.occupancy
        assert buf.occupancy <= P.slack_buffer_bytes
        assert tx.flits_left > 0  # sender genuinely stopped early

    def test_go_resumes_below_threshold(self):
        sim, w, buf = wire_with_buffer()
        pkt = object()
        tx = _ScriptedTx(sim, w, P, pkt, 200)
        tx.wake()
        sim.run_until_idle()
        assert tx.paused
        remaining_before = tx.flits_left
        # drain the buffer below the go threshold
        while buf.occupancy >= P.go_threshold_bytes:
            assert buf.pop_for(pkt) is not None
        assert buf.stopped is False  # go control flit queued
        sim.run_until_idle()         # go arrives, sender resumes...
        assert tx.flits_left < remaining_before
        # ...until the (still unconsumed) buffer fills and stops it again
        assert tx.paused
        assert buf.occupancy <= P.slack_buffer_bytes

    def test_never_overflows(self):
        """The 80-byte slack absorbs the stop round trip: 56 threshold
        + ~8 flits in flight + ~8 sent during control propagation."""
        sim, w, buf = wire_with_buffer()
        tx = _ScriptedTx(sim, w, P, object(), 500)
        tx.wake()
        sim.run_until_idle()  # _RxBuffer raises on overflow
        assert buf.occupancy <= P.slack_buffer_bytes


class TestPumpPacing:
    def test_one_flit_per_cycle(self):
        sim = Simulator()
        w = _Wire(sim, 0, "paced")
        arrivals = []

        class _Sink:
            nic = -1
            def receive(self, flit):
                arrivals.append(sim.now)
        # bypass _RxBuffer: wire.rx just logs times
        w.rx = _Sink()
        tx = _ScriptedTx(sim, w, P, object(), 10)
        tx.wake()
        sim.run_until_idle()
        assert len(arrivals) == 10
        gaps = {b - a for a, b in zip(arrivals, arrivals[1:])}
        assert gaps == {P.flit_cycle_ps}


class TestFlitNetworkConstruction:
    def test_message_size_validated(self):
        g = build_torus(rows=1, cols=4, hosts_per_switch=2)
        tables = compute_tables(g, "updown")
        with pytest.raises(ValueError):
            FlitLevelNetwork(Simulator(), g, tables, SinglePathPolicy(),
                             P, message_bytes=0)

    def test_send_to_self_rejected(self):
        g = build_torus(rows=1, cols=4, hosts_per_switch=2)
        tables = compute_tables(g, "updown")
        net = FlitLevelNetwork(Simulator(), g, tables, SinglePathPolicy(),
                               P)
        with pytest.raises(ValueError):
            net.send(1, 1)

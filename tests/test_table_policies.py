"""Routing tables (compute_tables) and path-selection policies."""

import pytest

from repro.routing.policies import (RandomPolicy, RoundRobinPolicy,
                                    SinglePathPolicy, make_policy)
from repro.routing.routes import RouteLeg, SourceRoute
from repro.routing.table import compute_tables
from repro.topology import build_torus


@pytest.fixture(scope="module")
def g44():
    return build_torus(rows=4, cols=4, hosts_per_switch=2)


@pytest.fixture(scope="module")
def updown44(g44):
    return compute_tables(g44, "updown")


@pytest.fixture(scope="module")
def itb44(g44):
    return compute_tables(g44, "itb")


class TestComputeTables:
    def test_updown_single_route_per_pair(self, updown44):
        assert updown44.max_alternatives() == 1

    def test_itb_multiple_alternatives(self, itb44):
        assert itb44.max_alternatives() > 1

    def test_validate_passes(self, g44, updown44, itb44):
        updown44.validate(g44)
        itb44.validate(g44)

    def test_unknown_scheme(self, g44):
        with pytest.raises(ValueError):
            compute_tables(g44, "adaptive")

    def test_cap_respected(self, g44):
        t = compute_tables(g44, "itb", max_routes_per_pair=3)
        assert t.max_alternatives() <= 3

    def test_alternatives_lookup(self, itb44):
        alts = itb44.alternatives(0, 5)
        assert alts
        assert all(r.src == 0 and r.dst == 5 for r in alts)

    def test_root_parameter(self, g44):
        t0 = compute_tables(g44, "updown", root=0)
        t9 = compute_tables(g44, "updown", root=9)
        assert t0.orientation.tree.root == 0
        assert t9.orientation.tree.root == 9
        assert t0.routes != t9.routes


def _mk_alts(g, n):
    """Up to 3 distinct routes 0 -> 5 on the 4x4 torus (two minimal,
    one detour) -- distinguishable objects for policy tests."""
    paths = [(0, 1, 5), (0, 4, 5), (0, 3, 7, 6, 5)]
    return tuple(SourceRoute.single_leg(g, p) for p in paths[:n])


class TestPolicies:
    def test_sp_always_first(self, g44):
        alts = _mk_alts(g44, 3)
        p = SinglePathPolicy()
        assert all(p.select(0, 1, alts) is alts[0] for _ in range(10))

    def test_rr_cycles(self, g44):
        alts = _mk_alts(g44, 3)
        p = RoundRobinPolicy(staggered_start=False)
        picks = [p.select(4, 9, alts) for _ in range(6)]
        assert picks == [alts[0], alts[1], alts[2]] * 2

    def test_rr_independent_pairs(self, g44):
        alts = _mk_alts(g44, 3)
        p = RoundRobinPolicy(staggered_start=False)
        p.select(4, 9, alts)
        # a different pair starts its own cycle
        assert p.select(5, 9, alts) is alts[0]

    def test_rr_staggered_start_spreads(self, g44):
        """With many pairs sending one message each, the staggered RR
        must use every alternative (this is what reproduces the paper's
        0.54 ITBs/message for RR)."""
        alts = _mk_alts(g44, 3)
        assert len(alts) == 3
        p = RoundRobinPolicy()
        used = {id(p.select(s, d, alts))
                for s in range(20) for d in range(20) if s != d}
        assert len(used) == 3

    def test_rr_staggered_still_cycles(self, g44):
        alts = _mk_alts(g44, 3)
        p = RoundRobinPolicy()
        seq = [p.select(2, 3, alts) for _ in range(6)]
        idx = [alts.index(r) for r in seq]
        assert idx[3:] == idx[:3]
        assert sorted(idx[:3]) == [0, 1, 2]

    def test_random_deterministic_per_seed(self, g44):
        alts = _mk_alts(g44, 3)
        a = RandomPolicy(seed=3)
        b = RandomPolicy(seed=3)
        sa = [a.select(0, 1, alts) for _ in range(20)]
        sb = [b.select(0, 1, alts) for _ in range(20)]
        assert sa == sb

    def test_random_uses_all(self, g44):
        alts = _mk_alts(g44, 3)
        p = RandomPolicy(seed=1)
        used = {id(p.select(0, 1, alts)) for _ in range(100)}
        assert len(used) == 3

    def test_make_policy(self):
        assert make_policy("sp").name == "sp"
        assert make_policy("rr").name == "rr"
        assert make_policy("random").name == "random"
        with pytest.raises(ValueError):
            make_policy("lru")

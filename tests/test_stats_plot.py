"""Batch-means statistics and the terminal curve plotter."""

import math
import random

import pytest

from repro.config import SimConfig
from repro.experiments.plot import render_curves
from repro.experiments.sweep import SweepResult
from repro.metrics.stats import ConfidenceInterval, batch_means, t_critical_95
from repro.metrics.summary import RunSummary


class TestTCritical:
    def test_known_values(self):
        assert t_critical_95(1) == pytest.approx(12.706)
        assert t_critical_95(9) == pytest.approx(2.262)
        assert t_critical_95(100) == pytest.approx(1.96)

    def test_rejects_zero_df(self):
        with pytest.raises(ValueError):
            t_critical_95(0)


class TestBatchMeans:
    def test_constant_samples_zero_width(self):
        ci = batch_means([5.0] * 100, batches=10)
        assert ci.mean == 5.0
        assert ci.half_width == 0.0
        assert ci.low == ci.high == 5.0

    def test_mean_recovered(self):
        rng = random.Random(4)
        data = [rng.gauss(100, 10) for _ in range(2_000)]
        ci = batch_means(data, batches=20)
        assert abs(ci.mean - 100) < 2
        assert ci.low < 100 < ci.high

    def test_interval_shrinks_with_samples(self):
        rng = random.Random(5)
        small = [rng.gauss(0, 1) for _ in range(200)]
        big = small * 20  # same distribution, 20x the data
        assert batch_means(big, 10).half_width < \
            batch_means(small, 10).half_width

    def test_overlap(self):
        a = ConfidenceInterval(10, 2, 10)
        b = ConfidenceInterval(13, 2, 10)
        c = ConfidenceInterval(20, 2, 10)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_relative_half_width(self):
        ci = ConfidenceInterval(100, 5, 10)
        assert ci.relative_half_width() == 0.05
        assert math.isinf(ConfidenceInterval(0, 5, 10).relative_half_width())

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_means([1.0] * 100, batches=1)
        with pytest.raises(ValueError):
            batch_means([1.0] * 5, batches=10)


def mk_run(rate, accepted, lat, saturated=False):
    return RunSummary(
        config=SimConfig(injection_rate=rate),
        offered_flits_ns_switch=rate, accepted_flits_ns_switch=accepted,
        messages_delivered=500, messages_generated=500,
        avg_latency_ns=lat, avg_network_latency_ns=lat * 0.9,
        max_latency_ns=lat * 3, avg_itbs_per_message=0.0,
        itb_overflow_count=0, itb_peak_bytes=0, link_utilization=None,
        backlog_growth=100 if saturated else 0)


class TestRenderCurves:
    def mk_series(self):
        a = SweepResult("UP/DOWN", [mk_run(0.01, 0.01, 5_000),
                                    mk_run(0.015, 0.015, 8_000),
                                    mk_run(0.02, 0.016, 40_000, True)])
        b = SweepResult("ITB-RR", [mk_run(0.01, 0.01, 5_200),
                                   mk_run(0.02, 0.02, 6_000),
                                   mk_run(0.03, 0.03, 9_000)])
        return [a, b]

    def test_contains_axes_and_legend(self):
        text = render_curves(self.mk_series(), title="demo")
        assert "demo" in text
        assert "o UP/DOWN" in text
        assert "x ITB-RR" in text
        assert "accepted traffic" in text

    def test_glyphs_plotted(self):
        text = render_curves(self.mk_series())
        body = text.split("\n")[2:-2]
        joined = "".join(body)
        assert "o" in joined and "x" in joined

    def test_dimensions(self):
        text = render_curves(self.mk_series(), width=40, height=10)
        rows = [l for l in text.split("\n") if l.startswith("|")]
        assert len(rows) == 10
        assert all(len(r) == 41 for r in rows)

    def test_empty(self):
        assert render_curves([SweepResult("x", [])]) == "(no data)"

    def test_latency_cap_applied(self):
        # the saturated point's huge latency must not squash the plot:
        # with the default cap the stable points span several rows
        text = render_curves(self.mk_series())
        rows = [l for l in text.split("\n") if l.startswith("|")]
        occupied = {i for i, r in enumerate(rows) if r.strip("| ")}
        assert len(occupied) >= 3

"""Engine-parity suite: every registered engine behind the one
:class:`~repro.sim.base.NetworkModel` interface must agree.

The packet-level engine's "tail wave" approximation affects *when*
channels are released, never *what* crosses them, so a fully drained
workload must produce bit-identical message, route and per-link flit
accounting in both engines; windowed runs may differ only by packets
straddling the measurement boundary (at most one wire-length of flits
per boundary packet per link, on top of the documented slack-buffer
timing skew).
"""

from collections import Counter
import random

import pytest

from repro.config import PAPER_PARAMS
from repro.experiments.runner import run_simulation
from repro.routing.policies import make_policy
from repro.routing.routes import RouteLeg, SourceRoute
from repro.routing.table import RoutingTables, compute_tables
from repro.sim import (CAP_DYNAMIC_FAULTS, CAP_INVARIANTS, CAP_ITB_POOL,
                       CAP_LINK_STATS, CAP_RELIABLE_DELIVERY, CAP_TRACE,
                       NetworkModel, PacketTracer, Simulator,
                       UnsupportedCapability, available_engines,
                       engine_capabilities, get_engine, make_network,
                       register, unregister)
from repro.sim.engines import _ENGINES
from repro.topology import build_mutated, build_torus
from repro.topology.validate import check_topology
from repro.units import ns
from tests.conftest import small_config

P = PAPER_PARAMS

ENGINES = ("packet", "flit")


def make_engine(name, graph, tables, seed=3, message_bytes=512):
    sim = Simulator()
    net = make_network(name, sim, graph, tables,
                       make_policy("rr", seed=seed), P,
                       message_bytes=message_bytes)
    return sim, net


def drained_batch(name, graph, tables, pairs):
    """Send ``pairs`` at t=0 through engine ``name`` and drain."""
    sim, net = make_engine(name, graph, tables)
    pkts = [net.send(src, dst) for src, dst in pairs]
    sim.run_until_idle()
    return net, pkts


@pytest.fixture(scope="module")
def torus44_graph():
    return build_torus(rows=4, cols=4, hosts_per_switch=2)


@pytest.fixture(scope="module")
def torus44_itb_tables(torus44_graph):
    return compute_tables(torus44_graph, "itb")


@pytest.fixture(scope="module")
def traffic_pairs(torus44_graph):
    rng = random.Random(42)
    n = torus44_graph.num_hosts
    pairs = []
    while len(pairs) < 30:
        src, dst = rng.randrange(n), rng.randrange(n)
        if src != dst:
            pairs.append((src, dst))
    return pairs


class TestRegistry:
    def test_both_backends_registered(self):
        assert set(ENGINES) <= set(available_engines())

    def test_full_capability_matrix(self):
        for name in ENGINES:
            assert engine_capabilities(name) == frozenset(
                {CAP_LINK_STATS, CAP_ITB_POOL, CAP_TRACE,
                 CAP_DYNAMIC_FAULTS, CAP_RELIABLE_DELIVERY,
                 CAP_INVARIANTS})

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            get_engine("quantum")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register("packet")(get_engine("packet"))

    def test_non_model_registration_rejected(self):
        with pytest.raises(TypeError):
            register("bogus")(dict)

    def test_third_engine_registration_roundtrip(self):
        @register("null")
        class NullNetwork(NetworkModel):
            CAPABILITIES = frozenset()

            def _build(self):
                pass

            def _inject(self, pkt):
                self._finish_delivery(pkt, self.sim.now)

            def _reset_engine_stats(self):
                pass

        try:
            assert "null" in available_engines()
            # config validation picks the new engine up with no changes
            small_config(engine="null").validate()
        finally:
            unregister("null")
        assert "null" not in available_engines()
        with pytest.raises(ValueError):
            small_config(engine="null").validate()
        assert "packet" in _ENGINES  # built-ins untouched


class TestCapabilityGating:
    def _capless(self, torus44_graph, torus44_itb_tables):
        class BareNetwork(NetworkModel):
            name = "bare"
            CAPABILITIES = frozenset()

            def _build(self):
                pass

            def _inject(self, pkt):
                self._finish_delivery(pkt, self.sim.now)

            def _reset_engine_stats(self):
                pass

        return BareNetwork(Simulator(), torus44_graph, torus44_itb_tables,
                           make_policy("sp"), P)

    def test_missing_capabilities_raise(self, torus44_graph,
                                        torus44_itb_tables):
        net = self._capless(torus44_graph, torus44_itb_tables)
        with pytest.raises(UnsupportedCapability, match="link_stats"):
            net.link_flit_counts()
        with pytest.raises(UnsupportedCapability, match="itb_pool"):
            net.itb_stats()
        with pytest.raises(UnsupportedCapability, match="trace"):
            net.tracer = PacketTracer()

    def test_detaching_tracer_always_allowed(self, torus44_graph,
                                             torus44_itb_tables):
        net = self._capless(torus44_graph, torus44_itb_tables)
        net.tracer = None  # no capability needed to clear


class TestDrainedParity:
    """Same workload, fully drained: accounting must be identical."""

    def test_counts_routes_and_link_flits_identical(
            self, torus44_graph, torus44_itb_tables, traffic_pairs):
        results = {}
        for name in ENGINES:
            net, pkts = drained_batch(name, torus44_graph,
                                      torus44_itb_tables, traffic_pairs)
            assert net.generated == len(traffic_pairs)
            assert net.delivered == len(traffic_pairs)
            assert net.in_flight == 0
            results[name] = {
                "itb_hist": Counter(p.num_itbs for p in pkts),
                "links": {(c.src, c.dst, c.link_id): c.flits
                          for c in net.link_flit_counts()},
                "itb": net.itb_stats(),
            }
        pkt, flit = results["packet"], results["flit"]
        assert pkt["itb_hist"] == flit["itb_hist"]
        assert sum(pkt["itb_hist"].values()) == len(traffic_pairs)
        # the tail-wave approximation shifts timing, never flit counts:
        # a drained run agrees link by link, exactly
        assert pkt["links"] == flit["links"]
        assert sum(pkt["links"].values()) > 0
        # both pools processed the same in-transit packets
        assert pkt["itb"].packets == flit["itb"].packets > 0
        assert pkt["itb"].overflow_count == flit["itb"].overflow_count == 0

    def test_itb_pool_occupancy_tracked_in_both(self, torus44_graph,
                                                torus44_itb_tables,
                                                traffic_pairs):
        for name in ENGINES:
            net, pkts = drained_batch(name, torus44_graph,
                                      torus44_itb_tables, traffic_pairs)
            if any(p.num_itbs for p in pkts):
                assert net.itb_stats().peak_bytes > 0

    def test_trace_event_sequences_identical(self, torus44_graph):
        """A forced 2-leg ITB route yields the same per-packet life
        cycle (inject, grants, eject, reinject, ..., deliver) in both
        engines, at the same nodes."""
        tables = compute_tables(torus44_graph, "updown")
        via = torus44_graph.hosts_at(1)[0]
        custom = dict(tables.routes)
        custom[(0, 2)] = (SourceRoute(
            (RouteLeg.from_switch_path(torus44_graph, (0, 1)),
             RouteLeg.from_switch_path(torus44_graph, (1, 2))), (via,)),)
        t = RoutingTables("itb", 0, tables.orientation, custom)
        sequences = {}
        for name in ENGINES:
            sim, net = make_engine(name, torus44_graph, t)
            net.tracer = PacketTracer()
            pkt = net.send(0, 4)  # host on switch 2 -> crosses the ITB
            sim.run_until_idle()
            assert pkt.num_itbs == 1
            sequences[name] = [(e.event, e.node, e.leg)
                               for e in net.tracer.for_packet(pkt.pid)]
        assert sequences["packet"] == sequences["flit"]
        events = [e for e, _, _ in sequences["packet"]]
        assert events[0] == "inject"
        assert "eject" in events and "reinject" in events
        assert events[-1] == "deliver"


class TestWindowedParity:
    """run_simulation through the registry: both engines produce real
    link and ITB statistics from the same config."""

    @pytest.fixture(scope="class")
    def summaries(self):
        out = {}
        for name in ENGINES:
            out[name] = run_simulation(
                small_config(engine=name, injection_rate=0.01,
                             warmup_ps=ns(20_000),
                             measure_ps=ns(100_000)),
                collect_links=True)
        return out

    def test_generation_identical(self, summaries):
        pkt, flit = summaries["packet"], summaries["flit"]
        assert pkt.messages_generated == flit.messages_generated

    def test_delivery_and_itb_load_agree(self, summaries):
        pkt, flit = summaries["packet"], summaries["flit"]
        assert pkt.messages_delivered == pytest.approx(
            flit.messages_delivered, abs=3)
        assert pkt.avg_itbs_per_message == pytest.approx(
            flit.avg_itbs_per_message, abs=0.25)

    def test_flit_itb_stats_are_real(self, summaries):
        """The runner used to hard-code itb_peak = 0 for the flit
        engine; the pool model now runs in both."""
        flit = summaries["flit"]
        if flit.avg_itbs_per_message:
            assert flit.itb_peak_bytes > 0
        assert flit.itb_peak_bytes <= P.itb_pool_bytes
        assert flit.itb_overflow_count == 0

    def test_link_stats_within_boundary_slack(self, summaries):
        """Drained runs agree exactly (TestDrainedParity); over a
        finite window the residual per directed channel is bounded by
        the packets straddling the window edges -- each contributes at
        most one wire length (~517 flits) -- plus the slack-buffer
        timing skew of the tail-wave approximation."""
        pkt = summaries["packet"].link_utilization
        flit = summaries["flit"].link_utilization
        assert pkt is not None and flit is not None
        assert len(pkt.utilization) == len(flit.utilization)
        window_ps = pkt.window_ps
        boundary_flits = 2 * (512 + 16)  # two boundary packets per channel
        atol = boundary_flits * P.flit_cycle_ps / window_ps
        assert abs(pkt.utilization - flit.utilization).max() <= atol
        # aggregate load (total flits moved) agrees much tighter
        assert flit.utilization.sum() == pytest.approx(
            pkt.utilization.sum(), rel=0.10)

    def test_reserved_fraction_collected_for_both(self, summaries):
        for name in ENGINES:
            u = summaries[name].link_utilization
            assert (u.reserved >= 0).all()
            assert u.reserved.max() > 0


class TestArrayEngineParity:
    """The array engine against the packet engine, within its declared
    capability envelope (no ITB-pool stats, no tracing): a drained
    workload must agree on every message and per-channel flit count;
    windowed runs may differ only by the documented contention slack."""

    def test_capability_matrix(self):
        from repro.sim import (CAP_BATCH_DELIVERY, CAP_BATCH_INJECT)
        assert engine_capabilities("array") == frozenset(
            {CAP_LINK_STATS, CAP_BATCH_INJECT, CAP_BATCH_DELIVERY,
             CAP_INVARIANTS})

    def test_drained_counts_and_link_flits_identical(
            self, torus44_graph, torus44_itb_tables, traffic_pairs):
        results = {}
        for name in ("packet", "array"):
            net, pkts = drained_batch(name, torus44_graph,
                                      torus44_itb_tables, traffic_pairs)
            assert net.generated == len(traffic_pairs)
            assert net.delivered == len(traffic_pairs)
            assert net.in_flight == 0
            results[name] = {
                "itb_hist": Counter(p.num_itbs for p in pkts),
                "links": {(c.src, c.dst, c.link_id): c.flits
                          for c in net.link_flit_counts()},
            }
        assert results["packet"] == results["array"]
        assert sum(results["packet"]["links"].values()) > 0

    def test_windowed_run_within_documented_slack(self):
        """Through the registry and runner: generation identical (the
        same pregenerated workload), delivery and ITB load within the
        greedy-reservation slack (DESIGN section 15) -- under light
        load the approximation barely bites."""
        out = {}
        for name in ("packet", "array"):
            out[name] = run_simulation(
                small_config(engine=name, injection_rate=0.01,
                             warmup_ps=ns(20_000),
                             measure_ps=ns(100_000)),
                collect_links=True)
        pkt, arr = out["packet"], out["array"]
        assert pkt.messages_generated == arr.messages_generated
        assert pkt.messages_delivered == pytest.approx(
            arr.messages_delivered, abs=3)
        assert pkt.avg_itbs_per_message == pytest.approx(
            arr.avg_itbs_per_message, abs=0.25)
        assert pkt.avg_latency_ns == pytest.approx(
            arr.avg_latency_ns, rel=0.10)
        # aggregate flit load agrees like the flit engine does
        assert arr.link_utilization.utilization.sum() == pytest.approx(
            pkt.link_utilization.utilization.sum(), rel=0.10)


class TestMutatedTopologyParity:
    """Both engines agree on a *broken* fabric too: a torus minus two
    cables (rebuilt routing stack included) drains bit-identically."""

    @pytest.fixture(scope="class")
    def mutated(self):
        g = build_mutated("torus",
                          base_kwargs={"rows": 4, "cols": 4,
                                       "hosts_per_switch": 2},
                          failed_links=[3, 17])
        check_topology(g)  # every mutated graph passes the invariants
        return g, compute_tables(g, "itb")

    def test_array_engine_agrees_on_mutated_fabric(self, mutated,
                                                   traffic_pairs):
        """The 2-failed-link config from the parity matrix, on the
        array engine: identical drained accounting to the packet
        engine over the rebuilt (renumbered) routing stack."""
        g, tables = mutated
        results = {}
        for name in ("packet", "array"):
            net, pkts = drained_batch(name, g, tables, traffic_pairs)
            assert net.delivered == len(traffic_pairs)
            assert net.in_flight == 0
            results[name] = {
                "itb_hist": Counter(p.num_itbs for p in pkts),
                "links": {(c.src, c.dst, c.link_id): c.flits
                          for c in net.link_flit_counts()},
            }
        assert results["packet"] == results["array"]

    def test_drained_accounting_identical(self, mutated, traffic_pairs):
        g, tables = mutated
        results = {}
        for name in ENGINES:
            net, pkts = drained_batch(name, g, tables, traffic_pairs)
            assert net.delivered == len(traffic_pairs)
            assert net.in_flight == 0
            results[name] = {
                "itb_hist": Counter(p.num_itbs for p in pkts),
                "links": {(c.src, c.dst, c.link_id): c.flits
                          for c in net.link_flit_counts()},
            }
        assert results["packet"] == results["flit"]
        # the removed cables (ids 3 and 17 of the *base* torus) exist
        # in neither engine's channel set
        base = build_torus(rows=4, cols=4, hosts_per_switch=2)
        removed = {(base.links[lid].a, base.links[lid].b)
                   for lid in (3, 17)}
        removed |= {(b, a) for a, b in removed}
        for src, dst, _lid in results["packet"]["links"]:
            assert (src, dst) not in removed

    def test_no_route_uses_failed_links(self, mutated):
        g, tables = mutated
        assert g.num_links == 30  # 32-cable torus minus two
        for alts in tables.routes.values():
            for route in alts:
                # link ids are renumbered: every id is in range, and the
                # endpoint pairs never include the removed cables' ends
                assert all(lid < g.num_links for lid in route.link_ids)

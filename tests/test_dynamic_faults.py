"""Dynamic mid-run fault injection (``CAP_DYNAMIC_FAULTS``).

The contract under test, for *both* engines: a link killed at
simulation time drops whatever it strands (counted, never delivered,
never hung), credits back every resource the victim held, and is
blacklisted for all future route selection.  A fault-free fabric must
behave bit-identically to a build without the capability wired in --
that part is covered by the golden-value and parity suites.
"""

from __future__ import annotations

import random

import pytest

from repro.config import PAPER_PARAMS
from repro.experiments.runner import run_simulation
from repro.routing.policies import make_policy
from repro.routing.routes import RouteLeg, SourceRoute
from repro.routing.table import RoutingTables, compute_tables
from repro.sim import (FaultPlan, LinkFault, NetworkModel,
                       ReliableParams, ReliableTransport, Simulator,
                       UnsupportedCapability, make_network)
from repro.topology import build_torus
from repro.units import ns
from tests.conftest import small_config

P = PAPER_PARAMS
ENGINES = ("packet", "flit")


def make_engine(name, graph, tables, seed=3, message_bytes=512):
    sim = Simulator()
    net = make_network(name, sim, graph, tables,
                       make_policy("rr", seed=seed), P,
                       message_bytes=message_bytes)
    return sim, net


def pool_occupancy(net):
    """Total in-transit pool bytes currently held, either engine."""
    pools = net.nics if hasattr(net, "nics") else net._itb_pools
    return sum(p.itb_bytes for p in pools)


@pytest.fixture(scope="module")
def torus44_graph():
    return build_torus(rows=4, cols=4, hosts_per_switch=2)


@pytest.fixture(scope="module")
def torus44_tables(torus44_graph):
    return compute_tables(torus44_graph, "itb")


class TestFaultPlan:
    def test_sorted_by_time(self):
        plan = FaultPlan.at((500, 3), (100, 7))
        assert [f.link_id for f in plan.faults] == [7, 3]

    def test_duplicate_link_rejected(self):
        with pytest.raises(ValueError, match="fails twice"):
            FaultPlan.at((100, 3), (200, 3))

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            LinkFault(-1, 0)
        with pytest.raises(ValueError):
            LinkFault(0, -1)

    def test_dict_roundtrip(self):
        plan = FaultPlan.at((100, 2), (300, 5))
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_unknown_dict_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            FaultPlan.from_dict({"faults": [], "bogus": 1})

    def test_truthiness(self):
        assert not FaultPlan(())
        assert FaultPlan.at((0, 0))


class TestCapabilityGating:
    def test_capless_engine_rejects_plan(self, torus44_graph,
                                         torus44_tables):
        class BareNetwork(NetworkModel):
            name = "bare"
            CAPABILITIES = frozenset()

            def _build(self):
                pass

            def _inject(self, pkt):
                self._finish_delivery(pkt, self.sim.now)

            def _reset_engine_stats(self):
                pass

        net = BareNetwork(Simulator(), torus44_graph, torus44_tables,
                          make_policy("sp"), P)
        with pytest.raises(UnsupportedCapability, match="dynamic_faults"):
            net.install_fault_plan(FaultPlan.at((0, 0)))

    @pytest.mark.parametrize("engine", ENGINES)
    def test_out_of_range_link_rejected(self, engine, torus44_graph,
                                        torus44_tables):
        sim, net = make_engine(engine, torus44_graph, torus44_tables)
        with pytest.raises(ValueError, match="has only"):
            net.install_fault_plan(
                FaultPlan.at((0, torus44_graph.num_links)))


class TestMidRunKill:
    """The acceptance scenario: a link dies under an in-flight packet.

    The kill fires at 400 ns -- after injection has begun but before
    the header of a 4-hop worm can have reached its leg-target NIC
    (>= 4 x 150 ns of routing alone), and long before the 512-byte
    tail has drained.  Both engines must drop the packet, release
    everything it held, and drain to idle without a watchdog trip.
    """

    @pytest.mark.parametrize("engine", ENGINES)
    def test_inflight_packet_dropped_not_hung(self, engine, torus44_graph,
                                              torus44_tables):
        sim, net = make_engine(engine, torus44_graph, torus44_tables)
        src = torus44_graph.hosts_at(0)[0]
        dst = torus44_graph.hosts_at(10)[0]  # 4 switch-hops away
        pkt = net.send(src, dst)
        assert pkt is not None
        victim = pkt.route.link_ids[0]
        net.install_fault_plan(FaultPlan.at((ns(400), victim)))
        # a hang would leave the worm in flight past any plausible
        # drain horizon; the bound turns it into an assertion failure
        sim.run_until_idle(max_time_ps=ns(10_000_000))
        assert net.generated == 1
        assert net.delivered == 0
        assert net.dropped == 1
        assert net.in_flight == 0
        assert not pkt.delivered
        assert pool_occupancy(net) == 0
        # the dead cable is blacklisted: every surviving alternative for
        # any pair avoids it
        pkt2 = net.send(src, dst)
        if pkt2 is not None:
            assert victim not in pkt2.route.link_ids

    @pytest.mark.parametrize("engine", ENGINES)
    def test_waiters_on_dead_link_dropped(self, engine, torus44_graph):
        """Packets queued for (not yet owning) the dead channel drop
        too -- a single-route table forces the collision."""
        tables = compute_tables(torus44_graph, "updown",
                                max_routes_per_pair=1)
        sim, net = make_engine(engine, torus44_graph, tables)
        srcs = torus44_graph.hosts_at(0)
        dst = torus44_graph.hosts_at(10)[0]
        pkts = [net.send(s, dst) for s in srcs]
        assert all(p is not None for p in pkts)
        shared = set(pkts[0].route.link_ids)
        for p in pkts[1:]:
            shared &= set(p.route.link_ids)
        assert shared, "both worms must share a cable for the collision"
        net.install_fault_plan(FaultPlan.at((ns(400), min(shared))))
        sim.run_until_idle(max_time_ps=ns(10_000_000))
        assert net.delivered + net.dropped == net.generated == len(pkts)
        assert net.dropped >= 1
        assert net.in_flight == 0
        assert pool_occupancy(net) == 0


class TestBlacklisting:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_severed_pair_refused_at_source(self, engine, torus44_graph):
        """A pair whose only route crosses the dead link is refused at
        the source and counted as dropped_unroutable."""
        base = compute_tables(torus44_graph, "updown")
        only = base.routes[(0, 2)][0]  # switch-pair key
        custom = dict(base.routes)
        custom[(0, 2)] = (only,)
        tables = RoutingTables("updown", 0, base.orientation, custom)
        sim, net = make_engine(engine, torus44_graph, tables)
        net.install_fault_plan(FaultPlan.at((0, only.link_ids[0])))
        sim.run_until_idle()  # fire the fault
        assert net.send(0, 4) is None
        assert net.generated == 1
        assert net.dropped == 1
        assert net.dropped_unroutable == 1
        assert net.in_flight == 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_survivors_route_around(self, engine, torus44_graph,
                                    torus44_tables):
        sim, net = make_engine(engine, torus44_graph, torus44_tables)
        net.install_fault_plan(FaultPlan.at((0, 0)))
        sim.run_until_idle()
        n = torus44_graph.num_hosts
        # route selection is checked for every pair; only a modest
        # batch is actually drained (an all-pairs burst of 992
        # simultaneous worms overwhelms the flit engine's NICs
        # regardless of faults)
        sent = 0
        for src in range(n):
            for dst in range(n):
                if src == dst:
                    continue
                sel = net._select_route(src, dst)
                if sel is not None:
                    sent += 1
                    assert 0 not in sel[0].link_ids
        assert sent > 0
        for src, dst in [(0, 9), (3, 17), (8, 30), (12, 1), (21, 5)]:
            assert net.send(src, dst) is not None
        sim.run_until_idle(max_time_ps=ns(10_000_000))
        assert net.in_flight == 0
        assert net.delivered == 5


class TestWindowedRuns:
    """run_simulation end to end with a fault plan."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_run_completes_with_drops(self, engine):
        cfg = small_config(engine=engine, injection_rate=0.02,
                           warmup_ps=ns(10_000), measure_ps=ns(60_000))
        plan = FaultPlan.at((ns(20_000), 0), (ns(30_000), 5))
        summary = run_simulation(cfg, fault_plan=plan)
        assert summary.messages_delivered > 0
        assert summary.messages_dropped >= 0
        total = run_simulation(cfg, fault_plan=plan)
        # determinism across repeat invocations
        assert total.to_dict() == summary.to_dict()

    def test_dict_plan_accepted(self):
        cfg = small_config(warmup_ps=ns(5_000), measure_ps=ns(20_000))
        plan = FaultPlan.at((ns(8_000), 3))
        a = run_simulation(cfg, fault_plan=plan)
        b = run_simulation(cfg, fault_plan=plan.to_dict())
        assert a.to_dict() == b.to_dict()

    def test_no_plan_unchanged(self):
        cfg = small_config()
        assert run_simulation(cfg).messages_dropped == 0


class TestMessageConservation:
    """Randomized ledger check: under arbitrary fault plans and send
    schedules, every message the reliable transport accepts is -- at
    drain -- exactly one of acknowledged or permanently lost, every
    delivery is either first-try or retransmit-recovered, and both
    engines agree that nothing leaks."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_every_message_accounted(self, engine, seed, torus44_graph,
                                     torus44_tables):
        rng = random.Random(seed)
        sim, net = make_engine(engine, torus44_graph, torus44_tables,
                               seed=seed)
        transport = ReliableTransport(
            net, ReliableParams(timeout_ps=ns(5_000), max_attempts=6))
        n_hosts = torus44_graph.num_hosts
        n_msgs = 30
        for _ in range(n_msgs):
            src = rng.randrange(n_hosts)
            dst = rng.randrange(n_hosts - 1)
            if dst >= src:
                dst += 1
            sim.at(rng.randrange(ns(30_000)), transport.send, src, dst)
        victims = rng.sample(range(torus44_graph.num_links), 3)
        net.install_fault_plan(FaultPlan.at(
            *[(rng.randrange(ns(1_000), ns(25_000)), link)
              for link in victims]))
        sim.run_until_idle(max_time_ps=ns(500_000_000))
        assert transport.messages == n_msgs
        assert transport.messages == \
            transport.acked + transport.permanent_losses
        assert transport.acked == transport.delivered
        assert transport.recovered <= transport.delivered
        assert transport.recovered <= transport.retransmissions
        assert transport.outstanding == 0
        assert net.in_flight == 0
        assert pool_occupancy(net) == 0

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_engines_agree_on_outcome(self, seed, torus44_graph,
                                      torus44_tables):
        """Both engines must agree on the *outcome* ledger -- what was
        accepted, delivered, acknowledged and lost.  Retry effort
        (retransmissions, duplicates, recovered) legitimately differs:
        the packet engine's tail-wave timing approximation shifts when
        timeouts and drops interleave."""
        outcome = ("messages", "acked", "delivered", "permanent_losses")
        def ledger(engine):
            rng = random.Random(seed)
            sim, net = make_engine(engine, torus44_graph, torus44_tables,
                                   seed=seed)
            transport = ReliableTransport(
                net, ReliableParams(timeout_ps=ns(5_000), max_attempts=6))
            n_hosts = torus44_graph.num_hosts
            for _ in range(20):
                src = rng.randrange(n_hosts)
                dst = rng.randrange(n_hosts - 1)
                if dst >= src:
                    dst += 1
                sim.at(rng.randrange(ns(30_000)), transport.send,
                       src, dst)
            link = rng.randrange(torus44_graph.num_links)
            net.install_fault_plan(FaultPlan.at((ns(10_000), link)))
            sim.run_until_idle(max_time_ps=ns(500_000_000))
            stats = transport.stats()
            return {k: stats[k] for k in outcome}

        assert ledger("packet") == ledger("flit")


class TestItbLegDrop:
    """A worm dropped on a *second* leg releases its ITB reservation."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_pool_credited_back(self, engine, torus44_graph):
        base = compute_tables(torus44_graph, "updown")
        via = torus44_graph.hosts_at(1)[0]
        forced = SourceRoute(
            (RouteLeg.from_switch_path(torus44_graph, (0, 1)),
             RouteLeg.from_switch_path(torus44_graph, (1, 2))), (via,))
        custom = dict(base.routes)
        custom[(0, 2)] = (forced,)  # switch-pair key; host 4 sits on sw 2
        tables = RoutingTables("itb", 0, base.orientation, custom)
        sim, net = make_engine(engine, torus44_graph, tables)
        pkt = net.send(0, 4)
        assert pkt is not None
        # kill the second leg's cable while the worm is still on leg 0
        # (header needs > 150 ns routing + injection DMA to clear it)
        net.install_fault_plan(
            FaultPlan.at((ns(400), forced.legs[1].links[0])))
        sim.run_until_idle(max_time_ps=ns(10_000_000))
        assert net.delivered + net.dropped == 1
        assert net.in_flight == 0
        assert pool_occupancy(net) == 0

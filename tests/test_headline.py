"""The paper's headline result as an integration test.

At an offered load above UP/DOWN's saturation point on the 8x8 torus,
in-transit buffer routing must still deliver the full load -- the core
claim of the paper, checked here end-to-end at paper scale (but with a
short window, so this stays a fast test; the benchmarks measure the
actual factors)."""

import pytest

from repro.config import SimConfig
from repro.experiments.runner import run_simulation
from repro.units import ns

WINDOW = dict(warmup_ps=ns(60_000), measure_ps=ns(250_000))


@pytest.fixture(scope="module")
def results():
    out = {}
    for routing, policy in [("updown", "sp"), ("itb", "sp"), ("itb", "rr")]:
        cfg = SimConfig(topology="torus", routing=routing, policy=policy,
                        traffic="uniform", injection_rate=0.022, **WINDOW)
        out[cfg.label()] = run_simulation(cfg)
    return out


def test_updown_saturates_above_its_knee(results):
    assert results["UP/DOWN"].saturated


def test_itb_sustains_the_same_load(results):
    assert not results["ITB-SP"].saturated
    assert not results["ITB-RR"].saturated
    for label in ("ITB-SP", "ITB-RR"):
        assert results[label].accepted_flits_ns_switch == \
            pytest.approx(0.022, rel=0.08)


def test_itb_latency_far_below_saturated_updown(results):
    for label in ("ITB-SP", "ITB-RR"):
        assert results[label].avg_latency_ns < \
            0.6 * results["UP/DOWN"].avg_latency_ns


def test_itb_actually_used_in_transit_hosts(results):
    # paper: ~0.5 in-transit buffers per message on the torus
    for label in ("ITB-SP", "ITB-RR"):
        assert 0.3 <= results[label].avg_itbs_per_message <= 0.7


def test_itb_pool_never_overflows_at_paper_size(results):
    """90 KB per NIC is ample: the paper relies on 'a very small number
    of buffers ... required in practice'."""
    for label in ("ITB-SP", "ITB-RR"):
        assert results[label].itb_overflow_count == 0
        assert results[label].itb_peak_bytes <= 8 * 1024

"""The simple_routes (UP/DOWN baseline) reimplementation."""

import pytest

from repro.routing.simple_routes import compute_simple_routes
from repro.routing.updown import legal_shortest_distances, orient_links
from repro.topology import build_torus


@pytest.fixture(scope="module")
def g44():
    return build_torus(rows=4, cols=4, hosts_per_switch=1)


@pytest.fixture(scope="module")
def ud44(g44):
    return orient_links(g44, root=0)


@pytest.fixture(scope="module")
def routes44(g44, ud44):
    return compute_simple_routes(g44, ud44)


def test_every_ordered_pair_present(g44, routes44):
    n = g44.num_switches
    assert len(routes44) == n * n
    for s in g44.switches():
        assert routes44[(s, s)] == (s,)


def test_all_routes_legal(g44, ud44, routes44):
    for (src, dst), path in routes44.items():
        assert path[0] == src and path[-1] == dst
        assert ud44.path_is_legal(g44, path)


def test_routes_within_slack_of_shortest_legal(g44, ud44, routes44):
    for src in g44.switches():
        legal = legal_shortest_distances(g44, ud44, src)
        for dst in g44.switches():
            path = routes44[(src, dst)]
            assert len(path) - 1 <= legal[dst] + 1  # default slack = 1


def test_deterministic(g44, ud44):
    a = compute_simple_routes(g44, ud44)
    b = compute_simple_routes(g44, ud44)
    assert a == b


def test_balancing_beats_greedy_shortest(g44, ud44):
    """Weighted selection must spread load better than always taking the
    first shortest legal path (the property simple_routes exists for)."""
    from repro.routing.updown import enumerate_legal_paths

    balanced = compute_simple_routes(g44, ud44)

    def link_loads(paths):
        load = [0] * g44.num_links
        for (s, d), p in paths.items():
            for a, b in zip(p, p[1:]):
                load[g44.link_between(a, b)] += 1
        return load

    naive = {}
    for src in g44.switches():
        legal = legal_shortest_distances(g44, ud44, src)
        for dst in g44.switches():
            if src == dst:
                naive[(src, dst)] = (src,)
            else:
                naive[(src, dst)] = enumerate_legal_paths(
                    g44, ud44, src, dst, legal[dst], max_paths=1)[0]
    assert max(link_loads(balanced)) <= max(link_loads(naive))


def test_root_congestion_structure():
    """On the paper's 8x8 torus, UP/DOWN concentrates routes near the
    spanning-tree root: the most loaded link must touch the root's
    vicinity (levels 0-1 of the tree)."""
    g = build_torus(rows=8, cols=8, hosts_per_switch=1)
    ud = orient_links(g, root=0)
    routes = compute_simple_routes(g, ud)
    load = [0] * g.num_links
    for (s, d), p in routes.items():
        for a, b in zip(p, p[1:]):
            load[g.link_between(a, b)] += 1
    hottest = max(range(g.num_links), key=lambda l: load[l])
    link = g.links[hottest]
    lvl = ud.tree.level
    assert min(lvl[link.a], lvl[link.b]) <= 1


def test_length_slack_zero(g44, ud44):
    routes = compute_simple_routes(g44, ud44, length_slack=0)
    for src in g44.switches():
        legal = legal_shortest_distances(g44, ud44, src)
        for dst in g44.switches():
            assert len(routes[(src, dst)]) - 1 == legal[dst]


def test_negative_slack_rejected(g44, ud44):
    with pytest.raises(ValueError):
        compute_simple_routes(g44, ud44, length_slack=-1)

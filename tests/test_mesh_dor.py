"""Mesh topology and dimension-order routing (extension)."""

import pytest

from repro.config import SimConfig
from repro.experiments.runner import run_simulation
from repro.routing.dor import compute_dor_tables, dor_path
from repro.sim.engine import DeadlockError
from repro.topology import build_mesh, build_torus, check_topology
from repro.topology.torus import switch_coords
from repro.units import ns


@pytest.fixture(scope="module")
def mesh44():
    return build_mesh(rows=4, cols=4, hosts_per_switch=2)


@pytest.fixture(scope="module")
def dor44(mesh44):
    return compute_dor_tables(mesh44, 4, 4, wrap=False)


class TestMesh:
    def test_structure(self, mesh44):
        check_topology(mesh44)
        assert mesh44.num_links == 24  # 2*4*3
        corners = [0, 3, 12, 15]
        assert all(mesh44.degree(c) == 2 for c in corners)
        assert mesh44.degree(5) == 4  # interior

    def test_no_wraparound(self, mesh44):
        assert mesh44.link_between(0, 3) is None
        assert mesh44.link_between(0, 12) is None

    def test_distances_manhattan(self, mesh44):
        for src in mesh44.switches():
            dist = mesh44.shortest_distances(src)
            r0, c0 = switch_coords(src, 4)
            for dst in mesh44.switches():
                r1, c1 = switch_coords(dst, 4)
                assert dist[dst] == abs(r0 - r1) + abs(c0 - c1)


class TestDorPaths:
    def test_path_is_x_then_y(self, mesh44):
        path = dor_path(mesh44, 0, 10, 4, 4, wrap=False)
        # 0=(0,0) -> 10=(2,2): east twice, then south twice
        assert path == (0, 1, 2, 6, 10)

    def test_paths_minimal_on_mesh(self, mesh44):
        for src in mesh44.switches():
            dist = mesh44.shortest_distances(src)
            for dst in mesh44.switches():
                p = dor_path(mesh44, src, dst, 4, 4, wrap=False)
                assert len(p) - 1 == dist[dst]
                assert p[0] == src and p[-1] == dst

    def test_wrap_paths_minimal_on_torus(self):
        g = build_torus(rows=4, cols=4, hosts_per_switch=1)
        for src in g.switches():
            dist = g.shortest_distances(src)
            for dst in g.switches():
                p = dor_path(g, src, dst, 4, 4, wrap=True)
                assert len(p) - 1 == dist[dst]

    def test_tables_cover_all_pairs(self, mesh44, dor44):
        n = mesh44.num_switches
        assert len(dor44.routes) == n * n
        assert dor44.max_alternatives() == 1

    def test_grid_mismatch_rejected(self, mesh44):
        with pytest.raises(ValueError):
            compute_dor_tables(mesh44, 3, 4)


class TestDeadlockBehaviour:
    def test_dor_on_mesh_never_deadlocks(self, mesh44, dor44):
        """The X->Y turn restriction makes mesh DOR deadlock-free even
        under heavy overload."""
        cfg = SimConfig(
            topology="mesh",
            topology_kwargs={"rows": 4, "cols": 4, "hosts_per_switch": 2},
            routing="itb", traffic="uniform", injection_rate=0.4,
            warmup_ps=ns(300_000), measure_ps=ns(1_500_000), seed=2)
        summary = run_simulation(cfg, tables=dor44,
                                 watchdog_ps=ns(100_000))
        assert summary.messages_delivered > 0

    def test_dor_on_torus_deadlocks(self):
        """With wraparound, DOR's ring dependencies deadlock -- the
        reason Myrinet cannot just use dimension-order routing and the
        motivation for deadlock-free schemes like up*/down* + ITB."""
        g_kwargs = {"rows": 1, "cols": 4, "hosts_per_switch": 2}
        from repro.experiments.runner import get_graph
        g = get_graph("torus", g_kwargs)
        tables = compute_dor_tables(g, 1, 4, wrap=True)
        cfg = SimConfig(topology="torus", topology_kwargs=g_kwargs,
                        routing="itb", traffic="uniform",
                        injection_rate=0.5,
                        warmup_ps=ns(500_000), measure_ps=ns(2_000_000),
                        seed=3)
        with pytest.raises(DeadlockError):
            run_simulation(cfg, tables=tables, watchdog_ps=ns(100_000))


class TestMeshComparison:
    def test_dor_competitive_with_updown_on_mesh(self, mesh44, dor44):
        """On a mesh both DOR and up*/down* are minimal-capable; DOR
        should be at least comparable in accepted traffic at moderate
        load (it has no root bottleneck)."""
        base = SimConfig(
            topology="mesh",
            topology_kwargs={"rows": 4, "cols": 4, "hosts_per_switch": 2},
            traffic="uniform", injection_rate=0.05,
            warmup_ps=ns(40_000), measure_ps=ns(200_000))
        dor = run_simulation(base.with_overrides(routing="itb"),
                             tables=dor44)
        ud = run_simulation(base.with_overrides(routing="updown"))
        assert dor.accepted_flits_ns_switch >= \
            0.9 * ud.accepted_flits_ns_switch

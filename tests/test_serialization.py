"""JSON round-trip of the config/result dataclasses.

The orchestrator's result store persists ``SimConfig`` and
``RunSummary`` as JSON; these tests pin the contract that a full
``to_dict -> json -> from_dict`` round trip is *exact* (Python's JSON
float encoding is repr-based), so stored results compare equal to
freshly computed ones.
"""

import json

import numpy as np
import pytest

from repro.canon import canonical_json, digest, freeze
from repro.config import MyrinetParams, SimConfig
from repro.experiments.runner import run_simulation
from repro.metrics.summary import RunSummary
from repro.orchestrator import Executor, Point, ResultStore
from repro.sim import FaultPlan, ReconfigParams, ReliableParams
from repro.units import ns
from tests.conftest import small_config


def _json_round(data):
    return json.loads(json.dumps(data))


class TestCanon:
    def test_freeze_is_order_insensitive(self):
        a = freeze({"b": 2, "a": {"y": [1, 2], "x": 1}})
        b = freeze({"a": {"x": 1, "y": [1, 2]}, "b": 2})
        assert a == b
        assert hash(a) == hash(b)

    def test_freeze_nested_containers_hashable(self):
        frozen = freeze({"grid": {"sizes": [4, 4]}, "tags": {"x", "y"}})
        assert hash(frozen) is not None
        assert {frozen: 1}[frozen] == 1

    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": [2, {"d": 3, "c": 4}]}) == \
            '{"a":[2,{"c":4,"d":3}],"b":1}'

    def test_digest_distinguishes_values(self):
        assert digest({"x": 1}) != digest({"x": 2})
        assert digest({"x": 1, "y": 2}) == digest({"y": 2, "x": 1})


class TestParamsRoundTrip:
    def test_round_trip_defaults(self):
        p = MyrinetParams()
        assert MyrinetParams.from_dict(_json_round(p.to_dict())) == p

    def test_round_trip_overrides(self):
        p = MyrinetParams().with_overrides(itb_pool_bytes=1024,
                                           switch_ports=8)
        assert MyrinetParams.from_dict(_json_round(p.to_dict())) == p

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            MyrinetParams.from_dict({"flit_cycle_ps": 1, "bogus": 2})


class TestConfigRoundTrip:
    def test_round_trip_default(self):
        cfg = SimConfig()
        assert SimConfig.from_dict(_json_round(cfg.to_dict())) == cfg

    def test_round_trip_full(self):
        cfg = SimConfig(
            topology="torus",
            topology_kwargs={"rows": 4, "cols": 4, "hosts_per_switch": 2},
            routing="itb", policy="rr", traffic="hotspot",
            traffic_kwargs={"hotspot": 3, "fraction": 0.1},
            injection_rate=0.0123, message_bytes=64,
            params=MyrinetParams().with_overrides(slack_buffer_bytes=96,
                                                  stop_threshold_bytes=80),
            seed=42, max_messages=100, engine="flit")
        back = SimConfig.from_dict(_json_round(cfg.to_dict()))
        assert back == cfg
        assert back.params == cfg.params

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            SimConfig.from_dict({"topology": "torus", "frobnicate": 1})


class TestSummaryRoundTrip:
    def test_round_trip_exact(self):
        s = run_simulation(small_config())
        back = RunSummary.from_dict(_json_round(s.to_dict()))
        assert back == s  # dataclass equality: every float bit-identical
        assert back.config == s.config
        assert back.saturated == s.saturated

    def test_round_trip_with_link_utilization(self):
        s = run_simulation(small_config(), collect_links=True)
        back = RunSummary.from_dict(_json_round(s.to_dict()))
        u, v = s.link_utilization, back.link_utilization
        assert v is not None
        assert v.window_ps == u.window_ps
        assert v.channel_ends == u.channel_ends
        assert np.array_equal(v.utilization, u.utilization)
        assert np.array_equal(v.reserved, u.reserved)
        assert np.array_equal(v.per_link, u.per_link)
        assert v.summary() == u.summary()

    def test_unknown_field_rejected(self):
        s = run_simulation(small_config())
        data = s.to_dict()
        data["mystery"] = 1
        with pytest.raises(ValueError, match="unknown"):
            RunSummary.from_dict(data)


class TestFaultPlanThroughStore:
    """A fault plan rides in a point's runner kwargs; the orchestrator
    persists the payload as JSON.  The round trip through the result
    store must reproduce the plan exactly, and the plan must key the
    cache (same config, different plan -> different entry)."""

    PLAN = FaultPlan.at((ns(20_000), 3), (ns(30_000), 7))

    def test_plan_dict_round_trip(self):
        back = FaultPlan.from_dict(_json_round(self.PLAN.to_dict()))
        assert back == self.PLAN

    def test_reliability_params_json_round_trip(self):
        rel = ReliableParams(timeout_ps=ns(7_000), backoff=1.5)
        rec = ReconfigParams(detection_latency_ps=ns(2_000))
        assert ReliableParams.from_dict(_json_round(rel.to_dict())) == rel
        assert ReconfigParams.from_dict(_json_round(rec.to_dict())) == rec

    def test_stored_point_reproduces_plan(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        cfg = small_config(measure_ps=ns(40_000))
        point = Point(point_id="p0", config=cfg,
                      runner_kwargs={"fault_plan": self.PLAN.to_dict()})
        executor = Executor(store=store)
        summary = executor.run_points([point])[0]
        assert executor.stats.simulated == 1
        key = store.key("repro.orchestrator.pool:run_point_task",
                        point.payload())
        record = store.get(key)
        assert record is not None
        stored = FaultPlan.from_dict(
            record["payload"]["runner_kwargs"]["fault_plan"])
        assert stored == self.PLAN
        assert RunSummary.from_dict(record["result"]) == summary
        # rerun is a pure cache hit with an identical summary
        again = Executor(store=store).run_points([point])[0]
        assert again == summary

    def test_plan_distinguishes_cache_entries(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        cfg = small_config(measure_ps=ns(40_000))
        fn = "repro.orchestrator.pool:run_point_task"
        with_plan = Point(point_id="a", config=cfg,
                          runner_kwargs={"fault_plan":
                                         self.PLAN.to_dict()})
        without = Point(point_id="b", config=cfg)
        assert store.key(fn, with_plan.payload()) != \
            store.key(fn, without.payload())

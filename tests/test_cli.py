"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.topology == "torus"
        assert args.routing == "itb"
        assert args.rate == 0.01

    def test_bad_topology_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["info", "hypercube"])

    def test_sweep_orchestrator_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.workers == 1
        assert args.cache_dir == ".repro_cache"
        assert args.no_cache is False
        assert args.retries == 1

    def test_experiment_accepts_workers(self):
        args = build_parser().parse_args(
            ["experiment", "fig7a", "--workers", "4", "--no-cache"])
        assert args.workers == 4 and args.no_cache

    def test_fabric_exec_option(self):
        args = build_parser().parse_args(
            ["sweep", "--fabric", "127.0.0.1:9001,127.0.0.1:9002"])
        assert args.fabric == "127.0.0.1:9001,127.0.0.1:9002"
        args = build_parser().parse_args(["sweep"])
        assert args.fabric is None

    def test_fabric_worker_subcommand(self):
        args = build_parser().parse_args(["fabric", "worker"])
        assert args.fabric_cmd == "worker"
        assert args.listen == "127.0.0.1:0"
        assert args.max_sessions is None
        args = build_parser().parse_args(
            ["fabric", "worker", "--listen", "0.0.0.0:9001",
             "--max-sessions", "3"])
        assert args.listen == "0.0.0.0:9001"
        assert args.max_sessions == 3
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fabric", "frobnicate"])

    def test_serve_subcommand(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8651
        args = build_parser().parse_args(
            ["serve", "--port", "9000", "--workers", "2",
             "--fabric", "127.0.0.1:9001"])
        assert args.port == 9000
        assert args.workers == 2
        assert args.fabric == "127.0.0.1:9001"

    def test_cache_subcommand(self):
        args = build_parser().parse_args(["cache", "info"])
        assert args.cache_cmd == "info"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "frobnicate"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7a" in out and "table3" in out
        assert "latency-panel" in out and "hotspot-table" in out

    def test_info_irregular(self, capsys):
        assert main(["info", "irregular"]) == 0
        out = capsys.readouterr().out
        assert "switches" in out
        assert "updown" in out and "itb" in out
        assert "minimal" in out

    def test_run_small(self, capsys):
        rc = main(["run", "--topology", "irregular", "--rate", "0.01",
                   "--warmup-ns", "20000", "--measure-ns", "80000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "offered=0.0100" in out
        assert "delivered" in out

    def test_run_with_links(self, capsys):
        rc = main(["run", "--topology", "irregular", "--rate", "0.01",
                   "--warmup-ns", "20000", "--measure-ns", "80000",
                   "--links"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "link utilisation" in out
        assert "hottest" in out

    def test_run_hotspot_options(self, capsys):
        rc = main(["run", "--topology", "irregular", "--traffic", "hotspot",
                   "--hotspot", "3", "--hotspot-fraction", "0.2",
                   "--rate", "0.01",
                   "--warmup-ns", "20000", "--measure-ns", "80000"])
        assert rc == 0

    def test_run_traffic_and_arrival_args(self, capsys):
        rc = main(["run", "--topology", "irregular", "--traffic", "hotspot",
                   "--traffic-arg", "hotspot=3",
                   "--traffic-arg", "fraction=0.2",
                   "--arrival", "onoff", "--arrival-arg", "duty=0.2",
                   "--rate", "0.01",
                   "--warmup-ns", "20000", "--measure-ns", "80000"])
        assert rc == 0

    def test_run_undeclared_traffic_arg_rejected(self, capsys):
        with pytest.raises(ValueError, match="declares no kwarg"):
            main(["run", "--topology", "irregular",
                  "--traffic-arg", "alpha=2", "--rate", "0.01",
                  "--warmup-ns", "20000", "--measure-ns", "80000"])

    def test_traffic_listing(self, capsys):
        rc = main(["traffic"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "destination patterns" in out
        assert "arrival processes" in out
        assert "incast" in out and "adversarial" in out
        assert "power-of-two host count" in out  # capability surfaced
        assert "duty:float=0.25" in out          # declared kwargs surfaced

    def test_info_lists_supported_patterns(self, capsys):
        rc = main(["info", "irregular"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "traffic patterns:" in out

    def test_sweep(self, capsys):
        rc = main(["sweep", "--topology", "irregular",
                   "--rates", "0.005,0.01",
                   "--warmup-ns", "20000", "--measure-ns", "80000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "throughput (knee)" in out
        assert "0.0050" in out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_smoke(self, capsys):
        assert main(["experiment", "fig7a", "--profile", "test"]) == 0
        out = capsys.readouterr().out
        assert "fig7a" in out
        assert "(paper: 0.015)" in out

    def test_experiment_with_plot(self, capsys):
        assert main(["experiment", "fig7a", "--profile", "test",
                     "--plot"]) == 0
        out = capsys.readouterr().out
        assert "o UP/DOWN" in out
        assert "accepted traffic" in out

    def test_adaptive_policy_accepted(self, capsys):
        rc = main(["run", "--topology", "irregular", "--policy",
                   "adaptive", "--rate", "0.01",
                   "--warmup-ns", "20000", "--measure-ns", "80000"])
        assert rc == 0
        assert "ITB-ADAPTIVE" in capsys.readouterr().out


class TestOrchestratorCommands:
    SWEEP = ["sweep", "--rows", "4", "--cols", "4",
             "--hosts-per-switch", "2", "--rates", "0.005,0.01",
             "--warmup-ns", "20000", "--measure-ns", "60000"]

    def test_sweep_no_cache_sequential(self, capsys):
        assert main(self.SWEEP + ["--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "throughput (knee)" in out
        assert "points:" not in out  # plain path, no orchestrator

    def test_sweep_repeat_served_from_cache(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path / "cache")]
        assert main(self.SWEEP + cache) == 0
        first = capsys.readouterr().out
        assert "2 simulated, 0 from cache" in first

        assert main(self.SWEEP + ["--workers", "2"] + cache) == 0
        second = capsys.readouterr().out
        assert "0 simulated, 2 from cache" in second
        # identical curve, point for point
        strip = lambda s: [ln for ln in s.splitlines()
                           if not ln.startswith("points:")]
        assert strip(first) == strip(second)

    def test_sweep_parallel_workers(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path / "cache")]
        assert main(self.SWEEP + ["--workers", "2"] + cache) == 0
        out = capsys.readouterr().out
        assert "2 simulated" in out

    def test_cache_info_and_clear(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path / "cache")]
        assert main(self.SWEEP + cache) == 0
        capsys.readouterr()
        assert main(["cache", "info"] + cache) == 0
        assert "2 results" in capsys.readouterr().out
        assert main(["cache", "clear"] + cache) == 0
        assert "removed 2" in capsys.readouterr().out
        assert main(["cache", "info"] + cache) == 0
        assert "0 results" in capsys.readouterr().out

    def test_cache_compact(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path / "cache")]
        assert main(self.SWEEP + cache) == 0
        capsys.readouterr()
        assert main(["cache", "compact"] + cache) == 0
        out = capsys.readouterr().out
        assert "2 records indexed" in out
        assert "0 corrupt pruned" in out

    def test_custom_grid_size_flags(self, capsys):
        assert main(["run", "--rows", "4", "--cols", "4",
                     "--hosts-per-switch", "2", "--rate", "0.01",
                     "--warmup-ns", "20000", "--measure-ns",
                     "60000"]) == 0
        assert "delivered" in capsys.readouterr().out

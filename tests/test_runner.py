"""End-to-end runner integration on small networks."""

import pytest

from repro.config import SimConfig
from repro.experiments.runner import (_freeze_kwargs, _GRAPH_CACHE,
                                      _TABLE_CACHE, clear_caches,
                                      get_graph, get_tables,
                                      run_simulation)
from repro.topology import build_torus
from repro.units import ns
from tests.conftest import small_config


class TestRunSimulation:
    def test_basic_run(self):
        s = run_simulation(small_config())
        assert s.messages_delivered > 0
        assert s.avg_latency_ns is not None and s.avg_latency_ns > 0
        assert s.accepted_flits_ns_switch > 0
        assert s.offered_flits_ns_switch == 0.01

    def test_low_load_accepted_tracks_offered(self):
        # long window so enough messages land for a stable rate estimate
        s = run_simulation(small_config(
            injection_rate=0.005, measure_ps=ns(600_000)))
        assert not s.saturated
        assert s.accepted_flits_ns_switch == \
            pytest.approx(0.005, rel=0.12)

    def test_network_latency_below_total(self):
        s = run_simulation(small_config(injection_rate=0.02))
        assert s.avg_network_latency_ns <= s.avg_latency_ns

    def test_deterministic_per_seed(self):
        a = run_simulation(small_config(seed=9))
        b = run_simulation(small_config(seed=9))
        assert a.messages_delivered == b.messages_delivered
        assert a.avg_latency_ns == b.avg_latency_ns
        assert a.accepted_flits_ns_switch == b.accepted_flits_ns_switch

    def test_seed_changes_results(self):
        a = run_simulation(small_config(seed=1))
        b = run_simulation(small_config(seed=2))
        assert a.avg_latency_ns != b.avg_latency_ns

    def test_updown_zero_itbs(self):
        s = run_simulation(small_config(routing="updown", policy="sp"))
        assert s.avg_itbs_per_message == 0.0
        assert s.itb_peak_bytes == 0

    def test_link_stats_collected_on_request(self):
        s = run_simulation(small_config(), collect_links=True)
        assert s.link_utilization is not None
        u = s.link_utilization
        assert len(u.per_link) == 32  # 4x4 torus links
        assert 0 <= u.per_link.max() <= 1.0

    def test_no_link_stats_by_default(self):
        s = run_simulation(small_config())
        assert s.link_utilization is None

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            run_simulation(small_config(injection_rate=-1))

    def test_reserved_at_least_utilization(self):
        s = run_simulation(small_config(injection_rate=0.03),
                           collect_links=True)
        u = s.link_utilization
        assert (u.blocked_fraction() >= -1e-9).all()

    def test_higher_load_higher_latency(self):
        lo = run_simulation(small_config(injection_rate=0.004))
        hi = run_simulation(small_config(injection_rate=0.04))
        assert hi.avg_latency_ns > lo.avg_latency_ns

    def test_saturation_flag_under_overload(self):
        s = run_simulation(small_config(
            injection_rate=1.0,
            warmup_ps=ns(30_000), measure_ps=ns(100_000)))
        assert s.saturated


class TestCaches:
    def test_graph_cache_hits(self):
        clear_caches()
        g1 = get_graph("torus", {"rows": 4, "cols": 4,
                                 "hosts_per_switch": 2})
        g2 = get_graph("torus", {"rows": 4, "cols": 4,
                                 "hosts_per_switch": 2})
        assert g1 is g2

    def test_graph_cache_distinguishes_kwargs(self):
        g1 = get_graph("torus", {"rows": 4, "cols": 4,
                                 "hosts_per_switch": 2})
        g2 = get_graph("torus", {"rows": 4, "cols": 4,
                                 "hosts_per_switch": 1})
        assert g1 is not g2

    def test_table_cache_hits(self):
        key = ("torus", (("cols", 4), ("hosts_per_switch", 2), ("rows", 4)))
        g = get_graph("torus", {"rows": 4, "cols": 4,
                                "hosts_per_switch": 2})
        t1 = get_tables(g, key, "itb")
        t2 = get_tables(g, key, "itb")
        assert t1 is t2
        t3 = get_tables(g, key, "updown")
        assert t3 is not t1

    def test_clear(self):
        g1 = get_graph("cplant", {})
        clear_caches()
        g2 = get_graph("cplant", {})
        assert g1 is not g2

    def test_clear_empties_both_caches(self):
        clear_caches()
        g = get_graph("torus", {"rows": 4, "cols": 4,
                                "hosts_per_switch": 2})
        get_tables(g, ("torus", _freeze_kwargs(
            {"rows": 4, "cols": 4, "hosts_per_switch": 2})), "itb")
        assert _GRAPH_CACHE and _TABLE_CACHE
        clear_caches()
        assert not _GRAPH_CACHE and not _TABLE_CACHE

    def test_freeze_kwargs_nested_values_hashable(self):
        # nested dict/list topology kwargs used to raise
        # "unhashable type: 'dict'" when keying the memo caches
        a = _freeze_kwargs({"grid": {"rows": 4, "cols": [2, 2]}, "k": 1})
        b = _freeze_kwargs({"k": 1, "grid": {"cols": [2, 2], "rows": 4}})
        assert a == b
        assert {a: "cached"}[b] == "cached"

    def test_freeze_kwargs_flat_shape_unchanged(self):
        # flat kwargs keep the historical (key, value) tuple shape that
        # existing cache keys (and tests) are built from
        assert _freeze_kwargs({"rows": 4, "cols": 4}) == \
            (("cols", 4), ("rows", 4))

    def test_graph_kwarg_bypasses_caches(self):
        clear_caches()
        g = build_torus(rows=4, cols=4, hosts_per_switch=2)
        s = run_simulation(small_config(), graph=g)
        assert s.messages_delivered > 0
        # an injected graph has no registry name: neither it nor its
        # derived tables may leak into the memo caches
        assert not _GRAPH_CACHE
        assert not _TABLE_CACHE

    def test_table_cache_distinguishes_root(self):
        key = ("torus", (("cols", 4), ("hosts_per_switch", 2), ("rows", 4)))
        g = get_graph("torus", {"rows": 4, "cols": 4,
                                "hosts_per_switch": 2})
        t0 = get_tables(g, key, "itb", root=0)
        t1 = get_tables(g, key, "itb", root=1)
        assert t0 is not t1
        assert get_tables(g, key, "itb", root=0) is t0

    def test_table_cache_distinguishes_sort_by_itbs(self):
        key = ("torus", (("cols", 4), ("hosts_per_switch", 2), ("rows", 4)))
        g = get_graph("torus", {"rows": 4, "cols": 4,
                                "hosts_per_switch": 2})
        plain = get_tables(g, key, "itb", sort_by_itbs=False)
        sorted_ = get_tables(g, key, "itb", sort_by_itbs=True)
        assert plain is not sorted_
        assert get_tables(g, key, "itb", sort_by_itbs=True) is sorted_

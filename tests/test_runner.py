"""End-to-end runner integration on small networks."""

import pytest

from repro.config import SimConfig
from repro.experiments.runner import (clear_caches, get_graph, get_tables,
                                      run_simulation)
from repro.units import ns
from tests.conftest import small_config


class TestRunSimulation:
    def test_basic_run(self):
        s = run_simulation(small_config())
        assert s.messages_delivered > 0
        assert s.avg_latency_ns is not None and s.avg_latency_ns > 0
        assert s.accepted_flits_ns_switch > 0
        assert s.offered_flits_ns_switch == 0.01

    def test_low_load_accepted_tracks_offered(self):
        # long window so enough messages land for a stable rate estimate
        s = run_simulation(small_config(
            injection_rate=0.005, measure_ps=ns(600_000)))
        assert not s.saturated
        assert s.accepted_flits_ns_switch == \
            pytest.approx(0.005, rel=0.12)

    def test_network_latency_below_total(self):
        s = run_simulation(small_config(injection_rate=0.02))
        assert s.avg_network_latency_ns <= s.avg_latency_ns

    def test_deterministic_per_seed(self):
        a = run_simulation(small_config(seed=9))
        b = run_simulation(small_config(seed=9))
        assert a.messages_delivered == b.messages_delivered
        assert a.avg_latency_ns == b.avg_latency_ns
        assert a.accepted_flits_ns_switch == b.accepted_flits_ns_switch

    def test_seed_changes_results(self):
        a = run_simulation(small_config(seed=1))
        b = run_simulation(small_config(seed=2))
        assert a.avg_latency_ns != b.avg_latency_ns

    def test_updown_zero_itbs(self):
        s = run_simulation(small_config(routing="updown", policy="sp"))
        assert s.avg_itbs_per_message == 0.0
        assert s.itb_peak_bytes == 0

    def test_link_stats_collected_on_request(self):
        s = run_simulation(small_config(), collect_links=True)
        assert s.link_utilization is not None
        u = s.link_utilization
        assert len(u.per_link) == 32  # 4x4 torus links
        assert 0 <= u.per_link.max() <= 1.0

    def test_no_link_stats_by_default(self):
        s = run_simulation(small_config())
        assert s.link_utilization is None

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            run_simulation(small_config(injection_rate=-1))

    def test_reserved_at_least_utilization(self):
        s = run_simulation(small_config(injection_rate=0.03),
                           collect_links=True)
        u = s.link_utilization
        assert (u.blocked_fraction() >= -1e-9).all()

    def test_higher_load_higher_latency(self):
        lo = run_simulation(small_config(injection_rate=0.004))
        hi = run_simulation(small_config(injection_rate=0.04))
        assert hi.avg_latency_ns > lo.avg_latency_ns

    def test_saturation_flag_under_overload(self):
        s = run_simulation(small_config(
            injection_rate=1.0,
            warmup_ps=ns(30_000), measure_ps=ns(100_000)))
        assert s.saturated


class TestCaches:
    def test_graph_cache_hits(self):
        clear_caches()
        g1 = get_graph("torus", {"rows": 4, "cols": 4,
                                 "hosts_per_switch": 2})
        g2 = get_graph("torus", {"rows": 4, "cols": 4,
                                 "hosts_per_switch": 2})
        assert g1 is g2

    def test_graph_cache_distinguishes_kwargs(self):
        g1 = get_graph("torus", {"rows": 4, "cols": 4,
                                 "hosts_per_switch": 2})
        g2 = get_graph("torus", {"rows": 4, "cols": 4,
                                 "hosts_per_switch": 1})
        assert g1 is not g2

    def test_table_cache_hits(self):
        key = ("torus", (("cols", 4), ("hosts_per_switch", 2), ("rows", 4)))
        g = get_graph("torus", {"rows": 4, "cols": 4,
                                "hosts_per_switch": 2})
        t1 = get_tables(g, key, "itb")
        t2 = get_tables(g, key, "itb")
        assert t1 is t2
        t3 = get_tables(g, key, "updown")
        assert t3 is not t1

    def test_clear(self):
        g1 = get_graph("cplant", {})
        clear_caches()
        g2 = get_graph("cplant", {})
        assert g1 is not g2

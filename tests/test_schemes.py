"""Property suite for the routing-scheme registry.

Every registered scheme, on every topology it declares support for,
must produce tables that pass the structural *and* deadlock-discipline
checks of :meth:`RoutingTables.validate`, deterministically; schemes
must refuse unsupported graphs with a helpful error; and the registry
must behave like the engine registry (unknown-name errors that list
the alternatives, duplicate rejection, clean unregistration picked up
by ``SimConfig.validate``).
"""

from __future__ import annotations

from collections import Counter
import random

import pytest

from repro.config import PAPER_PARAMS, SimConfig
from repro.routing.routes import SourceRoute
from repro.routing.schemes import (Scheme, available_schemes,
                                   build_updown_tables, check_discipline,
                                   get_scheme, make_tables,
                                   register_scheme, scheme_label,
                                   supported_schemes, unregister_scheme)
from repro.routing.angara import select_root
from repro.routing.minimal import enumerate_minimal_paths
from repro.routing.policies import make_policy
from repro.routing.spanning_tree import build_spanning_tree
from repro.routing.table import RoutingTables, compute_tables
from repro.routing.updown import orient_links
from repro.sim import Simulator, make_network
from repro.topology import build_mesh
from tests.conftest import small_config

#: the schemes this PR ships (the paper's two plus three rivals)
EXPECTED = {"updown", "itb", "updown-opt", "outflank", "dor"}

GRAPH_FIXTURES = ("torus44", "express44", "irregular16", "mesh44")


@pytest.fixture(scope="session")
def mesh44():
    return build_mesh(rows=4, cols=4, hosts_per_switch=2)


@pytest.fixture(params=GRAPH_FIXTURES)
def any_graph(request):
    return request.getfixturevalue(request.param)


class TestRegistry:
    def test_shipped_schemes_registered(self):
        assert EXPECTED <= set(available_schemes())
        from repro.routing import list_schemes
        assert list_schemes() == available_schemes()

    def test_unknown_scheme_lists_available(self):
        with pytest.raises(ValueError, match="unknown routing scheme"):
            get_scheme("teleport")
        with pytest.raises(ValueError, match="updown"):
            get_scheme("teleport")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scheme(get_scheme("updown"))

    def test_unknown_discipline_rejected_at_declaration(self):
        with pytest.raises(ValueError, match="unknown discipline"):
            Scheme(name="x", description="", label=lambda p: "X",
                   build=build_updown_tables, discipline="vortex",
                   deadlock_free=True, multipath=False)

    def test_registration_roundtrip_reaches_config_validation(self):
        register_scheme(Scheme(
            name="null-route", description="test-only",
            label=lambda p: "NULL", build=build_updown_tables,
            discipline="updown", deadlock_free=True, multipath=False))
        try:
            assert "null-route" in available_schemes()
            # config validation and labels pick it up with no changes
            small_config(routing="null-route").validate()
            assert small_config(routing="null-route").label() == "NULL"
        finally:
            unregister_scheme("null-route")
        assert "null-route" not in available_schemes()
        with pytest.raises(ValueError, match="unknown routing scheme"):
            small_config(routing="null-route").validate()
        assert "updown" in available_schemes()  # built-ins untouched

    def test_labels(self):
        assert scheme_label("updown", "sp") == "UP/DOWN"
        assert scheme_label("itb", "rr") == "ITB-RR"
        assert scheme_label("updown-opt", "sp") == "UD-OPT"
        assert scheme_label("outflank", "rr") == "OFR-RR"
        assert scheme_label("dor", "sp") == "DOR"

    def test_capability_filtering(self, torus44, mesh44, irregular16):
        # grid-bound schemes drop off graphs without grid geometry;
        # dimension-order additionally needs the wrap-free mesh
        assert "outflank" not in supported_schemes(irregular16)
        assert "dor" not in supported_schemes(irregular16)
        assert "dor" not in supported_schemes(torus44)
        assert {"outflank", "dor"} <= set(supported_schemes(mesh44))
        # the universal schemes route everything
        for g in (torus44, mesh44, irregular16):
            assert {"updown", "itb", "updown-opt"} <= \
                set(supported_schemes(g))

    def test_unsupported_build_raises_with_topology_note(self, irregular16):
        with pytest.raises(ValueError, match="does not support"):
            make_tables(irregular16, "outflank")
        with pytest.raises(ValueError, match="grid geometry"):
            make_tables(irregular16, "dor")


class TestSchemeProperties:
    """Validity, determinism and deadlock discipline for every
    (registered scheme, topology builder) combination."""

    def test_every_supported_pair_validates(self, any_graph):
        g = any_graph
        for name in available_schemes():
            if name not in supported_schemes(g):
                with pytest.raises(ValueError, match="does not support"):
                    make_tables(g, name)
                continue
            tables = make_tables(g, name)
            tables.validate(g)  # structural + declared discipline
            assert tables.scheme == name
            # complete: every ordered switch pair has at least one route
            pairs = {(s, t) for s in g.switches() for t in g.switches()
                     if s != t}
            assert pairs <= set(tables.routes)

    def test_deterministic_for_fixed_inputs(self, any_graph):
        g = any_graph
        for name in supported_schemes(g):
            a = make_tables(g, name, root=0)
            b = make_tables(g, name, root=0)
            assert a.routes == b.routes
            assert a.root == b.root

    def test_multipath_declaration_matches_tables(self, torus44):
        for name in supported_schemes(torus44):
            tables = make_tables(torus44, name)
            if get_scheme(name).multipath:
                assert tables.max_alternatives() > 1
            else:
                assert tables.max_alternatives() == 1


class TestDisciplineChecks:
    """The discipline checks are real: hand them a violating table and
    they must fail."""

    def test_updown_check_catches_illegal_route(self, torus44):
        g = torus44
        tree = build_spanning_tree(g, 0)
        ud = orient_links(g, 0, tree)
        bad = None
        for dst in g.switches():
            dist = g.shortest_distances(dst)
            for src in g.switches():
                if src == dst:
                    continue
                for path in enumerate_minimal_paths(g, src, dst, dist):
                    if not ud.path_is_legal(g, path):
                        bad = (src, dst, path)
                        break
                if bad:
                    break
            if bad:
                break
        assert bad is not None, "a 4x4 torus has up*/down*-illegal " \
                                "minimal paths"
        src, dst, path = bad
        tables = RoutingTables("updown", 0, ud,
                               {(src, dst):
                                (SourceRoute.single_leg(g, path),)})
        with pytest.raises(AssertionError, match="illegal leg"):
            tables.validate(g)

    def test_dimension_order_check_catches_yx_route(self, mesh44):
        g = mesh44
        good = compute_tables(g, "dor")
        # a Y-then-X path: down one row, then right one column
        yx = (g.grid.switch(0, 0), g.grid.switch(1, 0),
              g.grid.switch(1, 1))
        routes = dict(good.routes)
        routes[(yx[0], yx[-1])] = (SourceRoute.single_leg(g, yx),)
        bad = RoutingTables("dor", good.root, good.orientation, routes)
        with pytest.raises(AssertionError, match="turns back"):
            check_discipline(bad, g)

    def test_dimension_order_check_catches_reversal(self, mesh44):
        g = mesh44
        good = compute_tables(g, "dor")
        # east one column, then straight back west
        zig = (g.grid.switch(0, 0), g.grid.switch(0, 1),
               g.grid.switch(0, 0), g.grid.switch(0, 1))
        routes = dict(good.routes)
        routes[(zig[0], zig[-1])] = (SourceRoute.single_leg(g, zig),)
        bad = RoutingTables("dor", good.root, good.orientation, routes)
        with pytest.raises(AssertionError, match="reverses direction"):
            check_discipline(bad, g)


class TestAngara:
    def test_root_is_graph_centre(self, mesh44):
        root = select_root(mesh44)
        ecc = {}
        for s in mesh44.switches():
            dist = mesh44.shortest_distances(s)
            ecc[s] = max(dist[t] for t in mesh44.switches())
        assert ecc[root] == min(ecc.values())
        # on the 4x4 mesh the centre is strictly better than the
        # corner the baseline defaults to
        assert ecc[root] < ecc[0]

    def test_opt_tables_use_centre_root(self, mesh44):
        tables = make_tables(mesh44, "updown-opt", root=0)
        assert tables.root == select_root(mesh44)


class TestOutFlank:
    def test_flank_paths_are_nonminimal_alternatives(self, torus44):
        g = torus44
        tables = make_tables(g, "outflank")
        longer = 0
        for (src, dst), alts in tables.routes.items():
            if src == dst:
                continue
            d = g.shortest_distances(src)[dst]
            hops = [sum(len(leg.switches) - 1 for leg in r.legs)
                    for r in alts]
            assert min(hops) == d  # a minimal path is always offered
            longer += sum(1 for h in hops if h > d)
        assert longer > 0  # and flanking detours actually exist

    @pytest.mark.parametrize("scheme", ["outflank", "updown-opt"])
    def test_engine_parity_smoke(self, scheme):
        """Both engines drain the same rival-scheme workload identically."""
        g = build_mesh(rows=3, cols=3, hosts_per_switch=2)
        tables = compute_tables(g, scheme)
        rng = random.Random(11)
        pairs = [(a, b) for a, b in
                 ((rng.randrange(g.num_hosts), rng.randrange(g.num_hosts))
                  for _ in range(40)) if a != b][:20]
        results = {}
        for engine in ("packet", "flit"):
            sim = Simulator()
            net = make_network(engine, sim, g, tables,
                               make_policy("rr", seed=7), PAPER_PARAMS,
                               message_bytes=256)
            pkts = [net.send(src, dst) for src, dst in pairs]
            sim.run_until_idle()
            assert net.delivered == len(pairs)
            results[engine] = {
                "itb_hist": Counter(p.num_itbs for p in pkts),
                "links": {(c.src, c.dst, c.link_id): c.flits
                          for c in net.link_flit_counts()},
            }
        assert results["packet"] == results["flit"]

    def test_runs_under_simconfig(self):
        cfg = small_config(routing="outflank", policy="rr",
                           injection_rate=0.005)
        from repro.experiments.runner import run_simulation
        s = run_simulation(cfg)
        assert s.messages_delivered > 0
        assert s.config.label() == "OFR-RR"

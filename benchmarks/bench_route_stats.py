"""In-text route statistics of Section 4.7.1 (the "text-stats" artefact).

Paper numbers for the 8x8 torus: 80 % of simple_routes paths minimal,
average distance 4.57 (UP/DOWN) vs 4.06 (ITB), 0.43 / 0.54 in-transit
buffers per message for SP / RR; 94 % minimal on the express torus;
100 % minimal on CPLANT.
"""

import pytest

from repro.experiments.runner import get_graph, get_tables
from repro.routing.analysis import route_statistics


def _stats(topology, scheme):
    g = get_graph(topology, {})
    return route_statistics(g, get_tables(g, (topology, ()), scheme))


def test_torus_route_statistics(benchmark):
    ud, itb = benchmark.pedantic(
        lambda: (_stats("torus", "updown"), _stats("torus", "itb")),
        rounds=1, iterations=1)
    benchmark.extra_info.update(
        updown_minimal=round(ud.fraction_minimal, 3),
        updown_distance=round(ud.avg_distance_sp, 2),
        itb_distance=round(itb.avg_distance_sp, 2),
        itbs_sp=round(itb.avg_itbs_sp, 3),
        itbs_rr=round(itb.avg_itbs_rr, 3))
    assert ud.fraction_minimal == pytest.approx(0.80, abs=0.05)
    assert ud.avg_distance_sp == pytest.approx(4.57, abs=0.08)
    assert itb.fraction_minimal == 1.0
    assert itb.avg_distance_sp == pytest.approx(4.06, abs=0.02)
    assert itb.avg_itbs_rr == pytest.approx(0.54, abs=0.05)
    assert 0.3 <= itb.avg_itbs_sp <= 0.6


def test_express_route_statistics(benchmark):
    ud = benchmark.pedantic(lambda: _stats("torus-express", "updown"),
                            rounds=1, iterations=1)
    benchmark.extra_info["minimal"] = round(ud.fraction_minimal, 4)
    assert ud.fraction_minimal == pytest.approx(0.94, abs=0.02)


def test_cplant_route_statistics(benchmark):
    ud = benchmark.pedantic(lambda: _stats("cplant", "updown"),
                            rounds=1, iterations=1)
    benchmark.extra_info["minimal"] = round(ud.fraction_minimal, 4)
    # paper: "UP/DOWN always uses minimal paths in this topology" --
    # our CPLANT reconstruction reproduces this exactly
    assert ud.fraction_minimal == 1.0

"""Table 3: hotspot saturation throughput on CPLANT (5 % hotspot).

Paper averages: UP/DOWN 0.0340, ITB-SP 0.0423 (x1.24), ITB-RR 0.0451
(x1.32) -- moderate ITB gains driven purely by traffic balance (on
CPLANT up*/down* already provides minimal paths everywhere, so all the
benefit comes from avoiding the root)."""

import dataclasses

from _bench_util import record_table

from repro.experiments import tables


def test_table3_cplant_hotspot(benchmark, profile):
    prof = dataclasses.replace(profile, hotspot_locations=2)
    table = benchmark.pedantic(lambda: tables.table3(prof),
                               rounds=1, iterations=1)
    record_table(benchmark, table)
    gains = table.improvement_factors()
    # moderate but consistent ITB advantage
    assert gains[(0.05, "ITB-SP")] >= 1.0
    assert gains[(0.05, "ITB-RR")] >= 1.0
    assert gains[(0.05, "ITB-RR")] <= 2.0

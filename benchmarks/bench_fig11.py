"""Figure 11: link utilisation, 2-D torus with 10 % hotspot traffic at
UP/DOWN's saturation point (paper: 0.0123 flits/ns/switch).

Paper claims: under UP/DOWN, links near the *root* are much more heavily
used than links near the hotspot switch -- the root is the bigger
hotspot.  Under ITB-RR, only links near the hotspot switch saturate.
"""

from _bench_util import record_linkmap

from repro.experiments import figures
from repro.experiments.runner import get_graph

HOTSPOT_HOST = 260  # attached to switch 32


def _near(g, link_id, switch):
    link = g.links[link_id]
    return switch in (link.a, link.b)


def test_fig11_hotspot_link_utilisation(benchmark, profile):
    results = benchmark.pedantic(
        lambda: figures.fig11(profile, hotspot=HOTSPOT_HOST, fraction=0.10),
        rounds=1, iterations=1)
    record_linkmap(benchmark, results)
    updown, itb = results
    g = get_graph("torus", {})
    hot_switch = g.host_switch(HOTSPOT_HOST)
    root = 0

    def zone_mean(res, switch):
        vals = [u for (s, d, lid), u
                in zip(res.utilization.channel_ends,
                       res.utilization.utilization)
                if _near(g, lid, switch)]
        return sum(vals) / len(vals)

    ud_root = zone_mean(updown, root)
    ud_hot = zone_mean(updown, hot_switch)
    itb_root = zone_mean(itb, root)
    itb_hot = zone_mean(itb, hot_switch)
    benchmark.extra_info.update(
        updown_root=round(ud_root, 3), updown_hotspot=round(ud_hot, 3),
        itb_root=round(itb_root, 3), itb_hotspot=round(itb_hot, 3))

    # UP/DOWN: the root outglows the hotspot
    assert ud_root > ud_hot
    # ITB-RR: the hotspot is the hot zone, not the root
    assert itb_hot > itb_root
    # and ITB relieves the root dramatically
    assert itb_root < ud_root / 2

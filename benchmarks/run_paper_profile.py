#!/usr/bin/env python
"""Regenerate every paper artefact under the full PAPER profile.

Writes incremental, human-readable results to ``results/paper_results.txt``
and a machine-readable summary to ``results/paper_results.json``; both are
the source of EXPERIMENTS.md.  Expect this to take on the order of an
hour in pure Python -- the bench suite (``pytest benchmarks/
--benchmark-only``) is the fast everyday variant.

Usage:  python benchmarks/run_paper_profile.py [exp_id ...]
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.experiments.profiles import PAPER
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.report import (render_figure, render_hotspot_table,
                                      render_link_map)

GRIDS = {"fig8": (8, 8), "fig9": (8, 8), "fig11": (8, 8)}


def main() -> None:
    wanted = sys.argv[1:] or list(EXPERIMENTS)
    os.makedirs("results", exist_ok=True)
    txt_path = os.path.join("results", "paper_results.txt")
    json_path = os.path.join("results", "paper_results.json")
    summary: dict = {}

    with open(txt_path, "w") as txt:
        for exp_id in wanted:
            exp = EXPERIMENTS[exp_id]
            t0 = time.time()
            print(f"[{time.strftime('%H:%M:%S')}] running {exp_id} "
                  f"({exp.description}) ...", flush=True)
            result = run_experiment(exp_id, PAPER)
            elapsed = time.time() - t0

            if exp.kind == "latency-panel":
                txt.write(render_figure(result) + "\n\n")
                summary[exp_id] = {
                    "measured": result.measured_throughput(),
                    "paper": result.paper_throughput,
                }
            elif exp.kind == "link-map":
                for panel in result:
                    txt.write(render_link_map(panel, GRIDS.get(exp_id))
                              + "\n\n")
                summary[exp_id] = {
                    panel.fig_id + ":" + panel.label:
                        panel.utilization.summary()
                    for panel in result
                }
            else:  # hotspot-table
                txt.write(render_hotspot_table(result) + "\n\n")
                summary[exp_id] = {
                    "averages": {f"{f}:{lab}": v for (f, lab), v
                                 in result.averages().items()},
                    "gains": {f"{f}:{lab}": v for (f, lab), v
                              in result.improvement_factors().items()},
                }
            txt.flush()
            with open(json_path, "w") as jf:
                json.dump(summary, jf, indent=2)
            print(f"    done in {elapsed:.0f}s", flush=True)
    print(f"wrote {txt_path} and {json_path}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Regenerate every paper artefact under the full PAPER profile.

Writes incremental, human-readable results to ``results/paper_results.txt``
and a machine-readable summary to ``results/paper_results.json``; both are
the source of EXPERIMENTS.md.  Expect this to take on the order of an
hour in pure Python sequentially -- ``--workers N`` fans the simulation
points out across cores through the orchestrator, and the result store
(``--cache-dir``, default ``.repro_cache``) checkpoints every finished
point, so an interrupted run resumes where it stopped instead of
starting over.  The bench suite (``pytest benchmarks/
--benchmark-only``) is the fast everyday variant.

Usage:  python benchmarks/run_paper_profile.py [exp_id ...]
            [--workers N] [--cache-dir DIR] [--no-cache]
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.experiments.profiles import PAPER
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.report import (render_figure, render_hotspot_table,
                                      render_link_map)
from repro.orchestrator import (DEFAULT_CACHE_DIR, Executor,
                                ProgressReporter, ResultStore)

GRIDS = {"fig8": (8, 8), "fig9": (8, 8), "fig11": (8, 8)}


def parse_args() -> argparse.Namespace:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("exp_ids", nargs="*", metavar="exp_id",
                   help="artefacts to regenerate (default: all)")
    p.add_argument("--workers", type=int, default=1,
                   help="parallel simulation workers (1 = in-process)")
    p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                   help="orchestrator result-store directory")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the on-disk result store")
    p.add_argument("--task-timeout", type=float, default=None,
                   help="per-point timeout in seconds")
    return p.parse_args()


def main() -> None:
    args = parse_args()
    wanted = args.exp_ids or list(EXPERIMENTS)
    unknown = [e for e in wanted if e not in EXPERIMENTS]
    if unknown:
        raise SystemExit(f"unknown experiment ids: {unknown}; "
                         f"available: {sorted(EXPERIMENTS)}")
    store = None if args.no_cache else ResultStore(args.cache_dir)
    executor = Executor(workers=args.workers, store=store,
                        timeout_s=args.task_timeout,
                        reporter=ProgressReporter())

    os.makedirs("results", exist_ok=True)
    txt_path = os.path.join("results", "paper_results.txt")
    json_path = os.path.join("results", "paper_results.json")
    summary: dict = {}

    with open(txt_path, "w") as txt:
        for exp_id in wanted:
            exp = EXPERIMENTS[exp_id]
            t0 = time.time()
            print(f"[{time.strftime('%H:%M:%S')}] running {exp_id} "
                  f"({exp.description}) ...", flush=True)
            result = run_experiment(exp_id, PAPER, executor=executor)
            elapsed = time.time() - t0

            if exp.kind == "latency-panel":
                txt.write(render_figure(result) + "\n\n")
                summary[exp_id] = {
                    "measured": result.measured_throughput(),
                    "paper": result.paper_throughput,
                }
            elif exp.kind == "link-map":
                for panel in result:
                    txt.write(render_link_map(panel, GRIDS.get(exp_id))
                              + "\n\n")
                summary[exp_id] = {
                    panel.fig_id + ":" + panel.label:
                        panel.utilization.summary()
                    for panel in result
                }
            else:  # hotspot-table
                txt.write(render_hotspot_table(result) + "\n\n")
                summary[exp_id] = {
                    "averages": {f"{f}:{lab}": v for (f, lab), v
                                 in result.averages().items()},
                    "gains": {f"{f}:{lab}": v for (f, lab), v
                              in result.improvement_factors().items()},
                }
            txt.flush()
            with open(json_path, "w") as jf:
                json.dump(summary, jf, indent=2)
            print(f"    done in {elapsed:.0f}s "
                  f"({executor.stats.oneline()})", flush=True)
    print(f"wrote {txt_path} and {json_path}")


if __name__ == "__main__":
    main()

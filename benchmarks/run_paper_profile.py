#!/usr/bin/env python
"""Regenerate every paper artefact under the full PAPER profile.

Writes incremental, human-readable results to ``results/paper_results.txt``
and a machine-readable summary to ``results/paper_results.json``; both are
the source of EXPERIMENTS.md.  Expect this to take on the order of an
hour in pure Python sequentially -- ``--workers N`` fans the simulation
points out across cores through the orchestrator, and the result store
(``--cache-dir``, default ``.repro_cache``) checkpoints every finished
point, so an interrupted run resumes where it stopped instead of
starting over.  The bench suite (``pytest benchmarks/
--benchmark-only``) is the fast everyday variant.

Besides the paper artefacts, every run records an engine wall-clock
profile: the same validation-size network (the 4x4 torus of the
cross-engine validation suite) timed through each requested simulation
engine (``--engine``, repeatable; default: all registered), so the perf
trajectory tracks the packet- vs flit-level cost side by side.

Usage:  python benchmarks/run_paper_profile.py [exp_id ...]
            [--workers N] [--cache-dir DIR] [--no-cache]
            [--engine NAME ...] [--no-engine-profile]
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.config import SimConfig
from repro.experiments.profiles import PAPER
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.report import (render_figure, render_hotspot_table,
                                      render_link_map)
from repro.experiments.runner import clear_caches, run_simulation
from repro.orchestrator import (DEFAULT_CACHE_DIR, Executor,
                                ProgressReporter, ResultStore)
from repro.perf import PerfRecorder
from repro.sim import available_engines
from repro.units import ns

GRIDS = {"fig8": (8, 8), "fig9": (8, 8), "fig11": (8, 8)}

#: validation-size network used for cross-engine checks (DESIGN.md
#: Section 5): small enough that the flit engine finishes in seconds
ENGINE_PROFILE_CFG = dict(
    topology="torus",
    topology_kwargs={"rows": 4, "cols": 4, "hosts_per_switch": 2},
    routing="itb", policy="rr", traffic="uniform",
    injection_rate=0.02,
    warmup_ps=ns(20_000), measure_ps=ns(120_000))

#: the paper-scale workload (8x8 torus, 512 hosts, the saturation-knee
#: offered load) shared by the ``*-paper`` benchmark points
_PAPER_SCALE_CFG = dict(
    topology="torus", topology_kwargs={"rows": 8, "cols": 8},
    routing="itb", policy="rr", traffic="uniform",
    injection_rate=0.04, seed=1)

#: sim-core benchmark matrix (BENCH_sim_core.json): a paper-sized point
#: per engine plus a validation-size point per engine, so every
#: engine's hot-loop throughput is tracked over time.  ``flit-paper``
#: runs a reduced window (the flit engine is ~3 orders slower than the
#: array engine; a full 350 us horizon would dominate the whole bench).
#: Cross-engine comparisons use ``messages_per_s`` -- events/s counts
#: heap events, which batch engines deliberately collapse.
BENCH_CORE_CONFIGS = [
    ("packet-paper", dict(
        engine="packet", warmup_ps=ns(50_000), measure_ps=ns(300_000),
        **_PAPER_SCALE_CFG)),
    ("array-paper", dict(
        engine="array", warmup_ps=ns(50_000), measure_ps=ns(300_000),
        **_PAPER_SCALE_CFG)),
    ("flit-paper", dict(
        engine="flit", warmup_ps=ns(10_000), measure_ps=ns(50_000),
        **_PAPER_SCALE_CFG)),
    ("packet-val", dict(engine="packet", **ENGINE_PROFILE_CFG)),
    ("flit-val", dict(engine="flit", **ENGINE_PROFILE_CFG)),
    ("array-val", dict(engine="array", **ENGINE_PROFILE_CFG)),
]


def bench_sim_core(repeats: int = 3) -> dict:
    """Time the benchmark matrix; best-of-``repeats`` per point.

    The first repeat of each point runs with cleared memo caches, so its
    ``cold_wall_s`` includes graph + routing-table construction -- the
    cost every fresh worker process pays.  ``events_per_s`` comes from
    the best repeat's event-loop wall clock, the steady-state figure the
    CI regression gate watches.
    """
    points = []
    for name, kw in BENCH_CORE_CONFIGS:
        cfg = SimConfig(**kw)
        clear_caches()
        reports = []
        for _ in range(repeats):
            rec = PerfRecorder()
            run_simulation(cfg, perf=rec)
            reports.append(rec.report)
        cold = reports[0]
        best = min(reports, key=lambda r: r.sim_wall_s)
        points.append({
            "name": name,
            "engine": cfg.engine,
            "cold_wall_s": round(cold.wall_s, 4),
            "best_loop_wall_s": round(best.sim_wall_s, 4),
            "events": best.events,
            "events_per_s": round(best.events_per_s, 1),
            "messages_delivered": best.messages_delivered,
            "messages_per_s": round(best.messages_per_s, 1),
        })
    return {"schema": 1, "repeats": repeats, "points": points}


def render_bench_core(data: dict) -> str:
    lines = [f"sim-core benchmark (best of {data['repeats']}, cold run "
             "includes table build):",
             f"  {'point':14s} {'engine':8s} {'cold [s]':>9s} "
             f"{'loop [s]':>9s} {'events':>8s} {'events/s':>10s} "
             f"{'msgs/s':>8s}"]
    for p in data["points"]:
        lines.append(f"  {p['name']:14s} {p['engine']:8s} "
                     f"{p['cold_wall_s']:9.3f} {p['best_loop_wall_s']:9.3f} "
                     f"{p['events']:8d} {p['events_per_s']:10,.0f} "
                     f"{p['messages_per_s']:8,.0f}")
    return "\n".join(lines)


def write_bench_core(data: dict, path: str) -> None:
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as f:
        json.dump(data, f, indent=2)
        f.write("\n")


def profile_engines(engines) -> list:
    """Time one validation-size run per engine, links collected."""
    rows = []
    for engine in engines:
        cfg = SimConfig(engine=engine, **ENGINE_PROFILE_CFG)
        t0 = time.perf_counter()
        s = run_simulation(cfg, collect_links=True)
        rows.append({
            "engine": engine,
            "wall_s": round(time.perf_counter() - t0, 3),
            "messages_delivered": s.messages_delivered,
            "avg_latency_ns": round(s.avg_latency_ns, 1),
            "itb_peak_bytes": s.itb_peak_bytes,
        })
    return rows


def render_engine_profile(rows) -> str:
    base = min(r["wall_s"] for r in rows) or 1e-9
    lines = ["engine wall-clock profile (4x4 torus, itb/rr, "
             "rate 0.02, 120 us window):",
             f"  {'engine':10s} {'wall [s]':>9s} {'rel':>6s} "
             f"{'delivered':>9s} {'lat [ns]':>9s}"]
    for r in rows:
        lines.append(f"  {r['engine']:10s} {r['wall_s']:9.3f} "
                     f"{r['wall_s'] / base:5.1f}x "
                     f"{r['messages_delivered']:9d} "
                     f"{r['avg_latency_ns']:9.1f}")
    return "\n".join(lines)


def parse_args() -> argparse.Namespace:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("exp_ids", nargs="*", metavar="exp_id",
                   help="artefacts to regenerate (default: all)")
    p.add_argument("--workers", type=int, default=1,
                   help="parallel simulation workers (1 = in-process)")
    p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                   help="orchestrator result-store directory")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the on-disk result store")
    p.add_argument("--task-timeout", type=float, default=None,
                   help="per-point timeout in seconds")
    p.add_argument("--engine", dest="engines", action="append",
                   choices=list(available_engines()), metavar="NAME",
                   help="engine(s) to include in the wall-clock "
                        "profile (repeatable; default: all registered)")
    p.add_argument("--no-engine-profile", action="store_true",
                   help="skip the engine wall-clock profile")
    p.add_argument("--bench-core-out", default="results/BENCH_sim_core.json",
                   metavar="FILE",
                   help="where to write the sim-core benchmark JSON")
    p.add_argument("--bench-core-repeats", type=int, default=3,
                   help="repeats per sim-core benchmark point (best-of)")
    p.add_argument("--no-bench-core", action="store_true",
                   help="skip the sim-core benchmark")
    p.add_argument("--bench-core-only", action="store_true",
                   help="run only the sim-core benchmark and exit "
                        "(the CI smoke path)")
    return p.parse_args()


def main() -> None:
    args = parse_args()
    if args.bench_core_only:
        print(f"[{time.strftime('%H:%M:%S')}] sim-core benchmark "
              f"(best of {args.bench_core_repeats}) ...", flush=True)
        data = bench_sim_core(args.bench_core_repeats)
        write_bench_core(data, args.bench_core_out)
        print(render_bench_core(data))
        print(f"wrote {args.bench_core_out}")
        return
    wanted = args.exp_ids or list(EXPERIMENTS)
    unknown = [e for e in wanted if e not in EXPERIMENTS]
    if unknown:
        raise SystemExit(f"unknown experiment ids: {unknown}; "
                         f"available: {sorted(EXPERIMENTS)}")
    store = None if args.no_cache else ResultStore(args.cache_dir)
    executor = Executor(workers=args.workers, store=store,
                        timeout_s=args.task_timeout,
                        reporter=ProgressReporter())

    os.makedirs("results", exist_ok=True)
    txt_path = os.path.join("results", "paper_results.txt")
    json_path = os.path.join("results", "paper_results.json")
    summary: dict = {}

    with open(txt_path, "w") as txt:
        if not args.no_bench_core:
            print(f"[{time.strftime('%H:%M:%S')}] sim-core benchmark "
                  f"(best of {args.bench_core_repeats}) ...", flush=True)
            data = bench_sim_core(args.bench_core_repeats)
            write_bench_core(data, args.bench_core_out)
            txt.write(render_bench_core(data) + "\n\n")
            txt.flush()
            summary["sim_core_bench"] = data
            with open(json_path, "w") as jf:
                json.dump(summary, jf, indent=2)

        if not args.no_engine_profile:
            engines = args.engines or list(available_engines())
            print(f"[{time.strftime('%H:%M:%S')}] engine wall-clock "
                  f"profile ({', '.join(engines)}) ...", flush=True)
            rows = profile_engines(engines)
            txt.write(render_engine_profile(rows) + "\n\n")
            txt.flush()
            summary["engine_profile"] = rows
            with open(json_path, "w") as jf:
                json.dump(summary, jf, indent=2)

        for exp_id in wanted:
            exp = EXPERIMENTS[exp_id]
            t0 = time.time()
            print(f"[{time.strftime('%H:%M:%S')}] running {exp_id} "
                  f"({exp.description}) ...", flush=True)
            result = run_experiment(exp_id, PAPER, executor=executor)
            elapsed = time.time() - t0

            if exp.kind == "latency-panel":
                txt.write(render_figure(result) + "\n\n")
                summary[exp_id] = {
                    "measured": result.measured_throughput(),
                    "paper": result.paper_throughput,
                }
            elif exp.kind == "link-map":
                for panel in result:
                    txt.write(render_link_map(panel, GRIDS.get(exp_id))
                              + "\n\n")
                summary[exp_id] = {
                    panel.fig_id + ":" + panel.label:
                        panel.utilization.summary()
                    for panel in result
                }
            else:  # hotspot-table
                txt.write(render_hotspot_table(result) + "\n\n")
                summary[exp_id] = {
                    "averages": {f"{f}:{lab}": v for (f, lab), v
                                 in result.averages().items()},
                    "gains": {f"{f}:{lab}": v for (f, lab), v
                              in result.improvement_factors().items()},
                }
            txt.flush()
            with open(json_path, "w") as jf:
                json.dump(summary, jf, indent=2)
            print(f"    done in {elapsed:.0f}s "
                  f"({executor.stats.oneline()})", flush=True)
    print(f"wrote {txt_path} and {json_path}")


if __name__ == "__main__":
    main()

"""Extension: latency-adaptive source routing (the paper's future work).

Section 5 of the paper: "we are working on ... new route selection
algorithms that implement some adaptivity at the source host."  Our
:class:`~repro.routing.policies.AdaptivePolicy` keeps a per-pair EWMA of
delivered network latencies per alternative and routes over the
currently fastest one (epsilon-greedy).  This bench compares it against
ITB-RR near RR's saturation point on the torus, under uniform and
hotspot traffic.
"""

from repro.config import SimConfig
from repro.experiments.runner import run_simulation


def _run(policy, traffic, rate, profile, traffic_kwargs=None):
    cfg = SimConfig(topology="torus", routing="itb", policy=policy,
                    traffic=traffic, traffic_kwargs=traffic_kwargs or {},
                    injection_rate=rate,
                    warmup_ps=profile.warmup_ps,
                    measure_ps=profile.measure_ps)
    return run_simulation(cfg)


def test_adaptive_vs_rr_uniform(benchmark, profile):
    def sweep():
        out = {}
        for policy in ("rr", "adaptive"):
            for rate in (0.025, 0.032):
                out[(policy, rate)] = _run(policy, "uniform", rate, profile)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for (policy, rate), s in results.items():
        benchmark.extra_info[f"accepted[{policy}@{rate}]"] = round(
            s.accepted_flits_ns_switch, 4)
        benchmark.extra_info[f"latency[{policy}@{rate}]"] = round(
            s.avg_latency_ns, 0)
    # below saturation both are fine; adaptive must not be worse
    assert results[("adaptive", 0.025)].avg_latency_ns <= \
        1.1 * results[("rr", 0.025)].avg_latency_ns
    # at RR's edge, adaptivity must accept at least as much traffic
    assert results[("adaptive", 0.032)].accepted_flits_ns_switch >= \
        results[("rr", 0.032)].accepted_flits_ns_switch


def test_adaptive_routes_around_hotspot(benchmark, profile):
    """Under a hotspot, latency feedback steers traffic off the hot
    region's alternatives; adaptive must not lose to RR."""
    kwargs = {"hotspot": 260, "fraction": 0.05}

    def sweep():
        return {policy: _run(policy, "hotspot", 0.022, profile, kwargs)
                for policy in ("rr", "adaptive")}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for policy, s in results.items():
        benchmark.extra_info[f"latency[{policy}]"] = round(
            s.avg_latency_ns, 0)
    assert results["adaptive"].accepted_flits_ns_switch >= \
        0.95 * results["rr"].accepted_flits_ns_switch

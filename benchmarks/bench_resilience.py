"""Extension: throughput degradation under link failures.

Myrinet recomputes routes when it detects link failures (paper
Section 2).  This bench fails cables on the 8x8 torus, recomputes the
routing tables, and measures how each algorithm's uniform-traffic
throughput degrades:

* failing a **root-adjacent** cable hits up*/down* where it is already
  congested;
* failing a random mid-grid cable barely matters to anyone;
* ITB routing keeps its advantage (and 100 % minimal paths) in every
  failure case -- its alternative paths make it the more resilient
  scheme, an aspect the paper does not evaluate.
"""

from repro.config import SimConfig
from repro.experiments.runner import get_graph, run_simulation
from repro.routing.table import compute_tables
from repro.topology.mutate import without_links

#: a load both algorithms sustain on the healthy torus
RATE_UPDOWN = 0.013
RATE_ITB = 0.028


def _accepted(graph, routing, policy, rate, profile):
    cfg = SimConfig(topology="torus", routing=routing, policy=policy,
                    traffic="uniform", injection_rate=rate,
                    warmup_ps=profile.warmup_ps,
                    measure_ps=profile.measure_ps)
    tables = compute_tables(graph, routing)
    return run_simulation(cfg, graph=graph, tables=tables)


def test_link_failure_resilience(benchmark, profile):
    g = get_graph("torus", {})
    scenarios = {
        "healthy": g,
        "root-link": without_links(g, [g.link_between(0, 1)]),
        "mid-link": without_links(g, [g.link_between(27, 28)]),
    }

    def sweep():
        out = {}
        for name, graph in scenarios.items():
            out[(name, "updown")] = _accepted(graph, "updown", "sp",
                                              RATE_UPDOWN, profile)
            out[(name, "itb")] = _accepted(graph, "itb", "rr",
                                           RATE_ITB, profile)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for (name, routing), s in results.items():
        benchmark.extra_info[f"accepted[{name},{routing}]"] = round(
            s.accepted_flits_ns_switch, 4)
        benchmark.extra_info[f"sat[{name},{routing}]"] = s.saturated

    # ITB sustains its (much higher) load through every failure
    for name in scenarios:
        assert not results[(name, "itb")].saturated, name
    # a mid-grid failure is a non-event for both schemes
    assert not results[("mid-link", "updown")].saturated
    # ITB keeps accepting its full load after the root-link failure
    healthy = results[("healthy", "itb")].accepted_flits_ns_switch
    degraded = results[("root-link", "itb")].accepted_flits_ns_switch
    assert degraded >= 0.9 * healthy

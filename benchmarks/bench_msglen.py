"""Message-length study (Section 4.2): 32, 512 and 1024-byte messages.

The paper states results for all three sizes are "qualitatively
similar" and only presents 512 bytes.  This bench verifies the claim:
ITB-RR must beat UP/DOWN at a normalised load for every size, and the
short-message case (32 B, where per-hop routing and ITB overheads are
proportionally largest) must not invert the ordering.
"""

from repro.config import SimConfig
from repro.experiments.runner import run_simulation

#: same flit load for each size (messages/ns scales inversely)
RATE = 0.022


def run_size(routing, policy, nbytes, profile):
    cfg = SimConfig(topology="torus", routing=routing, policy=policy,
                    traffic="uniform", injection_rate=RATE,
                    message_bytes=nbytes,
                    warmup_ps=profile.warmup_ps,
                    measure_ps=profile.measure_ps)
    return run_simulation(cfg)


def test_message_length_qualitative_similarity(benchmark, profile):
    def sweep():
        out = {}
        for nbytes in (32, 512, 1024):
            out[("updown", nbytes)] = run_size("updown", "sp", nbytes,
                                               profile)
            out[("itb", nbytes)] = run_size("itb", "rr", nbytes, profile)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for (scheme, nbytes), s in results.items():
        benchmark.extra_info[f"accepted[{scheme},{nbytes}B]"] = round(
            s.accepted_flits_ns_switch, 4)
        benchmark.extra_info[f"sat[{scheme},{nbytes}B]"] = s.saturated

    for nbytes in (32, 512, 1024):
        ud = results[("updown", nbytes)]
        itb = results[("itb", nbytes)]
        # "qualitatively similar": at a load stressing UP/DOWN, ITB-RR
        # accepts at least as much traffic at lower latency, whatever
        # the message size (larger messages amortise the per-hop costs,
        # so the absolute saturation point shifts -- the ordering must
        # not)
        assert itb.accepted_flits_ns_switch >= \
            0.97 * ud.accepted_flits_ns_switch, nbytes
        assert itb.avg_latency_ns < ud.avg_latency_ns, nbytes

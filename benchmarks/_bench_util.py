"""Helpers shared by the benchmark modules (imported as a plain module;
the leading underscore keeps it out of pytest's bench_*.py collection)."""

from __future__ import annotations


def record_throughput(benchmark, result) -> None:
    """Stash measured vs paper throughput of a latency panel in
    ``benchmark.extra_info`` (shows up in ``--benchmark-verbose`` and the
    JSON export)."""
    measured = result.measured_throughput()
    for label, value in measured.items():
        benchmark.extra_info[f"throughput[{label}]"] = round(value, 4)
        paper = result.paper_throughput.get(label)
        if paper is not None:
            benchmark.extra_info[f"paper[{label}]"] = paper


def record_table(benchmark, table) -> None:
    """Stash a hotspot table's average row in ``benchmark.extra_info``."""
    for (frac, label), value in table.averages().items():
        benchmark.extra_info[f"avg[{frac:.0%}][{label}]"] = round(value, 4)
    for (frac, label), value in table.improvement_factors().items():
        benchmark.extra_info[f"gain[{frac:.0%}][{label}]"] = round(value, 2)


def record_linkmap(benchmark, results) -> None:
    """Stash link-utilisation summary stats of link-map panels."""
    for res in results:
        s = res.utilization.summary()
        key = f"{res.fig_id}[{res.label}]"
        benchmark.extra_info[f"{key}.max"] = round(s["max"], 3)
        benchmark.extra_info[f"{key}.mean"] = round(s["mean"], 3)
        benchmark.extra_info[f"{key}.below10pct"] = round(
            s["frac_below_10pct"], 2)

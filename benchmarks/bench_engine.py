"""Simulator-engine benchmarks: core event throughput and the cost of
flit-level fidelity.

These are classic pytest-benchmark micro/meso benchmarks (multiple
rounds) rather than paper artefacts: they document how fast the two
engines are and keep regressions visible.
"""

import pytest

from repro.config import SimConfig
from repro.experiments.runner import run_simulation
from repro.sim.engine import Simulator
from repro.units import ns


def test_event_queue_throughput(benchmark):
    """Raw engine speed: schedule/execute 50k chained events."""
    def run():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 50_000:
                sim.after(10, tick)

        sim.at(0, tick)
        sim.run_until_idle()
        return count

    assert benchmark(run) == 50_000


def _cfg(engine):
    return SimConfig(
        topology="torus",
        topology_kwargs={"rows": 4, "cols": 4, "hosts_per_switch": 2},
        routing="itb", policy="rr", traffic="uniform",
        injection_rate=0.02, engine=engine,
        warmup_ps=ns(20_000), measure_ps=ns(120_000))


def test_packet_engine_run(benchmark):
    """End-to-end packet-level run on a 4x4 torus."""
    summary = benchmark(lambda: run_simulation(_cfg("packet")))
    assert summary.messages_delivered > 0


def test_flit_engine_run(benchmark):
    """Same run at flit fidelity (expect ~2 orders of magnitude slower
    per simulated nanosecond; this documents the trade-off)."""
    summary = benchmark.pedantic(lambda: run_simulation(_cfg("flit")),
                                 rounds=2, iterations=1)
    assert summary.messages_delivered > 0


def test_engines_agree(benchmark):
    """Cross-engine agreement measured as part of the bench suite."""
    def both():
        return (run_simulation(_cfg("packet")),
                run_simulation(_cfg("flit")))

    pkt, flit = benchmark.pedantic(both, rounds=1, iterations=1)
    benchmark.extra_info.update(
        packet_latency_ns=round(pkt.avg_latency_ns, 0),
        flit_latency_ns=round(flit.avg_latency_ns, 0))
    assert pkt.avg_latency_ns == pytest.approx(flit.avg_latency_ns,
                                               rel=0.08)

"""Figure 10: bit-reversal traffic on the torus and the express torus.

Paper claims: 2-D torus -- UP/DOWN 0.017, ITB-RR 0.032 ("throughput is
almost doubled"); express torus -- UP/DOWN 0.07, ITB-RR 0.11.
"""

from _bench_util import record_throughput

from repro.experiments import figures


def test_fig10a_torus_bitreversal(benchmark, profile):
    result = benchmark.pedantic(lambda: figures.fig10a(profile),
                                rounds=1, iterations=1)
    record_throughput(benchmark, result)
    thr = result.measured_throughput()
    # paper: x1.9; the bench profile's thinned rate grid clips the ITB
    # knee to the nearest grid point, so assert a conservative x1.4
    # (the PAPER profile reproduces the full factor, see EXPERIMENTS.md)
    assert thr["ITB-RR"] >= 1.4 * thr["UP/DOWN"], thr
    assert thr["ITB-SP"] >= 1.4 * thr["UP/DOWN"], thr


def test_fig10b_express_bitreversal(benchmark, profile):
    result = benchmark.pedantic(lambda: figures.fig10b(profile),
                                rounds=1, iterations=1)
    record_throughput(benchmark, result)
    thr = result.measured_throughput()
    # smaller but clear gains, as with uniform traffic
    assert thr["ITB-RR"] >= 1.2 * thr["UP/DOWN"], thr

"""Shared benchmark fixtures.

Every benchmark regenerates one paper artefact under the ``BENCH``
profile (reduced windows / thinned grids -- see
``repro/experiments/profiles.py``), records the headline numbers in
``benchmark.extra_info`` and asserts the paper's *qualitative* claims
(who wins, by roughly what factor).  The ``PAPER`` profile runs used for
EXPERIMENTS.md are driven by ``benchmarks/run_paper_profile.py``
instead, since they take minutes per artefact.

Graph and routing-table caches are shared across all benches in the
session (they are deterministic), which keeps total wall-clock sane.
"""

from __future__ import annotations

import pytest

from repro.experiments.profiles import BENCH


@pytest.fixture(scope="session")
def profile():
    """The fast bench profile (full 512-host topologies, short windows)."""
    return BENCH

"""Table 2: hotspot saturation throughput on the express torus.

Paper averages:

    3 % hotspot: UP/DOWN 0.0483, ITB-SP 0.0546 (x1.13), ITB-RR 0.0542 (x1.12)
    5 % hotspot: UP/DOWN 0.0334, ITB-SP 0.0363 (x1.08), ITB-RR 0.0359 (x1.07)

Qualitative claims: ITB gains on the express torus are *small* under
hotspots (the saturated links are express channels near the hotspot,
which ITB cannot relieve), ITB is hit harder than UP/DOWN relative to
its uniform throughput, yet never loses outright.
"""

import dataclasses

from _bench_util import record_table

from repro.experiments import tables


def test_table2_express_hotspot(benchmark, profile):
    # one location suffices for the bench profile on this slower topology
    prof = dataclasses.replace(profile, hotspot_locations=1)
    table = benchmark.pedantic(lambda: tables.table2(prof),
                               rounds=1, iterations=1)
    record_table(benchmark, table)
    avg = table.averages()
    gains = table.improvement_factors()

    for frac in (0.03, 0.05):
        # small gains / near parity -- not the x2 of uniform traffic
        assert gains[(frac, "ITB-SP")] >= 0.9
        assert gains[(frac, "ITB-RR")] >= 0.9
        assert gains[(frac, "ITB-RR")] <= 1.6

    # heavier hotspot load costs everyone throughput
    assert avg[(0.05, "UP/DOWN")] <= avg[(0.03, "UP/DOWN")]
    assert avg[(0.05, "ITB-RR")] <= avg[(0.03, "ITB-RR")]

"""Figure 9: link utilisation in the express torus at 0.066 (UP/DOWN's
saturation point).

Paper claims: UP/DOWN drives links near the root to ~50 % while the
rest idle; ITB-RR keeps all links under 30 %, with express channels
(~25 %) hotter than local links (~10 %) because they carry the long-haul
traffic.
"""

from _bench_util import record_linkmap

from repro.experiments import figures
from repro.experiments.runner import get_graph
from repro.topology.torus import switch_coords


def _is_express(g, link_id):
    """Express cables join switches two hops apart in one dimension."""
    link = g.links[link_id]
    r0, c0 = switch_coords(link.a, 8)
    r1, c1 = switch_coords(link.b, 8)
    dr = min(abs(r0 - r1), 8 - abs(r0 - r1))
    dc = min(abs(c0 - c1), 8 - abs(c0 - c1))
    return dr + dc == 2


def test_fig9_express_link_utilisation(benchmark, profile):
    results = benchmark.pedantic(lambda: figures.fig9(profile),
                                 rounds=1, iterations=1)
    record_linkmap(benchmark, results)
    updown, itb = results

    s_ud = updown.utilization.summary()
    s_itb = itb.utilization.summary()

    # UP/DOWN hot near the root; ITB-RR flat and cooler at the top end
    assert s_ud["max"] > 0.30
    assert s_itb["max"] < s_ud["max"]

    # paper: under ITB-RR the express channels are markedly more used
    # than the plain torus links
    g = get_graph("torus-express", {})
    express_util = []
    local_util = []
    for (src, dst, lid), u in zip(itb.utilization.channel_ends,
                                  itb.utilization.utilization):
        (express_util if _is_express(g, lid) else local_util).append(u)
    avg = lambda xs: sum(xs) / len(xs)
    benchmark.extra_info["itb_express_mean"] = round(avg(express_util), 3)
    benchmark.extra_info["itb_local_mean"] = round(avg(local_util), 3)
    # paper: express ~25% vs local ~10%; our gap is narrower (~1.5x)
    # because the balanced SP/RR tables spread more load onto local
    # links, but the ordering is robust
    assert avg(express_util) > 1.25 * avg(local_util)

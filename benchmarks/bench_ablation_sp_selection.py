"""Ablation: which alternative should the SP policy pin?

The paper only says ITB-SP "will always choose the same minimal path".
Three defensible choices for *which* path, all implemented:

* ``enumeration`` -- first minimal path found (lexicographic; what a
  naive table fill produces);
* ``balanced`` -- the alternative promoted by the simple_routes-style
  weight pass (our default; see `routing.itb.balance_first_alternatives`);
* ``fewest-itbs`` -- the alternative with the fewest in-transit hops
  (``sort_by_itbs=True``), minimising per-packet overhead at the price
  of path diversity.

The bench measures all three at a load near the paper's ITB-SP
saturation point.  Lexicographic selection collapses well below it --
the quantitative argument for the balancing pass documented in
DESIGN.md.
"""

from repro.config import SimConfig
from repro.experiments.runner import get_graph, run_simulation
from repro.routing.table import compute_tables

RATE = 0.028

VARIANTS = {
    "enumeration": dict(sort_by_itbs=False, balance_sp=False),
    "balanced": dict(sort_by_itbs=False, balance_sp=True),
    "fewest-itbs": dict(sort_by_itbs=True, balance_sp=False),
}


def _tables(variant):
    from repro.routing.itb import build_itb_routes
    from repro.routing.spanning_tree import build_spanning_tree
    from repro.routing.table import RoutingTables
    from repro.routing.updown import orient_links
    g = get_graph("torus", {})
    tree = build_spanning_tree(g, 0)
    ud = orient_links(g, 0, tree)
    routes = build_itb_routes(g, ud, max_routes_per_pair=10,
                              **VARIANTS[variant])
    return RoutingTables("itb", 0, ud, routes)


def test_sp_first_alternative_selection(benchmark, profile):
    def sweep():
        out = {}
        for variant in VARIANTS:
            cfg = SimConfig(topology="torus", routing="itb", policy="sp",
                            traffic="uniform", injection_rate=RATE,
                            warmup_ps=profile.warmup_ps,
                            measure_ps=profile.measure_ps)
            out[variant] = run_simulation(cfg, tables=_tables(variant))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for variant, s in results.items():
        benchmark.extra_info[f"accepted[{variant}]"] = round(
            s.accepted_flits_ns_switch, 4)
        benchmark.extra_info[f"itbs[{variant}]"] = round(
            s.avg_itbs_per_message or 0, 2)
        benchmark.extra_info[f"sat[{variant}]"] = s.saturated

    # the balanced pass is what makes ITB-SP competitive
    assert not results["balanced"].saturated
    assert results["balanced"].accepted_flits_ns_switch >= \
        results["enumeration"].accepted_flits_ns_switch
    # fewest-itbs really does use fewer in-transit hops per message
    assert results["fewest-itbs"].avg_itbs_per_message < \
        results["balanced"].avg_itbs_per_message

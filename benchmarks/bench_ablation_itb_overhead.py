"""Ablation: sensitivity to the in-transit forwarding overhead.

The paper measured 275 ns (detect) + 200 ns (DMA set-up) on real
hardware and names the per-hop overhead as "the critical part of this
mechanism"; its future work aims at reducing it.  This bench scales
both constants together (0.5x, 1x the paper, 4x, 16x) on the 2-D torus
under uniform traffic at a load where UP/DOWN has already saturated,
showing how much overhead margin the mechanism has before its advantage
erodes.
"""

from repro.config import PAPER_PARAMS, SimConfig
from repro.experiments.runner import run_simulation
from repro.units import ns

RATE = 0.025  # well above UP/DOWN's ~0.016 saturation


def run_with_overhead_scale(scale, profile):
    params = PAPER_PARAMS.with_overrides(
        itb_detect_ps=round(PAPER_PARAMS.itb_detect_ps * scale),
        itb_dma_setup_ps=round(PAPER_PARAMS.itb_dma_setup_ps * scale))
    cfg = SimConfig(topology="torus", routing="itb", policy="rr",
                    traffic="uniform", injection_rate=RATE, params=params,
                    warmup_ps=profile.warmup_ps,
                    measure_ps=profile.measure_ps)
    return run_simulation(cfg)


def test_itb_overhead_sensitivity(benchmark, profile):
    def sweep():
        return {scale: run_with_overhead_scale(scale, profile)
                for scale in (0.5, 1.0, 4.0, 16.0)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for scale, s in results.items():
        benchmark.extra_info[f"latency_ns[x{scale}]"] = round(
            s.avg_latency_ns, 0)
        benchmark.extra_info[f"accepted[x{scale}]"] = round(
            s.accepted_flits_ns_switch, 4)

    # at paper overheads the network sustains the load UP/DOWN cannot
    assert not results[1.0].saturated
    # halving the overhead buys little (it is not the bottleneck)
    assert results[0.5].avg_latency_ns >= 0.9 * results[1.0].avg_latency_ns
    # the mechanism tolerates 4x the measured overhead
    assert not results[4.0].saturated
    # latency responds monotonically to the overhead scale
    assert results[16.0].avg_latency_ns > results[1.0].avg_latency_ns

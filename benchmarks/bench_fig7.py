"""Figure 7: latency vs accepted traffic under uniform traffic.

Paper claims (saturation throughput, flits/ns/switch):

* 7a 2-D torus:        UP/DOWN 0.015, ITB-SP 0.029, ITB-RR 0.032
  ("both routing schemes using in-transit buffers double the
  throughput achieved by the original Myrinet routing algorithm")
* 7b torus + express:  UP/DOWN 0.07,  ITB-SP 0.12,  ITB-RR 0.11
  (ITB gain slightly smaller: x1.7 for ITB-SP)
* 7c CPLANT:           UP/DOWN 0.05,  ITB-RR 0.095 (roughly doubled)
"""

from _bench_util import record_throughput

from repro.experiments import figures


def _winner_check(result, min_factor):
    thr = result.measured_throughput()
    assert thr["ITB-RR"] >= min_factor * thr["UP/DOWN"], thr
    assert thr["ITB-SP"] >= min_factor * thr["UP/DOWN"], thr


def test_fig7a_torus_uniform(benchmark, profile):
    result = benchmark.pedantic(lambda: figures.fig7a(profile),
                                rounds=1, iterations=1)
    record_throughput(benchmark, result)
    # the headline "doubles the throughput" claim (with slack for the
    # reduced bench windows)
    _winner_check(result, min_factor=1.6)


def test_fig7b_express_uniform(benchmark, profile):
    result = benchmark.pedantic(lambda: figures.fig7b(profile),
                                rounds=1, iterations=1)
    record_throughput(benchmark, result)
    # paper: gains are smaller here but ITB still wins clearly
    _winner_check(result, min_factor=1.25)
    # express channels lift everyone well above the plain torus
    assert result.measured_throughput()["UP/DOWN"] >= 0.04


def test_fig7c_cplant_uniform(benchmark, profile):
    result = benchmark.pedantic(lambda: figures.fig7c(profile),
                                rounds=1, iterations=1)
    record_throughput(benchmark, result)
    _winner_check(result, min_factor=1.2)

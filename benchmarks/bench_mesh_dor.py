"""Extension: dimension-order routing as a third baseline on a mesh.

On an 8x8 mesh (the torus without wraparound), XY dimension-order
routing is minimal and deadlock-free without virtual channels.
Comparing DOR / UP/DOWN / ITB-RR there isolates what drives the paper's
torus result: **minimal-path diversity from the wraparound links**.  On
a mesh there is little such diversity, so ITB routing only matches
up*/down* (~0.018 flits/ns/switch knee), while rootless DOR -- whose XY
rule spreads load evenly with no spanning-tree hot corner -- clearly
beats both (~0.026).  Together with Figure 7a this brackets the
mechanism: ITB wins exactly where alternative minimal paths exist for
it to exploit.
"""

from repro.config import SimConfig
from repro.experiments.runner import get_graph, run_simulation
from repro.experiments.sweep import sweep_rates
from repro.routing.dor import compute_dor_tables

MESH_KW = {"rows": 8, "cols": 8, "hosts_per_switch": 8}
RATES = [0.006, 0.010, 0.014, 0.018, 0.022, 0.027, 0.032]


def test_mesh_three_way_comparison(benchmark, profile):
    g = get_graph("mesh", MESH_KW)
    dor_tables = compute_dor_tables(g, 8, 8, wrap=False)

    def sweep():
        out = {}
        base = SimConfig(topology="mesh", topology_kwargs=MESH_KW,
                         traffic="uniform",
                         warmup_ps=profile.warmup_ps,
                         measure_ps=profile.measure_ps)
        # full grid: the conclusion is a three-way knee comparison
        out["UP/DOWN"] = sweep_rates(
            base.with_overrides(routing="updown", policy="sp"), RATES)
        out["ITB-RR"] = sweep_rates(
            base.with_overrides(routing="itb", policy="rr"), RATES)
        out["DOR"] = sweep_rates(
            base.with_overrides(routing="itb", policy="sp"), RATES,
            tables=dor_tables)
        return out

    curves = benchmark.pedantic(sweep, rounds=1, iterations=1)
    thr = {k: v.throughput() for k, v in curves.items()}
    for k, v in thr.items():
        benchmark.extra_info[f"throughput[{k}]"] = round(v, 4)

    # rootless DOR beats both spanning-tree-based schemes on the mesh
    assert thr["DOR"] >= 1.15 * thr["UP/DOWN"], thr
    assert thr["DOR"] >= 1.15 * thr["ITB-RR"], thr
    # without wraparound path diversity, ITB only matches UP/DOWN --
    # the ITB advantage on the torus comes from the alternative minimal
    # paths the wraparound provides
    assert thr["ITB-RR"] >= 0.9 * thr["UP/DOWN"], thr
    assert thr["ITB-RR"] <= 1.35 * thr["UP/DOWN"], thr

"""Extension: in-transit buffers on *irregular* topologies.

The ITB mechanism was originally proposed for irregular NOWs
(references [5, 6] of the paper), where up*/down* forbids far more
minimal paths than on regular fabrics.  This bench replays that earlier
result on our random irregular generator: the UP/DOWN minimal-path
fraction drops well below the torus's 80 %, and ITB's throughput gain
is at least as large as on the torus.
"""

from repro.config import SimConfig
from repro.experiments.runner import run_simulation
from repro.experiments.sweep import sweep_rates
from repro.routing.analysis import route_statistics
from repro.routing.table import compute_tables
from repro.topology import build_irregular

TOPO_KW = {"num_switches": 32, "hosts_per_switch": 8,
           "max_switch_links": 4, "seed": 11}
RATES = [0.004, 0.008, 0.012, 0.017, 0.023, 0.03, 0.04]


def test_irregular_route_quality(benchmark):
    def compute():
        g = build_irregular(**TOPO_KW)
        return (route_statistics(g, compute_tables(g, "updown")),
                route_statistics(g, compute_tables(g, "itb")))

    ud, itb = benchmark.pedantic(compute, rounds=1, iterations=1)
    benchmark.extra_info.update(
        updown_minimal=round(ud.fraction_minimal, 3),
        updown_dist=round(ud.avg_distance_sp, 2),
        itb_dist=round(itb.avg_distance_sp, 2),
        itbs_rr=round(itb.avg_itbs_rr, 2))
    assert itb.fraction_minimal == 1.0
    assert ud.avg_distance_sp > itb.avg_distance_sp


def test_irregular_throughput_gain(benchmark, profile):
    def sweep():
        out = {}
        for routing, policy in (("updown", "sp"), ("itb", "rr")):
            base = SimConfig(topology="irregular", topology_kwargs=TOPO_KW,
                             routing=routing, policy=policy,
                             traffic="uniform",
                             warmup_ps=profile.warmup_ps,
                             measure_ps=profile.measure_ps)
            out[routing] = sweep_rates(base, profile.thin(RATES))
        return out

    curves = benchmark.pedantic(sweep, rounds=1, iterations=1)
    thr = {k: v.throughput() for k, v in curves.items()}
    benchmark.extra_info.update(
        {f"throughput[{k}]": round(v, 4) for k, v in thr.items()})
    # the original papers report large gains on irregular networks
    assert thr["itb"] >= 1.3 * thr["updown"], thr

"""Figure 8: link utilisation in the 2-D torus under uniform traffic.

Paper claims at 0.015 flits/ns/switch (UP/DOWN's saturation point):
links near the root reach ~50 % utilisation under UP/DOWN while 65 % of
links stay below 10 %; under ITB-RR every link stays below 12 %.  At
0.03, ITB-RR links range 14--29 %.
"""

from _bench_util import record_linkmap

from repro.experiments import figures


def test_fig8_torus_link_utilisation(benchmark, profile):
    results = benchmark.pedantic(lambda: figures.fig8(profile),
                                 rounds=1, iterations=1)
    record_linkmap(benchmark, results)
    updown, itb_lo, itb_hi = results

    s_ud = updown.utilization.summary()
    s_lo = itb_lo.utilization.summary()
    s_hi = itb_hi.utilization.summary()

    # UP/DOWN at its saturation point: hot spine near the root with a
    # large cold majority
    assert s_ud["max"] > 0.30
    assert s_ud["frac_below_10pct"] > 0.40

    # ITB-RR at the same rate: everything cool and flat
    assert s_lo["max"] < 0.20
    assert s_lo["max"] < s_ud["max"] / 2

    # ITB-RR at twice the rate: warmer but still flatter than UP/DOWN
    assert s_hi["mean"] > s_lo["mean"]
    assert s_hi["max"] < s_ud["max"] + 0.10

    # the hottest UP/DOWN channel must touch the root's vicinity
    hottest = updown.utilization.hottest(1)[0]
    _, src, dst, _ = hottest
    root_zone = {0, 1, 8, 9, 2, 16, 7, 56, 57, 63, 15}  # root + neighbours
    assert src in root_zone or dst in root_zone

"""Ablation: spanning-tree root placement.

Up*/down*'s weakness is that traffic concentrates near the root.  On a
vertex-transitive torus the root's *position* should not matter (every
placement is equivalent up to symmetry) -- a useful self-check of the
simulator -- while on the irregular CPLANT fabric the placement choice
changes the congestion structure and hence UP/DOWN's throughput.  ITB
routing should be largely insensitive on both (it avoids the root).
"""

from repro.config import SimConfig
from repro.experiments.runner import get_graph, run_simulation
from repro.routing.table import compute_tables


def run_with_root(topology, routing, policy, rate, root, profile):
    g = get_graph(topology, {})
    tables = compute_tables(g, routing, root=root)
    cfg = SimConfig(topology=topology, routing=routing, policy=policy,
                    traffic="uniform", injection_rate=rate,
                    warmup_ps=profile.warmup_ps,
                    measure_ps=profile.measure_ps)
    return run_simulation(cfg, tables=tables)


def test_root_placement_torus_symmetric(benchmark, profile):
    """UP/DOWN throughput on the torus is root-invariant (symmetry)."""
    def sweep():
        return {root: run_with_root("torus", "updown", "sp", 0.014,
                                    root, profile)
                for root in (0, 27, 63)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    values = [s.accepted_flits_ns_switch for s in results.values()]
    for root, s in results.items():
        benchmark.extra_info[f"accepted[root={root}]"] = round(
            s.accepted_flits_ns_switch, 4)
    assert max(values) - min(values) <= 0.15 * max(values)


def test_root_placement_cplant_matters_for_updown(benchmark, profile):
    """On CPLANT the root's group shapes UP/DOWN congestion; ITB-RR
    stays insensitive."""
    def sweep():
        out = {}
        for root in (0, 25, 48):  # root group, middle group, spare switch
            out[("updown", root)] = run_with_root(
                "cplant", "updown", "sp", 0.055, root, profile)
            out[("itb", root)] = run_with_root(
                "cplant", "itb", "rr", 0.055, root, profile)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for (scheme, root), s in results.items():
        benchmark.extra_info[f"latency[{scheme},root={root}]"] = round(
            s.avg_latency_ns, 0)
        benchmark.extra_info[f"sat[{scheme},root={root}]"] = s.saturated
    itb_lat = [results[("itb", r)].avg_latency_ns for r in (0, 25, 48)]
    # ITB's latency varies little with the root placement
    assert max(itb_lat) <= 1.3 * min(itb_lat)

"""Table 1: hotspot saturation throughput on the 2-D torus.

Paper averages over 10 hotspot locations (flits/ns/switch):

    5 % hotspot:  UP/DOWN 0.0125, ITB-SP 0.0267 (x2.13), ITB-RR 0.0274 (x2.19)
    10 % hotspot: UP/DOWN 0.0123, ITB-SP 0.0173 (x1.40), ITB-RR 0.0183 (x1.48)

The key qualitative claims: UP/DOWN is *barely* affected by the hotspot
(its root is already the bigger hotspot), ITB gains shrink as the
hotspot load grows, but ITB stays well ahead at both loads.
"""

from _bench_util import record_table

from repro.experiments import tables


def test_table1_torus_hotspot(benchmark, profile):
    table = benchmark.pedantic(lambda: tables.table1(profile),
                               rounds=1, iterations=1)
    record_table(benchmark, table)
    avg = table.averages()
    gains = table.improvement_factors()

    # ITB wins clearly at 5% (paper: x2.13 / x2.19; the bench profile's
    # single-step bisection quantises the knee, so assert x1.35+)
    assert gains[(0.05, "ITB-SP")] >= 1.35
    assert gains[(0.05, "ITB-RR")] >= 1.35
    # ...and still wins at 10%, by less
    assert gains[(0.10, "ITB-SP")] >= 1.15
    assert gains[(0.10, "ITB-RR")] >= 1.15
    assert gains[(0.10, "ITB-RR")] <= gains[(0.05, "ITB-RR")]

    # UP/DOWN barely notices the hotspot: within ~35% of its uniform
    # throughput (~0.016 at bench windows)
    assert avg[(0.05, "UP/DOWN")] >= 0.010
    assert avg[(0.10, "UP/DOWN")] >= 0.010

"""Ablation: how many alternative routes per pair does ITB-RR need?

The paper caps the routing table at 10 alternatives per pair "to avoid
using a huge table that may result in a long look-up delay" but never
studies the knob.  This bench sweeps the cap (1, 2, 4, 10) on the 2-D
torus under uniform traffic at a load between the ITB-SP and ITB-RR
saturation points, quantifying the diminishing returns of table size.
A cap of 1 turns RR into SP by construction.
"""

from repro.config import SimConfig
from repro.experiments.runner import get_graph, run_simulation
from repro.routing.table import compute_tables

RATE = 0.028


def run_with_cap(cap, profile):
    g = get_graph("torus", {})
    tables = compute_tables(g, "itb", max_routes_per_pair=cap)
    cfg = SimConfig(topology="torus", routing="itb", policy="rr",
                    traffic="uniform", injection_rate=RATE,
                    warmup_ps=profile.warmup_ps,
                    measure_ps=profile.measure_ps)
    return run_simulation(cfg, tables=tables)


def test_route_cap_sweep(benchmark, profile):
    def sweep():
        return {cap: run_with_cap(cap, profile) for cap in (1, 2, 4, 10)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for cap, s in results.items():
        benchmark.extra_info[f"accepted[cap={cap}]"] = round(
            s.accepted_flits_ns_switch, 4)
        benchmark.extra_info[f"latency_ns[cap={cap}]"] = round(
            s.avg_latency_ns, 0)
        benchmark.extra_info[f"saturated[cap={cap}]"] = s.saturated

    # more alternatives must never hurt accepted traffic materially
    assert results[10].accepted_flits_ns_switch >= \
        0.9 * results[1].accepted_flits_ns_switch
    # and the full table sustains this load
    assert not results[10].saturated

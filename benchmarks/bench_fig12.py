"""Figure 12: local traffic (destinations at most 3 switches away).

Paper claims: gains are small under local traffic because up*/down* is
minimal at short range and the load is naturally balanced --
2-D torus: UP/DOWN ~0.10 vs ITB ~0.13; express torus: UP/DOWN performs
*as* ITB-RR; CPLANT: small benefits.  Crucially, ITB never *hurts*:
"the in-transit buffer mechanism does not decrease UP/DOWN performance".
"""

from _bench_util import record_throughput

from repro.experiments import figures


def test_fig12a_torus_local(benchmark, profile):
    result = benchmark.pedantic(lambda: figures.fig12a(profile),
                                rounds=1, iterations=1)
    record_throughput(benchmark, result)
    thr = result.measured_throughput()
    # modest but real gain on the torus (paper: x1.3)
    assert thr["ITB-SP"] >= 1.05 * thr["UP/DOWN"], thr
    assert thr["ITB-RR"] >= 1.05 * thr["UP/DOWN"], thr
    # and visibly below the x2 of uniform traffic
    assert thr["ITB-RR"] <= 1.9 * thr["UP/DOWN"], thr


def test_fig12b_express_local(benchmark, profile):
    result = benchmark.pedantic(lambda: figures.fig12b(profile),
                                rounds=1, iterations=1)
    record_throughput(benchmark, result)
    thr = result.measured_throughput()
    # near-parity: ITB does not decrease UP/DOWN performance
    assert thr["ITB-RR"] >= 0.85 * thr["UP/DOWN"], thr
    assert thr["ITB-SP"] >= 0.85 * thr["UP/DOWN"], thr


def test_fig12c_cplant_local(benchmark, profile):
    result = benchmark.pedantic(lambda: figures.fig12c(profile),
                                rounds=1, iterations=1)
    record_throughput(benchmark, result)
    thr = result.measured_throughput()
    assert thr["ITB-RR"] >= 0.85 * thr["UP/DOWN"], thr


def test_fig12_radius4_variant(benchmark, profile):
    """Section 4.2 also studies a 4-switch radius; the qualitative
    picture (small gains, no regression) must persist."""
    result = benchmark.pedantic(
        lambda: figures.fig12a(profile, radius=4), rounds=1, iterations=1)
    record_throughput(benchmark, result)
    thr = result.measured_throughput()
    assert thr["ITB-RR"] >= 0.9 * thr["UP/DOWN"], thr

"""Canonical freezing and hashing of plain-data values.

Two consumers need an order- and representation-insensitive view of
nested keyword arguments:

* the runner's graph/table memo caches key on frozen ``topology_kwargs``
  (which may contain nested dicts and lists);
* the orchestrator's result store keys cache entries on a SHA-256 of
  the full point description (config + runner kwargs + code version).

Both go through this module so a config hashes identically no matter
where it was built.  ``freeze`` produces a hashable tuple tree for
in-memory dict keys; ``canonical_json`` produces a byte-stable JSON
encoding (sorted keys, no whitespace) for on-disk keys.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

__all__ = ["freeze", "canonical_json", "digest"]


def freeze(value: Any) -> Any:
    """Recursively convert ``value`` into a hashable canonical form.

    Mappings become key-sorted ``(key, value)`` tuples, sequences and
    sets become tuples (sets are sorted by repr for a stable order);
    scalars pass through.  Two equal nested structures freeze to equal
    (and equally-hashable) values regardless of insertion order.
    """
    if isinstance(value, Mapping):
        return tuple(sorted(((str(k), freeze(v)) for k, v in value.items()),
                            key=lambda kv: kv[0]))
    if isinstance(value, (list, tuple)):
        return tuple(freeze(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted((freeze(v) for v in value), key=repr))
    return value


def _plain(value: Any) -> Any:
    """JSON-encodable mirror of ``freeze``'s normalisation."""
    if isinstance(value, Mapping):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted((_plain(v) for v in value), key=repr)
    return value


def canonical_json(value: Any) -> str:
    """Byte-stable JSON: sorted keys, compact separators.

    Floats round-trip exactly through Python's JSON (repr-based), so a
    value hashed here and later re-read from disk re-hashes to the same
    digest.
    """
    return json.dumps(_plain(value), sort_keys=True,
                      separators=(",", ":"))


def digest(value: Any) -> str:
    """SHA-256 hex digest of the canonical JSON encoding."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()

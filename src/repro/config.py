"""Configuration dataclasses for the Myrinet network model and simulation runs.

:class:`MyrinetParams` carries every hardware timing constant used by the
paper's evaluation (Sections 4.3--4.5).  The defaults reproduce the paper
exactly; individual fields can be overridden for the sensitivity/ablation
studies in ``benchmarks/``.

:class:`SimConfig` describes one simulation run: topology, routing scheme,
path-selection policy, traffic pattern, injection rate, message length and
the warm-up / measurement windows.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, Mapping

from .traffic.defaults import DEFAULT_ARRIVAL, DEFAULT_PATTERN
from .units import KB, ns


@dataclass(frozen=True)
class MyrinetParams:
    """Hardware timing/sizing constants of the simulated Myrinet network.

    All times are integer picoseconds (see :mod:`repro.units`), all sizes
    are bytes.  One flit is one byte; links are one flit wide.
    """

    #: time for one flit to be injected into a physical channel (160 MB/s)
    flit_cycle_ps: int = ns(6.25)
    #: propagation delay of one 10 m LAN cable (4.92 ns/m * 10 m)
    link_prop_ps: int = ns(49.2)
    #: first-flit latency through a switch once the output port is granted
    routing_delay_ps: int = ns(150.0)
    #: slack (input) buffer capacity per switch port, bytes
    slack_buffer_bytes: int = 80
    #: stop&go: send *stop* when the input buffer fills over this level
    stop_threshold_bytes: int = 56
    #: stop&go: send *go* when the input buffer empties below this level
    go_threshold_bytes: int = 40
    #: time for an in-transit host to recognise an in-transit packet
    #: (44 bytes received at link rate)
    itb_detect_ps: int = ns(275.0)
    #: time to program the DMA that re-injects an in-transit packet
    #: (32 additional bytes received)
    itb_dma_setup_ps: int = ns(200.0)
    #: capacity of the in-transit buffer pool at each interface card
    itb_pool_bytes: int = 90 * KB
    #: extra delay applied to an in-transit packet when the NIC pool
    #: overflows and the packet must be staged through host memory
    itb_overflow_penalty_ps: int = ns(2000.0)
    #: NIC buffer memory (LANai card, informational)
    nic_memory_bytes: int = 4 * 1024 * KB
    #: number of ports per switch
    switch_ports: int = 16
    #: maximum number of alternative routes kept per source-destination pair
    max_routes_per_pair: int = 10

    def with_overrides(self, **kw: Any) -> "MyrinetParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **kw)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-safe; all fields are ints)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MyrinetParams":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown MyrinetParams fields {sorted(unknown)}")
        return cls(**dict(data))

    @property
    def header_type_bytes(self) -> int:
        """Bytes of packet-type information carried after the route flits."""
        return 2

    def header_bytes(self, switch_hops: int) -> int:
        """Header length for a path traversing ``switch_hops`` switches.

        Myrinet headers hold one output-link flit per switch traversed
        (consumed hop by hop) plus the payload type field.
        """
        return switch_hops + self.header_type_bytes

    def validate(self) -> None:
        """Raise :class:`ValueError` on physically meaningless settings."""
        if self.flit_cycle_ps <= 0:
            raise ValueError("flit_cycle_ps must be positive")
        if self.link_prop_ps < 0:
            raise ValueError("link_prop_ps must be non-negative")
        if self.routing_delay_ps < 0:
            raise ValueError("routing_delay_ps must be non-negative")
        if not (0 < self.go_threshold_bytes <= self.stop_threshold_bytes
                <= self.slack_buffer_bytes):
            raise ValueError(
                "need 0 < go <= stop <= slack buffer capacity, got "
                f"go={self.go_threshold_bytes} stop={self.stop_threshold_bytes} "
                f"slack={self.slack_buffer_bytes}")
        if self.switch_ports < 2:
            raise ValueError("switches need at least 2 ports")
        if self.max_routes_per_pair < 1:
            raise ValueError("max_routes_per_pair must be >= 1")


#: The exact parameter set used throughout the paper's evaluation.
PAPER_PARAMS = MyrinetParams()


@dataclass(frozen=True)
class SimConfig:
    """Full description of one simulation run.

    ``topology`` names a builder registered in :mod:`repro.topology`
    (``"torus"``, ``"torus-express"``, ``"cplant"``, ``"irregular"``) and
    ``topology_kwargs`` are forwarded to it.  ``routing`` names a scheme
    registered in :mod:`repro.routing.schemes` (``"updown"`` and
    ``"itb"`` are the paper's; ``"updown-opt"``, ``"outflank"`` and
    ``"dor"`` are extension rivals) and ``policy`` the path selection
    among alternatives (``"sp"``, ``"rr"``, ``"random"``,
    ``"adaptive"``; single-path schemes ignore it).

    ``traffic`` names a destination pattern and ``arrival`` an arrival
    process, both registered in :mod:`repro.traffic.registry`;
    ``traffic_kwargs`` / ``arrival_kwargs`` are validated against the
    registry's declared keyword arguments, so new workloads need no
    config edits.

    ``injection_rate`` is offered load in **flits/ns/switch**, the unit of
    the paper's plots; each host generates fixed-size messages at that
    mean rate (the arrival process redistributes the firings in time but
    preserves the mean) so the per-switch aggregate equals this value.

    ``engine`` names a backend registered in :mod:`repro.sim.engines`:
    ``"packet"`` (the fast wormhole model used for all paper-scale runs)
    or ``"flit"`` (explicit slack buffers and stop&go; orders of
    magnitude slower, for validation on small networks).  Both expose
    the same :class:`~repro.sim.base.NetworkModel` surface, including
    link statistics, ITB pool accounting and tracing.
    """

    topology: str = "torus"
    topology_kwargs: Mapping[str, Any] = field(default_factory=dict)
    routing: str = "updown"
    policy: str = "sp"
    traffic: str = DEFAULT_PATTERN
    traffic_kwargs: Mapping[str, Any] = field(default_factory=dict)
    #: arrival process registered in :mod:`repro.traffic` (``"constant"``
    #: is the paper's load model; ``"poisson"``, ``"onoff"``, ``"burst"``
    #: and ``"adversarial"`` redistribute the same mean rate in time)
    arrival: str = DEFAULT_ARRIVAL
    arrival_kwargs: Mapping[str, Any] = field(default_factory=dict)
    injection_rate: float = 0.01
    message_bytes: int = 512
    params: MyrinetParams = PAPER_PARAMS
    seed: int = 1
    warmup_ps: int = ns(100_000)
    measure_ps: int = ns(400_000)
    #: optional hard cap on generated messages (0 = unlimited)
    max_messages: int = 0
    #: simulation fidelity: "packet" (fast) or "flit" (validation)
    engine: str = "packet"

    def validate(self) -> None:
        """Sanity-check the run description."""
        self.params.validate()
        if self.injection_rate <= 0:
            raise ValueError("injection_rate must be positive")
        if self.message_bytes <= 0:
            raise ValueError("message_bytes must be positive")
        if self.warmup_ps < 0 or self.measure_ps <= 0:
            raise ValueError("warmup must be >= 0 and measure window > 0")
        # imported lazily: repro.routing imports this module at load time
        from .routing.schemes import available_schemes
        if self.routing not in available_schemes():
            raise ValueError(
                f"unknown routing scheme {self.routing!r}; available: "
                f"{', '.join(available_schemes())}")
        # imported lazily: repro.traffic imports the sim core, which
        # imports this module at load time
        from .traffic.registry import validate_workload
        validate_workload(self.traffic, self.traffic_kwargs,
                          self.arrival, self.arrival_kwargs)
        if self.policy not in ("sp", "rr", "random", "adaptive"):
            raise ValueError(f"unknown selection policy {self.policy!r}")
        # imported lazily: repro.sim imports this module at load time
        from .sim.engines import available_engines
        if self.engine not in available_engines():
            raise ValueError(
                f"unknown engine {self.engine!r}; available: "
                f"{', '.join(available_engines())}")

    def label(self) -> str:
        """Short human-readable label (used in reports and benches).

        Delegates to the scheme registry so new schemes carry their own
        labels; unregistered names (tests) fall back to the raw name.
        """
        from .routing.schemes import scheme_label
        try:
            return scheme_label(self.routing, self.policy)
        except ValueError:
            return self.routing

    def workload_label(self) -> str:
        """Label of the traffic side, e.g. ``hotspot@3(10%)+onoff``.

        Delegates to the traffic registry so new patterns/processes
        carry their own labels; unregistered names (tests) fall back to
        the raw pattern name.
        """
        from .traffic.registry import workload_label
        try:
            return workload_label(self.traffic, self.traffic_kwargs,
                                  self.arrival, self.arrival_kwargs)
        except ValueError:
            return self.traffic

    def with_overrides(self, **kw: Any) -> "SimConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kw)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form, JSON-safe; ``params`` is nested.

        The round trip ``SimConfig.from_dict(cfg.to_dict()) == cfg``
        holds exactly (all fields are ints, floats, strings or plain
        containers), which is what lets the orchestrator's result store
        key on, and faithfully reconstruct, run descriptions.
        """
        return {
            "topology": self.topology,
            "topology_kwargs": dict(self.topology_kwargs),
            "routing": self.routing,
            "policy": self.policy,
            "traffic": self.traffic,
            "traffic_kwargs": dict(self.traffic_kwargs),
            "arrival": self.arrival,
            "arrival_kwargs": dict(self.arrival_kwargs),
            "injection_rate": self.injection_rate,
            "message_bytes": self.message_bytes,
            "params": self.params.to_dict(),
            "seed": self.seed,
            "warmup_ps": self.warmup_ps,
            "measure_ps": self.measure_ps,
            "max_messages": self.max_messages,
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimConfig":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        d = dict(data)
        params = d.pop("params", None)
        known = {f.name for f in fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown SimConfig fields {sorted(unknown)}")
        if params is not None:
            d["params"] = MyrinetParams.from_dict(params)
        return cls(**d)

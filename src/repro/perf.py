"""Performance instrumentation for the simulation core.

Three small pieces, all opt-in (zero overhead on the default path):

* :class:`PerfReport` -- wall-clock and throughput snapshot of one
  ``run_simulation`` call (events/sec, messages/sec, setup vs event-loop
  split).  Deliberately *not* part of :class:`~repro.metrics.summary.
  RunSummary`: run summaries are simulation results (deterministic,
  cacheable, machine-independent), while perf numbers describe the host
  that produced them.
* :class:`PerfRecorder` -- the sink ``run_simulation(perf=...)`` fills.
* :func:`profile_to` -- context manager capturing a :mod:`cProfile`
  trace of the wrapped block into a binary stats file (inspect with
  ``python -m pstats FILE`` or :class:`pstats.Stats`).

``benchmarks/run_paper_profile.py`` builds its ``BENCH_sim_core.json``
from these reports; ``scripts/check_bench_regression.py`` compares two
such files in CI.
"""

from __future__ import annotations

import cProfile
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional


@dataclass(frozen=True)
class PerfReport:
    """Host-side cost of one simulation run.

    ``sim_wall_s`` covers the event loop only (warm-up + measurement);
    ``setup_wall_s`` the topology/table/network construction that
    preceded it (zero when served from the memo caches); ``wall_s`` the
    whole ``run_simulation`` call.  ``events`` and
    ``messages_delivered`` count the full run, so the rates are
    loop-throughput figures, not measurement-window statistics.
    """

    wall_s: float
    setup_wall_s: float
    sim_wall_s: float
    events: int
    messages_delivered: int
    sim_time_ps: int

    @property
    def events_per_s(self) -> float:
        return self.events / self.sim_wall_s if self.sim_wall_s > 0 else 0.0

    @property
    def messages_per_s(self) -> float:
        return (self.messages_delivered / self.sim_wall_s
                if self.sim_wall_s > 0 else 0.0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "wall_s": round(self.wall_s, 6),
            "setup_wall_s": round(self.setup_wall_s, 6),
            "sim_wall_s": round(self.sim_wall_s, 6),
            "events": self.events,
            "events_per_s": round(self.events_per_s, 1),
            "messages_delivered": self.messages_delivered,
            "messages_per_s": round(self.messages_per_s, 1),
            "sim_time_ps": self.sim_time_ps,
        }

    def oneline(self) -> str:
        return (f"wall {self.wall_s:.3f}s (setup {self.setup_wall_s:.3f}s "
                f"+ loop {self.sim_wall_s:.3f}s), "
                f"{self.events} events ({self.events_per_s:,.0f}/s), "
                f"{self.messages_delivered} messages "
                f"({self.messages_per_s:,.0f}/s)")


class PerfRecorder:
    """Mutable sink for ``run_simulation(perf=...)``.

    After the call, :attr:`report` holds the :class:`PerfReport`.  A
    recorder can be reused; each run overwrites the report.
    """

    __slots__ = ("report",)

    def __init__(self) -> None:
        self.report: Optional[PerfReport] = None

    def record(self, *, wall_s: float, setup_wall_s: float,
               sim_wall_s: float, events: int, messages_delivered: int,
               sim_time_ps: int) -> PerfReport:
        self.report = PerfReport(
            wall_s=wall_s, setup_wall_s=setup_wall_s,
            sim_wall_s=sim_wall_s, events=events,
            messages_delivered=messages_delivered,
            sim_time_ps=sim_time_ps)
        return self.report


@contextmanager
def profile_to(path: Optional[str]) -> Iterator[None]:
    """Capture a cProfile trace of the block into ``path``.

    No-op when ``path`` is falsy, so call sites can pass the optional
    flag straight through.  The file is binary pstats data::

        python -m pstats profile.out   # interactive
        python -c "import pstats; pstats.Stats('profile.out') \\
            .sort_stats('tottime').print_stats(20)"
    """
    if not path:
        yield
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        profiler.dump_stats(path)


now = time.perf_counter  # short alias for instrumentation call sites

"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``info <topology>``
    Topology facts and routing-table statistics (UP/DOWN vs ITB).

``run``
    One simulation; prints the run summary and, with ``--links``, the
    link-utilisation snapshot.

``sweep``
    A latency-vs-traffic curve over a list of injection rates.

``experiment <id>``
    Regenerate one paper artefact (``fig7a`` ... ``table3``) under a
    profile and print the rendered report.

``resilience``
    Graceful-degradation table: saturation throughput vs injected
    (static) link failures.

``recovery``
    Recovery table: a cable dies mid-run with reliable delivery on;
    compares the static blacklist against online reconfiguration
    (``--strict`` fails on permanent losses, for CI smokes).

``tournament``
    Cross-scheme arena: every (scheme, topology, traffic pattern) cell
    measured for saturation throughput, latency knee, p99 latency and
    (with ``--failures``) retention under link failures.

``schemes``
    The routing-scheme registry with capability declarations.

``traffic``
    The traffic registry: destination patterns and arrival processes
    with their capability declarations and keyword arguments.

``list``
    The experiment registry.

``cache {info,clear,compact}``
    Inspect, empty or compact the orchestrator's on-disk result store
    (``compact`` rebuilds ``index.json``, prunes corrupt records and
    removes empty shard directories).

``fabric worker``
    A remote campaign worker: listens on ``--listen host:port`` and
    executes tasks leased to it by a coordinator (any command run with
    ``--fabric``).  With ``--tls --tls-cert PEM --tls-key PEM`` every
    session is TLS-wrapped; the coordinator pins the matching bundle
    with ``--tls-ca PEM``.

``chaos``
    Robustness acceptance drill: boots two localhost fabric workers,
    runs a sweep through a deterministic chaos proxy (dropped, delayed,
    corrupted, torn, reset and replayed frames; optionally SIGKILLs a
    worker mid-campaign with ``--kill-one``) and asserts the result is
    bit-identical to the same sweep run sequentially in-process.

``serve``
    Long-running HTTP service: accepts campaign specs on
    ``POST /campaign`` and streams NDJSON progress/results, sharing
    one warm result store across requests.

``sweep`` and ``experiment`` accept ``--workers N`` (parallel worker
pool) or ``--fabric host:port,...`` (remote fabric workers),
``--cache-dir`` and ``--no-cache`` (result store); a repeated
invocation of a completed campaign is served entirely from the store.

Examples::

    python -m repro info torus
    python -m repro run --topology cplant --routing itb --policy rr \
        --traffic uniform --rate 0.05
    python -m repro sweep --routing updown --rates 0.005,0.01,0.015,0.02
    python -m repro sweep --workers 4 --rates 0.005,0.01,0.02,0.03
    python -m repro experiment fig7a --profile bench --workers 4
    python -m repro fabric worker --listen 127.0.0.1:7101   # on each box
    python -m repro sweep --fabric 127.0.0.1:7101,127.0.0.1:7102 \
        --rates 0.005,0.01,0.02,0.03
    python -m repro serve --port 8651
    python -m repro cache info
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .config import SimConfig
from .experiments.profiles import BENCH, PAPER, TEST, Profile
from .experiments.registry import EXPERIMENTS, run_experiment
from .experiments.report import (render_figure, render_hotspot_table,
                                 render_link_map)
from .experiments.runner import get_graph, get_tables, run_simulation
from .experiments.sweep import sweep_rates
from .orchestrator import (DEFAULT_CACHE_DIR, Executor, ProgressReporter,
                           ResultStore)
from .resilience import (render_recovery_table, render_resilience_table,
                         run_recovery, run_resilience)
from .routing.analysis import route_statistics
from .routing.schemes import (available_schemes, describe_schemes,
                              supported_schemes)
from .sim.engines import available_engines
from .traffic.defaults import DEFAULT_ARRIVAL, DEFAULT_PATTERN
from .traffic.registry import (arrival_cli_kwargs, available_arrivals,
                               available_patterns, describe_arrivals,
                               describe_patterns, get_pattern_spec,
                               pattern_cli_kwargs, supported_patterns)
from .units import ns

PROFILES = {"bench": BENCH, "paper": PAPER, "test": TEST}

#: grid shapes for per-switch heat maps of known topologies
GRIDS = {"torus": (8, 8), "torus-express": (8, 8)}


def _add_run_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--topology", default="torus",
                   choices=["torus", "torus-express", "cplant", "irregular", "mesh"])
    p.add_argument("--routing", default="itb",
                   choices=list(available_schemes()))
    p.add_argument("--policy", default="rr",
                   choices=["sp", "rr", "random", "adaptive"])
    p.add_argument("--traffic", default=DEFAULT_PATTERN,
                   choices=list(available_patterns()),
                   help="destination pattern; see 'repro traffic'")
    p.add_argument("--traffic-arg", action="append", default=[],
                   metavar="KEY=VALUE",
                   help="pattern keyword argument (repeatable); declared "
                        "kwargs are listed by 'repro traffic'")
    p.add_argument("--arrival", default=DEFAULT_ARRIVAL,
                   choices=list(available_arrivals()),
                   help="arrival process; see 'repro traffic'")
    p.add_argument("--arrival-arg", action="append", default=[],
                   metavar="KEY=VALUE",
                   help="arrival keyword argument (repeatable)")
    # legacy spellings of common pattern kwargs, kept for muscle memory;
    # they fold into --traffic-arg wherever the pattern declares them
    p.add_argument("--hotspot", type=int, default=None,
                   help="legacy for --traffic-arg hotspot=N")
    p.add_argument("--hotspot-fraction", type=float, default=None,
                   help="legacy for --traffic-arg fraction=F")
    p.add_argument("--radius", type=int, default=None,
                   help="legacy for --traffic-arg radius=N")
    p.add_argument("--message-bytes", type=int, default=512)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--warmup-ns", type=float, default=100_000)
    p.add_argument("--measure-ns", type=float, default=400_000)
    p.add_argument("--engine", default="packet",
                   choices=list(available_engines()))
    p.add_argument("--rows", type=int, default=None,
                   help="grid rows (torus/torus-express/mesh; "
                        "default: the paper's size)")
    p.add_argument("--cols", type=int, default=None,
                   help="grid columns (torus/torus-express/mesh)")
    p.add_argument("--hosts-per-switch", type=int, default=None,
                   help="hosts per switch (torus/torus-express/mesh)")


def _add_exec_options(p: argparse.ArgumentParser) -> None:
    """Orchestrator knobs: worker pool + result store."""
    p.add_argument("--workers", type=int, default=1,
                   help="parallel simulation workers (1 = in-process)")
    p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                   help="result-store directory (checkpoint/resume)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the on-disk result store")
    p.add_argument("--task-timeout", type=float, default=None,
                   help="per-point timeout in seconds (hung workers are "
                        "killed and the point retried)")
    p.add_argument("--retries", type=int, default=1,
                   help="extra attempts for crashed/hung points")
    p.add_argument("--retry-backoff", type=float, default=0.0,
                   metavar="SECONDS",
                   help="base delay before re-running a failed point "
                        "(doubled per attempt, with jitter; 0 = retry "
                        "immediately)")
    p.add_argument("--fabric", default=None, metavar="HOST:PORT,...",
                   help="lease points to remote fabric workers "
                        "(started with 'repro fabric worker') instead "
                        "of local processes; --task-timeout becomes "
                        "the lease timeout")
    p.add_argument("--tls-ca", default=None, metavar="PEM",
                   help="pin fabric worker connections to this CA "
                        "bundle (workers must serve the matching "
                        "certificate via --tls)")


def _make_executor(args: argparse.Namespace,
                   progress: bool = True) -> Optional[Executor]:
    """Executor from CLI flags; None when the plain path suffices."""
    store = None if args.no_cache else ResultStore(args.cache_dir)
    fabric = getattr(args, "fabric", None)
    if args.workers <= 1 and store is None and fabric is None:
        return None
    reporter = ProgressReporter() if progress else None
    return Executor(workers=args.workers, store=store,
                    timeout_s=args.task_timeout, retries=args.retries,
                    retry_backoff_s=args.retry_backoff,
                    reporter=reporter, fabric=fabric,
                    tls_ca=getattr(args, "tls_ca", None))


def _config_from(args: argparse.Namespace, rate: float) -> SimConfig:
    traffic_kwargs = pattern_cli_kwargs(args.traffic, args.traffic_arg)
    arrival_kwargs = arrival_cli_kwargs(args.arrival, args.arrival_arg)
    declared = {k.name for k in get_pattern_spec(args.traffic).kwargs}
    for key, value in (("hotspot", args.hotspot),
                       ("fraction", args.hotspot_fraction),
                       ("radius", args.radius)):
        if value is not None and key in declared:
            traffic_kwargs.setdefault(key, value)
    topology_kwargs = {}
    if args.topology in ("torus", "torus-express", "mesh"):
        if args.rows is not None:
            topology_kwargs["rows"] = args.rows
        if args.cols is not None:
            topology_kwargs["cols"] = args.cols
        if args.hosts_per_switch is not None:
            topology_kwargs["hosts_per_switch"] = args.hosts_per_switch
    return SimConfig(
        topology=args.topology, topology_kwargs=topology_kwargs,
        routing=args.routing, policy=args.policy,
        traffic=args.traffic, traffic_kwargs=traffic_kwargs,
        arrival=args.arrival, arrival_kwargs=arrival_kwargs,
        injection_rate=rate, message_bytes=args.message_bytes,
        seed=args.seed, warmup_ps=ns(args.warmup_ns),
        measure_ps=ns(args.measure_ns), engine=args.engine)


def cmd_info(args: argparse.Namespace) -> int:
    g = get_graph(args.topology, {})
    print(f"{g.name}: {g.num_switches} switches, {g.num_hosts} hosts, "
          f"{g.num_links} inter-switch cables")
    degrees = sorted({g.degree(s) for s in g.switches()})
    diameter = max(max(r) for r in g.all_pairs_distances())
    print(f"switch degrees {degrees}, diameter {diameter}")
    print(f"traffic patterns: {', '.join(supported_patterns(g))}")
    for scheme in supported_schemes(g):
        st = route_statistics(g, get_tables(g, (args.topology, ()), scheme))
        print(f"{scheme:7s}: {st.fraction_minimal:6.1%} minimal, "
              f"avg distance {st.avg_distance_sp:.2f}, "
              f"{st.avg_alternatives:.1f} alternatives/pair, "
              f"ITBs/msg SP {st.avg_itbs_sp:.2f} / RR {st.avg_itbs_rr:.2f}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from .perf import PerfRecorder
    cfg = _config_from(args, args.rate)
    recorder = PerfRecorder() if (args.perf or args.profile) else None
    summary = run_simulation(cfg, collect_links=args.links,
                             perf=recorder, profile_path=args.profile)
    print(summary.oneline())
    print(f"  network latency {summary.avg_network_latency_ns:.0f} ns, "
          f"max {summary.max_latency_ns:.0f} ns, "
          f"{summary.messages_delivered} delivered "
          f"/ {summary.messages_generated} generated")
    if summary.itb_peak_bytes:
        print(f"  in-transit pool peak {summary.itb_peak_bytes} B, "
              f"{summary.itb_overflow_count} overflows")
    if args.links and summary.link_utilization is not None:
        from .experiments.figures import LinkMapResult
        res = LinkMapResult("run", cfg.label(), cfg.label(),
                            cfg.injection_rate, summary.link_utilization,
                            summary)
        print(render_link_map(res, GRIDS.get(args.topology)))
    if recorder is not None and recorder.report is not None:
        print(f"  perf: {recorder.report.oneline()}")
    if args.profile:
        print(f"  profile written to {args.profile} "
              f"(inspect with: python -m pstats {args.profile})")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    rates = [float(r) for r in args.rates.split(",")]
    base = _config_from(args, rates[0])
    executor = _make_executor(args)
    curve = sweep_rates(base, rates, executor=executor)
    print(f"{'offered':>9s} {'accepted':>9s} {'lat(ns)':>10s} {'sat':>4s}")
    for r in curve.runs:
        lat = (f"{r.avg_latency_ns:10.0f}"
               if r.avg_latency_ns is not None else "       n/a")
        print(f"{r.offered_flits_ns_switch:9.4f} "
              f"{r.accepted_flits_ns_switch:9.4f} {lat} "
              f"{'yes' if r.saturated else 'no':>4s}")
    print(f"throughput (knee): {curve.throughput():.4f} flits/ns/switch")
    if executor is not None:
        print(f"points: {executor.stats.oneline()}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    profile: Profile = PROFILES[args.profile]
    exp = EXPERIMENTS.get(args.exp_id)
    if exp is None:
        print(f"unknown experiment {args.exp_id!r}; try: "
              + " ".join(sorted(EXPERIMENTS)), file=sys.stderr)
        return 2
    executor = _make_executor(args)
    result = run_experiment(args.exp_id, profile, executor=executor)
    if exp.kind == "latency-panel":
        print(render_figure(result))
        if args.plot:
            from .experiments.plot import render_curves
            print()
            print(render_curves(result.series, title=result.title))
    elif exp.kind == "link-map":
        for panel in result:
            print(render_link_map(panel, (8, 8)
                                  if "torus" in exp.description.lower()
                                  else None))
            print()
    elif exp.kind == "resilience-table":
        print(render_resilience_table(result))
    elif exp.kind == "recovery-table":
        print(render_recovery_table(result))
    elif exp.kind == "tournament-table":
        from .experiments.tournament import render_tournament
        print(render_tournament(result))
    elif exp.kind == "stability-table":
        from .experiments.adversary import render_stability_table
        print(render_stability_table(result))
    else:
        print(render_hotspot_table(result))
    if executor is not None:
        print(f"points: {executor.stats.oneline()}", file=sys.stderr)
    return 0


def cmd_resilience(args: argparse.Namespace) -> int:
    profile: Profile = PROFILES[args.profile]
    topology_kwargs = {}
    if args.topology in ("torus", "torus-express", "mesh"):
        topology_kwargs = {"rows": args.rows, "cols": args.cols,
                           "hosts_per_switch": args.hosts_per_switch}
    ks = tuple(int(k) for k in args.ks.split(","))
    executor = _make_executor(args)
    report = run_resilience(args.topology, profile, seed=args.seed,
                            ks=ks, topology_kwargs=topology_kwargs,
                            executor=executor)
    print(render_resilience_table(report))
    if executor is not None:
        print(f"points: {executor.stats.oneline()}", file=sys.stderr)
    return 0


def cmd_recovery(args: argparse.Namespace) -> int:
    profile: Profile = PROFILES[args.profile]
    topology_kwargs = {}
    if args.topology in ("torus", "torus-express", "mesh"):
        topology_kwargs = {"rows": args.rows, "cols": args.cols,
                           "hosts_per_switch": args.hosts_per_switch}
    rates = tuple(float(r) for r in args.rates.split(","))
    executor = _make_executor(args)
    report = run_recovery(args.topology, profile, seed=args.seed,
                          rates=rates, topology_kwargs=topology_kwargs,
                          executor=executor)
    print(render_recovery_table(report))
    if executor is not None:
        print(f"points: {executor.stats.oneline()}", file=sys.stderr)
    if args.strict:
        lost = sum(c.permanent_losses for c in report.cells
                   if c.mode == "reconfigure")
        if lost:
            print(f"STRICT: {lost} permanently lost messages under the "
                  f"reconfigure policy (expected zero: the fault leaves "
                  f"the fabric connected)", file=sys.stderr)
            return 1
    return 0


def cmd_schemes(_args: argparse.Namespace) -> int:
    for name, s in describe_schemes():
        caps = [s.discipline,
                "deadlock-free" if s.deadlock_free else "NOT deadlock-free",
                "multipath" if s.multipath else "single-path"]
        print(f"{name:12s} {', '.join(caps)}")
        print(f"{'':12s} {s.description}")
        print(f"{'':12s} topologies: {s.topology_note}")
    return 0


def _kwarg_line(kwargs) -> str:
    from .traffic.registry import REQUIRED
    parts = []
    for k in kwargs:
        default = ("=<required>" if k.default is REQUIRED
                   else f"={k.default}")
        parts.append(f"{k.name}:{k.type.__name__}{default}")
    return ", ".join(parts)


def cmd_traffic(_args: argparse.Namespace) -> int:
    print("destination patterns")
    for name, spec in describe_patterns():
        caps = []
        if spec.provides_arrivals:
            caps.append("self-timed")
        if spec.kwargs:
            caps.append(_kwarg_line(spec.kwargs))
        print(f"  {name:12s} {spec.description}")
        print(f"  {'':12s} topologies: {spec.topology_note}"
              + (f"; {'; '.join(caps)}" if caps else ""))
    print("arrival processes")
    for name, spec in describe_arrivals():
        line = f"  {name:12s} {spec.description}"
        print(line)
        if spec.kwargs:
            print(f"  {'':12s} {_kwarg_line(spec.kwargs)}")
    return 0


def cmd_tournament(args: argparse.Namespace) -> int:
    from .experiments.tournament import (TopologySpec, default_entries,
                                         render_tournament, run_tournament)
    profile: Profile = PROFILES[args.profile]
    schemes = (None if args.schemes == "all"
               else [s.strip() for s in args.schemes.split(",")])
    entries = default_entries(schemes)
    topo_kwargs = {"rows": args.rows, "cols": args.cols,
                   "hosts_per_switch": args.hosts_per_switch}
    topologies = []
    for name in (t.strip() for t in args.topologies.split(",")):
        kwargs = dict(topo_kwargs) if name in ("torus", "torus-express",
                                               "mesh") else {}
        label = (f"{name} {args.rows}x{args.cols}" if kwargs else name)
        topologies.append(TopologySpec(name, kwargs, label))
    patterns = tuple(p.strip() for p in args.patterns.split(","))
    executor = _make_executor(args)
    report = run_tournament(entries, topologies, patterns, profile,
                            seed=args.seed, failures=args.failures,
                            start_rate=args.start_rate,
                            executor=executor)
    print(render_tournament(report))
    if executor is not None:
        print(f"points: {executor.stats.oneline()}", file=sys.stderr)
    if args.json:
        import json
        with open(args.json, "w") as f:
            json.dump(report.to_dict(), f, indent=2)
        print(f"JSON artifact written to {args.json}", file=sys.stderr)
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    store = ResultStore(args.cache_dir)
    if args.cache_cmd == "info":
        print(store.info().oneline())
    elif args.cache_cmd == "compact":
        print(store.compact().oneline())
    else:  # clear
        removed = store.clear()
        print(f"removed {removed} cached results from {args.cache_dir}")
    return 0


def cmd_fabric(args: argparse.Namespace) -> int:
    from .orchestrator.fabric import worker_main
    if args.fabric_cmd == "worker":
        if args.tls and not (args.tls_cert and args.tls_key):
            print("--tls requires --tls-cert and --tls-key",
                  file=sys.stderr)
            return 2
        try:
            worker_main(args.listen, max_sessions=args.max_sessions,
                        tls_cert=args.tls_cert if args.tls else None,
                        tls_key=args.tls_key if args.tls else None,
                        announce=lambda addr: print(
                            f"fabric worker listening on {addr}",
                            flush=True))
        except KeyboardInterrupt:
            pass
        return 0
    return 2


def cmd_chaos(args: argparse.Namespace) -> int:
    """Two-worker chaos drill: bit-identity under an adversarial wire."""
    import signal
    import subprocess
    import threading
    import time

    from .orchestrator.chaos import ChaosFabric, ChaosPlan

    rates = [float(r) for r in args.rates.split(",")]
    base = _config_from(args, rates[0])
    plan = {"quiet": ChaosPlan.quiet,
            "mild": ChaosPlan.mild,
            "storm": ChaosPlan.storm}[args.plan]
    plan = plan() if args.plan == "quiet" else plan(seed=args.chaos_seed)
    if args.budget is not None:
        plan = ChaosPlan.from_dict(dict(plan.to_dict(),
                                        max_events=args.budget))
    print(f"chaos plan: {plan.describe()}")

    print(f"sequential baseline: {len(rates)} points ...", flush=True)
    seq = sweep_rates(base, rates)

    procs = []

    def spawn_worker():
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "fabric", "worker",
             "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        procs.append(proc)
        marker = "fabric worker listening on "
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                raise RuntimeError(
                    f"fabric worker exited before announcing "
                    f"(rc={proc.poll()})")
            if marker in line:
                return line.split(marker, 1)[1].split()[0]
        raise RuntimeError("fabric worker never announced its address")

    try:
        backends = f"{spawn_worker()},{spawn_worker()}"
        print(f"fleet up: {backends}")
        with ChaosFabric(backends, plan) as chaos:
            ex = Executor(fabric=chaos.addrs,
                          timeout_s=args.lease_timeout,
                          retries=args.retries,
                          reporter=ProgressReporter())
            # chaos-induced handshake failures (a reset hello) must not
            # declare a healthy worker dead mid-drill
            ex.pool.connect_attempts = max(ex.pool.connect_attempts, 20)
            if args.kill_one:
                def reaper():
                    deadline = time.monotonic() + 120
                    while (time.monotonic() < deadline
                           and ex.stats.simulated < 1):
                        time.sleep(0.05)
                    if procs[0].poll() is None:
                        procs[0].send_signal(signal.SIGKILL)
                        print(f"SIGKILLed worker pid={procs[0].pid} "
                              f"mid-campaign", flush=True)
                threading.Thread(target=reaper, daemon=True).start()
            par = sweep_rates(base, rates, executor=ex)
            print(f"points: {ex.stats.oneline()}")
            print(chaos.log.summary())
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()

    if [r.to_dict() for r in par.runs] != [r.to_dict() for r in seq.runs]:
        print("FAIL: chaos-run results differ from sequential",
              file=sys.stderr)
        return 1
    print(f"bit-identical under chaos: {len(rates)} points OK")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .orchestrator.serve import serve_main
    store = None if args.no_cache else ResultStore(args.cache_dir)
    serve_main(args.host, args.port, store,
               workers=args.workers, fabric=args.fabric,
               timeout_s=args.task_timeout, retries=args.retries,
               retry_backoff_s=args.retry_backoff,
               announce=lambda addr: print(
                   f"repro serve listening on http://{addr} "
                   f"(POST /campaign)", flush=True))
    return 0


def cmd_list(_args: argparse.Namespace) -> int:
    for exp_id in sorted(EXPERIMENTS):
        exp = EXPERIMENTS[exp_id]
        print(f"{exp_id:8s} {exp.kind:14s} {exp.description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ITB routing reproduction (Flich et al., ICPP 2000)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="topology + routing-table statistics")
    p.add_argument("topology",
                   choices=["torus", "torus-express", "cplant", "irregular", "mesh"])
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("run", help="one simulation run")
    _add_run_options(p)
    p.add_argument("--rate", type=float, default=0.01,
                   help="offered load, flits/ns/switch")
    p.add_argument("--links", action="store_true",
                   help="collect and print link utilisation")
    p.add_argument("--perf", action="store_true",
                   help="print wall-clock / events-per-second counters")
    p.add_argument("--profile", metavar="FILE", default=None,
                   help="dump a cProfile trace of the run to FILE")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("sweep", help="latency-vs-traffic curve")
    _add_run_options(p)
    _add_exec_options(p)
    p.add_argument("--rates", default="0.005,0.01,0.02,0.03",
                   help="comma-separated offered loads")
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("experiment", help="regenerate a paper artefact")
    p.add_argument("exp_id")
    p.add_argument("--profile", default="bench", choices=sorted(PROFILES))
    p.add_argument("--plot", action="store_true",
                   help="also render an ASCII latency/traffic plot")
    _add_exec_options(p)
    p.set_defaults(fn=cmd_experiment)

    p = sub.add_parser("resilience",
                       help="graceful degradation under link failures")
    p.add_argument("--topology", default="torus",
                   choices=["torus", "torus-express", "cplant",
                            "irregular", "mesh"])
    p.add_argument("--rows", type=int, default=4,
                   help="grid rows (scaled down by default: the "
                        "study runs 8 saturation searches)")
    p.add_argument("--cols", type=int, default=4)
    p.add_argument("--hosts-per-switch", type=int, default=2)
    p.add_argument("--ks", default="1,2,4",
                   help="comma-separated link-failure counts")
    p.add_argument("--seed", type=int, default=1,
                   help="failure sets and traffic are functions of "
                        "the seed: repeat invocations are identical")
    p.add_argument("--profile", default="bench", choices=sorted(PROFILES))
    _add_exec_options(p)
    p.set_defaults(fn=cmd_resilience)

    p = sub.add_parser("recovery",
                       help="reliable-delivery recovery from a mid-run "
                            "link failure")
    p.add_argument("--topology", default="torus",
                   choices=["torus", "torus-express", "cplant",
                            "irregular", "mesh"])
    p.add_argument("--rows", type=int, default=4)
    p.add_argument("--cols", type=int, default=4)
    p.add_argument("--hosts-per-switch", type=int, default=2)
    p.add_argument("--rates", default="0.01,0.02,0.03",
                   help="comma-separated offered loads")
    p.add_argument("--seed", type=int, default=1,
                   help="selects the failed link and the traffic; "
                        "repeat invocations are identical")
    p.add_argument("--profile", default="bench", choices=sorted(PROFILES))
    p.add_argument("--strict", action="store_true",
                   help="exit non-zero if any reconfigure-policy cell "
                        "reports permanent losses (CI smoke)")
    _add_exec_options(p)
    p.set_defaults(fn=cmd_recovery)

    p = sub.add_parser("tournament",
                       help="cross-scheme tournament: every scheme x "
                            "topology x traffic pattern")
    p.add_argument("--schemes", default="all",
                   help="comma-separated scheme names (default: every "
                        "registered scheme); see 'repro schemes'")
    p.add_argument("--topologies", default="torus,mesh",
                   help="comma-separated topology names")
    p.add_argument("--rows", type=int, default=4,
                   help="grid rows for torus/torus-express/mesh "
                        "(scaled down by default: each cell is a full "
                        "saturation search)")
    p.add_argument("--cols", type=int, default=4)
    p.add_argument("--hosts-per-switch", type=int, default=2)
    p.add_argument("--patterns", default="uniform",
                   help="comma-separated traffic patterns")
    p.add_argument("--failures", type=int, default=0,
                   help="links to kill for the retention column "
                        "(0 = skip the degraded searches)")
    p.add_argument("--start-rate", type=float, default=0.005,
                   help="initial offered load of the saturation ramps")
    p.add_argument("--seed", type=int, default=1,
                   help="traffic and failure sets are functions of the "
                        "seed: repeat invocations are identical")
    p.add_argument("--profile", default="bench", choices=sorted(PROFILES))
    p.add_argument("--json", metavar="FILE", default=None,
                   help="also write the full report as a JSON artifact")
    _add_exec_options(p)
    p.set_defaults(fn=cmd_tournament)

    p = sub.add_parser("schemes",
                       help="list registered routing schemes and their "
                            "capability declarations")
    p.set_defaults(fn=cmd_schemes)

    p = sub.add_parser("traffic",
                       help="list registered destination patterns and "
                            "arrival processes with their declared kwargs")
    p.set_defaults(fn=cmd_traffic)

    p = sub.add_parser("list", help="list paper artefacts")
    p.set_defaults(fn=cmd_list)

    p = sub.add_parser("cache", help="orchestrator result-store tools")
    p.add_argument("cache_cmd", choices=["info", "clear", "compact"])
    p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    p.set_defaults(fn=cmd_cache)

    p = sub.add_parser("fabric",
                       help="distributed campaign fabric tools")
    p.add_argument("fabric_cmd", choices=["worker"])
    p.add_argument("--listen", default="127.0.0.1:0",
                   metavar="HOST:PORT",
                   help="address to serve task leases on (port 0 "
                        "picks a free port and prints it)")
    p.add_argument("--max-sessions", type=int, default=None,
                   help="exit after serving N coordinator sessions "
                        "(default: run forever)")
    p.add_argument("--tls", action="store_true",
                   help="serve sessions over TLS (requires --tls-cert "
                        "and --tls-key; coordinators pin the matching "
                        "bundle with --tls-ca)")
    p.add_argument("--tls-cert", default=None, metavar="PEM",
                   help="certificate chain served to coordinators")
    p.add_argument("--tls-key", default=None, metavar="PEM",
                   help="private key for --tls-cert")
    p.set_defaults(fn=cmd_fabric)

    p = sub.add_parser("chaos",
                       help="two-worker chaos drill: assert bit-identity "
                            "under an adversarial fabric wire")
    _add_run_options(p)
    p.add_argument("--rates", default="0.005,0.01,0.02",
                   help="comma-separated offered loads")
    p.add_argument("--plan", default="storm",
                   choices=["quiet", "mild", "storm"],
                   help="chaos schedule preset (storm = every fault "
                        "kind at once)")
    p.add_argument("--chaos-seed", type=int, default=0,
                   help="derives the fault schedule; repeat invocations "
                        "inject the same faults")
    p.add_argument("--budget", type=int, default=None,
                   help="override the plan's total injected-fault budget")
    p.add_argument("--lease-timeout", type=float, default=30.0,
                   help="per-attempt lease timeout in seconds")
    p.add_argument("--retries", type=int, default=8,
                   help="re-lease budget per point (chaos consumes "
                        "attempts)")
    p.add_argument("--kill-one", action="store_true",
                   help="also SIGKILL one worker after the first point "
                        "lands")
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser("serve",
                       help="long-running HTTP campaign service "
                            "(NDJSON streaming)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8651)
    _add_exec_options(p)
    p.set_defaults(fn=cmd_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

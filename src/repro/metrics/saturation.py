"""Saturation-throughput search (the numbers in Tables 1--3).

The paper reports, per configuration, the *throughput*: the highest
accepted traffic the network sustains.  Past saturation, accepted
traffic stops tracking offered traffic (source queues grow without
bound), so the search strategy is:

1. geometric ramp-up of the offered rate until a run saturates
   (accepted < 95 % of offered);
2. bisection between the last non-saturated and first saturated rate;
3. report the maximum *accepted* traffic observed at a non-saturated
   operating point -- the knee of the curve, which is what the paper's
   tables quote.  (Accepted traffic can keep inching up past the knee
   as uncongested flows push through, but latency is unbounded there.)

The function is engine-agnostic: it takes a ``run_at(rate)`` callable
returning a :class:`~repro.metrics.summary.RunSummary`, so tests can
exercise it with synthetic response curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from .summary import RunSummary

RunAt = Callable[[float], RunSummary]


@dataclass(frozen=True)
class KneePoint:
    """The knee of a latency-vs-offered-load curve.

    The *knee* is the highest offered load at which average latency is
    still within ``threshold`` times the zero-load (lowest-rate)
    latency -- past it the curve bends vertical.  ``bracketed`` says
    whether a later point actually exceeded the threshold: an
    unbracketed knee means the curve never bent within the sweep and
    the true knee lies beyond the last measured rate.
    """

    #: offered load at the knee (x-axis units of the input)
    offered: float
    #: average latency at the knee, same units as the input latencies
    latency: float
    #: index of the knee point in the (sorted) input sequence
    index: int
    #: True when a higher-rate point exceeded the latency threshold
    bracketed: bool


def latency_knee(offered: Sequence[float],
                 latency: Sequence[Optional[float]],
                 threshold: float = 2.0) -> Optional[KneePoint]:
    """Locate the knee of a latency-vs-offered-load curve.

    The NoC-sweep idiom: take the latency of the lowest-load point as
    the zero-load baseline, then report the last point (in ascending
    offered-load order) whose latency stays within ``threshold`` times
    that baseline.  Points with ``None`` latency (no deliveries) are
    ignored.  Returns ``None`` when fewer than one finite point exists.

    The inputs need not be pre-sorted; pairs are sorted by offered
    load here, and ``index`` refers to the sorted order.
    """
    if threshold <= 1.0:
        raise ValueError("threshold must exceed 1 (it scales the "
                         "zero-load latency)")
    pts = sorted((o, lat) for o, lat in zip(offered, latency)
                 if lat is not None)
    if not pts:
        return None
    base = pts[0][1]
    if base <= 0:
        raise ValueError("zero-load latency must be positive")
    knee_i = 0
    bracketed = False
    for i, (_o, lat) in enumerate(pts):
        if lat <= threshold * base:
            knee_i = i
        else:
            bracketed = True
            break
    o, lat = pts[knee_i]
    return KneePoint(offered=o, latency=lat, index=knee_i,
                     bracketed=bracketed)


def knee_from_runs(runs: Sequence[RunSummary],
                   threshold: float = 2.0) -> Optional[KneePoint]:
    """:func:`latency_knee` over a set of finished runs.

    Saturated runs are excluded up front: their latency is
    window-dependent (the backlog grows without bound), so they carry
    no usable y value even when it happens to fall under the
    threshold.
    """
    stable = [r for r in runs if not r.saturated]
    return latency_knee([r.offered_flits_ns_switch for r in stable],
                        [r.avg_latency_ns for r in stable],
                        threshold)


@dataclass(frozen=True)
class SaturationResult:
    """Outcome of a saturation search."""

    #: highest accepted traffic observed (flits/ns/switch) -- the
    #: paper's "throughput"
    throughput: float
    #: highest offered rate that was still not saturated; ``nan`` when
    #: every probe saturated (no stable rate was ever measured)
    last_stable_rate: float
    #: lowest offered rate that saturated; ``inf`` when none did
    first_saturated_rate: float
    #: every run performed, in execution order
    runs: List[RunSummary]
    #: True when the search bracketed the knee between a *measured*
    #: stable rate and a measured saturated rate and bisected it; False
    #: when the ramp ran off either end (never saturated within
    #: ``max_rate``, or the downward ramp exhausted ``max_down_steps``
    #: with every probe saturated)
    converged: bool = True


def find_saturation(run_at: RunAt, start_rate: float,
                    growth: float = 1.5, refine_steps: int = 3,
                    max_rate: float = 10.0,
                    max_down_steps: int = 12) -> SaturationResult:
    """Locate saturation throughput via geometric ramp + bisection.

    ``start_rate`` should be comfortably below saturation; ``growth``
    is the ramp factor; ``refine_steps`` bisection iterations bound the
    rate bracket to ``(growth - 1) / 2**refine_steps`` relative error.
    When ``start_rate`` itself saturates the search ramps *down*
    geometrically (at most ``max_down_steps`` times) until a stable
    rate is found, so ``last_stable_rate`` is a measured operating
    point rather than the never-probed 0.0.  When even the downward
    ramp never finds one, the result carries ``converged=False`` and
    ``last_stable_rate=nan`` -- every number reported is something that
    was actually measured.
    """
    if start_rate <= 0:
        raise ValueError("start_rate must be positive")
    if growth <= 1.0:
        raise ValueError("growth must exceed 1")
    runs: List[RunSummary] = []

    def measure(rate: float) -> RunSummary:
        s = run_at(rate)
        runs.append(s)
        return s

    rate = start_rate
    lo = 0.0           # highest known stable rate
    hi = None          # lowest known saturated rate
    while hi is None:
        s = measure(rate)
        if s.saturated:
            hi = rate
        else:
            lo = rate
            rate *= growth
            if rate > max_rate:
                # never saturated within bounds: report what we saw
                return SaturationResult(_knee(runs), lo, float("inf"),
                                        runs, converged=False)

    if lo == 0.0:
        # start_rate saturated on the first probe: no rate below it was
        # measured, so bisecting against lo=0 would misreport a stable
        # rate that was never observed -- ramp down until one is found
        rate = hi / growth
        for _ in range(max_down_steps):
            s = measure(rate)
            if s.saturated:
                hi = rate
                rate /= growth
            else:
                lo = rate
                break
        if lo == 0.0:
            # the downward ramp exhausted max_down_steps with every
            # probe saturated: nothing stable was ever observed, so
            # there is no bracket to bisect.  Report that explicitly
            # instead of anchoring the bisection on the unmeasured 0.0.
            return SaturationResult(_knee(runs), float("nan"), hi,
                                    runs, converged=False)

    for _ in range(refine_steps):
        mid = (lo + hi) / 2
        s = measure(mid)
        if s.saturated:
            hi = mid
        else:
            lo = mid

    return SaturationResult(_knee(runs), lo, hi, runs)


def _knee(runs: List[RunSummary]) -> float:
    """Highest accepted traffic at a non-saturated operating point
    (overall maximum as a fallback when everything saturated)."""
    stable = [r.accepted_flits_ns_switch for r in runs if not r.saturated]
    if stable:
        return max(stable)
    return max(r.accepted_flits_ns_switch for r in runs)

"""Latency / throughput accumulation during the measurement window.

The collector registers itself as a delivery callback on the network.
Until :meth:`reset` (called at the end of warm-up) it discards samples;
afterwards every delivered message contributes its payload flits and
its two latencies:

* **latency** -- creation to full delivery (includes source-NIC
  queueing; this is what diverges at saturation);
* **network latency** -- first flit injected to full delivery (the
  paper's definition: "the elapsed time between the injection of a
  message into the network at the source host until it is delivered").
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..sim.packet import Packet


class LatencyCollector:
    """Accumulates delivery statistics; attach via
    ``network.add_delivery_callback(collector.on_delivered)``."""

    def __init__(self, keep_samples: bool = False) -> None:
        #: retain every latency sample (ns-precision percentiles) --
        #: off by default to keep long runs lean
        self.keep_samples = keep_samples
        self.active = True
        self.messages = 0
        self.payload_flits = 0
        self.sum_latency_ps = 0
        self.sum_network_latency_ps = 0
        self.max_latency_ps = 0
        self.sum_itbs = 0
        self.sum_itb_overflows = 0
        self.samples_ps: List[int] = []

    def on_delivered(self, pkt: Packet) -> None:
        if not self.active:
            return
        lat = pkt.latency_ps()
        self.messages += 1
        self.payload_flits += pkt.payload_bytes
        self.sum_latency_ps += lat
        self.sum_network_latency_ps += pkt.network_latency_ps()
        if lat > self.max_latency_ps:
            self.max_latency_ps = lat
        self.sum_itbs += pkt.num_itbs
        self.sum_itb_overflows += pkt.itb_overflows
        if self.keep_samples:
            self.samples_ps.append(lat)

    def reset(self) -> None:
        """Zero everything (end of warm-up)."""
        self.messages = 0
        self.payload_flits = 0
        self.sum_latency_ps = 0
        self.sum_network_latency_ps = 0
        self.max_latency_ps = 0
        self.sum_itbs = 0
        self.sum_itb_overflows = 0
        self.samples_ps.clear()

    # -- derived metrics ----------------------------------------------------

    def avg_latency_ns(self) -> Optional[float]:
        if not self.messages:
            return None
        return self.sum_latency_ps / self.messages / 1_000

    def avg_network_latency_ns(self) -> Optional[float]:
        if not self.messages:
            return None
        return self.sum_network_latency_ps / self.messages / 1_000

    def avg_itbs_per_message(self) -> Optional[float]:
        if not self.messages:
            return None
        return self.sum_itbs / self.messages

    def accepted_flits_ns_switch(self, window_ps: int,
                                 num_switches: int) -> float:
        """Accepted traffic in the paper's unit (payload flits only,
        matching the offered-load definition)."""
        if window_ps <= 0 or num_switches <= 0:
            raise ValueError("window and switch count must be positive")
        return self.payload_flits * 1_000 / (window_ps * num_switches)

    def percentile_ns(self, q: float) -> Optional[float]:
        """Latency percentile (nearest-rank); requires
        ``keep_samples=True``.

        The nearest-rank definition: the smallest sample such that at
        least ``q`` of the data is <= it, i.e. rank ``ceil(q * n)``
        (1-based) with ``q = 0`` mapping to the minimum.
        """
        if not self.keep_samples:
            raise RuntimeError("collector was created with keep_samples=False")
        if not self.samples_ps:
            return None
        if not (0.0 <= q <= 1.0):
            raise ValueError("percentile must be in [0, 1]")
        data = sorted(self.samples_ps)
        idx = max(0, math.ceil(q * len(data)) - 1)
        return data[idx] / 1_000

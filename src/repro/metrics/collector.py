"""Latency / throughput accumulation during the measurement window.

The collector registers itself as a delivery callback on the network.
Until :meth:`reset` (called at the end of warm-up) it discards samples;
afterwards every delivered message contributes its payload flits and
its two latencies:

* **latency** -- creation to full delivery (includes source-NIC
  queueing; this is what diverges at saturation);
* **network latency** -- first flit injected to full delivery (the
  paper's definition: "the elapsed time between the injection of a
  message into the network at the source host until it is delivered").

Batch engines (:data:`~repro.sim.base.CAP_BATCH_DELIVERY`) bypass the
per-packet callback and push whole delivery cohorts through
:meth:`record_batch`; both paths feed the same accumulators, so every
derived metric is delivery-path independent.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..sim.packet import Packet


class LatencyCollector:
    """Accumulates delivery statistics; attach via
    ``network.add_delivery_callback(collector.on_delivered)`` or hand
    the collector itself to a batch engine as its delivery sink."""

    def __init__(self, keep_samples: bool = False) -> None:
        #: retain every latency sample (ns-precision percentiles) --
        #: off by default to keep long runs lean
        self.keep_samples = keep_samples
        self.active = True
        self.messages = 0
        self.payload_flits = 0
        self.sum_latency_ps = 0
        self.sum_network_latency_ps = 0
        self.max_latency_ps = 0
        self.sum_itbs = 0
        self.sum_itb_overflows = 0
        self.samples_ps: List[int] = []
        #: sorted view of ``samples_ps``, rebuilt lazily by
        #: :meth:`percentile_ns` and dropped on every new sample --
        #: repeated percentile queries (tournament cells ask for
        #: p50/p99 per cell) then sort once, not once per call
        self._sorted_samples: Optional[List[int]] = None

    def on_delivered(self, pkt: Packet) -> None:
        if not self.active:
            return
        lat = pkt.latency_ps()
        self.messages += 1
        self.payload_flits += pkt.payload_bytes
        self.sum_latency_ps += lat
        self.sum_network_latency_ps += pkt.network_latency_ps()
        if lat > self.max_latency_ps:
            self.max_latency_ps = lat
        self.sum_itbs += pkt.num_itbs
        self.sum_itb_overflows += pkt.itb_overflows
        if self.keep_samples:
            self.samples_ps.append(lat)
            self._sorted_samples = None

    def record_batch(self, latency_ps: Sequence[int],
                     network_latency_ps: Sequence[int],
                     payload_bytes: Sequence[int],
                     itbs: Sequence[int],
                     itb_overflows: Sequence[int]) -> None:
        """Record one delivery cohort (parallel sequences, one entry per
        message).  Semantically identical to calling :meth:`on_delivered`
        once per message, without materialising packets."""
        if not self.active or not len(latency_ps):
            return
        self.messages += len(latency_ps)
        self.payload_flits += sum(payload_bytes)
        self.sum_latency_ps += sum(latency_ps)
        self.sum_network_latency_ps += sum(network_latency_ps)
        batch_max = max(latency_ps)
        if batch_max > self.max_latency_ps:
            self.max_latency_ps = batch_max
        self.sum_itbs += sum(itbs)
        self.sum_itb_overflows += sum(itb_overflows)
        if self.keep_samples:
            self.samples_ps.extend(int(v) for v in latency_ps)
            self._sorted_samples = None

    def reset(self) -> None:
        """Zero everything (end of warm-up)."""
        self.messages = 0
        self.payload_flits = 0
        self.sum_latency_ps = 0
        self.sum_network_latency_ps = 0
        self.max_latency_ps = 0
        self.sum_itbs = 0
        self.sum_itb_overflows = 0
        self.samples_ps.clear()
        self._sorted_samples = None

    # -- derived metrics ----------------------------------------------------

    def avg_latency_ns(self) -> Optional[float]:
        if not self.messages:
            return None
        return self.sum_latency_ps / self.messages / 1_000

    def avg_network_latency_ns(self) -> Optional[float]:
        if not self.messages:
            return None
        return self.sum_network_latency_ps / self.messages / 1_000

    def avg_itbs_per_message(self) -> Optional[float]:
        if not self.messages:
            return None
        return self.sum_itbs / self.messages

    def accepted_flits_ns_switch(self, window_ps: int,
                                 num_switches: int) -> float:
        """Accepted traffic in the paper's unit (payload flits only,
        matching the offered-load definition)."""
        if window_ps <= 0 or num_switches <= 0:
            raise ValueError("window and switch count must be positive")
        return self.payload_flits * 1_000 / (window_ps * num_switches)

    def percentile_ns(self, q: float) -> Optional[float]:
        """Latency percentile (nearest-rank); requires
        ``keep_samples=True``.

        The nearest-rank definition: the smallest sample such that at
        least ``q`` of the data is <= it, i.e. rank ``ceil(q * n)``
        (1-based) with ``q = 0`` mapping to the minimum.
        """
        if not self.keep_samples:
            raise RuntimeError("collector was created with keep_samples=False")
        if not self.samples_ps:
            return None
        if not (0.0 <= q <= 1.0):
            raise ValueError("percentile must be in [0, 1]")
        data = self._sorted_samples
        if data is None:
            data = self._sorted_samples = sorted(self.samples_ps)
        idx = max(0, math.ceil(q * len(data)) - 1)
        return data[idx] / 1_000

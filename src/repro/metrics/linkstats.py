"""Per-link utilisation maps (Figures 8, 9 and 11 of the paper).

The paper plots, for a given injection rate, the utilisation of every
inter-switch link.  Our channels count transferred flits, so

    utilisation = flits * flit_cycle / measurement_window

per *directed* channel; the per-cable figure used in the paper's maps is
the maximum of the two directions (a cable shows up as hot when either
direction is hot).  The difference between reserved time and transfer
time quantifies the "links idle due to flow control" effect discussed in
Section 4.7.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..config import MyrinetParams
from ..sim.base import NetworkModel


@dataclass(frozen=True)
class LinkUtilization:
    """Utilisation snapshot over one measurement window."""

    window_ps: int
    #: per directed NET channel: (src switch, dst switch, link id)
    channel_ends: List[tuple]
    #: fraction of the window each directed channel spent moving flits
    utilization: np.ndarray
    #: fraction of the window each directed channel was reserved
    reserved: np.ndarray
    #: per physical cable: max of the two directions
    per_link: np.ndarray

    def summary(self) -> dict:
        """Aggregate numbers quoted in the paper's text."""
        u = self.per_link
        return {
            "max": float(u.max()),
            "mean": float(u.mean()),
            "min": float(u.min()),
            "frac_below_10pct": float((u < 0.10).mean()),
            "frac_above_30pct": float((u > 0.30).mean()),
        }

    def blocked_fraction(self) -> np.ndarray:
        """Per directed channel: reserved but not transferring
        (wormhole stalls / flow control idling)."""
        return self.reserved - self.utilization

    def hottest(self, k: int = 5) -> List[tuple]:
        """The ``k`` hottest directed channels as
        ``(utilisation, src, dst, link_id)``."""
        order = np.argsort(self.utilization)[::-1][:k]
        return [(float(self.utilization[i]), *self.channel_ends[i])
                for i in order]

    def to_dict(self) -> dict:
        """JSON-safe form (arrays become lists)."""
        return {
            "window_ps": self.window_ps,
            "channel_ends": [list(e) for e in self.channel_ends],
            "utilization": self.utilization.tolist(),
            "reserved": self.reserved.tolist(),
            "per_link": self.per_link.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LinkUtilization":
        """Inverse of :meth:`to_dict`."""
        return cls(
            window_ps=data["window_ps"],
            channel_ends=[tuple(e) for e in data["channel_ends"]],
            utilization=np.asarray(data["utilization"], dtype=float),
            reserved=np.asarray(data["reserved"], dtype=float),
            per_link=np.asarray(data["per_link"], dtype=float),
        )


def collect_link_stats(network: NetworkModel, window_ps: int,
                       params: MyrinetParams) -> LinkUtilization:
    """Snapshot utilisation of all inter-switch channels.

    Works with any engine through the uniform
    :meth:`~repro.sim.base.NetworkModel.link_flit_counts` accessor;
    engines without the ``link_stats`` capability raise
    :class:`~repro.sim.base.UnsupportedCapability`.
    """
    if window_ps <= 0:
        raise ValueError("window must be positive")
    ends = []
    util = []
    resv = []
    num_links = network.graph.num_links
    per_link = np.zeros(num_links)
    for ch in network.link_flit_counts():
        ends.append((ch.src, ch.dst, ch.link_id))
        u = ch.flits * params.flit_cycle_ps / window_ps
        util.append(u)
        resv.append(ch.reserved_ps / window_ps)
        per_link[ch.link_id] = max(per_link[ch.link_id], u)
    return LinkUtilization(window_ps, ends, np.array(util), np.array(resv),
                           per_link)

"""Measurement: latency, accepted traffic, link utilisation, saturation.

* :class:`LatencyCollector` accumulates per-message latency and
  delivered payload during the measurement window;
* :mod:`linkstats` turns per-channel counters into the paper's
  link-utilisation maps (Figures 8, 9, 11);
* :class:`RunSummary` is the immutable result of one simulation run;
* :mod:`saturation` finds the saturation throughput reported in the
  paper's tables.
"""

from __future__ import annotations

from .collector import LatencyCollector
from .linkstats import LinkUtilization, collect_link_stats
from .summary import RunSummary
from .saturation import find_saturation, SaturationResult

__all__ = [
    "LatencyCollector",
    "LinkUtilization",
    "collect_link_stats",
    "RunSummary",
    "find_saturation",
    "SaturationResult",
]

"""Immutable result of one simulation run."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import SimConfig
from .linkstats import LinkUtilization


@dataclass(frozen=True)
class RunSummary:
    """Everything the experiment harness needs from a finished run.

    ``accepted_flits_ns_switch`` is the paper's x-axis unit;
    ``avg_latency_ns`` (creation to delivery) its y axis.  A run is
    *saturated* when accepted traffic falls measurably short of offered
    traffic -- the generation backlog grows without bound there, so
    latency figures at saturated points are window-dependent and only
    the throughput is meaningful.
    """

    config: SimConfig
    offered_flits_ns_switch: float
    accepted_flits_ns_switch: float
    messages_delivered: int
    messages_generated: int
    avg_latency_ns: Optional[float]
    avg_network_latency_ns: Optional[float]
    max_latency_ns: Optional[float]
    avg_itbs_per_message: Optional[float]
    itb_overflow_count: int
    itb_peak_bytes: int
    link_utilization: Optional[LinkUtilization]
    #: in-flight + source-queued messages gained over the measurement
    #: window (past saturation this grows linearly with time)
    backlog_growth: int = 0

    @property
    def saturated(self) -> bool:
        """Past the saturation point?

        The signal is backlog growth: below saturation the number of
        in-flight + source-queued messages is bounded, past it the
        excess offered load accumulates linearly.  Delivery counts over
        a finite window fluctuate by O(sqrt(N)), so the threshold is
        three standard deviations (and at least 4 % of the window's
        generation, and at least 8 messages) -- comparing accepted vs
        offered *rates* directly would false-trigger constantly on the
        short bench windows.
        """
        n = self.messages_generated
        if n <= 0:
            return False
        threshold = max(8.0, 0.04 * n, 3.0 * n ** 0.5)
        if self.backlog_growth > threshold:
            return True
        # secondary trigger: queueing delay comparable to the window
        # itself means the backlog is growing even when the message
        # count is too small for the 3-sigma test to see it
        return (self.avg_latency_ns is not None
                and self.avg_latency_ns * 1_000 > self.config.measure_ps / 4)

    def oneline(self) -> str:
        """Compact human-readable summary for reports and examples."""
        lat = (f"{self.avg_latency_ns:9.0f} ns"
               if self.avg_latency_ns is not None else "      n/a")
        sat = " SAT" if self.saturated else ""
        return (f"{self.config.label():8s} offered={self.offered_flits_ns_switch:.4f} "
                f"accepted={self.accepted_flits_ns_switch:.4f} "
                f"lat={lat} itbs/msg="
                f"{self.avg_itbs_per_message if self.avg_itbs_per_message is not None else 0:.2f}"
                f"{sat}")

"""Immutable result of one simulation run."""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Optional

from ..config import SimConfig
from .linkstats import LinkUtilization


@dataclass(frozen=True)
class RunSummary:
    """Everything the experiment harness needs from a finished run.

    ``accepted_flits_ns_switch`` is the paper's x-axis unit;
    ``avg_latency_ns`` (creation to delivery) its y axis.  A run is
    *saturated* when accepted traffic falls measurably short of offered
    traffic -- the generation backlog grows without bound there, so
    latency figures at saturated points are window-dependent and only
    the throughput is meaningful.
    """

    config: SimConfig
    offered_flits_ns_switch: float
    accepted_flits_ns_switch: float
    messages_delivered: int
    messages_generated: int
    avg_latency_ns: Optional[float]
    avg_network_latency_ns: Optional[float]
    max_latency_ns: Optional[float]
    avg_itbs_per_message: Optional[float]
    itb_overflow_count: int
    itb_peak_bytes: int
    link_utilization: Optional[LinkUtilization]
    #: in-flight + source-queued messages gained over the measurement
    #: window (past saturation this grows linearly with time)
    backlog_growth: int = 0
    #: messages lost to dynamic link faults during the measurement
    #: window (dropped in flight, or refused at the source because no
    #: surviving route existed); zero for every fault-free run
    messages_dropped: int = 0
    #: split of ``messages_dropped``: worms stranded inside the fabric
    #: by a dying link (transient loss -- a retransmission can recover)
    dropped_in_flight: int = 0
    #: split of ``messages_dropped``: refusals at the source NIC
    #: because no surviving route existed at send time
    dropped_unroutable: int = 0
    #: reliable-delivery protocol counters (measurement window; all
    #: zero when the reliability layer is off)
    retransmissions: int = 0
    duplicate_deliveries: int = 0
    #: messages abandoned after the retransmission attempt budget --
    #: with online reconfiguration this should stay zero for every
    #: pair the surviving fabric still connects
    permanent_losses: int = 0
    #: messages delivered on a retransmitted attempt (would have been
    #: lost without the reliability layer)
    recovered_messages: int = 0
    #: table swaps performed by online reconfiguration
    reconfigurations: int = 0
    #: first post-fault window whose accepted traffic is back within
    #: the recovery threshold of the pre-fault mean, measured from the
    #: first fault; ``None`` without a fault plan or when the run never
    #: recovers inside the measurement window
    time_to_recover_ns: Optional[float] = None
    #: 99th-percentile message latency (nearest-rank); only populated
    #: when the run was asked to keep per-message samples
    #: (``run_simulation(..., collect_percentiles=True)``), else None
    p99_latency_ns: Optional[float] = None

    @property
    def saturated(self) -> bool:
        """Past the saturation point?

        The signal is backlog growth: below saturation the number of
        in-flight + source-queued messages is bounded, past it the
        excess offered load accumulates linearly.  Delivery counts over
        a finite window fluctuate by O(sqrt(N)), so the threshold is
        three standard deviations (and at least 4 % of the window's
        generation, and at least 8 messages) -- comparing accepted vs
        offered *rates* directly would false-trigger constantly on the
        short bench windows.
        """
        n = self.messages_generated
        if n <= 0:
            return False
        threshold = max(8.0, 0.04 * n, 3.0 * n ** 0.5)
        if self.backlog_growth > threshold:
            return True
        # secondary trigger: queueing delay comparable to the window
        # itself means the backlog is growing even when the message
        # count is too small for the 3-sigma test to see it
        return (self.avg_latency_ns is not None
                and self.avg_latency_ns * 1_000 > self.config.measure_ps / 4)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form; ``config`` and ``link_utilization`` nest.

        Floats survive a JSON round trip bit-exactly (Python's encoder
        is repr-based), so a summary read back from the orchestrator's
        result store compares equal to the freshly-computed one -- the
        store is a faithful results-artifact format, not an
        approximation.
        """
        return {
            "config": self.config.to_dict(),
            "offered_flits_ns_switch": self.offered_flits_ns_switch,
            "accepted_flits_ns_switch": self.accepted_flits_ns_switch,
            "messages_delivered": self.messages_delivered,
            "messages_generated": self.messages_generated,
            "avg_latency_ns": self.avg_latency_ns,
            "avg_network_latency_ns": self.avg_network_latency_ns,
            "max_latency_ns": self.max_latency_ns,
            "avg_itbs_per_message": self.avg_itbs_per_message,
            "itb_overflow_count": self.itb_overflow_count,
            "itb_peak_bytes": self.itb_peak_bytes,
            "link_utilization": (self.link_utilization.to_dict()
                                 if self.link_utilization is not None
                                 else None),
            "backlog_growth": self.backlog_growth,
            "messages_dropped": self.messages_dropped,
            "dropped_in_flight": self.dropped_in_flight,
            "dropped_unroutable": self.dropped_unroutable,
            "retransmissions": self.retransmissions,
            "duplicate_deliveries": self.duplicate_deliveries,
            "permanent_losses": self.permanent_losses,
            "recovered_messages": self.recovered_messages,
            "reconfigurations": self.reconfigurations,
            "time_to_recover_ns": self.time_to_recover_ns,
            "p99_latency_ns": self.p99_latency_ns,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSummary":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        d = dict(data)
        d["config"] = SimConfig.from_dict(d["config"])
        links = d.get("link_utilization")
        d["link_utilization"] = (LinkUtilization.from_dict(links)
                                 if links is not None else None)
        known = {f.name for f in fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown RunSummary fields {sorted(unknown)}")
        return cls(**d)

    def oneline(self) -> str:
        """Compact human-readable summary for reports and examples."""
        lat = (f"{self.avg_latency_ns:9.0f} ns"
               if self.avg_latency_ns is not None else "      n/a")
        sat = " SAT" if self.saturated else ""
        return (f"{self.config.label():8s} offered={self.offered_flits_ns_switch:.4f} "
                f"accepted={self.accepted_flits_ns_switch:.4f} "
                f"lat={lat} itbs/msg="
                f"{self.avg_itbs_per_message if self.avg_itbs_per_message is not None else 0:.2f}"
                f"{sat}")

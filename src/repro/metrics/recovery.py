"""Recovery metrics: how fast accepted traffic returns after a fault.

The resilience story needs one headline number per run: **time to
recover** -- how long after a link death the network's accepted
traffic is back within a threshold of its pre-fault level.  The
tracker bins delivered payload flits into fixed windows over the
measurement period; the first complete post-fault window whose flit
count reaches ``threshold`` x the pre-fault mean marks recovery, and
the time from the fault to that window's end is the reported latency.

The tracker observes *unique* deliveries: with the reliability layer
on it is attached to the transport's first-copy message callback, so
retransmitted duplicates do not inflate the accepted-traffic signal.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim.packet import Packet


class RecoveryTracker:
    """Windowed accepted-traffic accounting for one run."""

    def __init__(self, window_ps: int) -> None:
        if window_ps <= 0:
            raise ValueError("window must be positive")
        self.window_ps = window_ps
        self._origin: Optional[int] = None
        #: window index -> delivered payload flits
        self._bins: Dict[int, int] = {}

    def start(self, t_ps: int) -> None:
        """Begin observation (end of warm-up); earlier deliveries are
        discarded."""
        self._origin = t_ps
        self._bins.clear()

    def on_delivered(self, pkt: Packet) -> None:
        """Delivery callback: account one message's payload flits."""
        if self._origin is None or pkt.delivered_ps is None:
            return
        idx = (pkt.delivered_ps - self._origin) // self.window_ps
        if idx >= 0:
            self._bins[idx] = self._bins.get(idx, 0) + pkt.payload_bytes

    def time_to_recover_ps(self, fault_ps: int, end_ps: int,
                           threshold: float = 0.9) -> Optional[int]:
        """Picoseconds from the fault until accepted traffic is back.

        ``None`` when there is no complete pre-fault window to define
        the baseline, when the baseline carried no traffic, or when no
        complete post-fault window inside ``[start, end_ps]`` reaches
        ``threshold`` x the pre-fault mean.  The window the fault falls
        into is neither baseline nor candidate (it mixes both regimes).
        """
        origin = self._origin
        if origin is None or fault_ps < origin:
            return None
        num_windows = (end_ps - origin) // self.window_ps
        pre = [self._bins.get(i, 0) for i in range(num_windows)
               if origin + (i + 1) * self.window_ps <= fault_ps]
        if not pre:
            return None
        baseline = sum(pre) / len(pre)
        if baseline <= 0:
            return None
        bar = threshold * baseline
        for i in range(num_windows):
            start = origin + i * self.window_ps
            if start < fault_ps:
                continue
            if self._bins.get(i, 0) >= bar:
                return start + self.window_ps - fault_ps
        return None

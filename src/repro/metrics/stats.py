"""Statistical utilities: batch-means confidence intervals.

Latency samples from a single simulation run are autocorrelated (a
congestion episode inflates many consecutive messages), so the naive
i.i.d. standard error is too optimistic.  The classic remedy is the
**batch means** method: split the sample stream into ``k`` contiguous
batches, treat the batch averages as (approximately) independent, and
build a t-interval over them.  The experiment harness uses this to
decide whether two configurations' latencies are distinguishable at a
given window length.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

#: two-sided 95 % Student-t critical values for df = 1..30
_T95 = [12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
        2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
        2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
        2.048, 2.045, 2.042]


def t_critical_95(df: int) -> float:
    """Two-sided 95 % t critical value (1.96 beyond 30 dof)."""
    if df < 1:
        raise ValueError("need at least one degree of freedom")
    if df <= len(_T95):
        return _T95[df - 1]
    return 1.96


@dataclass(frozen=True)
class ConfidenceInterval:
    """A mean with a symmetric 95 % half-width."""

    mean: float
    half_width: float
    batches: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def overlaps(self, other: "ConfidenceInterval") -> bool:
        """True when the two intervals intersect (the difference is not
        resolvable at this confidence level)."""
        return self.low <= other.high and other.low <= self.high

    def relative_half_width(self) -> float:
        """Half-width as a fraction of the mean (precision measure)."""
        if self.mean == 0:
            return math.inf
        return abs(self.half_width / self.mean)


def replication_interval(values: Sequence[float]) -> ConfidenceInterval:
    """95 % t-interval over independent replications (e.g. one value per
    simulation seed).  Unlike :func:`batch_means` no contiguity is
    assumed -- each value must come from an independent run."""
    n = len(values)
    if n < 2:
        raise ValueError("need at least two replications")
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    half = t_critical_95(n - 1) * math.sqrt(var / n)
    return ConfidenceInterval(mean, half, n)


def batch_means(samples: Sequence[float],
                batches: int = 10) -> ConfidenceInterval:
    """95 % batch-means confidence interval for the mean of ``samples``.

    ``samples`` must be in arrival order (batching relies on
    contiguity).  Requires at least 2 samples per batch; trailing
    samples that do not fill the last batch are dropped.
    """
    if batches < 2:
        raise ValueError("need at least 2 batches")
    n = len(samples)
    per = n // batches
    if per < 2:
        raise ValueError(
            f"need at least {2 * batches} samples for {batches} batches, "
            f"got {n}")
    means: List[float] = []
    for b in range(batches):
        chunk = samples[b * per:(b + 1) * per]
        means.append(sum(chunk) / per)
    grand = sum(means) / batches
    var = sum((m - grand) ** 2 for m in means) / (batches - 1)
    half = t_critical_95(batches - 1) * math.sqrt(var / batches)
    return ConfidenceInterval(grand, half, batches)

"""Array-native batch engine: greedy channel reservation over flat state.

The packet engine spends one heap event per arbitration step -- ~50
events per message -- which caps it near 3e5 events/s and makes
512-switch saturation sweeps take hours.  This engine replaces the
per-event heap with **batched time-stepping over flat arrays**:

* every directed channel (two per cable, one injection and one delivery
  channel per NIC) is a row in three flat vectors -- ``busy_until``,
  ``flits`` and ``reserved_ps`` (plain int lists on the scalar path,
  snapshotted into numpy arrays by the vectorised cohort kernel);
* every in-flight packet is one slot in parallel per-slot arrays
  (an immutable info tuple plus mutable leg / injection stamps);
* the simulator heap carries only fixed-stride *batch ticks* (default
  one per simulated microsecond): each tick drains every admission,
  ITB re-injection and delivery whose time has come, in one pass.

**Timing model.**  A packet's whole leg is computed in closed form at
admission: at each channel ``grant = max(arrival, busy_until)``, the
channel is then held for exactly one wire-length of flit cycles
(bandwidth serialisation), and the header pays the same per-hop routing
delay and cable propagation as the packet engine.  Uncontended packets
therefore deliver at **bit-identical** timestamps to the packet engine
(both regimes of the wormhole model collapse to the same delivery
instant when nothing blocks).  Under contention the models diverge:
wormhole blocking holds *every* upstream channel while the head waits,
while the greedy reservation holds each channel only for its transfer
time -- an optimistic approximation whose observable effect is bounded
in the parity suite (see DESIGN section 15 for the documented slack).
The engine does not model deadlock: mis-routed configurations that
deadlock the packet engine simply serialise here.

**Batch-advance invariant.**  Channel-mutating work is processed in
global ``(time, seq)`` order regardless of how tick boundaries chop it
up -- a tick at ``T`` drains the merged admission/re-injection streams
up to ``T`` in time order, and anything a walk schedules lands strictly
later than everything already drained.  Computed timestamps are
therefore *stride-invariant* (pinned by a test), and the warm-up /
end-of-run boundaries are exact: ``reset_stats`` and ``finalize`` run a
catch-up drain before counters are read or zeroed.  Deliveries never
touch channel state, so when no per-packet delivery callback is
registered (the batch-sink path) they bypass the work heap entirely and
are flushed unordered within each drain -- every accumulator they feed
is order-free, and keeping them off the heap both halves the heap
traffic and widens the reorder-safe admission cohort (the earliest
channel-mutating feedback of a walk is its ITB re-injection).

Large same-instant admission cohorts (collective patterns, drained
batches) go through a vectorised kernel: all members' walks are
computed in parallel against a numpy snapshot of the tick-start channel
state, members whose channel footprints are disjoint commit wholesale,
and the few that actually contend are re-walked scalar in admission
order -- the result is **bit-identical** to the pure scalar path (also
pinned by a test).

Capabilities: link statistics and the two batch interfaces.  The ITB
pool is modelled as infinite (re-injection never stalls on pool space;
parity with the packet engine holds whenever that engine reports zero
overflows), so ``itb_pool`` is declined along with ``trace``,
``dynamic_faults`` and ``reliable_delivery`` -- asking for any of them
raises :class:`~repro.sim.base.UnsupportedCapability` instead of
returning fabricated numbers.
"""

from __future__ import annotations

from bisect import bisect_right
from heapq import heappush, heappop
from typing import List, Optional, Tuple

import numpy as np

from .base import (CAP_BATCH_DELIVERY, CAP_BATCH_INJECT, CAP_INVARIANTS,
                   CAP_LINK_STATS, LinkChannelStats, NetworkModel)
from .engines import register
from .packet import Packet

#: work-item kinds on the engine's internal heap
_INJECT, _REINJECT, _DELIVER = 0, 1, 2

#: slot info-tuple fields (immutable per packet; leg / injection stamps
#: live in their own mutable arrays)
_ROUTE, _SRC, _DST, _PAYLOAD, _ALT, _PID, _CREATED, _PKT = range(8)


def _min_feedback_ps(params) -> int:
    """Lower bound on the delay between a walk and any *heap* work item
    it schedules (the head must cross at least one cable, one routing
    stage and one more cable before anything new can happen); admission
    cohorts are capped to this span so batching them cannot reorder
    work relative to the scalar (time, seq) drain.  On the batch-sink
    path deliveries stay off the heap, so the earliest heap feedback is
    an ITB re-injection and the bound grows by the detection + DMA
    overheads (see ``_gap_sink``)."""
    return 2 * params.link_prop_ps + params.routing_delay_ps


def _leg_overheads(route) -> Tuple[int, ...]:
    """Per-leg header overhead (route flits + ITB marks still carried),
    stashed on the shared route object -- same cache the packet engine's
    :class:`~repro.sim.packet.Packet` populates."""
    try:
        return route._leg_overheads
    except AttributeError:
        legs = route.legs
        n = len(legs)
        remaining_hops = sum(leg.hops for leg in legs)
        out: List[int] = []
        for k, leg in enumerate(legs):
            out.append(remaining_hops + (n - 1 - k))
            remaining_hops -= leg.hops
        overheads = tuple(out)
        route._leg_overheads = overheads
        return overheads


@register("array")
class ArrayNetwork(NetworkModel):
    """Batched greedy-reservation engine (see module docstring)."""

    CAPABILITIES = frozenset({CAP_LINK_STATS, CAP_BATCH_INJECT,
                              CAP_BATCH_DELIVERY, CAP_INVARIANTS})

    #: simulated time between batch ticks; results are stride-invariant,
    #: the stride only trades heap events against per-tick batch size
    STRIDE_PS = 4_000_000
    #: minimum same-window admission cohort that takes the vectorised
    #: kernel (below it, the numpy snapshot round-trip exceeds the
    #: scalar walk)
    VECTOR_THRESHOLD = 32

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        g = self.graph
        num_dirs = 2 * g.num_links
        self._inj0 = num_dirs                       # INJ channel of host h
        self._del0 = num_dirs + g.num_hosts         # DEL channel of host h
        self._n_chan = num_dirs + 2 * g.num_hosts
        #: per directed channel: reserved through this time
        self._busy: List[int] = [0] * self._n_chan
        #: per directed channel: flits crossed / time reserved since the
        #: last stats reset (charged at acquisition, see _walk_slot)
        self._flits: List[int] = [0] * self._n_chan
        self._reserved: List[int] = [0] * self._n_chan
        self._last_reset = 0

        #: host id -> switch id (admission fast path)
        self._hsw: List[int] = [0] * g.num_hosts
        for h in g.hosts:
            self._hsw[h.id] = g.host_switch(h.id)
        p = self.params
        #: reorder-safe cohort spans (see _min_feedback_ps)
        self._gap_cb = _min_feedback_ps(p)
        self._gap_sink = (self._gap_cb + p.itb_detect_ps
                          + p.itb_dma_setup_ps)
        # hot-path constants (params are immutable for the run; the
        # routing tables cannot be swapped either -- install_tables
        # requires the reliable-delivery capability this engine declines)
        self._fc = p.flit_cycle_ps
        self._lp = p.link_prop_ps
        self._rdlp = p.routing_delay_ps + p.link_prop_ps
        self._hdr = p.header_type_bytes
        self._itb_delay = p.itb_detect_ps + p.itb_dma_setup_ps
        self._routes_map = self.tables.routes

        # primed schedule (three parallel lists) + cursor
        self._sched_t: List[int] = []
        self._sched_src: List[int] = []
        self._sched_dst: List[int] = []
        self._sched_i = 0
        #: merged heap of (t, seq, kind, slot) channel-mutating work
        self._work: list = []
        self._work_seq = 0
        #: (t_tail, slot) deliveries awaiting their drain (sink path
        #: only -- with per-packet callbacks deliveries use the heap);
        #: _pend_min tracks the earliest entry (None iff empty) so the
        #: per-tick idle/boundary checks never scan the list
        self._pending_del: List[Tuple[int, int]] = []
        self._pend_min: Optional[int] = None
        #: next tick already on the simulator heap (None = engine idle)
        self._next_tick_at: Optional[int] = None

        # per-packet slots (append-only; slot == index): one immutable
        # info tuple plus the two fields a walk mutates
        self._p_info: List[Optional[tuple]] = []
        self._p_leg: List[int] = []
        self._p_injected: List[Optional[int]] = []

        #: pending delivery cohort for the batch sink (parallel lists)
        self._sink_lat: List[int] = []
        self._sink_netlat: List[int] = []
        self._sink_payload: List[int] = []
        self._sink_itbs: List[int] = []

        self._itb_packets = 0

    # -- NetworkModel contract ---------------------------------------------

    def _inject(self, pkt: Packet) -> None:
        slot = len(self._p_info)
        self._p_info.append((pkt.route, pkt.src_host, pkt.dst_host,
                             pkt.payload_bytes, pkt.alt_index, pkt.pid,
                             pkt.created_ps, pkt))
        self._p_leg.append(0)
        self._p_injected.append(None)
        self._push_work(self.sim.now, _INJECT, slot)
        self._ensure_tick(self.sim.now)

    def _reset_engine_stats(self) -> None:
        # catch-up drain: every admission / delivery at or before *now*
        # is accounted to the old window before the counters are zeroed,
        # making the warm-up boundary exact despite batching
        self._drain(self.sim.now)
        self._flits = [0] * self._n_chan
        self._reserved = [0] * self._n_chan
        self._last_reset = self.sim.now

    def finalize(self) -> None:
        self._drain(self.sim.now)

    def link_flit_counts(self) -> List[LinkChannelStats]:
        out = []
        flits, reserved = self._flits, self._reserved
        for link in self.graph.links:
            d = link.id << 1
            out.append(LinkChannelStats(link.a, link.b, link.id,
                                        flits[d], reserved[d]))
            out.append(LinkChannelStats(link.b, link.a, link.id,
                                        flits[d | 1], reserved[d | 1]))
        return out

    # -- batch interfaces --------------------------------------------------

    def prime_schedule(self, schedule) -> None:
        """Load a pregenerated ``(t_ps, src, dst)`` schedule (sorted by
        time) and start ticking at its first entry.  The schedule is
        only read, never mutated (runs sharing a seed may share it)."""
        if self._sched_i < len(self._sched_t):
            raise RuntimeError("a primed schedule is already pending")
        if not schedule:
            return
        ts, srcs, dsts = map(list, zip(*schedule))
        if ts != sorted(ts):
            raise ValueError("schedule must be sorted by time")
        self._sched_t = ts
        self._sched_src = srcs
        self._sched_dst = dsts
        self._sched_i = 0
        self._ensure_tick(max(ts[0], self.sim.now))

    # -- work bookkeeping --------------------------------------------------

    def _push_work(self, t: int, kind: int, slot: int) -> None:
        heappush(self._work, (t, self._work_seq, kind, slot))
        self._work_seq += 1

    def _ensure_tick(self, t: int) -> None:
        nt = self._next_tick_at
        if nt is None or t < nt:
            self._next_tick_at = t
            self.sim.at(t, self._tick)

    def _next_time(self) -> Optional[int]:
        cands = []
        if self._sched_i < len(self._sched_t):
            cands.append(self._sched_t[self._sched_i])
        if self._work:
            cands.append(self._work[0][0])
        if self._pend_min is not None:
            cands.append(self._pend_min)
        return min(cands) if cands else None

    # -- the batch tick ----------------------------------------------------

    def _tick(self) -> None:
        # superseded ticks (ensure_tick may schedule ahead of one
        # already on the heap) drain idempotently -- no guard needed
        now = self.sim.now
        self._drain(now)
        nxt = self._next_time()
        if nxt is None:
            self._next_tick_at = None
            return
        t = nxt if nxt > now + self.STRIDE_PS else now + self.STRIDE_PS
        self._next_tick_at = t
        self.sim.at(t, self._tick)

    def _drain(self, T: int) -> None:
        """Process every admission / re-injection / delivery with
        ``t <= T``; channel-mutating work in global (time, seq) order,
        order-free deliveries flushed at the end."""
        sched_t, work = self._sched_t, self._work
        srcs, dsts = self._sched_src, self._sched_dst
        n = len(sched_t)
        i = self._sched_i
        threshold = self.VECTOR_THRESHOLD
        gap = self._gap_cb if self._delivery_callbacks else self._gap_sink
        admit_walk = self._admit_walk
        walk_slot = self._walk_slot
        complete = self._complete
        try:
            while True:
                t_s = sched_t[i] if i < n else None
                t_w = work[0][0] if work else None
                if (t_w is not None and t_w <= T
                        and (t_s is None or t_w <= t_s)):
                    t, _seq, kind, slot = heappop(work)
                    if kind == _DELIVER:
                        complete(slot, t)
                    else:
                        walk_slot(slot, t)
                elif t_s is not None and t_s <= T:
                    # O(1) probe: only a cohort of >= threshold
                    # admissions inside the reorder-safe span (bounded
                    # by the tick, strictly by the next work item, and
                    # by the minimum feedback delay of a walk -- so no
                    # work produced inside it could have interleaved)
                    # pays for the vector kernel; otherwise admit one
                    # message and re-check the work heap, which keeps
                    # exact (time, seq) order with no chunk machinery
                    probe = i + threshold - 1
                    if (probe < n and sched_t[probe] <= T
                            and sched_t[probe] <= t_s + gap - 1
                            and (t_w is None or sched_t[probe] < t_w)):
                        limit = T
                        if t_w is not None and t_w - 1 < limit:
                            limit = t_w - 1
                        gap_end = t_s + gap - 1
                        if gap_end < limit:
                            limit = gap_end
                        end = bisect_right(sched_t, limit, i, n)
                        self._admit_cohort_vector(i, end)
                        i = end
                    else:
                        admit_walk(t_s, srcs[i], dsts[i])
                        i += 1
                else:
                    break
        finally:
            self._sched_i = i
        if self._pend_min is not None and self._pend_min <= T:
            keep = []
            kapp = keep.append
            sink = self._delivery_sink
            if not self._delivery_callbacks and sink is not None:
                # bulk-complete straight into the sink buffers; slots
                # carrying a real Packet (engine-level send()) still go
                # through _complete for its materialisation bookkeeping
                p_info = self._p_info
                inj = self._p_injected
                lat_a = self._sink_lat.append
                net_a = self._sink_netlat.append
                pay_a = self._sink_payload.append
                itb_a = self._sink_itbs.append
                done = 0
                for t_tail, slot in self._pending_del:
                    if t_tail > T:
                        kapp((t_tail, slot))
                        continue
                    info = p_info[slot]
                    if info[_PKT] is not None:
                        self._complete(slot, t_tail)
                        continue
                    done += 1
                    lat_a(t_tail - info[_CREATED])
                    net_a(t_tail - inj[slot])
                    pay_a(info[_PAYLOAD])
                    itb_a(len(info[_ROUTE].itb_hosts))
                    p_info[slot] = None
                self.delivered += done
                self.delivered_since_check += done
            else:
                complete = self._complete
                for t_tail, slot in self._pending_del:
                    if t_tail <= T:
                        complete(slot, t_tail)
                    else:
                        kapp((t_tail, slot))
            self._pending_del = keep
            self._pend_min = min(p[0] for p in keep) if keep else None
        self._flush_sink()

    # -- admission ---------------------------------------------------------

    def _admit_walk(self, t: int, src: int, dst: int) -> None:
        """Admit one primed-schedule message and walk its first leg --
        the ``send()`` bookkeeping with route lookup inlined (the slow
        path below handles dead-link blacklisting)."""
        if self.dead_links:
            slot = self._admit(t, src, dst)
            if slot is not None:
                self._walk_slot(slot, t)
            return
        hsw = self._hsw
        alts = self._routes_map[(hsw[src], hsw[dst])]
        if len(alts) == 1:
            alt = 0
        else:
            alt = self.policy.select_index(src, dst, alts)
        self.generated += 1
        pid = self._next_pid
        self._next_pid += 1
        slot = len(self._p_info)
        self._p_info.append((alts[alt], src, dst, self.message_bytes,
                             alt, pid, t, None))
        self._p_leg.append(0)
        self._p_injected.append(None)
        self._walk_slot(slot, t)

    def _admit(self, t: int, src: int, dst: int) -> Optional[int]:
        """Base-``send`` bookkeeping for one primed-schedule message
        (blacklist-aware route selection; also the vector kernel's
        admission step)."""
        selected = self._select_route(src, dst)
        self.generated += 1
        pid = self._next_pid
        self._next_pid += 1
        if selected is None:        # only reachable with dead links
            self.dropped += 1
            self.dropped_unroutable += 1
            return None
        route, alt = selected
        slot = len(self._p_info)
        self._p_info.append((route, src, dst, self.message_bytes,
                             alt, pid, t, None))
        self._p_leg.append(0)
        self._p_injected.append(None)
        return slot

    # -- scalar walk -------------------------------------------------------

    def _walk_slot(self, slot: int, t_ready: int) -> None:
        """Walk the slot's current leg in closed form: greedily reserve
        the injection channel, each directed hop and the delivery
        channel, then queue the resulting delivery or re-injection."""
        fc = self._fc
        lp = self._lp
        rdlp = self._rdlp
        busy = self._busy
        flits, reserved = self._flits, self._reserved

        info = self._p_info[slot]
        route = info[_ROUTE]
        leg_idx = self._p_leg[slot]
        legs = route.legs
        leg = legs[leg_idx]
        try:
            ovh = route._leg_overheads
        except AttributeError:
            ovh = _leg_overheads(route)
        wire = info[_PAYLOAD] + self._hdr + ovh[leg_idx]
        hold = wire * fc

        if leg_idx == 0:
            host = info[_SRC]
        else:
            host = route.itb_hosts[leg_idx - 1]
        c = self._inj0 + host
        b = busy[c]
        g = b if b > t_ready else t_ready
        rel = g + hold
        busy[c] = rel
        flits[c] += wire
        reserved[c] += rel - g
        if leg_idx == 0:            # a slot's first leg walks exactly once
            self._p_injected[slot] = g

        a = g + lp
        try:
            dirs = leg._dir_hops
        except AttributeError:
            dirs = self._leg_dirs(leg)
        for d in dirs:
            b = busy[d]
            g = b if b > a else a
            rel = g + hold
            busy[d] = rel
            flits[d] += wire
            reserved[d] += rel - g
            a = g + rdlp

        last_leg = leg_idx == len(legs) - 1
        target = info[_DST] if last_leg else route.itb_hosts[leg_idx]
        c = self._del0 + target
        b = busy[c]
        g = b if b > a else a
        rel = g + hold
        busy[c] = rel
        flits[c] += wire
        reserved[c] += rel - g
        t_head = g + rdlp

        if last_leg:
            t_tail = t_head + hold
            if self._delivery_callbacks:
                heappush(self._work,
                         (t_tail, self._work_seq, _DELIVER, slot))
                self._work_seq += 1
            else:
                self._pending_del.append((t_tail, slot))
                pm = self._pend_min
                if pm is None or t_tail < pm:
                    self._pend_min = t_tail
        else:
            self._p_leg[slot] = leg_idx + 1
            self._itb_packets += 1
            heappush(self._work, (t_head + self._itb_delay,
                                  self._work_seq, _REINJECT, slot))
            self._work_seq += 1

    def _leg_dirs(self, leg) -> Tuple[int, ...]:
        """Directed-channel indices of a leg's hops -- identical encoding
        (``link_id << 1 | direction``) and identical per-leg stash as the
        packet engine, so cached tables share the resolution."""
        try:
            return leg._dir_hops
        except AttributeError:
            links = self.graph.links
            dirs = tuple((lid << 1) | (links[lid].a != frm)
                         for lid, frm in zip(leg.links, leg.switches))
            leg._dir_hops = dirs
            return dirs

    # -- vectorised cohort admission ---------------------------------------

    def _admit_cohort_vector(self, i: int, end: int) -> None:
        """Admit schedule entries ``[i, end)`` through the numpy kernel.

        Route selection (stateful policies) runs scalar in admission
        order; the per-channel timing recurrence runs vectorised for
        every member whose channel footprint is disjoint from the rest
        of the cohort, against a numpy snapshot of the channel state
        that is written back before the stragglers run.  Contending
        members re-walk scalar in admission order afterwards -- their
        footprints are disjoint from the committed ones by construction,
        so the combined result is bit-identical to a fully scalar drain.
        """
        params = self.params
        fc = params.flit_cycle_ps
        lp = params.link_prop_ps
        rd = params.routing_delay_ps

        slots: List[int] = []
        times: List[int] = []
        dirs_list: List[Tuple[int, ...]] = []
        wires: List[int] = []
        srcs: List[int] = []
        targets: List[int] = []
        lasts: List[bool] = []
        for j in range(i, end):
            slot = self._admit(self._sched_t[j], self._sched_src[j],
                               self._sched_dst[j])
            if slot is None:
                continue
            info = self._p_info[slot]
            route = info[_ROUTE]
            slots.append(slot)
            times.append(self._sched_t[j])
            dirs_list.append(self._leg_dirs(route.legs[0]))
            wires.append(info[_PAYLOAD] + self._hdr
                         + _leg_overheads(route)[0])
            srcs.append(info[_SRC])
            last = len(route.legs) == 1
            lasts.append(last)
            targets.append(info[_DST] if last else route.itb_hosts[0])
        m = len(slots)
        if not m:
            return

        # full channel footprint per member; any channel touched twice
        # within the cohort marks *all* its users as contending
        inj = np.array(srcs, dtype=np.int64) + self._inj0
        dlv = np.array(targets, dtype=np.int64) + self._del0
        hop_counts = np.array([len(d) for d in dirs_list])
        member_of_hop = np.repeat(np.arange(m), hop_counts)
        hops = np.array([d for dirs in dirs_list for d in dirs]
                        or [], dtype=np.int64)
        foot = np.concatenate([inj, dlv, hops])
        owner = np.concatenate([np.arange(m), np.arange(m), member_of_hop])
        _, inverse, counts = np.unique(foot, return_inverse=True,
                                       return_counts=True)
        contended = np.zeros(m, dtype=bool)
        np.logical_or.at(contended, owner, counts[inverse] > 1)

        clean = np.flatnonzero(~contended)
        if clean.size:
            busy = np.array(self._busy, dtype=np.int64)
            flits = np.array(self._flits, dtype=np.int64)
            reserved = np.array(self._reserved, dtype=np.int64)
            t_v = np.array(times, dtype=np.int64)[clean]
            wire_v = np.array(wires, dtype=np.int64)[clean]
            hold_v = wire_v * fc
            ci = inj[clean]
            g = np.maximum(t_v, busy[ci])
            rel = g + hold_v
            busy[ci] = rel
            flits[ci] += wire_v
            reserved[ci] += rel - g
            inj_g = g
            a = g + lp
            # padded hop matrix: position p of every clean member
            pmax = int(hop_counts[clean].max()) if clean.size else 0
            D = np.full((clean.size, pmax), -1, dtype=np.int64)
            for r, midx in enumerate(clean):
                d = dirs_list[midx]
                D[r, :len(d)] = d
            for p in range(pmax):
                col = D[:, p]
                act = col >= 0
                if not act.any():
                    break
                c = col[act]
                g = np.maximum(a[act], busy[c])
                rel = g + hold_v[act]
                busy[c] = rel
                flits[c] += wire_v[act]
                reserved[c] += rel - g
                a[act] = g + rd + lp
            cd = dlv[clean]
            g = np.maximum(a, busy[cd])
            rel = g + hold_v
            busy[cd] = rel
            flits[cd] += wire_v
            reserved[cd] += rel - g
            t_head = g + rd + lp
            t_tail = t_head + hold_v
            reinject_at = (t_head + params.itb_detect_ps
                           + params.itb_dma_setup_ps)
            self._busy = busy.tolist()
            self._flits = flits.tolist()
            self._reserved = reserved.tolist()
            callbacks = bool(self._delivery_callbacks)
            for r, midx in enumerate(clean):
                slot = slots[midx]
                self._p_injected[slot] = int(inj_g[r])
                if lasts[midx]:
                    tt = int(t_tail[r])
                    if callbacks:
                        self._push_work(tt, _DELIVER, slot)
                    else:
                        self._pending_del.append((tt, slot))
                        if self._pend_min is None or tt < self._pend_min:
                            self._pend_min = tt
                else:
                    self._p_leg[slot] = 1
                    self._itb_packets += 1
                    self._push_work(int(reinject_at[r]), _REINJECT, slot)

        for midx in np.flatnonzero(contended):
            self._walk_slot(slots[midx], times[midx])

    # -- delivery ----------------------------------------------------------

    # -- runtime invariants --------------------------------------------------

    def _audit_engine(self, check) -> None:
        check(len(self._p_leg) == len(self._p_info)
              and len(self._p_injected) == len(self._p_info),
              "slot arrays out of sync")
        live = sum(1 for info in self._p_info if info is not None)
        check(live == self.in_flight,
              f"conservation: {live} live slots but ledger says "
              f"{self.in_flight} packets in flight")
        check(all(b >= 0 for b in self._busy),
              "channel busy horizon went negative")
        check(all(f >= 0 for f in self._flits),
              "channel flit counter went negative")
        check(all(r >= 0 for r in self._reserved),
              "channel reserved time went negative")
        for slot, info in enumerate(self._p_info):
            if info is None:
                continue
            check(0 <= self._p_leg[slot] < len(info[0].legs),
                  f"slot {slot}: leg index {self._p_leg[slot]} outside "
                  f"its {len(info[0].legs)}-leg route")
        for t_tail, slot in self._pending_del:
            check(self._p_info[slot] is not None,
                  f"pending delivery references freed slot {slot}")
            check(self._pend_min is not None
                  and self._pend_min <= t_tail,
                  f"pending-delivery minimum out of date ({self._pend_min}"
                  f" vs {t_tail})")
        check((self._pend_min is None) == (not self._pending_del),
              "pending-delivery minimum set without pending entries")
        check(0 <= self._sched_i <= len(self._sched_t),
              "primed-schedule cursor out of range")
        check(len(self._sink_lat) == len(self._sink_netlat)
              == len(self._sink_payload) == len(self._sink_itbs),
              "delivery-sink cohort lists out of sync")

    def _audit_drained(self, check) -> None:
        live = sum(1 for info in self._p_info if info is not None)
        check(live == 0, f"drained: {live} slots still live")
        check(not self._work, f"drained: {len(self._work)} work items "
                              "still heaped")
        check(not self._pending_del,
              f"drained: {len(self._pending_del)} deliveries pending")
        check(self._sched_i == len(self._sched_t),
              f"drained: primed schedule has "
              f"{len(self._sched_t) - self._sched_i} unadmitted entries")
        check(not self._sink_lat,
              f"drained: {len(self._sink_lat)} deliveries unflushed")

    def _stall_snapshot(self) -> dict:
        # the greedy-reservation walk cannot block, so there is no
        # wait-for graph; a stall here means the engine stopped
        # scheduling work while slots are live
        live = [slot for slot, info in enumerate(self._p_info)
                if info is not None]
        return {
            "blocked_worms": [
                {"pid": self._p_info[s][5], "src": self._p_info[s][1],
                 "dst": self._p_info[s][2], "leg": self._p_leg[s]}
                for s in live[:64]],
            "channel_owners": [],
            "wait_for": [],
            "work_heap": len(self._work),
            "next_work_ps": self._work[0][0] if self._work else None,
            "pending_deliveries": len(self._pending_del),
            "busy_horizon_ps": max(self._busy, default=0),
        }

    def _complete(self, slot: int, t_tail: int) -> None:
        info = self._p_info[slot]
        pkt = info[_PKT]
        if pkt is not None or self._delivery_callbacks:
            if pkt is None:
                pkt = Packet(info[_PID], info[_SRC], info[_DST],
                             info[_PAYLOAD], info[_ROUTE], info[_CREATED],
                             self.params, alt_index=info[_ALT])
            pkt.injected_ps = self._p_injected[slot]
            self._finish_delivery(pkt, t_tail)
        else:
            self.delivered += 1
            self.delivered_since_check += 1
        if self._delivery_sink is not None:
            self._sink_lat.append(t_tail - info[_CREATED])
            self._sink_netlat.append(t_tail - self._p_injected[slot])
            self._sink_payload.append(info[_PAYLOAD])
            self._sink_itbs.append(len(info[_ROUTE].itb_hosts))
        self._p_info[slot] = None                    # free references

    def _flush_sink(self) -> None:
        if self._delivery_sink is None or not self._sink_lat:
            return
        self._delivery_sink.record_batch(
            self._sink_lat, self._sink_netlat, self._sink_payload,
            self._sink_itbs, [0] * len(self._sink_lat))
        self._sink_lat = []
        self._sink_netlat = []
        self._sink_payload = []
        self._sink_itbs = []

"""Minimal discrete-event simulation engine.

A binary-heap event queue over integer picosecond timestamps.  Events
are zero-argument callables; ties are broken by insertion order, which
makes every simulation fully deterministic for a given seed.

The engine knows nothing about networks.  It offers a *progress
watchdog* hook: a callback invoked at a fixed interval that may raise
(:class:`DeadlockError` is provided for the network layer's use --
deliberately mis-routed configurations, e.g. minimal routing on a torus
*without* in-transit buffers, genuinely deadlock and tests assert that
we detect it).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple


class DeadlockError(RuntimeError):
    """Raised when the configured watchdog detects lack of progress."""


class Simulator:
    """Event queue with integer picosecond time."""

    __slots__ = ("now", "_heap", "_seq", "_watchdog", "_watchdog_interval")

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List[Tuple[int, int, Callable[[], None]]] = []
        self._seq: int = 0
        self._watchdog: Optional[Callable[[], None]] = None
        self._watchdog_interval: int = 0

    def at(self, time_ps: int, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` at absolute time ``time_ps`` (>= now)."""
        if time_ps < self.now:
            raise ValueError(f"cannot schedule in the past "
                             f"({time_ps} < {self.now})")
        self._seq += 1
        heapq.heappush(self._heap, (time_ps, self._seq, fn))

    def after(self, delay_ps: int, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` at ``now + delay_ps``."""
        self.at(self.now + delay_ps, fn)

    def set_watchdog(self, interval_ps: int,
                     check: Callable[[], None]) -> None:
        """Run ``check()`` every ``interval_ps`` of simulated time.

        The check runs as an ordinary event; raising from it aborts the
        simulation (used for deadlock detection).
        """
        if interval_ps <= 0:
            raise ValueError("watchdog interval must be positive")
        self._watchdog = check
        self._watchdog_interval = interval_ps
        self.after(interval_ps, self._watchdog_tick)

    def _watchdog_tick(self) -> None:
        assert self._watchdog is not None
        self._watchdog()
        self.after(self._watchdog_interval, self._watchdog_tick)

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next event, or None when idle."""
        return self._heap[0][0] if self._heap else None

    def run_until(self, t_end_ps: int) -> None:
        """Process every event with time <= ``t_end_ps``; leave
        ``now == t_end_ps`` afterwards."""
        heap = self._heap
        while heap and heap[0][0] <= t_end_ps:
            time_ps, _seq, fn = heapq.heappop(heap)
            self.now = time_ps
            fn()
        self.now = max(self.now, t_end_ps)

    def run_until_idle(self, max_time_ps: Optional[int] = None) -> None:
        """Process events until the queue is empty (or ``max_time_ps``)."""
        heap = self._heap
        while heap:
            if max_time_ps is not None and heap[0][0] > max_time_ps:
                self.now = max_time_ps
                return
            time_ps, _seq, fn = heapq.heappop(heap)
            self.now = time_ps
            fn()

"""Minimal discrete-event simulation engine.

A binary-heap event queue over integer picosecond timestamps.  Events
are callables plus pre-bound positional arguments; ties are broken by
insertion order, which makes every simulation fully deterministic for
a given seed.

Passing the arguments through :meth:`Simulator.at` instead of closing
over them is the engine's hot-path contract: the network models
schedule millions of events per run, and a ``(fn, args)`` heap entry
costs one tuple, whereas a capturing lambda costs a code object lookup
plus one cell per free variable.  ``at(t, fn)`` with no arguments
still works unchanged.

The engine knows nothing about networks.  It offers a *progress
watchdog* hook: a callback invoked at a fixed interval that may raise
(:class:`DeadlockError` is provided for the network layer's use --
deliberately mis-routed configurations, e.g. minimal routing on a torus
*without* in-transit buffers, genuinely deadlock and tests assert that
we detect it).
"""

from __future__ import annotations

import heapq
import json
from time import perf_counter as _perf_counter
from typing import Callable, List, Optional, Tuple

_heappush = heapq.heappush
_heappop = heapq.heappop


class DeadlockError(RuntimeError):
    """Raised when the configured watchdog detects lack of progress.

    When the stalled engine supports runtime diagnosis
    (:data:`~repro.sim.base.CAP_INVARIANTS`), ``diagnosis`` carries the
    JSON-safe stall dump built by
    :func:`repro.sim.invariants.diagnose_stall` -- channel owners,
    blocked worms, route legs and the detected wait-for cycle -- and
    the rendered dump is appended to the message, so a deadlocked run
    names its cycle instead of just reporting "no progress".
    """

    def __init__(self, message: str = "",
                 diagnosis: Optional[dict] = None) -> None:
        if diagnosis is not None:
            cycle = diagnosis.get("wait_for_cycle")
            if cycle:
                message += "\nwait-for cycle:\n  " + "\n  ".join(
                    (f"pid {n['waiter']} waits on {n['waits_on']} "
                     f"held by pid {n['held_by']}")
                    if isinstance(n, dict) else str(n) for n in cycle)
            message += ("\ndeadlock diagnosis:\n"
                        + json.dumps(diagnosis, indent=2, sort_keys=True))
        super().__init__(message)
        self.diagnosis = diagnosis


class Simulator:
    """Event queue with integer picosecond time."""

    __slots__ = ("now", "events", "wall_s", "_heap", "_seq", "_watchdog",
                 "_watchdog_interval")

    def __init__(self) -> None:
        self.now: int = 0
        #: events executed so far (drives the events/sec perf counters)
        self.events: int = 0
        #: wall-clock seconds spent inside the run loops
        self.wall_s: float = 0.0
        self._heap: List[Tuple[int, int, Callable[..., None], tuple]] = []
        self._seq: int = 0
        self._watchdog: Optional[Callable[[], None]] = None
        self._watchdog_interval: int = 0

    @property
    def events_per_s(self) -> float:
        """Events processed per wall-clock second of run-loop time."""
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def at(self, time_ps: int, fn: Callable[..., None], *args) -> None:
        """Schedule ``fn(*args)`` at absolute time ``time_ps`` (>= now).

        Prefer passing arguments here over capturing them in a closure:
        the heap entry then carries a plain tuple and the hot loop stays
        allocation-free.
        """
        if time_ps < self.now:
            raise ValueError(f"cannot schedule in the past "
                             f"({time_ps} < {self.now})")
        self._seq += 1
        _heappush(self._heap, (time_ps, self._seq, fn, args))

    def after(self, delay_ps: int, fn: Callable[..., None], *args) -> None:
        """Schedule ``fn(*args)`` at ``now + delay_ps``."""
        self.at(self.now + delay_ps, fn, *args)

    def set_watchdog(self, interval_ps: int,
                     check: Callable[[], None]) -> None:
        """Run ``check()`` every ``interval_ps`` of simulated time.

        The check runs as an ordinary event; raising from it aborts the
        simulation (used for deadlock detection).
        """
        if interval_ps <= 0:
            raise ValueError("watchdog interval must be positive")
        self._watchdog = check
        self._watchdog_interval = interval_ps
        self.after(interval_ps, self._watchdog_tick)

    def _watchdog_tick(self) -> None:
        assert self._watchdog is not None
        self._watchdog()
        self.after(self._watchdog_interval, self._watchdog_tick)

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next event, or None when idle."""
        return self._heap[0][0] if self._heap else None

    def run_until(self, t_end_ps: int) -> None:
        """Process every event with time <= ``t_end_ps``; leave
        ``now == t_end_ps`` afterwards."""
        heap = self._heap
        pop = _heappop
        done = 0
        t0 = _perf_counter()
        try:
            while heap and heap[0][0] <= t_end_ps:
                time_ps, _seq, fn, args = pop(heap)
                self.now = time_ps
                fn(*args)
                done += 1
        finally:
            self.events += done
            self.wall_s += _perf_counter() - t0
        self.now = max(self.now, t_end_ps)

    def run_until_idle(self, max_time_ps: Optional[int] = None) -> None:
        """Process events until the queue is empty (or ``max_time_ps``)."""
        heap = self._heap
        pop = _heappop
        done = 0
        t0 = _perf_counter()
        try:
            while heap:
                if max_time_ps is not None and heap[0][0] > max_time_ps:
                    self.now = max_time_ps
                    return
                time_ps, _seq, fn, args = pop(heap)
                self.now = time_ps
                fn(*args)
                done += 1
        finally:
            self.events += done
            self.wall_s += _perf_counter() - t0

"""The abstract network-model layer shared by every simulation engine.

Historically the packet-level and flit-level simulators were two
hand-rolled classes that duplicated their whole public surface (pid
allocation, route selection, ``send``, delivery callbacks, the deadlock
watchdog, ITB leg bookkeeping) while silently diverging in capability:
only the packet engine had link statistics, a tracer and the ITB pool
model, so the experiment runner carried engine conditionals and
fabricated zeros for the rest.

:class:`NetworkModel` owns everything engine-independent and defines a
small contract for backends:

* ``_build()``            -- construct channels / wires / NIC state;
* ``_inject(pkt)``        -- start leg 0 of a freshly created packet;
* ``_reset_engine_stats`` -- zero engine-specific counters at the end
  of warm-up (the base resets nothing else).

Backends declare what they can measure through :meth:`capabilities`
(:data:`CAP_LINK_STATS`, :data:`CAP_ITB_POOL`, :data:`CAP_TRACE`) and
expose those measurements through the uniform accessors
:meth:`link_flit_counts` and :meth:`itb_stats`; asking for a
measurement the engine does not support raises
:class:`UnsupportedCapability` instead of returning fabricated numbers.
Engines are selected by name through :mod:`repro.sim.engines`, so
callers (runner, CLI, config validation) never mention a concrete
engine class.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..config import MyrinetParams
from ..routing.policies import PathSelectionPolicy
from ..routing.routes import SourceRoute
from ..routing.table import RoutingTables
from ..topology.graph import NetworkGraph
from .engine import DeadlockError, Simulator
from .faults import FaultPlan
from .packet import Packet
from .trace import PacketTracer

DeliveryCallback = Callable[[Packet], None]
DropCallback = Callable[[Packet, int], None]
LinkDeathCallback = Callable[[int, int], None]

#: engine can report per-directed-channel flit/reservation statistics
CAP_LINK_STATS = "link_stats"
#: engine models the finite in-transit buffer pool (admission, peak,
#: overflow staging through host memory)
CAP_ITB_POOL = "itb_pool"
#: engine emits :class:`~repro.sim.trace.PacketTracer` events
CAP_TRACE = "trace"
#: engine supports mid-run link failures (:class:`~repro.sim.faults
#: .FaultPlan`): dead channels drop the worms they strand, NICs
#: blacklist routes crossing dead links
CAP_DYNAMIC_FAULTS = "dynamic_faults"
#: engine exposes the hooks an end-to-end reliability layer needs:
#: in-flight drop notification, forced route selection for
#: retransmissions, and mid-run route-table hot swap
#: (:class:`~repro.sim.reliable.ReliableTransport`)
CAP_RELIABLE_DELIVERY = "reliable_delivery"
#: engine accepts a pregenerated traffic schedule in one call
#: (:meth:`NetworkModel.prime_schedule`) instead of per-message
#: ``send`` events -- the batch engines use this to keep message
#: creation off the event heap entirely
CAP_BATCH_INJECT = "batch_inject"
#: engine can report deliveries through a vectorised sink
#: (:attr:`NetworkModel.delivery_sink`, duck-typed to
#: :meth:`~repro.metrics.collector.LatencyCollector.record_batch`)
#: instead of one callback invocation per packet
CAP_BATCH_DELIVERY = "batch_delivery"
#: engine supports the runtime invariant auditor
#: (:func:`repro.sim.invariants.audit`: conservation laws, channel
#: occupancy bounds, ITB byte-accounting) and the stall diagnoser
#: (:func:`repro.sim.invariants.diagnose_stall`: wait-for graph +
#: cycle detection behind the deadlock watchdog)
CAP_INVARIANTS = "invariants"

#: every capability a backend may declare
ALL_CAPABILITIES = frozenset({CAP_LINK_STATS, CAP_ITB_POOL, CAP_TRACE,
                              CAP_DYNAMIC_FAULTS,
                              CAP_RELIABLE_DELIVERY,
                              CAP_BATCH_INJECT, CAP_BATCH_DELIVERY,
                              CAP_INVARIANTS})


class UnsupportedCapability(RuntimeError):
    """A measurement was requested from an engine that declared itself
    unable to provide it (see :meth:`NetworkModel.capabilities`)."""


@dataclass(frozen=True)
class LinkChannelStats:
    """Flit accounting of one directed inter-switch channel."""

    #: source switch id
    src: int
    #: destination switch id
    dst: int
    #: physical cable id
    link_id: int
    #: flits that crossed the channel since the last stats reset
    flits: int
    #: time the channel was reserved by some packet, picoseconds
    reserved_ps: int


@dataclass(frozen=True)
class ItbStats:
    """Aggregate in-transit buffer pool statistics over all NICs."""

    #: highest single-NIC pool occupancy observed, bytes
    peak_bytes: int
    #: in-transit packets that found their NIC pool full on arrival
    overflow_count: int
    #: in-transit packets processed (ejected + re-injected)
    packets: int


#: what an engine without any ITB traffic reports
NO_ITB_STATS = ItbStats(peak_bytes=0, overflow_count=0, packets=0)


class NetworkModel(ABC):
    """Abstract network layer: one topology + routing tables wired into
    a running simulation, independent of the timing fidelity.

    Subclasses implement the three-method engine contract (see module
    docstring) and override the uniform accessors for each capability
    they declare.  Everything else -- message creation, route selection,
    delivery bookkeeping, the watchdog -- lives here exactly once.
    """

    #: registry name, set by :func:`repro.sim.engines.register`
    name: str = "abstract"

    #: capabilities this backend declares (override per engine)
    CAPABILITIES: frozenset = frozenset()

    def __init__(self, sim: Simulator, graph: NetworkGraph,
                 tables: RoutingTables, policy: PathSelectionPolicy,
                 params: MyrinetParams, message_bytes: int = 512) -> None:
        if message_bytes <= 0:
            raise ValueError("message size must be positive")
        self.sim = sim
        self.graph = graph
        self.tables = tables
        self.policy = policy
        self.params = params
        self.message_bytes = message_bytes

        self.generated = 0
        self.delivered = 0
        self.delivered_since_check = 0
        #: packets that died in flight on a failed link
        self.dropped = 0
        #: messages refused at the source because no surviving route
        #: avoids the dead links (counted in ``generated`` too)
        self.dropped_unroutable = 0
        #: cable ids killed by the fault plan so far
        self.dead_links: Set[int] = set()
        #: when False, NICs keep using the installed tables verbatim
        #: even while links are dead -- the reconfiguration policy
        #: replaces the tables instead of filtering them
        #: (:class:`~repro.sim.reliable.ReconfigurationManager`)
        self.blacklist_on_fault = True
        #: (src_sw, dst_sw) -> surviving alternatives; rebuilt lazily
        #: and flushed on every link death
        self._routable_cache: Dict[Tuple[int, int],
                                   List[SourceRoute]] = {}
        self._next_pid = 0
        self._delivery_callbacks: List[DeliveryCallback] = []
        self._drop_callbacks: List[DropCallback] = []
        self._link_death_callbacks: List[LinkDeathCallback] = []
        #: optional :class:`~repro.sim.trace.PacketTracer`; engines
        #: without :data:`CAP_TRACE` reject assignment (see setter)
        self._tracer: Optional[PacketTracer] = None
        #: optional batch delivery sink; engines without
        #: :data:`CAP_BATCH_DELIVERY` reject assignment (see setter)
        self._delivery_sink = None
        self._build()

    # -- engine contract ---------------------------------------------------

    @abstractmethod
    def _build(self) -> None:
        """Construct the engine's channels / wires / NIC state."""

    @abstractmethod
    def _inject(self, pkt: Packet) -> None:
        """Start leg 0 of a freshly created packet at the current time."""

    @abstractmethod
    def _reset_engine_stats(self) -> None:
        """Zero engine-specific statistics (end of warm-up)."""

    # -- capabilities ------------------------------------------------------

    @classmethod
    def capabilities(cls) -> frozenset:
        """The measurement capabilities this backend declares."""
        return cls.CAPABILITIES

    def require(self, capability: str) -> None:
        """Raise :class:`UnsupportedCapability` unless this engine
        declared ``capability``."""
        if capability not in self.capabilities():
            raise UnsupportedCapability(
                f"engine {self.name!r} does not support {capability!r} "
                f"(declared: {sorted(self.capabilities()) or 'none'})")

    # -- uniform accessors (overridden by capable engines) -----------------

    def link_flit_counts(self) -> List[LinkChannelStats]:
        """Per directed inter-switch channel statistics
        (requires :data:`CAP_LINK_STATS`)."""
        self.require(CAP_LINK_STATS)
        raise NotImplementedError(
            f"engine {self.name!r} declares {CAP_LINK_STATS!r} but does "
            "not implement link_flit_counts()")

    def itb_stats(self) -> ItbStats:
        """Aggregate in-transit pool statistics
        (requires :data:`CAP_ITB_POOL`)."""
        self.require(CAP_ITB_POOL)
        raise NotImplementedError(
            f"engine {self.name!r} declares {CAP_ITB_POOL!r} but does "
            "not implement itb_stats()")

    # -- batch interfaces (engines declaring the CAP_BATCH_* caps) ---------

    def prime_schedule(self, schedule) -> None:
        """Hand the engine a pregenerated traffic schedule: an iterable
        of ``(t_ps, src_host, dst_host)`` sorted by time (requires
        :data:`CAP_BATCH_INJECT`).  Entries are injected exactly as if
        ``send(src, dst)`` had been called at ``t_ps``, without one
        event per message on the heap."""
        self.require(CAP_BATCH_INJECT)
        raise NotImplementedError(
            f"engine {self.name!r} declares {CAP_BATCH_INJECT!r} but "
            "does not implement prime_schedule()")

    @property
    def delivery_sink(self):
        return self._delivery_sink

    @delivery_sink.setter
    def delivery_sink(self, sink) -> None:
        if sink is not None:
            self.require(CAP_BATCH_DELIVERY)
        self._delivery_sink = sink

    def finalize(self) -> None:
        """Flush any batched work up to the current sim time (no-op for
        purely event-driven engines).  The runner calls this after the
        final ``run_until`` so batch engines account every delivery with
        ``t <= now`` before the summary is read."""

    # -- tracer ------------------------------------------------------------

    @property
    def tracer(self) -> Optional[PacketTracer]:
        return self._tracer

    @tracer.setter
    def tracer(self, tracer: Optional[PacketTracer]) -> None:
        if tracer is not None:
            self.require(CAP_TRACE)
        self._tracer = tracer

    def _trace(self, event: str, pid: int, node: int, leg: int,
               t_ps: Optional[int] = None) -> None:
        """Record a tracer event (no-op without an attached tracer)."""
        if self._tracer is not None:
            self._tracer.record(self.sim.now if t_ps is None else t_ps,
                                event, pid, node, leg)

    # -- shared public API -------------------------------------------------

    def add_delivery_callback(self, cb: DeliveryCallback) -> None:
        """``cb(packet)`` runs at the instant a packet is fully delivered."""
        self._delivery_callbacks.append(cb)

    def add_drop_callback(self, cb: DropCallback) -> None:
        """``cb(packet, t_ps)`` runs when a packet dies in flight
        (requires :data:`CAP_RELIABLE_DELIVERY`)."""
        self.require(CAP_RELIABLE_DELIVERY)
        self._drop_callbacks.append(cb)

    def add_link_death_callback(self, cb: LinkDeathCallback) -> None:
        """``cb(link_id, t_ps)`` runs when a fault plan kills a cable
        (requires :data:`CAP_DYNAMIC_FAULTS`)."""
        self.require(CAP_DYNAMIC_FAULTS)
        self._link_death_callbacks.append(cb)

    def send(self, src_host: int, dst_host: int,
             nbytes: Optional[int] = None,
             route_index: Optional[int] = None) -> Optional[Packet]:
        """Hand a message to ``src_host``'s NIC at the current sim time.

        ``nbytes`` overrides the network's default message size (the
        paper uses one fixed size per simulation).  Returns ``None``
        when dead links (see :meth:`install_fault_plan`) leave the pair
        without a surviving route: the message is refused at the source
        and counted in ``dropped_unroutable``.

        ``route_index`` forces the alternative with that table index
        (modulo the number of alternatives) instead of asking the path
        selection policy -- the reliability layer uses this to fail a
        retransmission over to the *next* route after repeated
        timeouts, bypassing the blacklist so the attempt probes the
        fabric as the transport sees it.
        """
        if src_host == dst_host:
            raise ValueError("a host does not send messages to itself")
        selected = self._select_route(src_host, dst_host, route_index)
        if selected is None:
            self.generated += 1
            self.dropped += 1
            self.dropped_unroutable += 1
            self._trace("unroutable", self._next_pid, src_host, 0)
            self._next_pid += 1
            return None
        route, alt_index = selected
        pkt = Packet(self._next_pid, src_host, dst_host,
                     nbytes if nbytes is not None else self.message_bytes,
                     route, self.sim.now, self.params,
                     alt_index=alt_index)
        self._next_pid += 1
        self.generated += 1
        self._inject(pkt)
        return pkt

    @property
    def in_flight(self) -> int:
        return self.generated - self.delivered - self.dropped

    @property
    def dropped_in_flight(self) -> int:
        """Packets that died *inside* the fabric (stranded on a dying
        link), as opposed to refusals at the source NIC."""
        return self.dropped - self.dropped_unroutable

    def install_watchdog(self, interval_ps: int) -> None:
        """Abort with :class:`DeadlockError` when packets are in flight
        but nothing was delivered for a whole ``interval_ps``.

        Engines declaring :data:`CAP_INVARIANTS` attach a JSON-safe
        stall diagnosis (channel owners, blocked worms, route legs,
        detected wait-for cycle) to the error instead of wedging with a
        bare "no progress" message.
        """
        def check() -> None:
            if self.in_flight > 0 and self.delivered_since_check == 0:
                diagnosis = None
                if CAP_INVARIANTS in self.capabilities():
                    from .invariants import diagnose_stall
                    diagnosis = diagnose_stall(self)
                raise DeadlockError(
                    f"{self.name} engine: no delivery for {interval_ps} ps "
                    f"with {self.in_flight} packets in flight "
                    f"at t={self.sim.now}", diagnosis=diagnosis)
            self.delivered_since_check = 0
        self.sim.set_watchdog(interval_ps, check)

    # -- runtime invariants (engines declaring CAP_INVARIANTS) -------------

    def _audit_engine(self, check: Callable[[bool, str], None]) -> None:
        """Engine hook: run engine-specific structural invariants
        through ``check(condition, description)``.  Engines declaring
        :data:`CAP_INVARIANTS` must override."""
        raise NotImplementedError(
            f"engine {self.name!r} declares {CAP_INVARIANTS!r} but does "
            "not implement _audit_engine()")

    def _audit_drained(self, check: Callable[[bool, str], None]) -> None:
        """Engine hook: invariants that hold only with zero packets in
        flight (empty buffers, free arbiters, zeroed ITB pools)."""
        raise NotImplementedError(
            f"engine {self.name!r} declares {CAP_INVARIANTS!r} but does "
            "not implement _audit_drained()")

    def _stall_snapshot(self) -> Dict:
        """Engine hook: JSON-safe stall state (channel owners, blocked
        worms, wait-for edges) for :func:`repro.sim.invariants
        .diagnose_stall`."""
        raise NotImplementedError(
            f"engine {self.name!r} declares {CAP_INVARIANTS!r} but does "
            "not implement _stall_snapshot()")

    def reset_stats(self) -> None:
        """End-of-warm-up reset of the engine's statistics."""
        self._reset_engine_stats()

    def swap_tables(self, tables: RoutingTables) -> None:
        """Hot-swap the NIC route tables mid-run
        (requires :data:`CAP_RELIABLE_DELIVERY`).

        Packets already in flight keep the routes their headers were
        built with (source routing: the path is committed at
        injection); every later :meth:`send` uses the new tables.  The
        tables must be expressed in *this* graph's link ids -- when
        they were computed on a mutated copy, remap them first
        (:meth:`repro.routing.table.RoutingTables.with_remapped_links`).
        """
        self.require(CAP_RELIABLE_DELIVERY)
        self.tables = tables
        self._routable_cache.clear()
        self._trace("reconfig", -1, -1, 0)

    # -- dynamic faults ----------------------------------------------------

    def install_fault_plan(self, plan: FaultPlan) -> None:
        """Schedule the plan's link failures
        (requires :data:`CAP_DYNAMIC_FAULTS`)."""
        self.require(CAP_DYNAMIC_FAULTS)
        num_links = self.graph.num_links
        for f in plan.faults:
            if f.link_id >= num_links:
                raise ValueError(
                    f"fault plan kills link {f.link_id} but the graph "
                    f"has only {num_links} links")
        for f in plan.faults:
            self.sim.at(max(f.t_ps, self.sim.now), self._fail_link,
                        f.link_id)

    def _fail_link(self, link_id: int) -> None:
        """Kill one cable *now*: blacklist it for future routing and let
        the engine drop whatever it strands."""
        if link_id in self.dead_links:
            return
        self.dead_links.add(link_id)
        self._routable_cache.clear()
        self._trace("link_down", -1, self.graph.links[link_id].a, 0)
        self._kill_link(link_id)
        for cb in self._link_death_callbacks:
            cb(link_id, self.sim.now)

    def _kill_link(self, link_id: int) -> None:
        """Engine hook: tear down the cable's directed channels and drop
        stranded packets.  Engines declaring
        :data:`CAP_DYNAMIC_FAULTS` must override."""
        raise NotImplementedError(
            f"engine {self.name!r} declares {CAP_DYNAMIC_FAULTS!r} but "
            "does not implement _kill_link()")

    def _finish_drop(self, pkt: Packet, t_ps: int) -> None:
        """Common bookkeeping for a packet dropped in flight."""
        self.dropped += 1
        # a drop is forward progress for the watchdog: the fabric is
        # not deadlocked, it is shedding stranded worms
        self.delivered_since_check += 1
        self._trace("drop", pkt.pid, pkt.dst_host, 0, t_ps=t_ps)
        for cb in self._drop_callbacks:
            cb(pkt, t_ps)

    # -- shared internals --------------------------------------------------

    def _select_route(self, src_host: int, dst_host: int,
                      route_index: Optional[int] = None,
                      ) -> Optional[Tuple[SourceRoute, int]]:
        """The route for the next packet of a pair and its alternative
        index (carried on the packet for policy feedback), or ``None``
        when every alternative crosses a dead link."""
        src_sw = self.graph.host_switch(src_host)
        dst_sw = self.graph.host_switch(dst_host)
        alts = self.tables.alternatives(src_sw, dst_sw)
        if route_index is not None:
            # forced selection (reliability-layer failover): no
            # blacklist filtering -- the retransmission itself is the
            # probe of whether the route still works
            i = route_index % len(alts)
            return alts[i], i
        if not self.dead_links or not self.blacklist_on_fault:
            if len(alts) == 1:
                return alts[0], 0
            i = self.policy.select_index(src_host, dst_host, alts)
            return alts[i], i
        pair = (src_sw, dst_sw)
        live = self._routable_cache.get(pair)
        if live is None:
            dead = self.dead_links
            live = [r for r in alts if not dead.intersection(r.link_ids)]
            self._routable_cache[pair] = live
        if not live:
            return None
        if len(live) == 1:
            route = live[0]
        else:
            route = live[self.policy.select_index(src_host, dst_host, live)]
        # policy feedback keys on the index among the *original* table
        # alternatives, which stays stable across blacklist changes
        return route, alts.index(route)

    def _leg_target_host(self, pkt: Packet, leg_idx: int) -> int:
        """The NIC a leg ends at: an in-transit host, or the destination."""
        if leg_idx == pkt.num_legs - 1:
            return pkt.dst_host
        return pkt.route.itb_hosts[leg_idx]

    def _finish_delivery(self, pkt: Packet, t_ps: int) -> None:
        """Common delivery bookkeeping, run at the delivery instant."""
        pkt.delivered_ps = t_ps
        self.delivered += 1
        self.delivered_since_check += 1
        self._trace("deliver", pkt.pid, pkt.dst_host, pkt.num_legs - 1,
                    t_ps=t_ps)
        for cb in self._delivery_callbacks:
            cb(pkt)

"""Engine registry: simulation backends selected by name.

Every :class:`~repro.sim.base.NetworkModel` backend registers itself
under a short name (``"packet"``, ``"flit"``), and everything outside
:mod:`repro.sim` -- the experiment runner, the CLI, config validation --
dispatches through this registry instead of importing concrete engine
classes.  Registering a third engine is one decorator::

    from repro.sim.base import NetworkModel, CAP_LINK_STATS
    from repro.sim.engines import register

    @register("analytic")
    class AnalyticNetwork(NetworkModel):
        CAPABILITIES = frozenset({CAP_LINK_STATS})
        ...

after which ``SimConfig(engine="analytic")`` just works.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from ..config import MyrinetParams
from ..routing.policies import PathSelectionPolicy
from ..routing.table import RoutingTables
from ..topology.graph import NetworkGraph
from .base import NetworkModel
from .engine import Simulator

_ENGINES: Dict[str, Type[NetworkModel]] = {}


def register(name: str):
    """Class decorator registering a :class:`NetworkModel` backend."""
    def deco(cls: Type[NetworkModel]) -> Type[NetworkModel]:
        if not (isinstance(cls, type) and issubclass(cls, NetworkModel)):
            raise TypeError(
                f"engine {name!r} must be a NetworkModel subclass, "
                f"got {cls!r}")
        if name in _ENGINES:
            raise ValueError(f"engine {name!r} is already registered")
        cls.name = name
        _ENGINES[name] = cls
        return cls
    return deco


def unregister(name: str) -> None:
    """Remove a registered engine (tests register throwaway backends)."""
    _ENGINES.pop(name, None)


def available_engines() -> Tuple[str, ...]:
    """Registered engine names, sorted."""
    return tuple(sorted(_ENGINES))


def get_engine(name: str) -> Type[NetworkModel]:
    """The backend class registered under ``name``."""
    try:
        return _ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; available: "
            f"{', '.join(available_engines()) or 'none'}") from None


def engine_capabilities(name: str) -> frozenset:
    """Declared capabilities of a registered engine."""
    return get_engine(name).capabilities()


def make_network(name: str, sim: Simulator, graph: NetworkGraph,
                 tables: RoutingTables, policy: PathSelectionPolicy,
                 params: MyrinetParams,
                 message_bytes: int = 512) -> NetworkModel:
    """Instantiate the engine registered under ``name``."""
    return get_engine(name)(sim, graph, tables, policy, params,
                            message_bytes=message_bytes)

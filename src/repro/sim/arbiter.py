"""Demand-slotted round-robin output-port arbitration.

Myrinet switches assign an output port to waiting packets "in a
demand-slotted round-robin fashion" (Section 4.4): when the port frees,
the next *input port* with a waiting header (scanning round-robin from
the last grantee) wins.  Within one input port, packets are strictly
FIFO -- a wormhole input channel only ever presents one header at a
time anyway.

NIC injection channels use the same class with a single key, which
degenerates to plain FIFO (the NIC serialises its own sends and
re-injections in request order).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Hashable, List, Optional, Tuple

GrantCallback = Callable[..., None]


class RoundRobinArbiter:
    """Grants exclusive ownership of one resource among keyed requesters."""

    __slots__ = ("_queues", "_order", "_key_index", "_last_key",
                 "_nwaiting", "owner")

    def __init__(self) -> None:
        self._queues: Dict[
            Hashable, Deque[Tuple[object, GrantCallback, tuple]]] = {}
        self._order: List[Hashable] = []       # keys in first-seen order
        self._key_index: Dict[Hashable, int] = {}
        self._last_key: Optional[Hashable] = None  # key of the last grantee
        self._nwaiting: int = 0
        self.owner: Optional[object] = None

    @property
    def busy(self) -> bool:
        return self.owner is not None

    def waiting(self) -> int:
        """Number of queued (ungranted) requests."""
        return self._nwaiting

    def waiting_tokens(self) -> List[object]:
        """The queued (ungranted) tokens in key order, without mutating
        any queue -- the invariant auditor and the deadlock diagnoser
        read the wait-for graph through this."""
        tokens: List[object] = []
        for key in self._order:
            tokens.extend(e[0] for e in self._queues[key])
        return tokens

    def request(self, key: Hashable, token: object,
                grant: GrantCallback, *args) -> bool:
        """Request ownership for ``token`` arriving on input ``key``.

        If the resource is free ``grant(*args)`` fires synchronously
        and ``True`` is returned; otherwise the request queues and the
        callback fires on a later :meth:`release`.  Pass the grant
        context through ``args`` rather than a capturing closure --
        requests sit on the arbitration hot path.
        """
        q = self._queues.get(key)
        if q is None:
            q = self._queues[key] = deque()
            self._key_index[key] = len(self._order)
            self._order.append(key)
        if self.owner is None and self._nwaiting == 0:
            self._grant(key, token, grant, args)
            return True
        q.append((token, grant, args))
        self._nwaiting += 1
        return False

    def _grant(self, key: Hashable, token: object,
               grant: GrantCallback, args: tuple) -> None:
        self.owner = token
        self._last_key = key
        grant(*args)

    def cancel_waiting(self) -> List[object]:
        """Drop every queued (ungranted) request; the current owner is
        untouched.  Returns the cancelled tokens in queue order --
        dynamic link faults use this to drain a dead channel's waiters
        before dropping its owner, so the release cannot grant the dead
        resource to a stale requester."""
        tokens: List[object] = []
        for key in self._order:
            q = self._queues[key]
            while q:
                tokens.append(q.popleft()[0])
        self._nwaiting = 0
        return tokens

    def cancel(self, token: object) -> int:
        """Remove every queued request of ``token`` (the owner is not
        affected); returns how many were removed."""
        removed = 0
        for q in self._queues.values():
            if not q:
                continue
            kept = [e for e in q if e[0] is not token]
            if len(kept) != len(q):
                removed += len(q) - len(kept)
                q.clear()
                q.extend(kept)
        self._nwaiting -= removed
        return removed

    def release(self, token: object) -> None:
        """Release ownership; the next waiting input (round-robin scan
        from the last grantee) is granted synchronously."""
        if self.owner is not token:
            raise RuntimeError("release by non-owner")
        self.owner = None
        if self._nwaiting == 0:
            return
        order = self._order
        n = len(order)
        # scan round-robin starting just past the last grantee's key,
        # resolved against the *current* key set (keys may have joined
        # since the grant)
        start = ((self._key_index[self._last_key] + 1) % n
                 if self._last_key is not None else 0)
        for i in range(n):
            key = order[(start + i) % n]
            q = self._queues[key]
            if q:
                nxt_token, nxt_grant, nxt_args = q.popleft()
                self._nwaiting -= 1
                self._grant(key, nxt_token, nxt_grant, nxt_args)
                return
        raise AssertionError("waiting count out of sync with queues")

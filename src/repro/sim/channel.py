"""Directed channels: the unit of reservation and utilisation accounting.

Myrinet cables are full duplex; the simulator models every direction as
an independent :class:`Channel` guarded by a demand-slotted round-robin
arbiter (the switch output port, or the NIC send DMA for injection
channels).  Three kinds exist:

* ``INJ`` -- NIC to switch (host injection / in-transit re-injection);
* ``NET`` -- switch to switch (one per direction of each cable);
* ``DEL`` -- switch to NIC (delivery / in-transit ejection).

Channels accumulate the statistics behind the paper's link-utilisation
figures: ``transfer_flits`` (flits actually moved -- utilisation) and
``reserved_ps`` (time the channel was owned by some packet, which in a
wormhole network exceeds transfer time whenever packets block
downstream; the paper's "links idle due to flow control" remark is the
difference between the two).
"""

from __future__ import annotations

from .arbiter import RoundRobinArbiter

#: channel kinds
INJ, NET, DEL = 0, 1, 2

KIND_NAMES = {INJ: "inj", NET: "net", DEL: "del"}


class Channel:
    """One directed channel plus its arbiter and statistics."""

    __slots__ = ("cid", "kind", "src", "dst", "link_id", "arbiter",
                 "transfer_flits", "reserved_ps", "last_reset_ps", "dead")

    def __init__(self, cid: int, kind: int, src: int, dst: int,
                 link_id: int = -1) -> None:
        self.cid = cid
        self.kind = kind
        #: source node id (host id for INJ, switch id otherwise)
        self.src = src
        #: destination node id (host id for DEL, switch id otherwise)
        self.dst = dst
        #: physical cable id for NET channels (-1 for host cables)
        self.link_id = link_id
        self.arbiter = RoundRobinArbiter()
        self.transfer_flits = 0
        self.reserved_ps = 0
        self.last_reset_ps = 0
        #: cable killed by a dynamic fault plan; headers arriving at a
        #: dead channel drop instead of requesting it
        self.dead = False

    def record_passage(self, flits: int, granted_ps: int,
                       released_ps: int, flit_cycle_ps: int = 0) -> None:
        """Account one packet crossing this channel.

        A packet granted the channel before the last stats reset but
        released after it only reserved the channel for the part of the
        hold inside the measurement window, so the grant time is
        clamped to the reset time (otherwise ``reserved_fraction`` can
        exceed 1 for boundary-straddling packets).  The flits stream at
        link rate up to the release instant, so when ``flit_cycle_ps``
        is given, flits that crossed before the reset are likewise
        excluded (keeping utilisation <= reserved per channel, matching
        the flit engine's count-at-crossing accounting).
        """
        if granted_ps < self.last_reset_ps:
            granted_ps = self.last_reset_ps
            if flit_cycle_ps > 0:
                in_window = (released_ps - granted_ps) // flit_cycle_ps
                if flits > in_window:
                    flits = in_window
        self.transfer_flits += flits
        self.reserved_ps += released_ps - granted_ps

    def reset_stats(self, now_ps: int = 0) -> None:
        """Zero the counters (called at the end of warm-up);
        ``now_ps`` marks the start of the new measurement window."""
        self.transfer_flits = 0
        self.reserved_ps = 0
        self.last_reset_ps = now_ps

    def utilization(self, window_ps: int, flit_cycle_ps: int) -> float:
        """Fraction of ``window_ps`` spent actually transferring flits."""
        return self.transfer_flits * flit_cycle_ps / window_ps

    def reserved_fraction(self, window_ps: int) -> float:
        """Fraction of ``window_ps`` the channel was reserved."""
        return self.reserved_ps / window_ps

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Channel({self.cid} {KIND_NAMES[self.kind]} "
                f"{self.src}->{self.dst})")

"""Packet-level wormhole network model (the paper-scale engine).

The model follows Myrinet cut-through switching without virtual
channels (Sections 4.3--4.5):

* A packet acquires directed channels hop by hop.  Output ports are
  granted by demand-slotted round-robin arbiters; a granted header pays
  the 150 ns routing delay, then the head moves one cable (49.2 ns) to
  the next switch.  While the head waits for a busy port, every channel
  already acquired stays held -- the defining wormhole blocking
  behaviour (slack buffers are far smaller than the 512-byte packets).
* Once the head reaches a NIC (destination or in-transit host) no
  further stalls are possible, so the worm streams at link rate: the
  tail reaches the NIC ``wire_bytes`` flit cycles after the head, and it
  passes earlier channels one cable-propagation earlier per hop.  This
  "tail wave" is the only approximation versus the flit-level engine
  (:mod:`repro.sim.flitlevel`): absorption into the 80-byte slack
  buffers during intermediate stalls is ignored, which *overestimates*
  channel hold times by up to one slack buffer per hop for every
  routing algorithm alike (quantified in the validation tests).
* At an in-transit host the packet is fully ejected (ejection never
  blocks -- this is what breaks the down->up channel dependencies and
  makes the scheme deadlock-free), recognised after 275 ns, and its
  re-injection DMA is ready 200 ns later; it then competes for the
  NIC's injection channel like any locally generated packet.

Deliberately *mis-routed* configurations (e.g. minimal routing on a
torus without ITBs) can deadlock; a progress watchdog turns that into a
:class:`~repro.sim.engine.DeadlockError` instead of a hang, and tests
exercise exactly that.

Everything engine-independent (message creation, route selection,
delivery callbacks, the watchdog itself) lives in
:class:`~repro.sim.base.NetworkModel`; this module implements only the
wormhole timing model.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .base import (CAP_DYNAMIC_FAULTS, CAP_INVARIANTS, CAP_ITB_POOL,
                   CAP_LINK_STATS, CAP_RELIABLE_DELIVERY, CAP_TRACE,
                   ItbStats, LinkChannelStats, NetworkModel)
from .channel import Channel, DEL, INJ, KIND_NAMES, NET
from .engines import register
from .nic import Nic
from .packet import Packet


class _LegTransit:
    """Mutable per-leg traversal state of one packet."""

    __slots__ = ("pkt", "leg_idx", "holds", "pool_host", "pool_bytes",
                 "short", "tail_cross_ps", "dirs", "dropped", "pending")

    def __init__(self, pkt: Packet, leg_idx: int,
                 pool_host: int = -1, pool_bytes: int = 0,
                 short: bool = False) -> None:
        self.pkt = pkt
        self.leg_idx = leg_idx
        #: pre-resolved directed-channel index per hop of the leg (see
        #: WormholeNetwork._leg_dir_hops; the delivery channel is
        #: per-packet and resolved at the last hop)
        self.dirs: Tuple[int, ...] = ()
        #: channels still held and not yet scheduled for release:
        #: (channel, grant_time_ps).  A scheduled release removes its
        #: entry, so a dynamic-fault drop releases exactly the
        #: complement -- never a channel twice.
        self.holds: List[Tuple[Channel, int]] = []
        #: NIC whose in-transit pool must be credited when the
        #: injection channel of this leg is released (-1 = none);
        #: captured-and-cleared when that release is scheduled so a
        #: drop can credit it at most once
        self.pool_host = pool_host
        self.pool_bytes = pool_bytes
        #: packet fits in one slack buffer -> virtual-cut-through regime
        self.short = short
        #: time the tail crossed the most recently granted channel
        #: (short regime only; drives early upstream releases)
        self.tail_cross_ps = 0
        #: killed by a dynamic link fault (stale scheduled events bail)
        self.dropped = False
        #: arbiter holding this transit's one queued (ungranted)
        #: request, if any -- cancelled on drop
        self.pending = None


@register("packet")
class WormholeNetwork(NetworkModel):
    """Wires a topology + routing tables into a running simulation."""

    CAPABILITIES = frozenset({CAP_LINK_STATS, CAP_ITB_POOL, CAP_TRACE,
                              CAP_DYNAMIC_FAULTS,
                              CAP_RELIABLE_DELIVERY, CAP_INVARIANTS})

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        #: pid -> transit whose header is still progressing (removed
        #: once the header commits at its leg-target NIC); the dynamic
        #: fault path walks this to find worms stranded on a dead link
        self._active: Dict[int, _LegTransit] = {}
        self.channels: List[Channel] = []
        #: (link_id, 0 for a->b / 1 for b->a) -> NET channel
        self._net: Dict[Tuple[int, int], Channel] = {}
        #: NET channel by directed-hop index ``link_id << 1 | dir``
        #: (the leg hop encoding of :meth:`_leg_dir_hops`)
        self._net_by_dir: List[Channel] = []
        self.nics: List[Nic] = []
        g = self.graph
        for link in g.links:
            fwd = self._new_channel(NET, link.a, link.b, link.id)
            rev = self._new_channel(NET, link.b, link.a, link.id)
            self._net[(link.id, 0)] = fwd
            self._net[(link.id, 1)] = rev
            self._net_by_dir.append(fwd)     # index link.id << 1
            self._net_by_dir.append(rev)     # index link.id << 1 | 1
        for host in g.hosts:
            inj = self._new_channel(INJ, host.id, host.switch)
            dlv = self._new_channel(DEL, host.switch, host.id)
            self.nics.append(Nic(host.id, host.switch, inj, dlv))

    def _new_channel(self, kind: int, src: int, dst: int,
                     link_id: int = -1) -> Channel:
        ch = Channel(len(self.channels), kind, src, dst, link_id)
        self.channels.append(ch)
        return ch

    def net_channel(self, link_id: int, frm: int) -> Channel:
        """The NET channel of cable ``link_id`` leaving switch ``frm``."""
        link = self.graph.links[link_id]
        return self._net[(link_id, 0 if frm == link.a else 1)]

    def _leg_dir_hops(self, leg) -> Tuple[int, ...]:
        """Directed-hop indices (``link_id << 1 | direction``) of ``leg``.

        Resolved once per leg *ever*: the tuple is stashed on the leg
        object itself, and legs are shared by every packet, network
        instance and run that uses the same cached routing tables -- so
        the per-hop link/direction resolution is amortised across a
        whole sweep, not just one run.  The indices are graph-level
        facts (independent of any network instance), which is what makes
        cross-instance sharing sound; each network maps them onto its
        own channels through ``_net_by_dir``.
        """
        try:
            return leg._dir_hops
        except AttributeError:
            links = self.graph.links
            dirs = tuple((lid << 1) | (links[lid].a != frm)
                         for lid, frm in zip(leg.links, leg.switches))
            leg._dir_hops = dirs
            return dirs

    # -- NetworkModel contract ---------------------------------------------

    def _inject(self, pkt: Packet) -> None:
        self._start_leg(pkt, 0, self.sim.now)

    def _reset_engine_stats(self) -> None:
        now = self.sim.now
        for ch in self.channels:
            ch.reset_stats(now)
        for nic in self.nics:
            nic.reset_stats()

    def link_flit_counts(self) -> List[LinkChannelStats]:
        return [LinkChannelStats(ch.src, ch.dst, ch.link_id,
                                 ch.transfer_flits, ch.reserved_ps)
                for ch in self.channels if ch.kind == NET]

    def itb_stats(self) -> ItbStats:
        return ItbStats(
            peak_bytes=max((nic.itb_peak_bytes for nic in self.nics),
                           default=0),
            overflow_count=sum(nic.itb_overflows for nic in self.nics),
            packets=sum(nic.itb_packets for nic in self.nics))

    # -- packet progression ---------------------------------------------------

    def _start_leg(self, pkt: Packet, leg_idx: int, t_ready: int,
                   pool_host: int = -1, pool_bytes: int = 0) -> None:
        """Queue the packet for (re-)injection at ``t_ready``."""
        short = (pkt.wire_bytes(leg_idx)
                 <= self.params.slack_buffer_bytes)
        transit = _LegTransit(pkt, leg_idx, pool_host, pool_bytes, short)
        transit.dirs = self._leg_dir_hops(pkt.route.legs[leg_idx])
        self._active[pkt.pid] = transit
        if leg_idx == 0:
            host = pkt.src_host
        else:
            host = pkt.route.itb_hosts[leg_idx - 1]
        inj = self.nics[host].inj
        if t_ready <= self.sim.now:
            self._request_injection(transit, inj)
        else:
            self.sim.at(t_ready, self._request_injection, transit, inj)

    def _request_injection(self, transit: _LegTransit,
                           inj: Channel) -> None:
        if transit.dropped:
            return
        if not inj.arbiter.request(0, transit.pkt,
                                   self._injection_granted, transit, inj):
            transit.pending = inj.arbiter

    def _injection_granted(self, transit: _LegTransit, inj: Channel) -> None:
        g = self.sim.now
        transit.pending = None
        transit.holds.append((inj, g))
        pkt = transit.pkt
        if transit.leg_idx == 0 and pkt.injected_ps is None:
            pkt.injected_ps = g
        if self._tracer is not None:
            self._trace("inject" if transit.leg_idx == 0 else "reinject",
                        pkt.pid, inj.src, transit.leg_idx)
        if transit.short:
            # whole packet leaves the NIC wire-length flit cycles later
            transit.tail_cross_ps = (g + pkt.wire_bytes(transit.leg_idx)
                                     * self.params.flit_cycle_ps)
        self.sim.at(g + self.params.link_prop_ps,
                    self._head_at_switch, transit, 0)

    def _head_at_switch(self, transit: _LegTransit, pos: int) -> None:
        """Packet header reaches position ``pos`` of the leg's switch path
        and requests the next output port."""
        if transit.dropped:
            return
        pkt = transit.pkt
        dirs = transit.dirs
        if pos == len(dirs):              # past the last NET hop
            target = self._leg_target_host(pkt, transit.leg_idx)
            out = self.nics[target].dlv
        else:
            out = self._net_by_dir[dirs[pos]]
            if out.dead:
                # header ran into a link that died after the route was
                # selected: the worm is stranded and drops here
                self._drop_transit(transit)
                return
        in_key = transit.holds[-1][0].cid  # demand-slotted RR per input port
        if not out.arbiter.request(
                in_key, pkt, self._port_granted, transit, pos, out):
            transit.pending = out.arbiter

    def _port_granted(self, transit: _LegTransit, pos: int,
                      out: Channel) -> None:
        g = self.sim.now
        transit.pending = None
        transit.holds.append((out, g))
        if self._tracer is not None:
            self._trace("grant", transit.pkt.pid, out.src, transit.leg_idx)
        if transit.short:
            # virtual-cut-through regime: the whole packet fits in the
            # slack buffer just vacated, so the channel *behind* it can
            # be released as soon as the tail has drained forward --
            # the tail crosses this channel once the head may stream
            # (after routing) and the upstream buffer has emptied.
            # Scheduling the release removes the hold (and captures the
            # pool credit, which belongs to the first-released channel:
            # the leg's injection channel) so a later drop releases
            # only what is still unscheduled.
            pkt = transit.pkt
            wire = pkt.wire_bytes(transit.leg_idx)
            cross = max(transit.tail_cross_ps + self.params.link_prop_ps,
                        g + self.params.routing_delay_ps
                        + wire * self.params.flit_cycle_ps)
            transit.tail_cross_ps = cross
            prev_ch, prev_g = transit.holds[0]
            pool_host, pool_bytes = transit.pool_host, transit.pool_bytes
            transit.pool_host = -1
            self.sim.at(cross, self._do_release, prev_ch, pkt, wire,
                        prev_g, cross, pool_host, pool_bytes)
            del transit.holds[0]
        t_next = g + self.params.routing_delay_ps + self.params.link_prop_ps
        if out.kind == NET:
            self.sim.at(t_next, self._head_at_switch, transit, pos + 1)
        else:
            self.sim.at(t_next, self._head_at_nic, transit)

    def _head_at_nic(self, transit: _LegTransit) -> None:
        """Header fully at the leg's target NIC; compute the tail wave,
        schedule channel releases, and deliver or forward."""
        if transit.dropped:
            return
        sim = self.sim
        pkt = transit.pkt
        params = self.params
        t_head = sim.now
        wire = pkt.wire_bytes(transit.leg_idx)
        holds = transit.holds
        n = len(holds)
        prop = params.link_prop_ps
        # the cut-through transfer is committed: the tail streams out
        # even if a link on the path dies from here on, so the transit
        # leaves the active (droppable) set and its remaining releases
        # are all scheduled below
        self._active.pop(pkt.pid, None)

        if transit.short:
            # virtual-cut-through regime: every channel but the last was
            # already released as the tail drained forward; only the
            # final (delivery) channel remains (its grant consumed the
            # pool credit already -- pool_host is -1 here).
            t_tail = transit.tail_cross_ps + prop
            ch, g = holds[0]
            pool_host, pool_bytes = transit.pool_host, transit.pool_bytes
            sim.at(t_tail, self._do_release, ch, pkt, wire, g, t_tail,
                   pool_host, pool_bytes)
        else:
            # wormhole regime: the worm held its whole path; the tail
            # wave sweeps the releases from source to NIC.
            transfer = wire * params.flit_cycle_ps
            t_tail = t_head + transfer
            do_release = self._do_release
            now = sim.now
            for j, (ch, g) in enumerate(holds):
                rel = max(t_tail - (n - 1 - j) * prop, g + transfer, now)
                if j == 0 and transit.pool_host >= 0:
                    pool_host, pool_bytes = (transit.pool_host,
                                             transit.pool_bytes)
                else:
                    pool_host, pool_bytes = -1, 0
                sim.at(rel, do_release, ch, pkt, wire, g, rel,
                       pool_host, pool_bytes)
        transit.pool_host = -1
        transit.holds = []

        last_leg = transit.leg_idx == pkt.num_legs - 1
        if last_leg:
            sim.at(t_tail, self._finish_delivery, pkt, t_tail)
        else:
            host = pkt.route.itb_hosts[transit.leg_idx]
            if self._tracer is not None:
                self._trace("eject", pkt.pid, host, transit.leg_idx,
                            t_ps=t_head)
            nic = self.nics[host]
            fits = nic.itb_admit(wire, params.itb_pool_bytes)
            t_ready = t_head + params.itb_detect_ps + params.itb_dma_setup_ps
            if not fits:
                pkt.itb_overflows += 1
                t_ready += params.itb_overflow_penalty_ps
            self._start_leg(pkt, transit.leg_idx + 1, t_ready,
                            pool_host=host, pool_bytes=wire)

    def _do_release(self, ch: Channel, pkt: Packet, wire: int,
                    granted: int, rel: int, pool_host: int,
                    pool_bytes: int) -> None:
        ch.record_passage(wire, granted, rel, self.params.flit_cycle_ps)
        if pool_host >= 0:
            self.nics[pool_host].itb_release(pool_bytes)
        ch.arbiter.release(pkt)

    # -- runtime invariants --------------------------------------------------

    def _channel_name(self, ch: Channel) -> str:
        tag = f" link {ch.link_id}" if ch.link_id >= 0 else ""
        return f"{KIND_NAMES[ch.kind]} {ch.src}->{ch.dst}{tag}"

    def _audit_engine(self, check) -> None:
        now = self.sim.now
        for ch in self.channels:
            arb = ch.arbiter
            name = self._channel_name(ch)
            check(arb.waiting() == len(arb.waiting_tokens()),
                  f"channel {name}: waiting count out of sync with queues")
            check(arb.owner is not None or arb.waiting() == 0,
                  f"channel {name}: requests queued on a free arbiter")
            check(ch.transfer_flits >= 0,
                  f"channel {name}: negative flit count")
            check(0 <= ch.reserved_ps <= max(0, now - ch.last_reset_ps),
                  f"channel {name}: reserved {ch.reserved_ps} ps outside "
                  f"the {max(0, now - ch.last_reset_ps)} ps window")
        held_pool: Dict[int, int] = {}
        for pid, tr in self._active.items():
            check(not tr.dropped, f"pid {pid}: dropped transit in _active")
            for ch, _g in tr.holds:
                check(ch.arbiter.owner is tr.pkt,
                      f"pid {pid}: holds {self._channel_name(ch)} whose "
                      "arbiter names a different owner")
            if tr.pending is not None:
                check(any(t is tr.pkt
                          for t in tr.pending.waiting_tokens()),
                      f"pid {pid}: pending arbiter lost its request")
            if tr.pool_host >= 0:
                held_pool[tr.pool_host] = (held_pool.get(tr.pool_host, 0)
                                           + tr.pool_bytes)
        for nic in self.nics:
            check(nic.itb_bytes >= 0,
                  f"host {nic.host}: negative ITB pool occupancy")
            check(nic.itb_peak_bytes >= nic.itb_bytes,
                  f"host {nic.host}: ITB peak below current occupancy")
            check(held_pool.get(nic.host, 0) <= nic.itb_bytes,
                  f"host {nic.host}: active transits reserve "
                  f"{held_pool.get(nic.host, 0)} ITB bytes but the pool "
                  f"accounts only {nic.itb_bytes}")

    def _audit_drained(self, check) -> None:
        check(not self._active,
              f"drained: {len(self._active)} transits still active")
        for ch in self.channels:
            check(ch.arbiter.owner is None and ch.arbiter.waiting() == 0,
                  f"drained: channel {self._channel_name(ch)} still owned "
                  "or waited on")
        for nic in self.nics:
            check(nic.itb_bytes == 0,
                  f"drained: host {nic.host} ITB pool holds "
                  f"{nic.itb_bytes} bytes")

    def _stall_snapshot(self) -> Dict:
        arb_channel = {id(ch.arbiter): ch for ch in self.channels}
        owners = []
        for ch in self.channels:
            arb = ch.arbiter
            if arb.owner is None and arb.waiting() == 0:
                continue
            owners.append({
                "channel": self._channel_name(ch),
                "owner": getattr(arb.owner, "pid", None),
                "waiters": [getattr(t, "pid", None)
                            for t in arb.waiting_tokens()]})
        worms, wait_for = [], []
        for pid, tr in sorted(self._active.items()):
            pkt = tr.pkt
            leg = pkt.route.legs[tr.leg_idx]
            entry = {
                "pid": pid,
                "src": pkt.src_host, "dst": pkt.dst_host,
                "leg": tr.leg_idx,
                "route_switches": list(leg.switches),
                "holds": [self._channel_name(ch) for ch, _g in tr.holds],
                "waits_on": None}
            if tr.pending is not None:
                blocked_ch = arb_channel.get(id(tr.pending))
                owner = tr.pending.owner
                if blocked_ch is not None:
                    entry["waits_on"] = self._channel_name(blocked_ch)
                wait_for.append({
                    "waiter": pid,
                    "channel": entry["waits_on"],
                    "owner": getattr(owner, "pid", None)})
            worms.append(entry)
        return {"blocked_worms": worms, "channel_owners": owners,
                "wait_for": wait_for}

    # -- dynamic faults ------------------------------------------------------

    def _kill_link(self, link_id: int) -> None:
        """Both directed channels of the cable die now.

        Waiters queued on a dead channel are drained *before* its owner
        is dropped, so the owner's release cannot grant the dead channel
        to a stale requester.  An owner whose header already committed
        at its leg-target NIC (transit no longer active) streams its
        tail out and releases normally.
        """
        chans = (self._net[(link_id, 0)], self._net[(link_id, 1)])
        for ch in chans:
            ch.dead = True
        active = self._active
        for ch in chans:
            arb = ch.arbiter
            for tok in arb.cancel_waiting():
                tr = active.get(tok.pid)
                if tr is not None:
                    tr.pending = None   # just dequeued from this arbiter
                    self._drop_transit(tr)
            owner = arb.owner
            if owner is not None:
                tr = active.get(owner.pid)
                if tr is not None and any(h[0] is ch for h in tr.holds):
                    self._drop_transit(tr)

    def _drop_transit(self, transit: _LegTransit) -> None:
        """Kill a stranded worm: release what it still holds, credit its
        in-transit pool reservation, and account the drop."""
        if transit.dropped:
            return
        transit.dropped = True
        pkt = transit.pkt
        self._active.pop(pkt.pid, None)
        if transit.pending is not None:
            transit.pending.cancel(pkt)
            transit.pending = None
        now = self.sim.now
        for ch, g in transit.holds:
            # reservation time is accounted; the partial worm's flits
            # are not (they never fully crossed)
            ch.record_passage(0, g, now)
            ch.arbiter.release(pkt)
        transit.holds = []
        if transit.pool_host >= 0:
            self.nics[transit.pool_host].itb_release(transit.pool_bytes)
            transit.pool_host = -1
        self._finish_drop(pkt, now)

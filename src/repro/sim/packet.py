"""Packets (messages) in flight.

The paper's workloads send fixed-size messages, each transmitted as a
single Myrinet packet carrying its full source route.  A packet records
the timestamps needed for the latency metrics:

* ``created_ps``  -- handed to the source NIC by the host;
* ``injected_ps`` -- first flit leaves the source NIC (the paper's
  latency is measured from this point: "the injection of a message into
  the network at the source host");
* ``delivered_ps`` -- last flit received by the destination NIC.

Wire length varies per leg: the header holds one route flit per switch
still to be traversed plus one ITB mark per remaining in-transit host
(consumed hop by hop), on top of the payload and the 2-byte type field.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..config import MyrinetParams
from ..routing.routes import SourceRoute


class Packet:
    """One message travelling along a :class:`SourceRoute`."""

    __slots__ = ("pid", "src_host", "dst_host", "payload_bytes", "route",
                 "alt_index", "created_ps", "injected_ps", "delivered_ps",
                 "itb_overflows", "_leg_wire_bytes")

    def __init__(self, pid: int, src_host: int, dst_host: int,
                 payload_bytes: int, route: SourceRoute,
                 created_ps: int, params: MyrinetParams,
                 alt_index: int = 0) -> None:
        self.pid = pid
        self.src_host = src_host
        self.dst_host = dst_host
        self.payload_bytes = payload_bytes
        self.route = route
        #: index of ``route`` among the pair's routing-table
        #: alternatives -- the stable identifier adaptive policies key
        #: their feedback on (route objects change when tables rebuild)
        self.alt_index = alt_index
        self.created_ps = created_ps
        self.injected_ps: Optional[int] = None
        self.delivered_ps: Optional[int] = None
        self.itb_overflows = 0
        self._leg_wire_bytes = self._compute_leg_wire_bytes(params)

    def _compute_leg_wire_bytes(self, params: MyrinetParams) -> Tuple[int, ...]:
        """Bytes on the wire during each leg.

        At the start of leg ``k`` the header still holds the route flits
        of legs ``k..end`` and the ITB marks of the remaining boundaries;
        earlier flits were consumed by switches / stripped by in-transit
        hosts.  The per-leg header overhead depends only on the route,
        so it is computed once and stashed on the (shared, table-cached)
        route object; each packet just adds its payload.
        """
        route = self.route
        try:
            overheads = route._leg_overheads
        except AttributeError:
            legs = route.legs
            n = len(legs)
            remaining_hops = sum(leg.hops for leg in legs)
            out: List[int] = []
            for k, leg in enumerate(legs):
                out.append(remaining_hops + (n - 1 - k))
                remaining_hops -= leg.hops
            overheads = tuple(out)
            route._leg_overheads = overheads
        base = self.payload_bytes + params.header_type_bytes
        return tuple(base + oh for oh in overheads)

    @property
    def num_legs(self) -> int:
        return len(self.route.legs)

    @property
    def num_itbs(self) -> int:
        return self.route.num_itbs

    def wire_bytes(self, leg_idx: int) -> int:
        """Flits on the wire while traversing leg ``leg_idx``."""
        return self._leg_wire_bytes[leg_idx]

    @property
    def delivered(self) -> bool:
        return self.delivered_ps is not None

    def latency_ps(self) -> int:
        """Latency from creation to full delivery (includes source queueing)."""
        if self.delivered_ps is None:
            raise ValueError(f"packet {self.pid} not delivered yet")
        return self.delivered_ps - self.created_ps

    def network_latency_ps(self) -> int:
        """Latency from first flit injected to full delivery."""
        if self.delivered_ps is None or self.injected_ps is None:
            raise ValueError(f"packet {self.pid} not delivered yet")
        return self.delivered_ps - self.injected_ps

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Packet({self.pid}: h{self.src_host}->h{self.dst_host}, "
                f"{self.payload_bytes}B, {self.num_legs} legs)")

"""Network interface card state: injection serialisation and the
in-transit buffer pool.

Each host owns one NIC with

* an **injection channel** toward its switch, shared in FIFO order by
  the host's own messages and by in-transit packets being re-injected;
* a **delivery channel** from the switch;
* an **in-transit buffer pool** (90 KB in the paper).  Packets ejected
  at this NIC occupy pool bytes from head arrival until their
  re-injected tail has left.  The paper relies on dynamic allocation to
  emulate infinite buffering; we track occupancy exactly, and when it
  exceeds the pool size the packet is staged through host memory, which
  costs :attr:`~repro.config.MyrinetParams.itb_overflow_penalty_ps`
  extra before re-injection (and is counted, so experiments can report
  how often the 90 KB pool actually overflows).

The pool accounting itself is engine-independent
(:class:`ItbPool`): the packet-level engine uses it through
:class:`Nic`, the flit-level engine holds one bare pool per host.

:class:`MessageSequencer` is the other engine-independent piece of NIC
state: per-destination send sequence numbers and the receiver-side
duplicate-suppression window that the reliability layer
(:mod:`repro.sim.reliable`) builds on -- GM keeps exactly this state on
the Myrinet NIC itself.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from .channel import Channel


class MessageSequencer:
    """Per-pair message sequence numbers plus duplicate suppression.

    One instance covers the whole fabric (it is keyed by the ordered
    ``(src_host, dst_host)`` pair), mirroring the per-connection send
    and receive state GM keeps on each NIC.  ``next_seq`` allocates the
    sender-side sequence number for a new message; ``accept`` is the
    receiver-side check that returns ``True`` exactly once per
    ``(src, dst, seq)`` triple, so retransmitted copies that arrive
    after the original are recognised and discarded.
    """

    __slots__ = ("_next_seq", "_seen")

    def __init__(self) -> None:
        self._next_seq: Dict[Tuple[int, int], int] = {}
        self._seen: Dict[Tuple[int, int], Set[int]] = {}

    def next_seq(self, src_host: int, dst_host: int) -> int:
        """Allocate the next send sequence number for a pair."""
        key = (src_host, dst_host)
        seq = self._next_seq.get(key, 0)
        self._next_seq[key] = seq + 1
        return seq

    def accept(self, src_host: int, dst_host: int, seq: int) -> bool:
        """Receiver-side duplicate check: ``True`` on first sight of
        the triple, ``False`` for every later (duplicate) copy."""
        seen = self._seen.setdefault((src_host, dst_host), set())
        if seq in seen:
            return False
        seen.add(seq)
        return True


class ItbPool:
    """In-transit buffer pool occupancy accounting for one host."""

    __slots__ = ("host", "itb_bytes", "itb_peak_bytes", "itb_overflows",
                 "itb_packets")

    def __init__(self, host: int = -1) -> None:
        self.host = host
        #: bytes of in-transit packets currently resident
        self.itb_bytes = 0
        #: high-water mark of :attr:`itb_bytes`
        self.itb_peak_bytes = 0
        #: in-transit packets that found the pool full on arrival
        self.itb_overflows = 0
        #: in-transit packets processed by this pool
        self.itb_packets = 0

    def itb_admit(self, nbytes: int, pool_bytes: int) -> bool:
        """Account an in-transit packet of ``nbytes`` arriving.

        Returns ``True`` when it fits in the on-card pool, ``False``
        when it must be staged through host memory (pool exhausted).
        Either way the bytes are tracked until :meth:`itb_release`.
        """
        fits = self.itb_bytes + nbytes <= pool_bytes
        self.itb_bytes += nbytes
        self.itb_peak_bytes = max(self.itb_peak_bytes, self.itb_bytes)
        self.itb_packets += 1
        if not fits:
            self.itb_overflows += 1
        return fits

    def itb_release(self, nbytes: int) -> None:
        """Release pool bytes once the re-injected tail has left."""
        self.itb_bytes -= nbytes
        if self.itb_bytes < 0:
            raise AssertionError(
                f"NIC {self.host}: negative in-transit pool occupancy")

    def reset_stats(self) -> None:
        """Clear statistics at the end of warm-up (occupancy is state,
        not a statistic, and is preserved)."""
        self.itb_peak_bytes = self.itb_bytes
        self.itb_overflows = 0
        self.itb_packets = 0


class Nic(ItbPool):
    """Per-host interface card bookkeeping (packet-level engine)."""

    __slots__ = ("switch", "inj", "dlv")

    def __init__(self, host: int, switch: int, inj: Channel,
                 dlv: Channel) -> None:
        super().__init__(host)
        self.switch = switch
        self.inj = inj
        self.dlv = dlv

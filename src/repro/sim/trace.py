"""Packet event tracing for debugging and teaching.

Attach a :class:`PacketTracer` to any engine with the ``trace``
capability (``network.tracer = tracer`` -- both the packet-level and
flit-level backends qualify) and every traced packet's life cycle is
recorded:

* ``inject``   -- granted its source NIC's injection channel;
* ``grant``    -- granted a switch output port (one per hop);
* ``eject``    -- header fully at an in-transit host;
* ``reinject`` -- granted an injection channel at an in-transit host;
* ``deliver``  -- tail received by the destination NIC.

Fault-time events use the same record with ``pid=-1`` where no single
packet is involved:

* ``drop``       -- the packet died on a failed link;
* ``unroutable`` -- refused at the source (no surviving route);
* ``link_down``  -- a cable failed (node is the link's ``a`` switch);
* ``reconfig``   -- the NIC routing tables were hot-swapped.

Tracing is opt-in and filtered by packet id, so paper-scale runs pay a
single predicate per event when enabled and nothing when not.  The
trace is plain data (list of :class:`TraceEvent`), renderable with
:func:`format_trace` or exportable with :meth:`PacketTracer.to_dicts`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional

from ..units import to_ns


@dataclass(frozen=True)
class TraceEvent:
    """One recorded packet event."""

    time_ps: int
    event: str      # inject | grant | eject | reinject | deliver
    pid: int
    #: location: switch id for grants, host id otherwise
    node: int
    #: leg index within the packet's route
    leg: int

    @property
    def time_ns(self) -> float:
        return to_ns(self.time_ps)


class PacketTracer:
    """Collects :class:`TraceEvent` records for selected packets.

    ``pids=None`` traces everything (fine for small runs); otherwise
    only the given packet ids are recorded.  ``limit`` caps the total
    number of stored events as a safety net.
    """

    VALID_EVENTS = {"inject", "grant", "eject", "reinject", "deliver",
                    "drop", "unroutable", "link_down", "reconfig"}

    def __init__(self, pids: Optional[Iterable[int]] = None,
                 limit: int = 100_000) -> None:
        if limit <= 0:
            raise ValueError("limit must be positive")
        self.pids = None if pids is None else set(pids)
        self.limit = limit
        self.events: List[TraceEvent] = []
        self.dropped = 0

    def wants(self, pid: int) -> bool:
        return self.pids is None or pid in self.pids

    def record(self, time_ps: int, event: str, pid: int, node: int,
               leg: int) -> None:
        if event not in self.VALID_EVENTS:
            raise ValueError(f"unknown trace event {event!r}")
        if not self.wants(pid):
            return
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time_ps, event, pid, node, leg))

    def for_packet(self, pid: int) -> List[TraceEvent]:
        """Events of one packet, in time order."""
        return [e for e in self.events if e.pid == pid]

    def to_dicts(self) -> List[Dict]:
        """JSON-ready representation."""
        return [asdict(e) for e in self.events]

    def hop_latencies_ns(self, pid: int) -> List[float]:
        """Time between consecutive recorded events of one packet."""
        evs = self.for_packet(pid)
        return [to_ns(b.time_ps - a.time_ps)
                for a, b in zip(evs, evs[1:])]


def format_trace(tracer: PacketTracer, pid: int) -> str:
    """Human-readable one-packet trace."""
    evs = tracer.for_packet(pid)
    if not evs:
        return f"packet {pid}: no events recorded"
    lines = [f"packet {pid}:"]
    t0 = evs[0].time_ps
    for e in evs:
        lines.append(f"  +{to_ns(e.time_ps - t0):10.1f} ns  "
                     f"{e.event:9s} leg {e.leg} @ node {e.node}")
    return "\n".join(lines)

"""Dynamic fault plans: links that die at simulation time.

The static failure path (:mod:`repro.topology.mutate`) models a fabric
that was *already* broken when the routing tables were computed.  A
:class:`FaultPlan` models the other half of the paper's premise -- the
NIC detecting "changes in the network topology" while traffic is in
flight: each :class:`LinkFault` kills one cable at a scheduled instant.

Semantics (shared by both engines, behind ``CAP_DYNAMIC_FAULTS``):

* both directed channels of the cable die at ``t_ps``;
* a worm stranded on the dead cable is **dropped**: every channel it
  held is released, its in-transit pool reservation is credited back,
  and it is counted in ``NetworkModel.dropped`` -- never delivered,
  never hung.  The engines differ only in how far "stranded" reaches,
  matching their fidelity: the packet engine commits a transfer once
  the header reaches its leg-target NIC (the tail wave streams out
  even across the dying link), while the flit engine drops any packet
  that still occupies the cable when it dies (a truncated tail means
  the packet is lost);
* NICs blacklist routes crossing dead links for all *future* sends; a
  pair left with no surviving route drops at the source
  (``dropped_unroutable``).

Plans are JSON-safe so they can ride inside orchestrator task payloads
like every other run parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple


@dataclass(frozen=True)
class LinkFault:
    """One cable failing at one instant."""

    #: simulation time the cable dies, picoseconds
    t_ps: int
    #: cable id in the simulated graph
    link_id: int

    def __post_init__(self) -> None:
        if self.t_ps < 0:
            raise ValueError("fault time must be non-negative")
        if self.link_id < 0:
            raise ValueError("link id must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """A schedule of link failures, ordered by time."""

    faults: Tuple[LinkFault, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "faults",
            tuple(sorted(self.faults, key=lambda f: (f.t_ps, f.link_id))))
        seen = set()
        for f in self.faults:
            if f.link_id in seen:
                raise ValueError(f"link {f.link_id} fails twice in the plan")
            seen.add(f.link_id)

    @classmethod
    def at(cls, *faults: Tuple[int, int]) -> "FaultPlan":
        """Build from ``(t_ps, link_id)`` pairs."""
        return cls(tuple(LinkFault(t, lid) for t, lid in faults))

    def __bool__(self) -> bool:
        return bool(self.faults)

    @property
    def first_t_ps(self) -> int:
        """Instant of the earliest fault (the plan must be non-empty).

        Recovery metrics anchor on this: time-to-recover is measured
        from the moment the fabric first changes.
        """
        if not self.faults:
            raise ValueError("empty fault plan has no first fault")
        return self.faults[0].t_ps

    @property
    def link_ids(self) -> Tuple[int, ...]:
        """All cables the plan kills, in failure order."""
        return tuple(f.link_id for f in self.faults)

    def to_dict(self) -> dict:
        return {"faults": [{"t_ps": f.t_ps, "link_id": f.link_id}
                           for f in self.faults]}

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        unknown = set(d) - {"faults"}
        if unknown:
            raise ValueError(f"unknown FaultPlan keys: {sorted(unknown)}")
        return cls(tuple(LinkFault(f["t_ps"], f["link_id"])
                         for f in d["faults"]))

"""Flit-level network engine with explicit slack buffers and stop&go.

This is the high-fidelity counterpart of :mod:`repro.sim.network`.  It
moves individual flits:

* every directed channel transmits one flit per 6.25 ns flit cycle and
  has 49.2 ns of wire propagation (so up to 8 flits are in flight);
* each switch input port owns an 80-byte slack buffer running the
  hardware stop&go protocol: a *stop* control flit is sent upstream when
  occupancy crosses 56 bytes and a *go* when it falls below 40 (control
  flits also take one wire propagation to arrive);
* output ports arbitrate demand-slotted round-robin among input ports,
  pay the 150 ns routing delay per packet, then pull flits from the
  granted input buffer at link rate;
* NICs serialise injections (own messages and ITB re-injections, FIFO),
  never stop the delivery channel (ejection always proceeds -- the
  deadlock-freedom property), recognise in-transit packets 275 ns after
  the header arrives and are ready to re-inject 200 ns later; the
  re-injection DMA never outruns reception (cut-through at the NIC).
* in-transit packets are charged against the same finite NIC buffer
  pool as in the packet-level engine (:class:`~repro.sim.nic.ItbPool`):
  a packet that finds the pool full is staged through host memory,
  paying the overflow penalty before re-injection.

The engine is O(flits x hops) and therefore only used on small
networks: the validation tests compare it against the packet-level
model, bounding the error of the latter's "tail wave" approximation
(which ignores slack-buffer absorption during stalls).

Like the packet engine it is a :class:`~repro.sim.base.NetworkModel`
backend with the full capability set (link statistics, ITB pool,
tracing), so ``collect_links`` and :class:`PacketTracer` work
identically against both.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..config import MyrinetParams
from .arbiter import RoundRobinArbiter
from .base import (CAP_DYNAMIC_FAULTS, CAP_INVARIANTS, CAP_ITB_POOL,
                   CAP_LINK_STATS, CAP_RELIABLE_DELIVERY, CAP_TRACE,
                   ItbStats, LinkChannelStats, NetworkModel)
from .engine import Simulator
from .engines import register
from .nic import ItbPool
from .packet import Packet

#: a flit in flight: (packet, leg index, first-of-leg, last-of-leg)
Flit = Tuple[Packet, int, bool, bool]


class _Wire:
    """Directed physical channel: data flits forward, control flits
    backward, both delayed by the propagation time.

    The endpoint callbacks (``_rx_receive`` / ``_tx_set_paused``) are
    bound when the endpoints are attached: per-flit sends then push a
    plain ``(fn, args)`` event instead of materialising a closure --
    this is the engine's hottest call site (one event per flit per
    hop).  ``rx`` / ``tx`` are properties so that swapping an endpoint
    (tests do this to interpose probes) rebinds the cached callback.
    """

    __slots__ = ("sim", "prop_ps", "_rx", "_tx", "flits_carried", "name",
                 "_rx_receive", "_tx_set_paused")

    def __init__(self, sim: Simulator, prop_ps: int, name: str) -> None:
        self.sim = sim
        self.prop_ps = prop_ps
        self._rx = None   # downstream receiver
        self._tx = None   # upstream transmitter
        self.flits_carried = 0
        self.name = name
        self._rx_receive = None
        self._tx_set_paused = None

    @property
    def rx(self) -> Optional["_RxBuffer"]:
        return self._rx

    @rx.setter
    def rx(self, rx) -> None:
        self._rx = rx
        self._rx_receive = None if rx is None else rx.receive

    @property
    def tx(self) -> Optional["_TxPort"]:
        return self._tx

    @tx.setter
    def tx(self, tx) -> None:
        self._tx = tx
        self._tx_set_paused = None if tx is None else tx.set_paused

    def send_flit(self, flit: Flit) -> None:
        self.flits_carried += 1
        sim = self.sim
        sim.at(sim.now + self.prop_ps, self._rx_receive, flit)

    def send_ctrl(self, stop: bool) -> None:
        sim = self.sim
        sim.at(sim.now + self.prop_ps, self._tx_set_paused, stop)


class _TxPort:
    """Base of everything that clocks flits onto a wire.

    Subclasses implement :meth:`_next_flit` returning a :data:`Flit` or
    ``None`` when nothing can be sent right now, and call :meth:`wake`
    whenever new work may have become available.
    """

    __slots__ = ("sim", "wire", "params", "paused", "_next_free_ps",
                 "_pump_scheduled", "_pump_cb")

    def __init__(self, sim: Simulator, wire: _Wire,
                 params: MyrinetParams) -> None:
        self.sim = sim
        self.wire = wire
        wire.tx = self
        self.params = params
        self.paused = False
        self._next_free_ps = 0
        self._pump_scheduled = False
        self._pump_cb = self._pump      # bound once; wake() is hot

    def set_paused(self, paused: bool) -> None:
        self.paused = paused
        if not paused:
            self.wake()

    def wake(self) -> None:
        if self._pump_scheduled:
            return
        self._pump_scheduled = True
        sim = self.sim
        sim.at(max(sim.now, self._next_free_ps), self._pump_cb)

    def _pump(self) -> None:
        self._pump_scheduled = False
        if self.paused:
            return
        flit = self._next_flit()
        if flit is None:
            return
        self.wire.send_flit(flit)
        self._next_free_ps = self.sim.now + self.params.flit_cycle_ps
        self.wake()

    def _next_flit(self) -> Optional[Flit]:
        raise NotImplementedError


class _RxBuffer:
    """Switch input slack buffer with stop&go, or a NIC receive buffer.

    NIC buffers (``nic >= 0``) are unbounded and never send stop -- the
    in-transit/delivery DMA always drains the channel, which is exactly
    the property that makes the ITB mechanism deadlock-free.
    """

    __slots__ = ("net", "sim", "params", "wire", "switch", "nic",
                 "occupancy", "stopped", "queue", "channel_key",
                 "consumers")

    def __init__(self, net: "FlitLevelNetwork", wire: _Wire,
                 channel_key: int, switch: int = -1, nic: int = -1) -> None:
        self.net = net
        self.sim = net.sim
        self.params = net.params
        self.wire = wire
        wire.rx = self
        self.switch = switch
        self.nic = nic
        self.occupancy = 0
        self.stopped = False
        self.queue: Deque[Flit] = deque()
        self.channel_key = channel_key
        #: output ports currently pulling from this buffer (switch
        #: only).  More than one can be registered at a time: a granted
        #: header queued behind another packet's tail pulls from the
        #: same buffer as the port still streaming that tail, so wakes
        #: must reach every puller (a wake to a port whose flits are
        #: not at the front is a cheap no-op)
        self.consumers: List["_OutputPort"] = []

    def receive(self, flit: Flit) -> None:
        dropped = self.net._dropped_pids
        if dropped and flit[0].pid in dropped:
            return   # stray flit of a fault-dropped packet: vanish
        if self.nic >= 0:
            self.net._nic_flit_received(self.nic, flit)
            return
        pkt, leg_idx, first, _last = flit
        self.queue.append(flit)
        self.occupancy += 1
        if self.occupancy > self.params.slack_buffer_bytes:
            raise AssertionError(
                f"slack buffer overflow at switch {self.switch} "
                f"(stop&go failed to pace the sender)")
        if (not self.stopped
                and self.occupancy >= self.params.stop_threshold_bytes):
            self.stopped = True
            self.wire.send_ctrl(stop=True)
        if first:
            self.net._header_at_switch(self, pkt, leg_idx)
        else:
            for consumer in self.consumers:
                consumer.wake()

    def pop_for(self, pkt: Packet) -> Optional[Flit]:
        """Take the front flit if it belongs to ``pkt``."""
        if not self.queue or self.queue[0][0] is not pkt:
            return None
        flit = self.queue.popleft()
        self.occupancy -= 1
        if (self.stopped
                and self.occupancy < self.params.go_threshold_bytes):
            self.stopped = False
            self.wire.send_ctrl(stop=False)
        return flit

    def purge(self, pkt: Packet) -> None:
        """Discard every buffered flit of a fault-dropped packet,
        un-stopping the upstream sender if the drain crosses the go
        threshold."""
        if self.nic >= 0 or not self.queue:
            return
        before = len(self.queue)
        kept = [f for f in self.queue if f[0] is not pkt]
        removed = before - len(kept)
        if not removed:
            return
        self.queue = deque(kept)
        self.occupancy -= removed
        if (self.stopped
                and self.occupancy < self.params.go_threshold_bytes):
            self.stopped = False
            self.wire.send_ctrl(stop=False)
        # the purge may have exposed another packet's flits at the
        # front; its granted port would otherwise sleep forever
        for consumer in self.consumers:
            consumer.wake()

    def reset_stats(self) -> None:  # occupancy is state, nothing to reset
        pass


class _OutputPort(_TxPort):
    """Switch output port: RR arbitration + routing delay + pull loop."""

    __slots__ = ("net", "node", "arbiter", "packet", "src_buffer",
                 "granted_ps", "reserved_ps", "dead")

    def __init__(self, net: "FlitLevelNetwork", node: int,
                 wire: _Wire) -> None:
        super().__init__(net.sim, wire, net.params)
        self.net = net
        #: switch this port belongs to (trace "grant" location)
        self.node = node
        self.arbiter = RoundRobinArbiter()
        self.packet: Optional[Packet] = None
        self.src_buffer: Optional[_RxBuffer] = None
        self.granted_ps = 0
        self.reserved_ps = 0
        #: link died mid-run; headers drop instead of requesting
        self.dead = False

    def request(self, buf: _RxBuffer, pkt: Packet, leg_idx: int) -> None:
        self.arbiter.request(buf.channel_key, pkt,
                             self._granted, buf, pkt, leg_idx)

    def _granted(self, buf: _RxBuffer, pkt: Packet, leg_idx: int) -> None:
        self.packet = pkt
        self.src_buffer = buf
        if self not in buf.consumers:
            buf.consumers.append(self)
        self.granted_ps = self.sim.now
        if self.net._tracer is not None:
            self.net._trace("grant", pkt.pid, self.node, leg_idx)
        # first flit pays the routing decision latency
        self._next_free_ps = max(self._next_free_ps,
                                 self.sim.now + self.params.routing_delay_ps)
        self.wake()

    def _next_flit(self) -> Optional[Flit]:
        if self.packet is None or self.src_buffer is None:
            return None
        flit = self.src_buffer.pop_for(self.packet)
        if flit is None:
            return None
        if flit[3]:  # last flit of the packet on this port
            self._release()
        return flit

    def _release(self) -> None:
        pkt = self.packet
        assert pkt is not None and self.src_buffer is not None
        # clamp to the last stats reset: a grant that predates the
        # measurement window only reserved the port inside the window
        self.reserved_ps += self.sim.now - max(self.granted_ps,
                                               self.net._stats_reset_ps)
        if self in self.src_buffer.consumers:
            self.src_buffer.consumers.remove(self)
        self.packet = None
        self.src_buffer = None
        self.arbiter.release(pkt)

    def force_release(self, pkt: Packet) -> None:
        """Release mid-stream: the owner was dropped by a link fault."""
        assert self.packet is pkt
        self.reserved_ps += self.sim.now - max(self.granted_ps,
                                               self.net._stats_reset_ps)
        if (self.src_buffer is not None
                and self in self.src_buffer.consumers):
            self.src_buffer.consumers.remove(self)
        self.packet = None
        self.src_buffer = None
        self.arbiter.release(pkt)


class _NicInjector(_TxPort):
    """NIC send side: FIFO of pending sends, cut-through aware."""

    __slots__ = ("net", "host", "jobs")

    def __init__(self, net: "FlitLevelNetwork", host: int,
                 wire: _Wire) -> None:
        super().__init__(net.sim, wire, net.params)
        self.net = net
        self.host = host
        #: FIFO of [pkt, leg_idx, flits_sent]
        self.jobs: Deque[List] = deque()

    def enqueue(self, pkt: Packet, leg_idx: int) -> None:
        dropped = self.net._dropped_pids
        if dropped and pkt.pid in dropped:
            return   # ITB detect fired after the packet was dropped
        self.jobs.append([pkt, leg_idx, 0])
        self.wake()

    def _next_flit(self) -> Optional[Flit]:
        while self.jobs:
            job = self.jobs[0]
            pkt, leg_idx, sent = job
            wire_len = pkt.wire_bytes(leg_idx)
            if sent >= wire_len:
                self.jobs.popleft()
                if leg_idx > 0:
                    self.net._itb_done(pkt, leg_idx - 1, self.host)
                continue
            if leg_idx > 0:
                # re-injection must not outrun reception of the
                # previous leg (cut-through at the NIC)
                received = self.net._itb_received(pkt, leg_idx - 1)
                if sent >= received:
                    return None  # woken by the next received flit
            job[2] = sent + 1
            first = sent == 0
            last = sent + 1 >= wire_len
            if first:
                if leg_idx == 0 and pkt.injected_ps is None:
                    pkt.injected_ps = self.sim.now
                self.net._trace("inject" if leg_idx == 0 else "reinject",
                                pkt.pid, self.host, leg_idx)
            return pkt, leg_idx, first, last
        return None


@register("flit")
class FlitLevelNetwork(NetworkModel):
    """Flit-accurate counterpart of
    :class:`~repro.sim.network.WormholeNetwork` (same
    :class:`~repro.sim.base.NetworkModel` surface and capability set)."""

    CAPABILITIES = frozenset({CAP_LINK_STATS, CAP_ITB_POOL, CAP_TRACE,
                              CAP_DYNAMIC_FAULTS,
                              CAP_RELIABLE_DELIVERY, CAP_INVARIANTS})

    # -- construction ----------------------------------------------------

    def _build(self) -> None:
        g = self.graph
        p = self.params
        sim = self.sim
        #: pids dropped by dynamic link faults: their stray flits and
        #: delayed ITB events are discarded on sight
        self._dropped_pids: set = set()
        #: link id -> the cable's two (wire, output port) directions
        self._link_ports: Dict[int, List[Tuple[_Wire, _OutputPort]]] = {}
        self._out_ports: Dict[Tuple, _OutputPort] = {}
        self._injectors: List[_NicInjector] = []
        self._wires: List[_Wire] = []
        #: per directed inter-switch channel: (wire, port, src, dst, link)
        self._net_channels: List[Tuple[_Wire, _OutputPort, int, int, int]] = []
        #: per host: finite in-transit buffer pool (same accounting as
        #: the packet engine's NICs)
        self._itb_pools: List[ItbPool] = []
        #: per (pid, leg): flits of that leg received at its ITB host
        self._itb_rx: Dict[Tuple[int, int], int] = {}
        #: id(leg) -> (leg, {switch: output port | None for the leg's
        #: last switch}); resolved once per route leg instead of
        #: scanning leg.switches per arriving header (the leg reference
        #: keeps the key's object alive -- no id() reuse)
        self._leg_ports: Dict[int, Tuple[object,
                                         Dict[int,
                                              Optional[_OutputPort]]]] = {}
        #: delivery output port per host id
        self._dlv_ports: List[_OutputPort] = []
        #: end-of-warm-up timestamp (clamps in-progress reservations)
        self._stats_reset_ps = 0
        key = 0

        def wire(name: str) -> _Wire:
            w = _Wire(sim, p.link_prop_ps, name)
            self._wires.append(w)
            return w

        for link in g.links:
            dirs = self._link_ports[link.id] = []
            for frm, to in ((link.a, link.b), (link.b, link.a)):
                w = wire(f"net{link.id}:{frm}->{to}")
                port = _OutputPort(self, frm, w)
                self._out_ports[(frm, to)] = port
                self._net_channels.append((w, port, frm, to, link.id))
                dirs.append((w, port))
                _RxBuffer(self, w, channel_key=key, switch=to)
                key += 1
        for host in g.hosts:
            w_in = wire(f"inj{host.id}")
            self._injectors.append(_NicInjector(self, host.id, w_in))
            _RxBuffer(self, w_in, channel_key=key, switch=host.switch)
            key += 1
            w_out = wire(f"dlv{host.id}")
            dlv = _OutputPort(self, host.switch, w_out)
            self._out_ports[("dlv", host.id)] = dlv
            assert len(self._dlv_ports) == host.id
            self._dlv_ports.append(dlv)
            _RxBuffer(self, w_out, channel_key=key, nic=host.id)
            key += 1
            self._itb_pools.append(ItbPool(host.id))

    # -- NetworkModel contract ---------------------------------------------

    def _inject(self, pkt: Packet) -> None:
        self._injectors[pkt.src_host].enqueue(pkt, 0)

    def _reset_engine_stats(self) -> None:
        for w in self._wires:
            w.flits_carried = 0
        for port in self._out_ports.values():
            port.reserved_ps = 0
        for pool in self._itb_pools:
            pool.reset_stats()
        self._stats_reset_ps = self.sim.now

    def link_flit_counts(self) -> List[LinkChannelStats]:
        out = []
        for w, port, src, dst, link_id in self._net_channels:
            reserved = port.reserved_ps
            if port.packet is not None:
                # count the in-progress reservation up to the snapshot,
                # clamped to the measurement window
                reserved += self.sim.now - max(port.granted_ps,
                                               self._stats_reset_ps)
            out.append(LinkChannelStats(src, dst, link_id,
                                        w.flits_carried, reserved))
        return out

    def itb_stats(self) -> ItbStats:
        return ItbStats(
            peak_bytes=max((p.itb_peak_bytes for p in self._itb_pools),
                           default=0),
            overflow_count=sum(p.itb_overflows for p in self._itb_pools),
            packets=sum(p.itb_packets for p in self._itb_pools))

    # -- internal event handlers -------------------------------------------

    def _leg_port_map(self, leg) -> Dict[int, Optional[_OutputPort]]:
        """switch -> next output port for ``leg``, resolved once per leg
        (``None`` marks the last switch: delivery is per-packet)."""
        entry = self._leg_ports.get(id(leg))
        if entry is not None:
            return entry[1]
        sws = leg.switches
        ports: Dict[int, Optional[_OutputPort]] = {
            sw: self._out_ports[(sw, sws[i + 1])]
            for i, sw in enumerate(sws[:-1])}
        ports[sws[-1]] = None
        self._leg_ports[id(leg)] = (leg, ports)
        return ports

    def _header_at_switch(self, buf: _RxBuffer, pkt: Packet,
                          leg_idx: int) -> None:
        leg = pkt.route.legs[leg_idx]
        port = self._leg_port_map(leg)[buf.switch]
        if port is None:
            port = self._dlv_ports[self._leg_target_host(pkt, leg_idx)]
        elif port.dead:
            # the route crosses a link that died after selection: the
            # worm is stranded at this switch and drops
            self._drop_packet(pkt)
            return
        port.request(buf, pkt, leg_idx)

    def _itb_received(self, pkt: Packet, leg_idx: int) -> int:
        return self._itb_rx.get((pkt.pid, leg_idx), 0)

    def _itb_done(self, pkt: Packet, leg_idx: int, host: int) -> None:
        """Re-injection of the leg after ``leg_idx`` fully left ``host``:
        drop the cut-through counter and credit the buffer pool."""
        self._itb_rx.pop((pkt.pid, leg_idx), None)
        self._itb_pools[host].itb_release(pkt.wire_bytes(leg_idx))

    # -- runtime invariants ------------------------------------------------

    def _port_name(self, key) -> str:
        if key[0] == "dlv":
            return f"dlv ->host {key[1]}"
        return f"net {key[0]}->{key[1]}"

    def _audit_engine(self, check) -> None:
        now = self.sim.now
        slack = self.params.slack_buffer_bytes
        for key, port in self._out_ports.items():
            name = self._port_name(key)
            arb = port.arbiter
            check(arb.waiting() == len(arb.waiting_tokens()),
                  f"port {name}: waiting count out of sync with queues")
            check(arb.owner is not None or arb.waiting() == 0,
                  f"port {name}: requests queued on a free arbiter")
            check((port.packet is None) == (arb.owner is None)
                  and (port.packet is None or arb.owner is port.packet),
                  f"port {name}: port/arbiter owner disagreement")
            check(0 <= port.reserved_ps
                  <= max(0, now - self._stats_reset_ps),
                  f"port {name}: reserved {port.reserved_ps} ps outside "
                  f"the {max(0, now - self._stats_reset_ps)} ps window")
        for w in self._wires:
            buf = w.rx
            if buf is None:
                continue
            check(buf.occupancy == len(buf.queue),
                  f"buffer at {w.name}: occupancy {buf.occupancy} != "
                  f"{len(buf.queue)} queued flits")
            if buf.nic < 0:       # switch slack buffers are bounded
                check(0 <= buf.occupancy <= slack,
                      f"buffer at {w.name}: occupancy {buf.occupancy} "
                      f"outside [0, {slack}]")
            check(w.flits_carried >= 0,
                  f"wire {w.name}: negative flit count")
        for pool in self._itb_pools:
            check(pool.itb_bytes >= 0,
                  f"host {pool.host}: negative ITB pool occupancy")
            check(pool.itb_peak_bytes >= pool.itb_bytes,
                  f"host {pool.host}: ITB peak below current occupancy")
        for (pid, leg), flits in self._itb_rx.items():
            check(flits >= 0,
                  f"pid {pid} leg {leg}: negative ITB reception count")

    def _audit_drained(self, check) -> None:
        for key, port in self._out_ports.items():
            check(port.packet is None and port.arbiter.waiting() == 0,
                  f"drained: port {self._port_name(key)} still owned or "
                  "waited on")
        for w in self._wires:
            if w.rx is not None:
                check(w.rx.occupancy == 0,
                      f"drained: buffer at {w.name} holds "
                      f"{w.rx.occupancy} flits")
        for inj in self._injectors:
            check(not inj.jobs,
                  f"drained: host {inj.host} injector has "
                  f"{len(inj.jobs)} queued jobs")
        for pool in self._itb_pools:
            check(pool.itb_bytes == 0,
                  f"drained: host {pool.host} ITB pool holds "
                  f"{pool.itb_bytes} bytes")
        check(not self._itb_rx,
              f"drained: {len(self._itb_rx)} ITB receptions in progress")

    def _stall_snapshot(self) -> Dict:
        owners, wait_for, blocked = [], [], {}
        for key, port in self._out_ports.items():
            arb = port.arbiter
            if port.packet is None and arb.waiting() == 0:
                continue
            name = self._port_name(key)
            waiters = arb.waiting_tokens()
            owners.append({
                "channel": name,
                "owner": getattr(port.packet, "pid", None),
                "waiters": [t.pid for t in waiters],
                "stopped_upstream": (port.src_buffer.stopped
                                     if port.src_buffer is not None
                                     else False)})
            for pkt in waiters:
                blocked.setdefault(pkt.pid, (pkt, name))
                wait_for.append({
                    "waiter": pkt.pid,
                    "channel": name,
                    "owner": getattr(port.packet, "pid", None)})
        worms = [{
            "pid": pid,
            "src": pkt.src_host, "dst": pkt.dst_host,
            "route_legs": [list(leg.switches) for leg in pkt.route.legs],
            "waits_on": name}
            for pid, (pkt, name) in sorted(blocked.items())]
        backlog = {inj.host: len(inj.jobs)
                   for inj in self._injectors if inj.jobs}
        return {"blocked_worms": worms, "channel_owners": owners,
                "wait_for": wait_for, "injector_backlog": backlog}

    # -- dynamic faults ----------------------------------------------------

    def _kill_link(self, link_id: int) -> None:
        """Both directions of the cable die now.

        Dead-port waiters are drained before owners are force-released,
        so no release can grant a dead port to a stale requester.  Any
        packet still occupying the cable (flits queued behind it,
        owning either direction, or waiting for it) is dropped whole --
        at flit fidelity a truncated tail means the packet is lost.
        """
        for w, port in self._link_ports[link_id]:
            port.dead = True
        for w, port in self._link_ports[link_id]:
            for tok in port.arbiter.cancel_waiting():
                self._drop_packet(tok)
            if port.packet is not None:
                self._drop_packet(port.packet)

    def _drop_packet(self, pkt: Packet) -> None:
        """Remove every trace of a stranded packet from the fabric."""
        if pkt.pid in self._dropped_pids or pkt.delivered:
            return
        self._dropped_pids.add(pkt.pid)
        # pending sends / re-injections at any NIC
        for injector in self._injectors:
            jobs = injector.jobs
            if any(job[0] is pkt for job in jobs):
                injector.jobs = deque(
                    job for job in jobs if job[0] is not pkt)
        # output ports: force-release where it streams, dequeue where
        # it waits (releases wake the next waiter on live ports)
        for port in self._out_ports.values():
            if port.packet is pkt:
                port.force_release(pkt)
            elif port.arbiter.waiting():
                port.arbiter.cancel(pkt)
        # buffered flits in switch slack buffers (un-stops senders)
        for w in self._wires:
            rx = w.rx
            if rx is not None:
                rx.purge(pkt)
        # in-transit bookkeeping: credit the pool for every leg still
        # being received (admit happened with the leg's first flit)
        for key in [k for k in self._itb_rx if k[0] == pkt.pid]:
            del self._itb_rx[key]
            host = pkt.route.itb_hosts[key[1]]
            self._itb_pools[host].itb_release(pkt.wire_bytes(key[1]))
        self._finish_drop(pkt, self.sim.now)

    def _nic_flit_received(self, nic: int, flit: Flit) -> None:
        pkt, leg_idx, first, last = flit
        if leg_idx == pkt.num_legs - 1:
            if last:
                self._finish_delivery(pkt, self.sim.now)
            return
        # in-transit: count availability for the cut-through re-injection
        key = (pkt.pid, leg_idx)
        self._itb_rx[key] = self._itb_rx.get(key, 0) + 1
        injector = self._injectors[nic]
        if first:
            self._trace("eject", pkt.pid, nic, leg_idx)
            # the arriving leg's bytes occupy the pool until the
            # re-injected tail has left (same model as the packet
            # engine); a full pool stages through host memory
            fits = self._itb_pools[nic].itb_admit(
                pkt.wire_bytes(leg_idx), self.params.itb_pool_bytes)
            delay = self.params.itb_detect_ps + self.params.itb_dma_setup_ps
            if not fits:
                pkt.itb_overflows += 1
                delay += self.params.itb_overflow_penalty_ps
            self.sim.after(delay, injector.enqueue, pkt, leg_idx + 1)
        else:
            injector.wake()

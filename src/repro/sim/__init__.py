"""Discrete-event simulation of Myrinet-style source-routed networks.

Two engines share the same topology/routing substrate:

* :mod:`network` -- the **packet-level wormhole model** used for all
  paper-scale experiments.  Packets acquire output ports hop by hop
  (150 ns routing, demand-slotted round-robin arbitration) and hold every
  channel of the current leg until the tail drains; in-transit hosts
  eject and re-inject packets with the measured 275 ns + 200 ns
  overheads.
* :mod:`flitlevel` -- a **flit-level model** with explicit 80-byte slack
  buffers and the 56/40-byte stop&go protocol; much slower, used to
  validate the packet-level approximation on small networks.

:mod:`engine` provides the shared event queue.
"""

from __future__ import annotations

from .engine import Simulator, DeadlockError
from .packet import Packet
from .network import WormholeNetwork
from .flitlevel import FlitLevelNetwork
from .trace import PacketTracer, TraceEvent, format_trace

__all__ = ["Simulator", "DeadlockError", "Packet", "WormholeNetwork",
           "FlitLevelNetwork", "PacketTracer", "TraceEvent",
           "format_trace"]

"""Discrete-event simulation of Myrinet-style source-routed networks.

All engines are backends of one abstract network layer,
:class:`~repro.sim.base.NetworkModel`, which owns the engine-independent
surface (message creation, route selection, delivery callbacks, the
deadlock watchdog, tracer attachment) and a declared-capabilities API.
Backends register by name in :mod:`repro.sim.engines` and are selected
with :func:`make_network`; two ship in-tree:

* ``"packet"`` (:mod:`network`) -- the **packet-level wormhole model**
  used for all paper-scale experiments.  Packets acquire output ports
  hop by hop (150 ns routing, demand-slotted round-robin arbitration)
  and hold every channel of the current leg until the tail drains;
  in-transit hosts eject and re-inject packets with the measured
  275 ns + 200 ns overheads.
* ``"flit"`` (:mod:`flitlevel`) -- a **flit-level model** with explicit
  80-byte slack buffers and the 56/40-byte stop&go protocol; much
  slower, used to validate the packet-level approximation on small
  networks.
* ``"array"`` (:mod:`arrayengine`) -- a **batched greedy-reservation
  model** over flat numpy channel/packet arrays, processing admissions
  and deliveries at fixed-stride ticks instead of one heap event per
  arbitration step.  Bit-identical to the packet engine when
  uncontended, an order of magnitude faster at paper scale; declares
  link statistics plus the batch injection/delivery capabilities and
  declines the rest.

The event-driven engines declare the full capability set (link
statistics, ITB pool, tracing), so metrics and traces are
engine-uniform; capability-declining engines raise
:class:`UnsupportedCapability` instead of fabricating numbers.
:mod:`engine` provides the shared event queue.
"""

from __future__ import annotations

from .base import (ALL_CAPABILITIES, CAP_BATCH_DELIVERY, CAP_BATCH_INJECT,
                   CAP_DYNAMIC_FAULTS, CAP_INVARIANTS, CAP_ITB_POOL,
                   CAP_LINK_STATS, CAP_RELIABLE_DELIVERY, CAP_TRACE,
                   ItbStats, LinkChannelStats, NetworkModel, NO_ITB_STATS,
                   UnsupportedCapability)
from .engine import Simulator, DeadlockError
from .faults import FaultPlan, LinkFault
from .engines import (available_engines, engine_capabilities, get_engine,
                      make_network, register, unregister)
from .nic import MessageSequencer
from .packet import Packet
from .network import WormholeNetwork
from .flitlevel import FlitLevelNetwork
from .arrayengine import ArrayNetwork
from .reliable import (ReconfigParams, ReconfigurationManager,
                       ReliableParams, ReliableTransport)
from .trace import PacketTracer, TraceEvent, format_trace

__all__ = ["Simulator", "DeadlockError", "Packet", "NetworkModel",
           "UnsupportedCapability", "LinkChannelStats", "ItbStats",
           "NO_ITB_STATS",
           "ALL_CAPABILITIES", "CAP_LINK_STATS", "CAP_ITB_POOL",
           "CAP_TRACE", "CAP_DYNAMIC_FAULTS", "CAP_RELIABLE_DELIVERY",
           "CAP_BATCH_INJECT", "CAP_BATCH_DELIVERY", "CAP_INVARIANTS",
           "FaultPlan", "LinkFault", "MessageSequencer",
           "ReliableParams", "ReliableTransport", "ReconfigParams",
           "ReconfigurationManager",
           "register", "unregister", "available_engines",
           "engine_capabilities", "get_engine", "make_network",
           "WormholeNetwork", "FlitLevelNetwork", "ArrayNetwork",
           "PacketTracer", "TraceEvent", "format_trace"]

"""End-to-end reliable delivery and online route reconfiguration.

PR 4's fault layer makes the fabric *lossy*: a link death drops the
worms it strands and severs pairs whose every route crossed it.  Real
Myrinet/GM hides both from applications -- the NIC firmware keeps
per-connection sequence numbers, acknowledges deliveries, retransmits
on timeout, and rebuilds its routing tables when the mapper detects a
topology change.  This module reproduces that recovery story on top of
any engine declaring :data:`~repro.sim.base.CAP_RELIABLE_DELIVERY`:

* :class:`ReliableTransport` -- the GM-style sender/receiver protocol:
  per-pair sequence numbers (:class:`~repro.sim.nic.MessageSequencer`),
  a delivery-ACK path modelled as an out-of-band control message with
  route-proportional latency, per-message retransmission timers with
  exponential backoff and a bounded attempt budget, receiver-side
  duplicate suppression, and failover to the next route alternative
  after ``failover_after`` consecutive failures on the same route.

* :class:`ReconfigurationManager` -- the mapper: after a configurable
  detection latency following each link death it recomputes the whole
  routing stack (spanning tree, up*/down* orientation, UP/DOWN or ITB
  tables) on the surviving graph and hot-swaps the NIC tables mid-run
  (:meth:`~repro.sim.base.NetworkModel.swap_tables`).  PR 4's static
  blacklist survives as the ``"blacklist"`` policy; when a failure
  partitions the fabric the manager falls back to it, since routing is
  undefined across a partition.

Simplifications, stated openly: ACKs travel out-of-band (they occupy
no channel bandwidth and are never lost -- GM piggybacks ACKs on tiny
control packets whose load is negligible next to the data stream), and
the receiver's duplicate window grows monotonically (fine for bounded
simulated runs).  Everything else -- what gets dropped, when, and what
a retransmission experiences -- is the engines' full fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from ..routing.table import compute_tables
from ..topology.mutate import without_links_mapped
from ..units import ns
from .base import (CAP_DYNAMIC_FAULTS, CAP_RELIABLE_DELIVERY,
                   NetworkModel)
from .nic import MessageSequencer
from .packet import Packet

MessageCallback = Callable[[Packet], None]

#: policies for reacting to a link death
RECONFIG_POLICIES = ("reconfigure", "blacklist")


@dataclass(frozen=True)
class ReliableParams:
    """Tuning of the retransmission protocol (all times picoseconds)."""

    #: base retransmission timeout for a message's first attempt
    timeout_ps: int = ns(20_000)
    #: multiplier applied to the timeout of each further attempt
    backoff: float = 2.0
    #: total send attempts per message before declaring permanent loss
    max_attempts: int = 12
    #: consecutive failed attempts on one route before failing over to
    #: the next table alternative (0 disables failover)
    failover_after: int = 2
    #: fixed NIC processing delay added to every delivery ACK
    ack_delay_ps: int = ns(200)

    def __post_init__(self) -> None:
        if self.timeout_ps <= 0:
            raise ValueError("timeout_ps must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.failover_after < 0:
            raise ValueError("failover_after must be non-negative")
        if self.ack_delay_ps < 0:
            raise ValueError("ack_delay_ps must be non-negative")

    def to_dict(self) -> dict:
        return {"timeout_ps": self.timeout_ps, "backoff": self.backoff,
                "max_attempts": self.max_attempts,
                "failover_after": self.failover_after,
                "ack_delay_ps": self.ack_delay_ps}

    @classmethod
    def from_dict(cls, d: dict) -> "ReliableParams":
        unknown = set(d) - {"timeout_ps", "backoff", "max_attempts",
                            "failover_after", "ack_delay_ps"}
        if unknown:
            raise ValueError(
                f"unknown ReliableParams keys: {sorted(unknown)}")
        return cls(**d)


@dataclass(frozen=True)
class ReconfigParams:
    """Tuning of the online reconfiguration policy."""

    #: how to react to a link death: ``"reconfigure"`` recomputes and
    #: hot-swaps the tables, ``"blacklist"`` keeps PR 4's static
    #: filtering of the original tables
    policy: str = "reconfigure"
    #: delay between a link dying and the recomputed tables landing in
    #: the NICs (mapper detection + table distribution)
    detection_latency_ps: int = ns(5_000)

    def __post_init__(self) -> None:
        if self.policy not in RECONFIG_POLICIES:
            raise ValueError(
                f"unknown reconfiguration policy {self.policy!r}; "
                f"expected one of {RECONFIG_POLICIES}")
        if self.detection_latency_ps < 0:
            raise ValueError("detection_latency_ps must be non-negative")

    def to_dict(self) -> dict:
        return {"policy": self.policy,
                "detection_latency_ps": self.detection_latency_ps}

    @classmethod
    def from_dict(cls, d: dict) -> "ReconfigParams":
        unknown = set(d) - {"policy", "detection_latency_ps"}
        if unknown:
            raise ValueError(
                f"unknown ReconfigParams keys: {sorted(unknown)}")
        return cls(**d)


class _Message:
    """Sender-side state of one application message."""

    __slots__ = ("seq", "src", "dst", "nbytes", "created_ps", "attempts",
                 "acked", "failed", "delivered_ps", "consecutive_failures",
                 "forced_index", "last_alt_index", "retry_scheduled")

    def __init__(self, seq: int, src: int, dst: int, nbytes: int,
                 created_ps: int) -> None:
        self.seq = seq
        self.src = src
        self.dst = dst
        self.nbytes = nbytes
        self.created_ps = created_ps
        #: send attempts so far (attempt ids are 1-based)
        self.attempts = 0
        self.acked = False
        self.failed = False
        self.delivered_ps: Optional[int] = None
        self.consecutive_failures = 0
        #: table index forced by failover; ``None`` = ask the policy
        self.forced_index: Optional[int] = None
        #: table index of the last attempt's route (failover start)
        self.last_alt_index = 0
        #: a drop-triggered retry is already in the event queue
        self.retry_scheduled = False


class ReliableTransport:
    """GM-style reliable message delivery over one network engine.

    The transport fronts the network for traffic generation (it exposes
    the same ``send(src, dst)`` entry point), allocates a sequence
    number per message, and keeps retransmitting until the delivery is
    acknowledged or the attempt budget runs out.  A drop notification
    from the engine (worm stranded on a dying link, or refusal at the
    source) short-circuits the wait: the retry fires one base timeout
    after the drop instead of the current attempt's full backed-off
    timer.  Counter semantics after a drained run::

        messages == acked + permanent_losses
        delivered == acked            (every delivery gets its ACK)
        recovered <= delivered        (delivered on attempt >= 2)
    """

    def __init__(self, network: NetworkModel,
                 params: Optional[ReliableParams] = None) -> None:
        network.require(CAP_RELIABLE_DELIVERY)
        self.network = network
        self.sim = network.sim
        self.params = params or ReliableParams()
        self.sequencer = MessageSequencer()

        #: messages handed to :meth:`send`
        self.messages = 0
        #: messages whose delivery ACK reached the sender
        self.acked = 0
        #: messages whose first copy reached the receiver
        self.delivered = 0
        #: messages delivered on a retransmitted attempt
        self.recovered = 0
        #: send attempts beyond each message's first
        self.retransmissions = 0
        #: redundant copies discarded by the receiver
        self.duplicates = 0
        #: messages abandoned after the attempt budget
        self.permanent_losses = 0

        #: live packet id -> (message, attempt id)
        self._pid_msg: Dict[int, Tuple[_Message, int]] = {}
        self._message_callbacks: List[MessageCallback] = []
        network.add_delivery_callback(self._on_network_delivery)
        network.add_drop_callback(self._on_drop)

    # -- sending -----------------------------------------------------------

    def add_message_callback(self, cb: MessageCallback) -> None:
        """``cb(packet)`` runs once per message, at the instant its
        *first* copy is delivered (duplicates are suppressed before the
        callbacks -- this is where latency collectors belong)."""
        self._message_callbacks.append(cb)

    def send(self, src_host: int, dst_host: int,
             nbytes: Optional[int] = None) -> _Message:
        """Accept one application message for reliable delivery."""
        msg = _Message(self.sequencer.next_seq(src_host, dst_host),
                       src_host, dst_host,
                       nbytes if nbytes is not None
                       else self.network.message_bytes,
                       self.sim.now)
        self.messages += 1
        self._attempt(msg)
        return msg

    @property
    def outstanding(self) -> int:
        """Messages neither acknowledged nor abandoned yet."""
        return self.messages - self.acked - self.permanent_losses

    def stats(self) -> Dict[str, int]:
        """Snapshot of the protocol counters (for windowed deltas)."""
        return {"messages": self.messages, "acked": self.acked,
                "delivered": self.delivered, "recovered": self.recovered,
                "retransmissions": self.retransmissions,
                "duplicates": self.duplicates,
                "permanent_losses": self.permanent_losses}

    # -- protocol machinery ------------------------------------------------

    def _attempt(self, msg: _Message) -> None:
        msg.attempts += 1
        attempt_id = msg.attempts
        now = self.sim.now
        pkt = self.network.send(msg.src, msg.dst, msg.nbytes,
                                route_index=msg.forced_index)
        if pkt is None:
            # refused at the source: no surviving route under the
            # active policy -- treat like an instantly dropped attempt
            if attempt_id >= self.params.max_attempts:
                self._fail(msg)
                return
            msg.retry_scheduled = True
            self.sim.at(now + self.params.timeout_ps, self._drop_retry,
                        msg, attempt_id)
            return
        # message latency spans the whole exchange, not one attempt
        pkt.created_ps = msg.created_ps
        msg.last_alt_index = pkt.alt_index
        self._pid_msg[pkt.pid] = (msg, attempt_id)
        delay = int(self.params.timeout_ps
                    * self.params.backoff ** (attempt_id - 1))
        self.sim.at(now + delay, self._on_timeout, msg, attempt_id)

    def _on_network_delivery(self, pkt: Packet) -> None:
        entry = self._pid_msg.pop(pkt.pid, None)
        if entry is None:
            return
        msg, _attempt_id = entry
        first = self.sequencer.accept(msg.src, msg.dst, msg.seq)
        if first:
            self.delivered += 1
            msg.delivered_ps = pkt.delivered_ps
            if msg.attempts > 1:
                self.recovered += 1
            for cb in self._message_callbacks:
                cb(pkt)
        else:
            self.duplicates += 1
        # the receiver ACKs every copy (idempotent at the sender)
        self.sim.at(self.sim.now + self._ack_latency_ps(pkt),
                    self._on_ack, msg)

    def _on_ack(self, msg: _Message) -> None:
        if msg.acked or msg.failed:
            return
        msg.acked = True
        self.acked += 1

    def _on_timeout(self, msg: _Message, attempt_id: int) -> None:
        if (msg.acked or msg.failed or attempt_id != msg.attempts
                or msg.retry_scheduled):
            return
        self._retry(msg)

    def _on_drop(self, pkt: Packet, t_ps: int) -> None:
        entry = self._pid_msg.pop(pkt.pid, None)
        if entry is None:
            return
        msg, attempt_id = entry
        if (msg.acked or msg.failed or attempt_id != msg.attempts
                or msg.retry_scheduled):
            return
        # confirmed loss: retry after one base timeout instead of the
        # attempt's full backed-off timer (the throttle keeps a dead
        # route from burning the budget before reconfiguration lands)
        msg.retry_scheduled = True
        self.sim.at(t_ps + self.params.timeout_ps, self._drop_retry,
                    msg, attempt_id)

    def _drop_retry(self, msg: _Message, attempt_id: int) -> None:
        msg.retry_scheduled = False
        if msg.acked or msg.failed or attempt_id != msg.attempts:
            return
        self._retry(msg)

    def _retry(self, msg: _Message) -> None:
        msg.consecutive_failures += 1
        p = self.params
        if p.failover_after and msg.consecutive_failures % p.failover_after == 0:
            # k consecutive failures on this route: force the next
            # table alternative (modulo wrap happens at selection)
            base = (msg.forced_index if msg.forced_index is not None
                    else msg.last_alt_index)
            msg.forced_index = base + 1
        if msg.attempts >= p.max_attempts:
            self._fail(msg)
            return
        self.retransmissions += 1
        self._attempt(msg)

    def _fail(self, msg: _Message) -> None:
        msg.failed = True
        self.permanent_losses += 1

    def _ack_latency_ps(self, pkt: Packet) -> int:
        """Out-of-band ACK flight time: NIC processing plus one header
        crossing back along the delivery route."""
        p = self.network.params
        hops = pkt.route.switch_hops
        return (self.params.ack_delay_ps
                + (hops + 2) * p.link_prop_ps
                + (hops + 1) * p.routing_delay_ps)


class ReconfigurationManager:
    """The mapper: recompute and hot-swap routing tables after faults.

    Under the ``"reconfigure"`` policy the manager switches the engine
    out of PR 4's blacklist filtering (the tables themselves become the
    source of truth again) and, one detection latency after each link
    death, rebuilds the full routing stack on the surviving graph.  The
    recomputed tables live in the mutated graph's renumbered link-id
    space; they are translated back through the removal's id map before
    the swap, so the running engine keeps addressing its original
    cables.  A failure that partitions the switch graph cannot be
    routed around -- the manager then re-enables the blacklist and
    leaves the last good tables in place (severed pairs fail at the
    source; surviving pairs keep working).
    """

    def __init__(self, network: NetworkModel,
                 params: Optional[ReconfigParams] = None,
                 max_routes_per_pair: int = 10,
                 sort_by_itbs: bool = False) -> None:
        network.require(CAP_DYNAMIC_FAULTS)
        network.require(CAP_RELIABLE_DELIVERY)
        self.network = network
        self.params = params or ReconfigParams()
        self.max_routes_per_pair = max_routes_per_pair
        self.sort_by_itbs = sort_by_itbs

        #: table swaps performed so far
        self.reconfigurations = 0
        #: the manager hit a partition and re-enabled the blacklist
        self.fallback_blacklist = False
        #: dead-link set the current tables were computed for
        self._reconfigured_for: FrozenSet[int] = frozenset()

        if self.params.policy == "reconfigure":
            network.blacklist_on_fault = False
            network.add_link_death_callback(self._on_link_death)

    def _on_link_death(self, link_id: int, t_ps: int) -> None:
        self.network.sim.at(t_ps + self.params.detection_latency_ps,
                            self._reconfigure)

    def _reconfigure(self) -> None:
        net = self.network
        dead = frozenset(net.dead_links)
        if dead == self._reconfigured_for:
            return  # a later fault's event already covered this set
        self._reconfigured_for = dead
        try:
            removal = without_links_mapped(net.graph, sorted(dead))
        except ValueError:
            # partition: no table can route around it; fall back to
            # blacklisting on top of the last good tables
            net.blacklist_on_fault = True
            net._routable_cache.clear()
            self.fallback_blacklist = True
            return
        tables = compute_tables(removal.graph, net.tables.scheme,
                                root=net.tables.root,
                                max_routes_per_pair=self.max_routes_per_pair,
                                sort_by_itbs=self.sort_by_itbs)
        inverse = {new: old for old, new in removal.link_map.items()}
        net.swap_tables(tables.with_remapped_links(inverse))
        self.reconfigurations += 1

"""Runtime invariant auditor and stall (deadlock) diagnoser.

The engines maintain conservation laws that no summary statistic
checks: every generated message is delivered, dropped, or physically
present in the fabric; channel reservations never exceed the elapsed
measurement window; a held channel's arbiter agrees about its owner;
and every byte admitted to an in-transit buffer pool is eventually
credited back.  Silent violations (a leaked flit, a double-released
channel, a pool that drifts negative) corrupt exactly the statistics
the paper's figures are built from, and they get harder to spot the
larger the fabric -- the ROADMAP item-5 scale sweep to 512--1024
switches is the forcing function for checking them at runtime.

:func:`audit` runs the full invariant suite against a live network.
It is capability-gated (:data:`~repro.sim.base.CAP_INVARIANTS`): the
base ledger checks run here, the structural walk is delegated to the
engine through ``NetworkModel._audit_engine`` (and
``_audit_drained`` for the stricter quiescent-state laws).  The
runner audits at the window boundaries of every run started with
``check_invariants=True``; tests sweep the golden matrix through it.

:func:`diagnose_stall` is the other half: when the progress watchdog
trips, it snapshots the blocked state (``_stall_snapshot``), builds
the wait-for graph (blocked worm -> channel it waits on -> that
channel's owner), detects the cycle, and returns a JSON-safe dump --
so a deadlocked configuration *names its cycle* in the
:class:`~repro.sim.engine.DeadlockError` instead of wedging with a
bare "no progress" message.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .base import CAP_INVARIANTS, NetworkModel

__all__ = ["InvariantViolation", "InvariantReport", "audit",
           "diagnose_stall", "find_wait_cycle"]


class InvariantViolation(AssertionError):
    """A runtime invariant of the simulation core does not hold."""


@dataclass
class InvariantReport:
    """Outcome of one :func:`audit` pass over a live network."""

    #: engine registry name
    engine: str
    #: simulated time of the audit, picoseconds
    t_ps: int
    #: individual invariant checks evaluated
    checks: int = 0
    #: human-readable description of every failed check
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_failed(self) -> "InvariantReport":
        """Raise :class:`InvariantViolation` listing every failure."""
        if self.violations:
            raise InvariantViolation(
                f"{self.engine} engine failed {len(self.violations)} of "
                f"{self.checks} invariant checks at t={self.t_ps}:\n  "
                + "\n  ".join(self.violations))
        return self

    def to_dict(self) -> dict:
        return {"engine": self.engine, "t_ps": self.t_ps,
                "checks": self.checks, "violations": list(self.violations)}


def audit(network: NetworkModel, drained: bool = False) -> InvariantReport:
    """Run every runtime invariant against ``network`` *now*.

    Requires :data:`~repro.sim.base.CAP_INVARIANTS`.  The base ledger
    laws (message conservation between ``generated``, ``delivered``,
    ``dropped`` and ``in_flight``) run for every engine; the engine
    adds its structural laws (channel/arbiter agreement, occupancy
    bounds, ITB byte-accounting) through ``_audit_engine``.  With
    ``drained=True`` the stricter quiescent-state laws run too: zero
    packets in flight, empty buffers, free arbiters, zeroed pools --
    the state every run must reach once its traffic stops.
    """
    network.require(CAP_INVARIANTS)
    report = InvariantReport(engine=network.name, t_ps=network.sim.now)

    def check(condition: bool, description: str) -> None:
        report.checks += 1
        if not condition:
            report.violations.append(description)

    n = network
    check(n.generated >= 0, f"ledger: negative generated ({n.generated})")
    check(n.delivered >= 0, f"ledger: negative delivered ({n.delivered})")
    check(n.dropped >= 0, f"ledger: negative dropped ({n.dropped})")
    check(n.delivered + n.dropped <= n.generated,
          f"conservation: delivered ({n.delivered}) + dropped "
          f"({n.dropped}) exceed generated ({n.generated})")
    check(n.dropped_unroutable <= n.dropped,
          f"ledger: unroutable drops ({n.dropped_unroutable}) exceed "
          f"total drops ({n.dropped})")
    n._audit_engine(check)
    if drained:
        check(n.in_flight == 0,
              f"drained: {n.in_flight} packets still in flight")
        n._audit_drained(check)
    return report


def find_wait_cycle(edges: Dict[int, int]) -> Optional[List[int]]:
    """A cycle in the functional wait-for graph, or ``None``.

    ``edges`` maps each blocked packet to the packet holding the
    resource it waits on (at most one outgoing edge per node -- a
    wormhole header waits on exactly one output port).  Returns the
    cycle's node list starting from its smallest pid, so the same
    deadlock always renders identically.
    """
    visited: Dict[int, int] = {}      # node -> colour (1 active, 2 done)
    for start in edges:
        if visited.get(start):
            continue
        path: List[int] = []
        node: Optional[int] = start
        while node is not None and node in edges:
            colour = visited.get(node)
            if colour == 2:
                break
            if colour == 1:
                i = path.index(node)
                cycle = path[i:]
                j = cycle.index(min(cycle))
                return cycle[j:] + cycle[:j]
            visited[node] = 1
            path.append(node)
            node = edges.get(node)
        for seen in path:
            visited[seen] = 2
    return None


def diagnose_stall(network: NetworkModel) -> dict:
    """JSON-safe diagnosis of a stalled network.

    Snapshots the engine's blocked state (channel owners, blocked
    worms with their held channels and route legs), derives the
    wait-for graph and names the detected cycle.  The dict is attached
    to the :class:`~repro.sim.engine.DeadlockError` the watchdog
    raises and rendered into its message.
    """
    network.require(CAP_INVARIANTS)
    snapshot = network._stall_snapshot()
    edges: Dict[int, int] = {}
    via: Dict[int, dict] = {}
    for edge in snapshot.get("wait_for", []):
        if edge.get("owner") is not None:
            edges[edge["waiter"]] = edge["owner"]
            via[edge["waiter"]] = edge
    cycle = find_wait_cycle(edges)
    diagnosis = {
        "engine": network.name,
        "t_ps": network.sim.now,
        "generated": network.generated,
        "delivered": network.delivered,
        "dropped": network.dropped,
        "in_flight": network.in_flight,
        "wait_for_cycle": [],
    }
    diagnosis.update(snapshot)
    if cycle:
        diagnosis["wait_for_cycle"] = [
            {"waiter": pid,
             "waits_on": via[pid].get("channel"),
             "held_by": edges[pid]}
            for pid in cycle]
    return diagnosis


def render_diagnosis(diagnosis: dict) -> str:
    """The diagnosis as pretty-printed JSON (what the CLI shows)."""
    return json.dumps(diagnosis, indent=2, sort_keys=True)

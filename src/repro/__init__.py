"""repro -- reproduction of *Improving the Performance of Regular
Networks with Source Routing* (Flich, López, Malumbres, Duato; ICPP 2000).

A Myrinet-calibrated discrete-event network simulator plus the
up*/down* and in-transit-buffer (ITB) source-routing algorithms the
paper evaluates, and a harness regenerating every table and figure of
its evaluation section.

Quickstart::

    from repro import SimConfig, run_simulation

    cfg = SimConfig(topology="torus", routing="itb", policy="rr",
                    traffic="uniform", injection_rate=0.02)
    summary = run_simulation(cfg)
    print(summary.oneline())

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

from __future__ import annotations

from .config import MyrinetParams, PAPER_PARAMS, SimConfig
from .experiments.runner import run_simulation, clear_caches
from .experiments.sweep import sweep_rates, SweepResult
from .experiments.profiles import Profile, BENCH, PAPER, TEST
from .experiments.registry import EXPERIMENTS, run_experiment
from .metrics import (LatencyCollector, LinkUtilization, RunSummary,
                      SaturationResult, collect_link_stats, find_saturation)
from .perf import PerfRecorder, PerfReport, profile_to
from .routing import (RoutingTables, SourceRoute, compute_tables,
                      make_policy, route_statistics)
from .experiments.compare import ComparisonResult, compare_configs
from .orchestrator import (Campaign, CampaignError, Executor, Point,
                           ProgressReporter, ResultStore, WorkerPool)
from .sim import (DeadlockError, FlitLevelNetwork, ItbStats,
                  LinkChannelStats, NetworkModel, Packet, PacketTracer,
                  Simulator, UnsupportedCapability, WormholeNetwork,
                  available_engines, engine_capabilities, format_trace,
                  make_network)
from .topology import (NetworkGraph, build, build_cplant, build_irregular,
                       build_mesh, build_torus, build_torus_express,
                       check_topology)
from .traffic import (ArrivalProcess, DestinationPattern, TrafficPattern,
                      TrafficProcess, available_arrivals,
                      available_patterns, make_arrival, make_pattern,
                      make_workload, supported_patterns)

__version__ = "1.0.0"

__all__ = [
    "MyrinetParams",
    "PAPER_PARAMS",
    "SimConfig",
    "run_simulation",
    "clear_caches",
    "sweep_rates",
    "SweepResult",
    "Profile",
    "BENCH",
    "PAPER",
    "TEST",
    "EXPERIMENTS",
    "run_experiment",
    "LatencyCollector",
    "LinkUtilization",
    "RunSummary",
    "SaturationResult",
    "collect_link_stats",
    "find_saturation",
    "PerfRecorder",
    "PerfReport",
    "profile_to",
    "RoutingTables",
    "SourceRoute",
    "compute_tables",
    "make_policy",
    "route_statistics",
    "DeadlockError",
    "Packet",
    "PacketTracer",
    "format_trace",
    "Simulator",
    "NetworkModel",
    "UnsupportedCapability",
    "LinkChannelStats",
    "ItbStats",
    "available_engines",
    "engine_capabilities",
    "make_network",
    "WormholeNetwork",
    "FlitLevelNetwork",
    "ComparisonResult",
    "compare_configs",
    "Campaign",
    "CampaignError",
    "Executor",
    "Point",
    "ProgressReporter",
    "ResultStore",
    "WorkerPool",
    "NetworkGraph",
    "build",
    "build_torus",
    "build_torus_express",
    "build_cplant",
    "build_irregular",
    "build_mesh",
    "check_topology",
    "TrafficPattern",
    "DestinationPattern",
    "ArrivalProcess",
    "TrafficProcess",
    "make_pattern",
    "make_arrival",
    "make_workload",
    "available_patterns",
    "available_arrivals",
    "supported_patterns",
    "__version__",
]

"""Extension permutation patterns: matrix transpose and complement.

Not part of the paper's evaluation, but standard companions of
bit-reversal in the interconnection-network literature; included so the
extension benches can probe ITB behaviour under other adversarial
permutations.
"""

from __future__ import annotations

import random
from typing import Optional

from ..topology.graph import NetworkGraph
from .base import TrafficPattern


class TransposeTraffic(TrafficPattern):
    """``dst`` swaps the high and low halves of the source id bits.

    Requires a host count that is a power of four (even bit width).
    """

    name = "transpose"

    def __init__(self, graph: NetworkGraph) -> None:
        super().__init__(graph)
        n = graph.num_hosts
        if n < 4 or n & (n - 1):
            raise ValueError("transpose needs a power-of-two host count")
        width = n.bit_length() - 1
        if width % 2:
            raise ValueError(
                "transpose needs an even id width (power-of-four hosts)")
        half = width // 2
        mask = (1 << half) - 1
        self._dest = [((h & mask) << half) | (h >> half) for h in range(n)]

    def destination(self, src_host: int, rng: random.Random) -> Optional[int]:
        dst = self._dest[src_host]
        return None if dst == src_host else dst

    def active_hosts(self) -> list[int]:
        return [h for h in range(self.graph.num_hosts) if self._dest[h] != h]


class ComplementTraffic(TrafficPattern):
    """``dst = ~src``: every bit of the source id flipped."""

    name = "complement"

    def __init__(self, graph: NetworkGraph) -> None:
        super().__init__(graph)
        n = graph.num_hosts
        if n < 2 or n & (n - 1):
            raise ValueError("complement needs a power-of-two host count")
        self._mask = n - 1

    def destination(self, src_host: int, rng: random.Random) -> Optional[int]:
        return src_host ^ self._mask


def _register() -> None:
    from .registry import PatternSpec, power_of_two_hosts, register_pattern

    register_pattern(PatternSpec(
        name="transpose",
        description="fixed permutation swapping the high and low "
                    "halves of the host id bits",
        build=TransposeTraffic,
        supports=lambda g: (power_of_two_hosts(g)
                            and (g.num_hosts.bit_length() - 1) % 2 == 0),
        topology_note="power-of-four host count",
    ))
    register_pattern(PatternSpec(
        name="complement",
        description="fixed permutation dst = ~src (all id bits flipped)",
        build=ComplementTraffic,
        supports=power_of_two_hosts,
        topology_note="power-of-two host count",
    ))


_register()

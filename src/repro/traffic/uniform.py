"""Uniform destination distribution ("the most widely used pattern")."""

from __future__ import annotations

import random
from typing import Optional

from ..topology.graph import NetworkGraph
from .base import TrafficPattern


class UniformTraffic(TrafficPattern):
    """Destination chosen uniformly among all hosts except the source."""

    name = "uniform"

    def __init__(self, graph: NetworkGraph) -> None:
        super().__init__(graph)
        if graph.num_hosts < 2:
            raise ValueError("uniform traffic needs at least two hosts")

    def destination(self, src_host: int, rng: random.Random) -> Optional[int]:
        # draw from [0, n-2] and skip over the source: exactly uniform
        # over the other n-1 hosts with a single RNG call
        d = rng.randrange(self.graph.num_hosts - 1)
        return d + 1 if d >= src_host else d


def _register() -> None:
    from .registry import PatternSpec, register_pattern

    register_pattern(PatternSpec(
        name="uniform",
        description="uniformly random destination among all other hosts "
                    "(the paper's base pattern)",
        build=UniformTraffic,
        supports=lambda g: g.num_hosts >= 2,
    ))


_register()

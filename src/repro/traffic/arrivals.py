"""Arrival processes: when each host's next message fires.

All processes are parameterised by the mean inter-message interval
computed from the configured offered load
(:func:`~repro.traffic.base.per_host_interval_ps`) and **preserve that
long-run mean rate** -- they only redistribute firings in time.  A
sweep at offered load x therefore offers x under every arrival model,
and differences in accepted traffic / latency / backlog are purely the
burstiness responding to the network, never a hidden rate change.

* :class:`ConstantArrivals` -- the paper's load model: fixed spacing,
  per-host random initial phase;
* :class:`PoissonArrivals` -- memoryless exponential gaps (M/·/·
  sources; smooth but variable);
* :class:`OnOffArrivals` -- bursty ON/OFF source (the RPF-simulation
  idiom): geometric trains of back-to-back-at-peak-rate messages
  separated by exponential silences, duty cycle ``duty``;
* :class:`PoissonBurstArrivals` -- burst *events* arrive as a Poisson
  process, each carrying a geometric number of messages;
* :class:`ParetoOnOffArrivals` -- ON/OFF with *Pareto* (heavy-tailed)
  silences: aggregating many such sources yields self-similar traffic
  (the Willinger/Taqqu construction), the load shape under which
  Markovian buffering intuition fails worst;
* :class:`AdversarialArrivals` -- an (r, b)-adversary in the sense of
  "Source Routing and Scheduling in Packet Networks" (arXiv
  cs/0203030): every host accumulates ``burst`` tokens and dumps them
  in one aligned volley, so the injection in any window [s, t] is
  bounded by r(t - s) + b while the instantaneous load is maximal.
  Below saturation a stable schedule must keep the backlog bounded;
  the ``adversary`` experiment checks exactly that.

Every process registers in :mod:`repro.traffic.registry` with its
declared kwargs, so ``SimConfig(arrival="onoff",
arrival_kwargs={"duty": 0.2})`` and ``--arrival onoff --arrival-arg
duty=0.2`` need no per-process code anywhere else.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Optional

from .base import ArrivalProcess


def _positive_interval(interval_ps: int) -> int:
    if interval_ps <= 0:
        raise ValueError("interval must be positive")
    return interval_ps


class ConstantArrivals(ArrivalProcess):
    """Fixed spacing with a random initial phase (the paper's model).

    Hosts start with independent random phases so the network is not
    hit by a synchronised volley every interval.
    """

    name = "constant"

    def __init__(self, interval_ps: int) -> None:
        self.interval_ps = _positive_interval(interval_ps)
        self._phased: set = set()

    def next_fire_ps(self, host: int, now_ps: int,
                     rng: random.Random) -> Optional[int]:
        if host not in self._phased:
            self._phased.add(host)
            return now_ps + rng.randrange(self.interval_ps)
        return now_ps + self.interval_ps


class PoissonArrivals(ArrivalProcess):
    """Exponential inter-message gaps with the configured mean.

    Memoryless, so no initial-phase special case is needed: the first
    gap is drawn from the same distribution as every other.
    """

    name = "poisson"

    def __init__(self, interval_ps: int) -> None:
        self.interval_ps = _positive_interval(interval_ps)

    def next_fire_ps(self, host: int, now_ps: int,
                     rng: random.Random) -> Optional[int]:
        return now_ps + max(1, round(rng.expovariate(1.0 / self.interval_ps)))


class OnOffArrivals(ArrivalProcess):
    """Bursty ON/OFF source with duty cycle ``duty``.

    ON periods emit a geometric train (mean ``burst`` messages) spaced
    at the *peak* interval ``duty * interval``; OFF periods are
    exponential silences sized so one ON+OFF cycle averages
    ``burst * interval`` -- the long-run rate equals the configured
    mean, the source is simply ON roughly ``duty`` of the time and
    silent the rest.
    """

    name = "onoff"

    def __init__(self, interval_ps: int, duty: float = 0.25,
                 burst: int = 8) -> None:
        self.interval_ps = _positive_interval(interval_ps)
        if not (0.0 < duty <= 1.0):
            raise ValueError("duty cycle must be in (0, 1]")
        if burst < 1:
            raise ValueError("mean burst length must be >= 1")
        self.duty = duty
        self.burst = burst
        self.peak_interval_ps = max(1, round(interval_ps * duty))
        #: messages still to fire in the current ON train, per host
        self._remaining: Dict[int, int] = {}

    def _off_gap_ps(self, drawn_burst: int, rng: random.Random) -> int:
        # one cycle must average drawn_burst * interval; the ON part
        # spends (drawn_burst - 1) peak intervals
        mean_off = (drawn_burst * self.interval_ps
                    - (drawn_burst - 1) * self.peak_interval_ps)
        return max(1, round(rng.expovariate(1.0 / max(1, mean_off))))

    def next_fire_ps(self, host: int, now_ps: int,
                     rng: random.Random) -> Optional[int]:
        remaining = self._remaining.get(host, 0)
        if remaining > 0:
            self._remaining[host] = remaining - 1
            return now_ps + self.peak_interval_ps
        # start a new ON train after an OFF silence; the message at the
        # returned time is the train's first
        drawn = 1 + _geometric(self.burst - 1, rng)
        self._remaining[host] = drawn - 1
        return now_ps + self._off_gap_ps(drawn, rng)


class ParetoOnOffArrivals(OnOffArrivals):
    """ON/OFF source whose silences are Pareto (heavy-tailed).

    Identical to :class:`OnOffArrivals` -- geometric ON trains at the
    peak interval, OFF gaps whose *mean* keeps one cycle averaging
    ``burst * interval`` -- except the OFF gap is drawn from a Pareto
    distribution with shape ``alpha`` in (1, 2].  With infinite
    variance (alpha <= 2) the superposition of many such sources is
    asymptotically self-similar (Willinger et al., the ON/OFF
    construction of long-range-dependent traffic): load arrives in
    correlated waves at *every* timescale instead of smoothing out,
    which is exactly the regime where Poisson-calibrated buffer and
    ITB-pool sizing is most optimistic.  The long-run mean rate is
    still the configured one -- only the gap distribution's tail
    changes.
    """

    name = "pareto-onoff"

    def __init__(self, interval_ps: int, duty: float = 0.25,
                 burst: int = 8, alpha: float = 1.5) -> None:
        super().__init__(interval_ps, duty=duty, burst=burst)
        if not (1.0 < alpha <= 2.0):
            raise ValueError("pareto shape alpha must be in (1, 2]: "
                             "alpha <= 1 has no mean (the rate would "
                             "drift), alpha > 2 has finite variance "
                             "(no self-similarity)")
        self.alpha = alpha

    def _off_gap_ps(self, drawn_burst: int, rng: random.Random) -> int:
        # same mean as the exponential parent, heavy-tailed shape:
        # Pareto(xm, alpha) has mean xm * alpha / (alpha - 1)
        mean_off = max(1, drawn_burst * self.interval_ps
                       - (drawn_burst - 1) * self.peak_interval_ps)
        xm = mean_off * (self.alpha - 1.0) / self.alpha
        # flooring u costs ~3e-4 of the mean at alpha=1.5 and keeps a
        # single draw from swallowing the whole measurement window
        u = max(rng.random(), 1e-12)
        gap = xm / u ** (1.0 / self.alpha)
        return max(1, round(min(gap, 1e6 * mean_off)))


class PoissonBurstArrivals(ArrivalProcess):
    """Poisson burst *events*, each a geometric clump of messages.

    Burst events arrive with mean spacing ``burst * interval`` and
    carry on average ``burst`` messages fired back-to-back at
    ``spacing_ps``, preserving the configured mean rate while
    concentrating it into clumps -- the classic compound-Poisson
    stressor for switch buffering.
    """

    name = "burst"

    def __init__(self, interval_ps: int, burst: int = 8,
                 spacing_ps: int = 100) -> None:
        self.interval_ps = _positive_interval(interval_ps)
        if burst < 1:
            raise ValueError("mean burst size must be >= 1")
        if spacing_ps < 1:
            raise ValueError("intra-burst spacing must be >= 1 ps")
        self.burst = burst
        self.spacing_ps = spacing_ps
        self._remaining: Dict[int, int] = {}

    def next_fire_ps(self, host: int, now_ps: int,
                     rng: random.Random) -> Optional[int]:
        remaining = self._remaining.get(host, 0)
        if remaining > 0:
            self._remaining[host] = remaining - 1
            return now_ps + self.spacing_ps
        drawn = 1 + _geometric(self.burst - 1, rng)
        self._remaining[host] = drawn - 1
        mean_gap = max(1, drawn * self.interval_ps
                       - (drawn - 1) * self.spacing_ps)
        return now_ps + max(1, round(rng.expovariate(1.0 / mean_gap)))


class AdversarialArrivals(ArrivalProcess):
    """(r, b)-adversarial injection: aligned periodic token dumps.

    Every host banks ``burst`` tokens over ``burst * interval`` and
    releases them in one volley at ``spacing_ps`` apart; all hosts'
    volleys are phase-aligned (the adversary coordinates).  Over any
    window [s, t] each host injects at most ``r (t - s) + burst``
    messages where r is the configured mean rate -- the canonical
    (r, b) constraint -- while the instantaneous offered load at each
    volley boundary is the worst the constraint allows.  A routing /
    scheduling discipline is *stable* against this adversary iff the
    backlog stays bounded whenever r is below saturation.
    """

    name = "adversarial"

    def __init__(self, interval_ps: int, burst: int = 16,
                 spacing_ps: int = 100) -> None:
        self.interval_ps = _positive_interval(interval_ps)
        if burst < 1:
            raise ValueError("adversary burst must be >= 1")
        if spacing_ps < 1:
            raise ValueError("intra-volley spacing must be >= 1 ps")
        if (burst - 1) * spacing_ps >= burst * interval_ps:
            raise ValueError(
                f"volley of {burst} at {spacing_ps} ps spacing does not "
                f"fit one {burst}x{interval_ps} ps cycle: the adversary "
                f"would exceed rate r")
        self.burst = burst
        self.spacing_ps = spacing_ps
        self._remaining: Dict[int, int] = {}

    def next_fire_ps(self, host: int, now_ps: int,
                     rng: random.Random) -> Optional[int]:
        remaining = self._remaining.get(host)
        if remaining is None:
            # first volley fires immediately and phase-aligned on every
            # host: the adversary's synchronised opening burst
            self._remaining[host] = self.burst - 1
            return now_ps
        if remaining > 0:
            self._remaining[host] = remaining - 1
            return now_ps + self.spacing_ps
        self._remaining[host] = self.burst - 1
        # wait out the rest of the cycle so the long-run rate is exactly r
        return now_ps + (self.burst * self.interval_ps
                         - (self.burst - 1) * self.spacing_ps)


def _geometric(mean: float, rng: random.Random) -> int:
    """Geometric draw on {0, 1, 2, ...} with the given mean (0 -> 0)."""
    if mean <= 0:
        return 0
    # success probability p gives mean (1-p)/p on {0, 1, ...};
    # inverse-CDF sampling: floor(ln(1-u) / ln(1-p))
    p = 1.0 / (1.0 + mean)
    u = rng.random()
    return min(int(math.log1p(-u) / math.log1p(-p)), 1_000_000)


def _register() -> None:
    from .registry import ArrivalSpec, Kwarg, register_arrival

    register_arrival(ArrivalSpec(
        name="constant",
        description="fixed inter-message spacing, random initial phase "
                    "(the paper's load model)",
        build=ConstantArrivals,
    ))
    register_arrival(ArrivalSpec(
        name="poisson",
        description="memoryless exponential gaps at the configured "
                    "mean rate",
        build=PoissonArrivals,
    ))
    register_arrival(ArrivalSpec(
        name="onoff",
        description="bursty ON/OFF source: geometric trains at peak "
                    "rate separated by exponential silences",
        build=OnOffArrivals,
        kwargs=(Kwarg("duty", float, 0.25,
                      "fraction of time the source is ON, in (0, 1]"),
                Kwarg("burst", int, 8, "mean messages per ON train")),
        label=lambda kw: (f"onoff(d={kw.get('duty', 0.25)},"
                          f"b={kw.get('burst', 8)})"),
    ))
    register_arrival(ArrivalSpec(
        name="pareto-onoff",
        description="self-similar ON/OFF source: geometric trains at "
                    "peak rate separated by Pareto (heavy-tailed) "
                    "silences",
        build=ParetoOnOffArrivals,
        kwargs=(Kwarg("duty", float, 0.25,
                      "fraction of time the source is ON, in (0, 1]"),
                Kwarg("burst", int, 8, "mean messages per ON train"),
                Kwarg("alpha", float, 1.5,
                      "Pareto tail shape in (1, 2]; lower = heavier "
                      "tail")),
        label=lambda kw: (f"pareto(d={kw.get('duty', 0.25)},"
                          f"b={kw.get('burst', 8)},"
                          f"a={kw.get('alpha', 1.5)})"),
    ))
    register_arrival(ArrivalSpec(
        name="burst",
        description="compound-Poisson bursts: burst events arrive "
                    "Poisson, each a geometric clump of messages",
        build=PoissonBurstArrivals,
        kwargs=(Kwarg("burst", int, 8, "mean messages per burst"),
                Kwarg("spacing_ps", int, 100,
                      "intra-burst spacing in picoseconds")),
        label=lambda kw: f"burst(b={kw.get('burst', 8)})",
    ))
    register_arrival(ArrivalSpec(
        name="adversarial",
        description="(r, b)-adversary: phase-aligned periodic volleys "
                    "of b messages at long-run rate r",
        build=AdversarialArrivals,
        kwargs=(Kwarg("burst", int, 16, "volley size b (tokens)"),
                Kwarg("spacing_ps", int, 100,
                      "intra-volley spacing in picoseconds")),
        label=lambda kw: f"adv(b={kw.get('burst', 16)})",
    ))


_register()

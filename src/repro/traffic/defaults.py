"""Registry-wide default workload names.

Kept in a dependency-free module so :mod:`repro.config` can name the
default pattern/arrival without importing the full traffic package
(which imports the simulation core, which imports the config).
"""

DEFAULT_PATTERN = "uniform"
DEFAULT_ARRIVAL = "constant"

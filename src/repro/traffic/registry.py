"""Traffic registry: patterns and arrival processes selected by name.

Mirrors :mod:`repro.routing.schemes`: every destination pattern and
every arrival process registers itself under a short name together with
a **capability declaration** -- which graphs it supports (power-of-two
host counts for bit-reversal, grid geometry where it matters), which
keyword arguments it takes (name, type, default, help), and a
kwargs-aware display label -- and everything outside
:mod:`repro.traffic` (config validation, the CLI, the experiment
runner, the tournament) dispatches through this registry instead of
hard-coding pattern names or per-pattern kwarg plumbing.  Registering
a new workload is one call::

    from repro.traffic.registry import (Kwarg, PatternSpec,
                                        register_pattern)

    register_pattern(PatternSpec(
        name="zipf",
        description="Zipf-popularity destinations",
        build=ZipfTraffic,                  # (graph, **kwargs)
        kwargs=(Kwarg("alpha", float, 1.1, "skew exponent"),),
        supports=lambda g: g.num_hosts >= 2,
    ))

after which ``SimConfig(traffic="zipf")``, ``repro run --traffic zipf
--traffic-arg alpha=1.3``, ``repro traffic`` and the tournament all
pick it up with **zero** CLI or config edits.

Workload specs
--------------

A *workload* is a ``(pattern, arrival)`` pair.  Composite names of the
form ``"<pattern>+<arrival>"`` (e.g. ``"uniform+onoff"``) name both
axes at once; a bare pattern name implies the default constant-rate
arrivals.  :func:`parse_workload` splits such specs and
:func:`make_workload` builds the live pair.  Patterns that carry their
own timing (trace replay) declare ``provides_arrivals=True`` and must
be paired with the default arrival name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

from ..topology.graph import NetworkGraph
from .base import ArrivalProcess, TrafficPattern
from .defaults import DEFAULT_ARRIVAL, DEFAULT_PATTERN

#: sentinel default for kwargs a caller must supply
REQUIRED = object()


@dataclass(frozen=True)
class Kwarg:
    """One declared keyword argument of a pattern or arrival process."""

    name: str
    #: value type: int, float, str or bool (int does not accept bool)
    type: type
    #: default value, or :data:`REQUIRED` when the caller must supply it
    default: Any = REQUIRED
    help: str = ""

    @property
    def required(self) -> bool:
        return self.default is REQUIRED

    def check(self, value: Any) -> None:
        """Raise :class:`ValueError` unless ``value`` fits the type."""
        ok = (isinstance(value, self.type)
              and not (self.type is not bool and isinstance(value, bool)))
        if self.type is float and isinstance(value, int) \
                and not isinstance(value, bool):
            ok = True
        if not ok:
            raise ValueError(
                f"traffic kwarg {self.name!r} wants {self.type.__name__}, "
                f"got {type(value).__name__} ({value!r})")

    def parse(self, text: str) -> Any:
        """Typed value from a CLI ``key=value`` string."""
        if self.type is bool:
            low = text.strip().lower()
            if low in ("1", "true", "yes", "on"):
                return True
            if low in ("0", "false", "no", "off"):
                return False
            raise ValueError(f"kwarg {self.name!r}: not a boolean: {text!r}")
        try:
            return self.type(text)
        except ValueError:
            raise ValueError(
                f"kwarg {self.name!r}: not a valid "
                f"{self.type.__name__}: {text!r}") from None


def _default_label(name: str, kwargs: Mapping[str, Any]) -> str:
    if not kwargs:
        return name
    inner = ",".join(f"{k}={kwargs[k]}" for k in sorted(kwargs))
    return f"{name}({inner})"


@dataclass(frozen=True)
class PatternSpec:
    """One registered destination pattern and its capability declaration."""

    name: str
    #: one-line description (shown by ``repro traffic`` / docs)
    description: str
    #: builder: ``build(graph, **kwargs) -> TrafficPattern``
    build: Callable[..., TrafficPattern]
    #: declared keyword arguments (everything else is rejected)
    kwargs: Tuple[Kwarg, ...] = ()
    #: graph predicate: is the pattern defined on this network at all?
    supports: Callable[[NetworkGraph], bool] = field(default=lambda g: True)
    #: human-readable supported-topology note for docs/errors
    topology_note: str = "any network with >= 2 hosts"
    #: display label as a function of the resolved kwargs
    label: Optional[Callable[[Mapping[str, Any]], str]] = None
    #: True when the pattern carries its own message timing (trace
    #: replay) and must not be composed with a real arrival process
    provides_arrivals: bool = False

    def label_for(self, kwargs: Mapping[str, Any]) -> str:
        if self.label is not None:
            return self.label(kwargs)
        return _default_label(self.name, kwargs)


@dataclass(frozen=True)
class ArrivalSpec:
    """One registered arrival process and its declared kwargs."""

    name: str
    description: str
    #: builder: ``build(interval_ps, **kwargs) -> ArrivalProcess``
    build: Callable[..., ArrivalProcess]
    kwargs: Tuple[Kwarg, ...] = ()
    label: Optional[Callable[[Mapping[str, Any]], str]] = None

    def label_for(self, kwargs: Mapping[str, Any]) -> str:
        if self.label is not None:
            return self.label(kwargs)
        return _default_label(self.name, kwargs)


_PATTERNS: Dict[str, PatternSpec] = {}
_ARRIVALS: Dict[str, ArrivalSpec] = {}


def register_pattern(spec: PatternSpec) -> PatternSpec:
    """Register ``spec``; rejects duplicate names."""
    if spec.name in _PATTERNS:
        raise ValueError(f"traffic pattern {spec.name!r} is already "
                         "registered")
    _PATTERNS[spec.name] = spec
    return spec


def register_arrival(spec: ArrivalSpec) -> ArrivalSpec:
    """Register ``spec``; rejects duplicate names."""
    if spec.name in _ARRIVALS:
        raise ValueError(f"arrival process {spec.name!r} is already "
                         "registered")
    _ARRIVALS[spec.name] = spec
    return spec


def unregister_pattern(name: str) -> None:
    """Remove a registered pattern (tests register throwaway ones)."""
    _PATTERNS.pop(name, None)


def unregister_arrival(name: str) -> None:
    """Remove a registered arrival process."""
    _ARRIVALS.pop(name, None)


def available_patterns() -> Tuple[str, ...]:
    """Registered destination-pattern names, sorted."""
    return tuple(sorted(_PATTERNS))


def available_arrivals() -> Tuple[str, ...]:
    """Registered arrival-process names, sorted."""
    return tuple(sorted(_ARRIVALS))


def get_pattern_spec(name: str) -> PatternSpec:
    try:
        return _PATTERNS[name]
    except KeyError:
        raise ValueError(
            f"unknown traffic pattern {name!r}; available: "
            f"{', '.join(available_patterns()) or 'none'}") from None


def get_arrival_spec(name: str) -> ArrivalSpec:
    try:
        return _ARRIVALS[name]
    except KeyError:
        raise ValueError(
            f"unknown arrival process {name!r}; available: "
            f"{', '.join(available_arrivals()) or 'none'}") from None


def supported_patterns(g: NetworkGraph) -> Tuple[str, ...]:
    """Names of every registered pattern defined on ``g``, sorted."""
    return tuple(name for name in available_patterns()
                 if _PATTERNS[name].supports(g))


def describe_patterns() -> Sequence[Tuple[str, PatternSpec]]:
    """(name, spec) pairs, sorted -- for CLI/doc rendering."""
    return [(name, _PATTERNS[name]) for name in available_patterns()]


def describe_arrivals() -> Sequence[Tuple[str, ArrivalSpec]]:
    """(name, spec) pairs, sorted -- for CLI/doc rendering."""
    return [(name, _ARRIVALS[name]) for name in available_arrivals()]


# -- kwargs validation -------------------------------------------------------


def _check_kwargs(kind: str, name: str, declared: Tuple[Kwarg, ...],
                  kwargs: Mapping[str, Any]) -> None:
    by_name = {k.name: k for k in declared}
    unknown = set(kwargs) - set(by_name)
    if unknown:
        raise ValueError(
            f"{kind} {name!r} got unknown kwargs {sorted(unknown)}; "
            f"declared: {sorted(by_name) or 'none'}")
    for k in declared:
        if k.name in kwargs:
            k.check(kwargs[k.name])
        elif k.required:
            raise ValueError(
                f"{kind} {name!r} requires kwarg {k.name!r} ({k.help})")


def validate_workload(traffic: str, traffic_kwargs: Mapping[str, Any],
                      arrival: str = DEFAULT_ARRIVAL,
                      arrival_kwargs: Mapping[str, Any] = ()) -> None:
    """Graph-free validation of a workload description.

    Checks both names are registered, every kwarg is declared with the
    right type, required kwargs are present, and self-timed patterns
    are not composed with a real arrival process.  This is what
    :meth:`repro.config.SimConfig.validate` calls -- adding a pattern
    or process needs no config edits.
    """
    pspec = get_pattern_spec(traffic)
    aspec = get_arrival_spec(arrival)
    _check_kwargs("traffic pattern", traffic, pspec.kwargs,
                  dict(traffic_kwargs))
    _check_kwargs("arrival process", arrival, aspec.kwargs,
                  dict(arrival_kwargs or {}))
    if pspec.provides_arrivals and arrival != DEFAULT_ARRIVAL:
        raise ValueError(
            f"pattern {traffic!r} carries its own message timing and "
            f"cannot be composed with arrival process {arrival!r}")


# -- construction ------------------------------------------------------------


def make_pattern(name: str, graph: NetworkGraph,
                 **kwargs: Any) -> TrafficPattern:
    """Instantiate a registered destination pattern by config name.

    Validates the kwargs against the declaration and the graph against
    the capability predicate before construction, so errors name the
    declared contract rather than surfacing as ``TypeError`` deep in a
    builder.
    """
    spec = get_pattern_spec(name)
    _check_kwargs("traffic pattern", name, spec.kwargs, kwargs)
    if not spec.supports(graph):
        raise ValueError(
            f"traffic pattern {name!r} is not defined on topology "
            f"{graph.name!r} (requires: {spec.topology_note})")
    return spec.build(graph, **kwargs)


def make_arrival(name: str, interval_ps: int,
                 **kwargs: Any) -> ArrivalProcess:
    """Instantiate a registered arrival process by config name."""
    spec = get_arrival_spec(name)
    _check_kwargs("arrival process", name, spec.kwargs, kwargs)
    return spec.build(interval_ps, **kwargs)


def make_workload(graph: NetworkGraph, traffic: str,
                  traffic_kwargs: Mapping[str, Any],
                  arrival: str, arrival_kwargs: Mapping[str, Any],
                  interval_ps: int
                  ) -> Tuple[TrafficPattern, ArrivalProcess]:
    """Build the live (pattern, arrival process) pair of one run.

    Self-timed patterns (``provides_arrivals``) must implement
    :class:`~repro.traffic.base.ArrivalProcess` themselves and are
    returned as both halves of the pair.
    """
    validate_workload(traffic, traffic_kwargs, arrival, arrival_kwargs)
    pattern = make_pattern(traffic, graph, **dict(traffic_kwargs))
    if get_pattern_spec(traffic).provides_arrivals:
        if not isinstance(pattern, ArrivalProcess):
            raise TypeError(
                f"pattern {traffic!r} declares provides_arrivals but "
                f"does not implement ArrivalProcess")
        return pattern, pattern
    return pattern, make_arrival(arrival, interval_ps,
                                 **dict(arrival_kwargs or {}))


# -- workload specs and labels -----------------------------------------------


def parse_workload(spec: str) -> Tuple[str, str]:
    """Split a workload spec into (pattern, arrival) names.

    ``"uniform"`` -> ``("uniform", DEFAULT_ARRIVAL)``;
    ``"uniform+onoff"`` -> ``("uniform", "onoff")``.  Both halves are
    checked against the registries.
    """
    if "+" in spec:
        traffic, _, arrival = spec.partition("+")
    else:
        traffic, arrival = spec, DEFAULT_ARRIVAL
    get_pattern_spec(traffic)
    get_arrival_spec(arrival)
    return traffic, arrival


def parse_cli_kwargs(kind: str, name: str, declared: Tuple[Kwarg, ...],
                     pairs: Sequence[str]) -> Dict[str, Any]:
    """Typed kwargs from CLI ``key=value`` strings against a declaration."""
    by_name = {k.name: k for k in declared}
    out: Dict[str, Any] = {}
    for pair in pairs:
        key, sep, text = pair.partition("=")
        if not sep:
            raise ValueError(
                f"{kind} argument {pair!r} is not of the form key=value")
        if key not in by_name:
            raise ValueError(
                f"{kind} {name!r} declares no kwarg {key!r}; "
                f"declared: {sorted(by_name) or 'none'}")
        out[key] = by_name[key].parse(text)
    return out


def pattern_cli_kwargs(name: str, pairs: Sequence[str]) -> Dict[str, Any]:
    """Typed traffic kwargs from repeated ``--traffic-arg key=value``."""
    return parse_cli_kwargs("traffic pattern", name,
                            get_pattern_spec(name).kwargs, pairs)


def arrival_cli_kwargs(name: str, pairs: Sequence[str]) -> Dict[str, Any]:
    """Typed arrival kwargs from repeated ``--arrival-arg key=value``."""
    return parse_cli_kwargs("arrival process", name,
                            get_arrival_spec(name).kwargs, pairs)


def workload_label(traffic: str, traffic_kwargs: Mapping[str, Any] = (),
                   arrival: str = DEFAULT_ARRIVAL,
                   arrival_kwargs: Mapping[str, Any] = ()) -> str:
    """Human-readable label of a workload, e.g. ``hotspot(...)+onoff``."""
    label = get_pattern_spec(traffic).label_for(dict(traffic_kwargs or {}))
    if arrival != DEFAULT_ARRIVAL:
        label += "+" + get_arrival_spec(arrival).label_for(
            dict(arrival_kwargs or {}))
    return label


def power_of_two_hosts(g: NetworkGraph) -> bool:
    """Shared capability predicate: >= 2 hosts, count a power of two."""
    n = g.num_hosts
    return n >= 2 and n & (n - 1) == 0

"""Local traffic: destinations close to the source (Section 4.2/4.7.4).

"Message destinations are, at most, 3 switches away from the source
host, and are randomly computed."  We interpret "k switches away" as a
switch-graph hop distance of at most ``radius`` between the source's
and the destination's switches (hosts on the source's own switch are
distance 0 and included), matching the remark that up*/down* "is always
able to use a minimal path when the destination is ... connected to the
same switch".  The paper also studies a 4-switch radius; ``radius`` is
a parameter.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..topology.graph import NetworkGraph
from .base import TrafficPattern


class LocalTraffic(TrafficPattern):
    """Uniform among hosts whose switch is within ``radius`` hops."""

    name = "local"

    def __init__(self, graph: NetworkGraph, radius: int = 3) -> None:
        super().__init__(graph)
        if radius < 0:
            raise ValueError("radius must be >= 0")
        self.radius = radius
        # candidate destination hosts per *switch* (hosts of one switch
        # share the neighbourhood); the source host is excluded at
        # sampling time
        self._candidates: List[List[int]] = []
        for s in graph.switches():
            dist = graph.shortest_distances(s)
            hosts = [h.id for h in graph.hosts if dist[h.switch] <= radius]
            self._candidates.append(hosts)
        if any(len(c) < 2 for c in self._candidates):
            raise ValueError(
                f"radius {radius} leaves some switch with no destination")

    def destination(self, src_host: int, rng: random.Random) -> Optional[int]:
        cands = self._candidates[self.graph.host_switch(src_host)]
        # src_host is always in its own switch's candidate list; skip it
        d = cands[rng.randrange(len(cands))]
        while d == src_host:
            d = cands[rng.randrange(len(cands))]
        return d


def _register() -> None:
    from .registry import Kwarg, PatternSpec, register_pattern

    register_pattern(PatternSpec(
        name="local",
        description="uniform among hosts at most `radius` switches "
                    "away (Section 4.7.4)",
        build=LocalTraffic,
        kwargs=(Kwarg("radius", int, 3, "switch-hop radius"),),
        supports=lambda g: g.num_hosts >= 2,
        label=lambda kw: f"local(r={kw.get('radius', 3)})",
    ))


_register()

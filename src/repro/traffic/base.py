"""Traffic fabric core: destination patterns, arrival processes, driver.

The workload of one run is the composition of two orthogonal
abstractions:

* a :class:`TrafficPattern` (*destination pattern*) answers **where**
  each message goes -- uniform, bit-reversal, hotspot, collectives ...;
* an :class:`ArrivalProcess` answers **when** each host's next message
  fires -- constant spacing (the paper's load model), Poisson,
  bursty ON/OFF, an (r, b)-adversary, or a replayed trace.

Any pattern composes with any arrival process;
:class:`TrafficProcess` drives the pair on the simulator.  Both sides
register in :mod:`repro.traffic.registry` with capability
declarations, so everything outside :mod:`repro.traffic` dispatches by
name.

The paper's load model: "message generation rate is constant and the
same for all the hosts".  Offered load is expressed in the unit of the
plots, **flits/ns/switch**; with ``H`` hosts, ``S`` switches and
``L``-flit messages each host emits one message every

    interval = L * H / (rate * S)   nanoseconds

on average -- arrival processes redistribute those firings in time but
preserve the long-run mean rate, so offered-load comparisons across
arrival models are like for like.

RNG discipline
--------------

Each host draws destinations from its own stream seeded by
``(seed, host)`` and arrival timing from a **separate** stream seeded
by ``(seed, "arrival", host)``.  Timing draws therefore never perturb
destination draws: two runs of the same seed at different injection
rates (or under different arrival processes) see identical per-host
destination sequences, which is what makes paired comparisons across
rates meaningful.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Optional

from ..topology.graph import NetworkGraph
from ..units import PS_PER_NS

if TYPE_CHECKING:  # imported for annotations only: the traffic layer
    # is sim-core independent (it only calls network.send / sim.at)
    from ..sim.base import NetworkModel
    from ..sim.engine import Simulator


class TrafficPattern(ABC):
    """Destination distribution for one network (the *where* axis)."""

    name: str = "abstract"

    def __init__(self, graph: NetworkGraph) -> None:
        self.graph = graph

    @abstractmethod
    def destination(self, src_host: int,
                    rng: random.Random) -> Optional[int]:
        """Destination host for the next message of ``src_host``.

        ``None`` means the host generates no traffic under this pattern
        (e.g. fixed permutations that map a host to itself).
        """

    def active_hosts(self) -> list[int]:
        """Hosts that generate traffic (default: all of them).

        Patterns that silence some hosts (see :meth:`destination`
        returning ``None``) may override this so the generation process
        can skip them entirely.
        """
        return [h.id for h in self.graph.hosts]


#: alias making call sites that deal with both axes self-documenting
DestinationPattern = TrafficPattern


class ArrivalProcess(ABC):
    """Per-host message timing for one run (the *when* axis).

    Implementations may keep per-host state (burst counters, trace
    cursors); a process instance belongs to exactly one
    :class:`TrafficProcess` and is never reused across runs.  All
    randomness must come from the ``rng`` argument -- the driver hands
    every host its own deterministic arrival stream, disjoint from its
    destination stream.
    """

    name: str = "abstract"

    @abstractmethod
    def next_fire_ps(self, host: int, now_ps: int,
                     rng: random.Random) -> Optional[int]:
        """Absolute sim time (>= ``now_ps``) of ``host``'s next message.

        The first call per host is made at traffic start (it sets the
        host's initial phase); each later call is made at the moment
        the previous message fired.  ``None`` means the host emits no
        further messages (finite schedules, e.g. trace replay).
        """


def per_host_interval_ps(rate_flits_ns_switch: float, message_bytes: int,
                         graph: NetworkGraph) -> int:
    """Mean inter-message interval per host for a per-switch offered load.

    One flit is one byte, so a message is ``message_bytes`` flits of
    offered payload (header overhead is not counted as offered load,
    matching the paper's accepted-traffic metric).
    """
    if rate_flits_ns_switch <= 0:
        raise ValueError("rate must be positive")
    rate_per_host_flits_ns = (rate_flits_ns_switch * graph.num_switches
                              / graph.num_hosts)
    interval_ns = message_bytes / rate_per_host_flits_ns
    return max(1, round(interval_ns * PS_PER_NS))


class TrafficProcess:
    """Drives one (pattern, arrival process) pair for every active host.

    Depends only on the abstract :class:`~repro.sim.base.NetworkModel`
    interface (it just calls ``send``), so it works unchanged with any
    registered engine.

    ``arrivals`` may be an :class:`ArrivalProcess` or a plain ``int``
    interval in picoseconds, which is wrapped in the constant-rate
    process (the paper's load model and the historical signature).
    """

    def __init__(self, sim: Simulator, network: NetworkModel,
                 pattern: TrafficPattern, arrivals, seed: int,
                 max_messages: int = 0) -> None:
        if isinstance(arrivals, int):
            from .arrivals import ConstantArrivals
            arrivals = ConstantArrivals(arrivals)
        if not isinstance(arrivals, ArrivalProcess):
            raise TypeError(
                f"arrivals must be an ArrivalProcess or an int interval, "
                f"got {type(arrivals).__name__}")
        self.sim = sim
        self.network = network
        self.pattern = pattern
        self.arrivals = arrivals
        self.seed = seed
        self.max_messages = max_messages
        self.generated = 0
        self._started = False
        self._stopped = False

    def start(self) -> None:
        """Schedule the first message of every active host."""
        if self._started:
            raise RuntimeError("traffic process already started")
        self._started = True
        for host in self.pattern.active_hosts():
            dest_rng = random.Random(f"{self.seed}:{host}")
            arr_rng = random.Random(f"{self.seed}:arrival:{host}")
            t = self.arrivals.next_fire_ps(host, self.sim.now, arr_rng)
            if t is not None:
                self.sim.at(max(t, self.sim.now), self._tick,
                            host, dest_rng, arr_rng)

    def stop(self) -> None:
        """Cease generation; in-flight messages drain normally."""
        self._stopped = True

    def pregenerate(self, t_end_ps: int) -> list:
        """The full ``(t_ps, src, dst)`` schedule up to ``t_end_ps``,
        without scheduling anything on the simulator.

        Produces exactly the message set the event-driven path
        (:meth:`start` + ``_tick``) would generate: each host's
        destination and arrival streams are seeded identically and
        consumed in the same order, and both streams are independent of
        simulator state, so replaying them off-line is equivalent.  The
        result is sorted by ``(t, src)``; batch engines
        (:data:`~repro.sim.base.CAP_BATCH_INJECT`) consume it through
        ``network.prime_schedule``.

        ``max_messages`` caps generation *globally* in the event-driven
        path (the count depends on cross-host delivery interleaving),
        which an off-line replay cannot reproduce -- callers must fall
        back to :meth:`start` in that case.
        """
        if self._started:
            raise RuntimeError("traffic process already started")
        if self.max_messages:
            raise RuntimeError(
                "pregenerate() cannot honour a global max_messages cap; "
                "use start()")
        self._started = True
        now0 = self.sim.now
        seed = self.seed
        destination = self.pattern.destination
        next_fire = self.arrivals.next_fire_ps
        out = []
        append = out.append
        for host in self.pattern.active_hosts():
            dest_rng = random.Random(f"{seed}:{host}")
            arr_rng = random.Random(f"{seed}:arrival:{host}")
            t = next_fire(host, now0, arr_rng)
            if t is None:
                continue
            cur = max(t, now0)
            while cur <= t_end_ps:
                dst = destination(host, dest_rng)
                if dst is not None and dst != host:
                    append((cur, host, dst))
                t = next_fire(host, cur, arr_rng)
                if t is None:
                    break
                cur = max(t, cur)
        out.sort()
        self.generated = len(out)
        return out

    def adopt_schedule(self, schedule: list) -> None:
        """Account for a schedule this process *would* have produced.

        Deterministic workloads are pure functions of their
        configuration, so the runner memoises :meth:`pregenerate`
        results across runs sharing a seed (paired policy comparisons,
        benchmark repeats).  On a cache hit it calls this instead: the
        process marks itself started -- the schedule's RNG draws are
        morally consumed -- and reports the schedule's size as its
        generation count, exactly as the fresh call would have.
        """
        if self._started:
            raise RuntimeError("traffic process already started")
        if self.max_messages:
            raise RuntimeError(
                "adopt_schedule() cannot honour a global max_messages cap")
        self._started = True
        self.generated = len(schedule)

    def _tick(self, host: int, dest_rng: random.Random,
              arr_rng: random.Random) -> None:
        if self._stopped:
            return
        if self.max_messages and self.generated >= self.max_messages:
            return
        dst = self.pattern.destination(host, dest_rng)
        if dst is not None and dst != host:
            self.network.send(host, dst)
            self.generated += 1
        t = self.arrivals.next_fire_ps(host, self.sim.now, arr_rng)
        if t is not None:
            self.sim.at(max(t, self.sim.now), self._tick,
                        host, dest_rng, arr_rng)

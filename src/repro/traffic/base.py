"""Traffic pattern interface and the constant-rate generation process.

The paper's load model: "message generation rate is constant and the
same for all the hosts".  Offered load is expressed in the unit of the
plots, **flits/ns/switch**; with ``H`` hosts, ``S`` switches and
``L``-flit messages each host emits one message every

    interval = L * H / (rate * S)   nanoseconds.

Hosts start with independent random phases so the network is not hit by
a synchronised burst every interval.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Optional

from ..sim.base import NetworkModel
from ..sim.engine import Simulator
from ..topology.graph import NetworkGraph
from ..units import PS_PER_NS


class TrafficPattern(ABC):
    """Destination distribution for one network."""

    name: str = "abstract"

    def __init__(self, graph: NetworkGraph) -> None:
        self.graph = graph

    @abstractmethod
    def destination(self, src_host: int,
                    rng: random.Random) -> Optional[int]:
        """Destination host for the next message of ``src_host``.

        ``None`` means the host generates no traffic under this pattern
        (e.g. fixed permutations that map a host to itself).
        """

    def active_hosts(self) -> list[int]:
        """Hosts that generate traffic (default: all of them).

        Patterns that silence some hosts (see :meth:`destination`
        returning ``None``) may override this so the generation process
        can skip them entirely.
        """
        return [h.id for h in self.graph.hosts]


def per_host_interval_ps(rate_flits_ns_switch: float, message_bytes: int,
                         graph: NetworkGraph) -> int:
    """Inter-message interval per host for a given per-switch offered load.

    One flit is one byte, so a message is ``message_bytes`` flits of
    offered payload (header overhead is not counted as offered load,
    matching the paper's accepted-traffic metric).
    """
    if rate_flits_ns_switch <= 0:
        raise ValueError("rate must be positive")
    rate_per_host_flits_ns = (rate_flits_ns_switch * graph.num_switches
                              / graph.num_hosts)
    interval_ns = message_bytes / rate_per_host_flits_ns
    return max(1, round(interval_ns * PS_PER_NS))


class TrafficProcess:
    """Drives constant-rate generation for every active host.

    Depends only on the abstract :class:`~repro.sim.base.NetworkModel`
    interface (it just calls ``send``), so it works unchanged with any
    registered engine.

    Each host gets its own deterministic RNG stream (seeded from the run
    seed and the host id) for destination sampling and its initial
    phase, so runs are reproducible and adding hosts does not perturb
    other hosts' streams.
    """

    def __init__(self, sim: Simulator, network: NetworkModel,
                 pattern: TrafficPattern, interval_ps: int, seed: int,
                 max_messages: int = 0) -> None:
        if interval_ps <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.network = network
        self.pattern = pattern
        self.interval_ps = interval_ps
        self.seed = seed
        self.max_messages = max_messages
        self.generated = 0
        self._started = False
        self._stopped = False

    def start(self) -> None:
        """Schedule the first message of every active host."""
        if self._started:
            raise RuntimeError("traffic process already started")
        self._started = True
        for host in self.pattern.active_hosts():
            rng = random.Random(f"{self.seed}:{host}")
            phase = rng.randrange(self.interval_ps)
            self.sim.at(self.sim.now + phase,
                        self._make_tick(host, rng))

    def stop(self) -> None:
        """Cease generation; in-flight messages drain normally."""
        self._stopped = True

    def _make_tick(self, host: int, rng: random.Random):
        def tick() -> None:
            if self._stopped:
                return
            if self.max_messages and self.generated >= self.max_messages:
                return
            dst = self.pattern.destination(host, rng)
            if dst is not None and dst != host:
                self.network.send(host, dst)
                self.generated += 1
            self.sim.after(self.interval_ps, tick)
        return tick

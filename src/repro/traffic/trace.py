"""CSV trace replay: external workloads plugged into the simulator.

The schema is deliberately minimal -- one message per row::

    time_ns,src,dst
    0.0,3,12
    125.5,0,7

``time_ns`` is the injection time (fractional nanoseconds allowed),
``src``/``dst`` are host ids.  A header row is optional (any first row
whose time field does not parse as a number is skipped).  Rows are
replayed *exactly*: same hosts, same destinations, same times (scaled
by ``time_scale``), independent of the configured injection rate --
the trace **is** the workload, so :class:`TraceReplay` implements both
the destination-pattern and the arrival-process interface and
registers with ``provides_arrivals=True``.

Self-addressed rows (``src == dst``) are tolerated and skipped at
injection time, mirroring how every other pattern treats a
self-destination.
"""

from __future__ import annotations

import csv
import random
from typing import Dict, List, Optional, Tuple

from ..topology.graph import NetworkGraph
from ..units import PS_PER_NS
from .base import ArrivalProcess, TrafficPattern
from .registry import Kwarg, PatternSpec, register_pattern


def parse_trace_csv(path: str) -> List[Tuple[float, int, int]]:
    """Read and sanity-check (time_ns, src, dst) rows from ``path``."""
    rows: List[Tuple[float, int, int]] = []
    with open(path, newline="") as f:
        for lineno, row in enumerate(csv.reader(f), start=1):
            if not row or (len(row) == 1 and not row[0].strip()):
                continue
            if len(row) != 3:
                raise ValueError(
                    f"{path}:{lineno}: expected 3 fields "
                    f"(time_ns,src,dst), got {len(row)}")
            try:
                t = float(row[0])
            except ValueError:
                if lineno == 1:  # header row
                    continue
                raise ValueError(
                    f"{path}:{lineno}: bad time field {row[0]!r}") from None
            try:
                src, dst = int(row[1]), int(row[2])
            except ValueError:
                raise ValueError(
                    f"{path}:{lineno}: bad host id in {row[1:]!r}") from None
            if t < 0:
                raise ValueError(f"{path}:{lineno}: negative time {t}")
            rows.append((t, src, dst))
    if not rows:
        raise ValueError(f"trace {path} contains no messages")
    return rows


class TraceReplay(TrafficPattern, ArrivalProcess):
    """Replay a CSV trace: both *where* and *when* come from the file.

    Each host's rows are replayed in time order through two cursors --
    the arrival side consumes injection times, the destination side
    consumes the matching destinations -- which the
    :class:`~repro.traffic.base.TrafficProcess` driver advances in
    lockstep (one ``next_fire_ps`` per ``destination``).
    """

    name = "trace"

    def __init__(self, graph: NetworkGraph, path: str,
                 time_scale: float = 1.0) -> None:
        super().__init__(graph)
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.path = path
        self.time_scale = time_scale
        rows = parse_trace_csv(path)
        n = graph.num_hosts
        per_host: Dict[int, List[Tuple[int, int]]] = {}
        for t, src, dst in rows:
            if not (0 <= src < n and 0 <= dst < n):
                raise ValueError(
                    f"trace {path}: host pair ({src}, {dst}) out of "
                    f"range for {n} hosts")
            t_ps = max(0, round(t * time_scale * PS_PER_NS))
            per_host.setdefault(src, []).append((t_ps, dst))
        for events in per_host.values():
            events.sort(key=lambda e: e[0])
        self._events = per_host
        self._time_cursor: Dict[int, int] = {}
        self._dest_cursor: Dict[int, int] = {}
        #: total scheduled messages (self-addressed rows included)
        self.total_messages = len(rows)

    def active_hosts(self) -> list[int]:
        return sorted(self._events)

    def destination(self, src_host: int, rng: random.Random) -> Optional[int]:
        i = self._dest_cursor.get(src_host, 0)
        events = self._events.get(src_host, ())
        if i >= len(events):
            return None
        self._dest_cursor[src_host] = i + 1
        dst = events[i][1]
        return None if dst == src_host else dst

    def next_fire_ps(self, host: int, now_ps: int,
                     rng: random.Random) -> Optional[int]:
        i = self._time_cursor.get(host, 0)
        events = self._events.get(host, ())
        if i >= len(events):
            return None
        self._time_cursor[host] = i + 1
        return events[i][0]


register_pattern(PatternSpec(
    name="trace",
    description="CSV trace replay (time_ns,src,dst rows); the trace "
                "supplies both destinations and timing",
    build=TraceReplay,
    kwargs=(Kwarg("path", str, help="CSV file to replay"),
            Kwarg("time_scale", float, 1.0,
                  "multiply every trace time (2.0 = half the rate)")),
    label=lambda kw: f"trace:{kw.get('path', '?')}",
    provides_arrivals=True,
))

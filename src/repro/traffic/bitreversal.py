"""Bit-reversal permutation traffic.

"The destination of a message is computed by reversing the bits of the
source host identification number" -- a classic adversarial permutation
from parallel numerical algorithms (FFT-style data exchanges).  It
requires a power-of-two host count; hosts whose id is a palindrome map
to themselves and generate no traffic (32 of the 512 hosts on the
paper's 9-bit id space).
"""

from __future__ import annotations

import random
from typing import Optional

from ..topology.graph import NetworkGraph
from .base import TrafficPattern


def reverse_bits(value: int, width: int) -> int:
    """Reverse the ``width`` low bits of ``value``."""
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    out = 0
    for _ in range(width):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


class BitReversalTraffic(TrafficPattern):
    """Fixed permutation: ``dst = bit_reverse(src)``."""

    name = "bit-reversal"

    def __init__(self, graph: NetworkGraph) -> None:
        super().__init__(graph)
        n = graph.num_hosts
        if n < 2 or n & (n - 1):
            raise ValueError(
                f"bit-reversal needs a power-of-two host count, got {n}")
        self.width = n.bit_length() - 1
        self._dest = [reverse_bits(h, self.width) for h in range(n)]

    def destination(self, src_host: int, rng: random.Random) -> Optional[int]:
        dst = self._dest[src_host]
        return None if dst == src_host else dst

    def active_hosts(self) -> list[int]:
        return [h for h in range(self.graph.num_hosts)
                if self._dest[h] != h]


def _register() -> None:
    from .registry import PatternSpec, power_of_two_hosts, register_pattern

    register_pattern(PatternSpec(
        name="bit-reversal",
        description="fixed permutation dst = bit_reverse(src); "
                    "palindromic hosts stay silent",
        build=BitReversalTraffic,
        supports=power_of_two_hosts,
        topology_note="power-of-two host count",
    ))


_register()

"""Hotspot traffic: a share of all messages target one hot host.

"A percentage of traffic is sent to one host ... the rest of the
traffic is generated randomly using a uniform distribution."  The paper
runs 10 simulations with 10 randomly chosen hotspot locations and
reports the throughput of each (Tables 1--3); the experiment harness
draws those locations deterministically from the run seed.
"""

from __future__ import annotations

import random
from typing import Optional

from ..topology.graph import NetworkGraph
from .base import TrafficPattern


class HotspotTraffic(TrafficPattern):
    """With probability ``fraction``: the hotspot host; otherwise uniform."""

    name = "hotspot"

    def __init__(self, graph: NetworkGraph, hotspot: int = 0,
                 fraction: float = 0.05) -> None:
        super().__init__(graph)
        if not (0 <= hotspot < graph.num_hosts):
            raise ValueError(f"hotspot host {hotspot} out of range")
        if not (0.0 < fraction < 1.0):
            raise ValueError("hotspot fraction must be in (0, 1)")
        if graph.num_hosts < 2:
            raise ValueError("hotspot traffic needs at least two hosts")
        self.hotspot = hotspot
        self.fraction = fraction

    def destination(self, src_host: int, rng: random.Random) -> Optional[int]:
        if src_host != self.hotspot and rng.random() < self.fraction:
            return self.hotspot
        # uniform over everyone but the source (hot messages from the
        # hotspot host itself fall through to here as well)
        d = rng.randrange(self.graph.num_hosts - 1)
        return d + 1 if d >= src_host else d

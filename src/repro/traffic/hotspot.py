"""Hotspot traffic: a share of all messages target one hot host.

"A percentage of traffic is sent to one host ... the rest of the
traffic is generated randomly using a uniform distribution."  The paper
runs 10 simulations with 10 randomly chosen hotspot locations and
reports the throughput of each (Tables 1--3); the experiment harness
draws those locations deterministically from the run seed.
"""

from __future__ import annotations

import random
from typing import Optional

from ..topology.graph import NetworkGraph
from .base import TrafficPattern


class HotspotTraffic(TrafficPattern):
    """A ``fraction`` share of *all* traffic is directed at the hotspot.

    Only the ``H - 1`` non-hotspot hosts can direct traffic at the
    hotspot, so a naive per-source probability of ``fraction`` realizes
    a directed share of only ``fraction * (H - 1) / H`` of all traffic
    -- below the nominal paper percentage.  The per-source probability
    is therefore compensated to ``fraction * H / (H - 1)`` so the
    directed share across all sources equals ``fraction`` exactly.

    The hotspot additionally receives its uniform share of the
    remaining background traffic; :meth:`realized_hot_fraction` gives
    the exact total probability that a message lands on the hotspot.
    """

    name = "hotspot"

    def __init__(self, graph: NetworkGraph, hotspot: int = 0,
                 fraction: float = 0.05) -> None:
        super().__init__(graph)
        if not (0 <= hotspot < graph.num_hosts):
            raise ValueError(f"hotspot host {hotspot} out of range")
        if not (0.0 < fraction < 1.0):
            raise ValueError("hotspot fraction must be in (0, 1)")
        if graph.num_hosts < 2:
            raise ValueError("hotspot traffic needs at least two hosts")
        h = graph.num_hosts
        directed = fraction * h / (h - 1)
        if directed >= 1.0:
            raise ValueError(
                f"hotspot fraction {fraction} is not realizable with "
                f"{h} hosts (needs per-source probability {directed:.3f})")
        self.hotspot = hotspot
        self.fraction = fraction
        #: compensated per-source probability applied at each
        #: non-hotspot source
        self.directed_fraction = directed

    def realized_hot_fraction(self) -> float:
        """Exact P(destination == hotspot) over all generated traffic.

        The directed share contributes ``fraction``; the uniform
        remainder of every source (including the hotspot host itself,
        whose messages are all uniform) adds its ``1 / (H - 1)`` spill
        onto the hotspot.
        """
        h = self.graph.num_hosts
        return self.fraction + (1.0 - self.directed_fraction) / h

    def destination(self, src_host: int, rng: random.Random) -> Optional[int]:
        if src_host != self.hotspot and rng.random() < self.directed_fraction:
            return self.hotspot
        # uniform over everyone but the source (hot messages from the
        # hotspot host itself fall through to here as well)
        d = rng.randrange(self.graph.num_hosts - 1)
        return d + 1 if d >= src_host else d


def _register() -> None:
    from .registry import Kwarg, PatternSpec, register_pattern

    register_pattern(PatternSpec(
        name="hotspot",
        description="a fraction of all traffic targets one hot host, "
                    "the rest is uniform (Tables 1-3)",
        build=HotspotTraffic,
        kwargs=(Kwarg("hotspot", int, 0, "hotspot host id"),
                Kwarg("fraction", float, 0.05,
                      "directed share of all traffic, in (0, 1)")),
        supports=lambda g: g.num_hosts >= 2,
        label=lambda kw: (f"hotspot@{kw.get('hotspot', 0)}"
                          f"({kw.get('fraction', 0.05):.0%})"),
    ))


_register()

"""Traffic patterns and the constant-rate generation process (Section 4.2).

Every host generates fixed-size messages at the same constant rate; the
patterns differ only in how each message's destination is drawn:

* :class:`UniformTraffic` -- uniformly random destination;
* :class:`BitReversalTraffic` -- destination is the bit-reversed source
  id (requires a power-of-two host count);
* :class:`HotspotTraffic` -- a fixed percentage of messages target one
  hotspot host, the rest are uniform;
* :class:`LocalTraffic` -- destinations at most ``radius`` switches away;
* :mod:`permutation` -- extension patterns (transpose, complement).

:func:`make_pattern` builds a pattern from its config name, and
:class:`TrafficProcess` drives per-host generation on the simulator.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from ..topology.graph import NetworkGraph
from .base import TrafficPattern, TrafficProcess, per_host_interval_ps
from .uniform import UniformTraffic
from .bitreversal import BitReversalTraffic
from .hotspot import HotspotTraffic
from .local import LocalTraffic
from .permutation import ComplementTraffic, TransposeTraffic

PATTERNS: Dict[str, Callable[..., TrafficPattern]] = {
    "uniform": UniformTraffic,
    "bit-reversal": BitReversalTraffic,
    "hotspot": HotspotTraffic,
    "local": LocalTraffic,
    "transpose": TransposeTraffic,
    "complement": ComplementTraffic,
}


def make_pattern(name: str, graph: NetworkGraph,
                 **kwargs: Any) -> TrafficPattern:
    """Instantiate a registered traffic pattern by config name."""
    try:
        cls = PATTERNS[name]
    except KeyError:
        raise ValueError(
            f"unknown traffic pattern {name!r}; available: {sorted(PATTERNS)}"
        ) from None
    return cls(graph, **kwargs)


__all__ = [
    "TrafficPattern",
    "TrafficProcess",
    "per_host_interval_ps",
    "UniformTraffic",
    "BitReversalTraffic",
    "HotspotTraffic",
    "LocalTraffic",
    "TransposeTraffic",
    "ComplementTraffic",
    "make_pattern",
    "PATTERNS",
]

"""Traffic fabric: destination patterns x arrival processes.

Every workload is the composition of a **destination pattern** (where
messages go) and an **arrival process** (when they fire); any pattern
composes with any process, and both sides dispatch through the
capability-declaring registry in :mod:`repro.traffic.registry` -- the
traffic twin of :mod:`repro.routing.schemes`.

Destination patterns (Section 4.2 + extensions):

* ``uniform`` -- uniformly random destination;
* ``bit-reversal`` -- destination is the bit-reversed source id
  (power-of-two host counts);
* ``hotspot`` -- a fixed share of all messages target one host;
* ``local`` -- destinations at most ``radius`` switches away;
* ``transpose`` / ``complement`` -- companion permutations;
* ``all-to-all`` / ``allreduce`` / ``incast`` -- collective exchanges
  (:mod:`repro.traffic.collective`);
* ``trace`` -- CSV replay carrying its own timing
  (:mod:`repro.traffic.trace`).

Arrival processes (:mod:`repro.traffic.arrivals`): ``constant`` (the
paper's load model), ``poisson``, ``onoff``, ``burst`` and the
(r, b)-``adversarial`` injector.  All preserve the configured mean
rate.

:func:`make_pattern` / :func:`make_arrival` /
:func:`make_workload` build registered entries by config name, and
:class:`TrafficProcess` drives a workload on the simulator.
"""

from __future__ import annotations

from .base import (ArrivalProcess, DestinationPattern, TrafficPattern,
                   TrafficProcess, per_host_interval_ps)
from .registry import (DEFAULT_ARRIVAL, DEFAULT_PATTERN, ArrivalSpec, Kwarg,
                       PatternSpec, arrival_cli_kwargs, available_arrivals,
                       available_patterns, describe_arrivals,
                       describe_patterns, get_arrival_spec, get_pattern_spec,
                       make_arrival, make_pattern, make_workload,
                       parse_workload, pattern_cli_kwargs, register_arrival,
                       register_pattern, supported_patterns,
                       unregister_arrival, unregister_pattern,
                       validate_workload, workload_label)
from .arrivals import (AdversarialArrivals, ConstantArrivals, OnOffArrivals,
                       PoissonArrivals, PoissonBurstArrivals)
from .uniform import UniformTraffic
from .bitreversal import BitReversalTraffic
from .hotspot import HotspotTraffic
from .local import LocalTraffic
from .permutation import ComplementTraffic, TransposeTraffic
from .collective import AllReduceTraffic, AllToAllTraffic, IncastTraffic
from .trace import TraceReplay, parse_trace_csv

#: legacy view of the registry (pattern name -> builder); kept for
#: back-compat, new code should use the registry API
PATTERNS = {name: spec.build for name, spec in describe_patterns()}

__all__ = [
    "ArrivalProcess",
    "ArrivalSpec",
    "DestinationPattern",
    "TrafficPattern",
    "TrafficProcess",
    "Kwarg",
    "PatternSpec",
    "per_host_interval_ps",
    "DEFAULT_ARRIVAL",
    "DEFAULT_PATTERN",
    "available_arrivals",
    "available_patterns",
    "arrival_cli_kwargs",
    "pattern_cli_kwargs",
    "describe_arrivals",
    "describe_patterns",
    "get_arrival_spec",
    "get_pattern_spec",
    "make_arrival",
    "make_pattern",
    "make_workload",
    "parse_workload",
    "register_arrival",
    "register_pattern",
    "supported_patterns",
    "unregister_arrival",
    "unregister_pattern",
    "validate_workload",
    "workload_label",
    "UniformTraffic",
    "BitReversalTraffic",
    "HotspotTraffic",
    "LocalTraffic",
    "TransposeTraffic",
    "ComplementTraffic",
    "AllToAllTraffic",
    "AllReduceTraffic",
    "IncastTraffic",
    "TraceReplay",
    "parse_trace_csv",
    "ConstantArrivals",
    "PoissonArrivals",
    "OnOffArrivals",
    "PoissonBurstArrivals",
    "AdversarialArrivals",
    "PATTERNS",
]

"""Collective destination patterns: what CPLANT-class clusters run.

Synthetic random patterns miss the structured exchanges of real
parallel applications.  Three standard collectives, modelled as
stationary destination patterns (each host keeps emitting the
destination sequence the collective's steady state would produce):

* :class:`AllToAllTraffic` -- personalised all-to-all exchange: every
  host cycles deterministically through all other hosts, offset by its
  own id so no destination is hit by every source at once;
* :class:`AllReduceTraffic` -- ``mode="ring"`` sends every chunk to the
  ring successor (the bandwidth-optimal allreduce); ``mode="tree"``
  alternates the up-tree reduce and down-tree broadcast edges of a
  binary host tree;
* :class:`IncastTraffic` -- many-to-one: every host targets one sink
  (the classic storage/parameter-server incast stressor; the paper's
  hotspot pattern blends this with uniform background, incast is the
  pure case).

All three register in :mod:`repro.traffic.registry`, join the
tournament matrix and compose with any arrival process.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..topology.graph import NetworkGraph
from .base import TrafficPattern
from .registry import Kwarg, PatternSpec, register_pattern


class AllToAllTraffic(TrafficPattern):
    """Personalised all-to-all: each host cycles through all others.

    Host ``s`` sends to ``s+1, s+2, ..., s-1`` (mod H) and wraps --
    a deterministic round of the full exchange, self-skipped.  The
    offset start means step ``k`` of the round is a permutation (every
    destination receives from exactly one source), matching the
    schedule of a well-implemented MPI_Alltoall.
    """

    name = "all-to-all"

    def __init__(self, graph: NetworkGraph) -> None:
        super().__init__(graph)
        if graph.num_hosts < 2:
            raise ValueError("all-to-all needs at least two hosts")
        self._cursor: Dict[int, int] = {}

    def destination(self, src_host: int, rng: random.Random) -> Optional[int]:
        n = self.graph.num_hosts
        step = self._cursor.get(src_host, 1)
        self._cursor[src_host] = step % (n - 1) + 1
        return (src_host + step) % n


class AllReduceTraffic(TrafficPattern):
    """Ring or binary-tree allreduce phases as a destination pattern.

    ``mode="ring"``: every chunk goes to the ring successor
    ``(src + 1) mod H`` -- the steady state of reduce-scatter +
    allgather, where all 2(H-1) steps use the same neighbour edge.

    ``mode="tree"``: hosts form an implicit binary tree (host 0 the
    root, children of ``h`` at ``2h+1``/``2h+2``); each host cycles
    through its tree neighbours -- parent first (the reduce phase),
    then its children (the broadcast phase).
    """

    name = "allreduce"

    def __init__(self, graph: NetworkGraph, mode: str = "ring") -> None:
        super().__init__(graph)
        if graph.num_hosts < 2:
            raise ValueError("allreduce needs at least two hosts")
        if mode not in ("ring", "tree"):
            raise ValueError(f"allreduce mode must be 'ring' or 'tree', "
                             f"got {mode!r}")
        self.mode = mode
        n = graph.num_hosts
        #: per-host destination cycle (tree mode; ring needs none)
        self._cycle: List[List[int]] = []
        if mode == "tree":
            for h in range(n):
                neigh = []
                if h > 0:
                    neigh.append((h - 1) // 2)     # parent (reduce)
                for c in (2 * h + 1, 2 * h + 2):   # children (broadcast)
                    if c < n:
                        neigh.append(c)
                self._cycle.append(neigh)
        self._cursor: Dict[int, int] = {}

    def destination(self, src_host: int, rng: random.Random) -> Optional[int]:
        if self.mode == "ring":
            return (src_host + 1) % self.graph.num_hosts
        cycle = self._cycle[src_host]
        if not cycle:  # a lone root with no children cannot happen (H>=2)
            return None
        i = self._cursor.get(src_host, 0)
        self._cursor[src_host] = (i + 1) % len(cycle)
        return cycle[i]


class IncastTraffic(TrafficPattern):
    """Many-to-one: every host sends to the ``target`` sink.

    The sink itself generates nothing (``active_hosts`` excludes it),
    so the offered load concentrates entirely on one ejection port --
    the worst case for the paper's accepted-traffic metric and a
    stress test for in-transit buffering near the sink's switch.
    """

    name = "incast"

    def __init__(self, graph: NetworkGraph, target: int = 0) -> None:
        super().__init__(graph)
        if graph.num_hosts < 2:
            raise ValueError("incast needs at least two hosts")
        if not (0 <= target < graph.num_hosts):
            raise ValueError(f"incast target {target} out of range")
        self.target = target

    def destination(self, src_host: int, rng: random.Random) -> Optional[int]:
        return None if src_host == self.target else self.target

    def active_hosts(self) -> list[int]:
        return [h.id for h in self.graph.hosts if h.id != self.target]


def _two_hosts(g: NetworkGraph) -> bool:
    return g.num_hosts >= 2


register_pattern(PatternSpec(
    name="all-to-all",
    description="personalised all-to-all exchange: each host cycles "
                "deterministically through every other host",
    build=AllToAllTraffic,
    supports=_two_hosts,
))

register_pattern(PatternSpec(
    name="allreduce",
    description="allreduce phases: ring successor ('ring') or binary-"
                "tree reduce/broadcast neighbours ('tree')",
    build=AllReduceTraffic,
    kwargs=(Kwarg("mode", str, "ring", "'ring' or 'tree'"),),
    supports=_two_hosts,
    label=lambda kw: f"allreduce-{kw.get('mode', 'ring')}",
))

register_pattern(PatternSpec(
    name="incast",
    description="many-to-one: every host targets one sink host "
                "(pure incast; the sink stays silent)",
    build=IncastTraffic,
    kwargs=(Kwarg("target", int, 0, "sink host id"),),
    supports=_two_hosts,
    label=lambda kw: f"incast@{kw.get('target', 0)}",
))

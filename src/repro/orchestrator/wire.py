"""Fabric wire protocol: length-prefixed JSON frames over TCP.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  Plain JSON keeps the protocol debuggable with
``nc`` and readable by non-Python tooling; the length prefix makes
message boundaries explicit so a frame is either delivered whole or
the connection error is surfaced -- there is no "half a message"
state for the coordinator or worker to misparse.

Message vocabulary (the full protocol -- see DESIGN §16):

========== ============= =============================================
direction  ``type``      fields
========== ============= =============================================
w -> c     ``hello``     ``pid``, ``version`` (repro ``__version__``),
                         ``wire`` (:data:`WIRE_FORMAT`)
c -> w     ``task``      ``task_id``, ``attempt``, ``fn``, ``payload``
c -> w     ``ping``      (liveness probe)
w -> c     ``pong``
w -> c     ``result``    ``task_id``, ``attempt``, ``status``
                         (``"ok"``/``"err"``), ``value``, ``elapsed_s``
c -> w     ``shutdown``  ``stop_server`` (bool): end the session; when
                         set, stop accepting new sessions too
========== ============= =============================================

Every result frame echoes the lease's ``attempt`` tag; the coordinator
drops mismatches, so a stale flush from an abandoned lease can never
be attributed to a newer attempt of the same task (the same discipline
the local :class:`~repro.orchestrator.pool.WorkerPool` applies to its
result queue).
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["FrameError", "MAX_FRAME_BYTES", "WIRE_FORMAT",
           "format_addr", "parse_addrs", "recv_frame", "recv_raw_frame",
           "send_frame"]

#: bump when the message vocabulary changes incompatibly; coordinator
#: and worker refuse to pair across versions
WIRE_FORMAT = 1

#: hard ceiling per frame -- a garbled length prefix (e.g. an HTTP
#: client talking to a fabric port) must not look like a 2 GB read
MAX_FRAME_BYTES = 256 * 1024 * 1024

_LEN = struct.Struct(">I")


class FrameError(ConnectionError):
    """A frame arrived truncated or with an implausible length."""


def send_frame(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Serialise ``message`` and write it as one frame."""
    data = json.dumps(message, separators=(",", ":")).encode("utf-8")
    sock.sendall(_LEN.pack(len(data)) + data)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; None on clean EOF at a frame start."""
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            if got == 0:
                return None
            raise FrameError(f"connection closed mid-frame ({got}/{n} B)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF (peer closed between
    frames).  Raises :class:`FrameError` on truncation or garbage."""
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds "
                         f"{MAX_FRAME_BYTES} (not a fabric peer?)")
    body = _recv_exact(sock, length)
    if body is None:
        raise FrameError("connection closed before frame body")
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise FrameError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise FrameError(f"frame is not an object: {message!r}")
    return message


def recv_raw_frame(sock: socket.socket) -> Optional[bytes]:
    """Read one frame as raw bytes (length prefix included), without
    decoding the payload; ``None`` on clean EOF at a frame boundary.

    This is the frame-aware tap the chaos proxy
    (:class:`repro.orchestrator.chaos.ChaosProxy`) pumps through: it
    preserves frame boundaries so injected faults (drops, delays,
    duplicates, torn frames) operate on whole protocol messages rather
    than an opaque byte stream.
    """
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds "
                         f"{MAX_FRAME_BYTES} (not a fabric peer?)")
    body = _recv_exact(sock, length)
    if body is None:
        raise FrameError("connection closed before frame body")
    return header + body


def parse_addrs(spec: str) -> List[Tuple[str, int]]:
    """``"host:port,host:port"`` -> ``[(host, port), ...]``."""
    addrs: List[Tuple[str, int]] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        host, sep, port = part.rpartition(":")
        if not sep or not host:
            raise ValueError(f"fabric address must be host:port, "
                             f"got {part!r}")
        addrs.append((host, int(port)))
    if not addrs:
        raise ValueError(f"no fabric worker addresses in {spec!r}")
    return addrs


def format_addr(addr: Tuple[str, int]) -> str:
    return f"{addr[0]}:{addr[1]}"

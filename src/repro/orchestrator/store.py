"""Content-addressed on-disk result store (checkpoint/resume).

Every finished simulation point is written to ``.repro_cache/`` as one
JSON file named by the SHA-256 of its *full description*: the task kind
(worker function), the canonical JSON of its payload (``SimConfig`` +
runner kwargs for simulation points), the code version and the store
format version.  Re-running an interrupted campaign therefore only
simulates the missing points; everything already on disk is served
back byte-identically (Python's JSON float encoding is repr-based, so
summaries round-trip bit-exactly).

Layout::

    <root>/
        meta.json                   # {"format": 1}
        objects/<k[:2]>/<k>.json    # one record per completed task

Each record is self-describing -- ``{"key", "kind", "payload",
"result", "code_version", "created", "elapsed_s"}`` -- so the store
doubles as a stable results-artifact format that external tooling can
read without importing this package.

Writes are atomic (temp file + ``os.replace``): a worker killed
mid-write never leaves a half-record, it just leaves a missing point
for the next run to redo.  Corrupt or truncated records read as
misses, never as errors.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from ..canon import canonical_json, digest

#: bump when the record schema changes; old entries then read as misses
STORE_FORMAT = 1

DEFAULT_CACHE_DIR = ".repro_cache"


def _code_version() -> str:
    # imported lazily: repro/__init__ imports this module
    from .. import __version__
    return __version__


@dataclass(frozen=True)
class StoreInfo:
    """Summary of a store's on-disk contents."""

    root: str
    entries: int
    total_bytes: int

    def oneline(self) -> str:
        mb = self.total_bytes / 1e6
        return f"{self.root}: {self.entries} results, {mb:.2f} MB"


class ResultStore:
    """Content-addressed JSON store under ``root`` (created lazily)."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR):
        self.root = Path(root)

    # -- keys -----------------------------------------------------------

    def key(self, kind: str, payload: Mapping[str, Any]) -> str:
        """Content hash of one task: kind + payload + code version."""
        return digest({
            "format": STORE_FORMAT,
            "kind": kind,
            "code_version": _code_version(),
            "payload": payload,
        })

    # -- records --------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / (key + ".json")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Load a record, or ``None`` on miss/corruption."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict) or record.get("key") != key:
            return None
        return record

    def put(self, key: str, kind: str, payload: Mapping[str, Any],
            result: Any, elapsed_s: Optional[float] = None) -> None:
        """Atomically persist one finished task."""
        record = {
            "key": key,
            "kind": kind,
            "code_version": _code_version(),
            "format": STORE_FORMAT,
            "created": time.time(),
            "elapsed_s": elapsed_s,
            "payload": payload,
            "result": result,
        }
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        meta = self.root / "meta.json"
        if not meta.exists():
            meta.write_text(json.dumps({"format": STORE_FORMAT}) + "\n")
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(canonical_json(record))
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def contains(self, key: str) -> bool:
        return self.get(key) is not None

    # -- maintenance ----------------------------------------------------

    def _object_files(self):
        objects = self.root / "objects"
        if not objects.is_dir():
            return
        for sub in sorted(objects.iterdir()):
            if not sub.is_dir():
                continue
            for f in sorted(sub.iterdir()):
                if f.suffix == ".json":
                    yield f

    def info(self) -> StoreInfo:
        """Entry count and total size (for ``repro cache info``)."""
        entries = 0
        total = 0
        for f in self._object_files():
            entries += 1
            total += f.stat().st_size
        return StoreInfo(str(self.root), entries, total)

    def clear(self) -> int:
        """Delete every stored result; returns how many were removed."""
        removed = 0
        for f in list(self._object_files()):
            f.unlink()
            removed += 1
        return removed

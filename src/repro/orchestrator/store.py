"""Content-addressed on-disk result store (checkpoint/resume).

Every finished simulation point is written to ``.repro_cache/`` as one
JSON file named by the SHA-256 of its *full description*: the task kind
(worker function), the canonical JSON of its payload (``SimConfig`` +
runner kwargs for simulation points), the code version and the store
format version.  Re-running an interrupted campaign therefore only
simulates the missing points; everything already on disk is served
back byte-identically (Python's JSON float encoding is repr-based, so
summaries round-trip bit-exactly).

Layout::

    <root>/
        meta.json                   # {"format": 1}
        objects/<k[:2]>/<k>.json    # one record per completed task

Each record is self-describing -- ``{"key", "kind", "payload",
"result", "code_version", "created", "elapsed_s"}`` -- so the store
doubles as a stable results-artifact format that external tooling can
read without importing this package.

Writes are atomic (temp file + ``os.replace``): a worker killed
mid-write never leaves a half-record, it just leaves a missing point
for the next run to redo.  Corrupt or truncated records read as
misses, never as errors.

The store is safe for **many concurrent writer processes** (the local
worker pool, remote fabric workers streaming results back, several
``repro serve`` requests sharing one warm cache):

* ``meta.json`` is created atomically too (temp file + ``os.replace``),
  so a cold store hammered by N first-writers never exposes a
  half-written marker; concurrent creation is idempotent -- every
  writer produces the same bytes and the last rename wins.
* records live in 256 two-hex-digit shard directories
  (``objects/<k[:2]>/``), so concurrent writers of different keys
  rarely contend on one directory, and same-key writers converge on
  identical content (keys are content hashes of the full task
  description, so a double-write is a benign overwrite).
* :meth:`ResultStore.compact` sweeps the shards into ``index.json``
  (one atomic file listing every record), prunes corrupt or
  mis-filed records, and removes empty shard directories --
  ``repro cache compact`` from the CLI.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from ..canon import canonical_json, digest

#: bump when the record schema changes; old entries then read as misses
STORE_FORMAT = 1

DEFAULT_CACHE_DIR = ".repro_cache"


def _code_version() -> str:
    # imported lazily: repro/__init__ imports this module
    from .. import __version__
    return __version__


@dataclass(frozen=True)
class StoreInfo:
    """Summary of a store's on-disk contents."""

    root: str
    entries: int
    total_bytes: int

    def oneline(self) -> str:
        mb = self.total_bytes / 1e6
        return f"{self.root}: {self.entries} results, {mb:.2f} MB"


@dataclass(frozen=True)
class CompactStats:
    """Outcome of one :meth:`ResultStore.compact` pass."""

    entries: int
    total_bytes: int
    pruned: int
    removed_dirs: int

    def oneline(self) -> str:
        return (f"{self.entries} records indexed "
                f"({self.total_bytes / 1e6:.2f} MB), "
                f"{self.pruned} corrupt pruned, "
                f"{self.removed_dirs} empty shards removed")


class ResultStore:
    """Content-addressed JSON store under ``root`` (created lazily)."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR):
        self.root = Path(root)

    # -- keys -----------------------------------------------------------

    def key(self, kind: str, payload: Mapping[str, Any]) -> str:
        """Content hash of one task: kind + payload + code version."""
        return digest({
            "format": STORE_FORMAT,
            "kind": kind,
            "code_version": _code_version(),
            "payload": payload,
        })

    # -- records --------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / (key + ".json")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Load a record, or ``None`` on miss/corruption."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict) or record.get("key") != key:
            return None
        return record

    def put(self, key: str, kind: str, payload: Mapping[str, Any],
            result: Any, elapsed_s: Optional[float] = None) -> None:
        """Atomically persist one finished task."""
        record = {
            "key": key,
            "kind": kind,
            "code_version": _code_version(),
            "format": STORE_FORMAT,
            "created": time.time(),
            "elapsed_s": elapsed_s,
            "payload": payload,
            "result": result,
        }
        path = self._path(key)
        self._ensure_meta()
        self._write_atomic(path, canonical_json(record) + "\n")

    def _write_atomic(self, path: Path, text: str) -> None:
        """Write ``text`` to ``path`` via temp file + ``os.replace``.

        Concurrent writers of the same path each rename a complete
        file into place; readers only ever observe one whole version.
        A concurrent compaction may prune the (momentarily empty)
        shard directory between our ``mkdir`` and ``mkstemp`` -- that
        window is retried; once the temp file exists the directory is
        non-empty and ``rmdir`` cannot take it away.
        """
        for _ in range(16):
            path.parent.mkdir(parents=True, exist_ok=True)
            try:
                fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            except FileNotFoundError:
                continue               # shard dir pruned under us; redo
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write(text)
                os.replace(tmp, path)
                return
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        raise OSError(f"shard directory for {path} kept vanishing")

    def _ensure_meta(self) -> None:
        """Create ``meta.json`` atomically (idempotent under races).

        ``Path.write_text`` would expose a half-written marker to a
        concurrent first reader; renaming a finished temp file never
        does, and when N cold-store writers race, every one renames
        identical bytes, so whichever ``os.replace`` lands last is
        indistinguishable from the first.
        """
        meta = self.root / "meta.json"
        if meta.exists():
            return
        self._write_atomic(meta, json.dumps({"format": STORE_FORMAT}) + "\n")

    def contains(self, key: str) -> bool:
        return self.get(key) is not None

    # -- maintenance ----------------------------------------------------

    def _object_files(self):
        objects = self.root / "objects"
        if not objects.is_dir():
            return
        for sub in sorted(objects.iterdir()):
            if not sub.is_dir():
                continue
            for f in sorted(sub.iterdir()):
                if f.suffix == ".json":
                    yield f

    def info(self) -> StoreInfo:
        """Entry count and total size (for ``repro cache info``)."""
        entries = 0
        total = 0
        for f in self._object_files():
            entries += 1
            total += f.stat().st_size
        return StoreInfo(str(self.root), entries, total)

    def _prune_empty_shards(self) -> int:
        """Remove now-empty shard directories; returns how many."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return 0
        removed = 0
        for sub in list(objects.iterdir()):
            if not sub.is_dir():
                continue
            try:
                sub.rmdir()            # only succeeds when empty
                removed += 1
            except OSError:
                pass                   # non-empty, or a racing writer
        return removed

    def clear(self) -> int:
        """Delete every stored result; returns how many were removed."""
        removed = 0
        for f in list(self._object_files()):
            try:
                f.unlink()
            except FileNotFoundError:
                continue               # a racing clear() got it first
            removed += 1
        self._prune_empty_shards()
        index = self.root / "index.json"
        try:
            index.unlink()
        except OSError:
            pass
        return removed

    # -- compaction -----------------------------------------------------

    def compact(self) -> CompactStats:
        """Sweep the shards into ``index.json``; prune damage.

        The index is one atomically-replaced file mapping every key to
        ``{"kind", "created", "elapsed_s", "bytes"}`` -- external
        tooling (and :meth:`index`) can enumerate a million-record
        store with a single read instead of a directory walk.  The
        pass also deletes records that fail to parse or whose embedded
        key does not match their filename (a crashed writer cannot
        produce these -- renames are atomic -- but a copied or bit-rotted
        cache can), and removes shard directories left empty.
        Concurrent ``put`` is safe; records landing mid-pass are simply
        picked up by the next compaction.
        """
        entries: Dict[str, Dict[str, Any]] = {}
        total = 0
        pruned = 0
        for f in list(self._object_files()):
            key = f.stem
            record = self.get(key)
            if record is None:
                try:
                    f.unlink()
                except OSError:
                    pass
                pruned += 1
                continue
            size = f.stat().st_size
            total += size
            entries[key] = {
                "kind": record.get("kind"),
                "created": record.get("created"),
                "elapsed_s": record.get("elapsed_s"),
                "bytes": size,
            }
        removed_dirs = self._prune_empty_shards()
        self.root.mkdir(parents=True, exist_ok=True)
        self._ensure_meta()
        self._write_atomic(
            self.root / "index.json",
            canonical_json({"format": STORE_FORMAT,
                            "entries": entries}) + "\n")
        return CompactStats(len(entries), total, pruned, removed_dirs)

    def index(self) -> Optional[Dict[str, Dict[str, Any]]]:
        """The last compaction's key map, or ``None`` if never built."""
        try:
            with open(self.root / "index.json", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict):
            return None
        entries = data.get("entries")
        return entries if isinstance(entries, dict) else None

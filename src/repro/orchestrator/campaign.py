"""Campaign layer: whole figures/tables as lists of cached points.

The :class:`Executor` is the single entry point the rest of the code
base routes bulk simulation through (``sweep_rates(...,
executor=...)``, the experiment registry, the CLI and the paper-profile
benchmark runner).  It composes the two lower layers:

* every task is first looked up in the :class:`~.store.ResultStore`
  (when one is attached) -- an already-completed point costs one file
  read and **zero** ``run_simulation`` calls;
* the misses are fanned out through the
  :class:`~.pool.WorkerPool` (inline when ``workers=1``) and each
  result is persisted the moment it arrives, so an interrupted or
  crashed campaign resumes from exactly where it stopped.

:class:`Campaign` expresses one named artefact (a figure panel, a
table) as an explicit point list and streams per-point progress --
completed/total, cache hits, ETA -- through a
:class:`ProgressReporter`.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    TextIO)

from ..config import SimConfig
from ..metrics.summary import RunSummary
from .fabric import FabricPool
from .pool import POINT_TASK_FN, Task, TaskResult, WorkerPool
from .store import ResultStore

__all__ = ["Campaign", "CampaignError", "Executor", "ExecutorStats",
           "Point", "ProgressReporter"]

#: runner kwargs that carry live objects and cannot cross a process
#: or disk boundary -- callers holding these must run sequentially
UNSERIALIZABLE_RUNNER_KWARGS = ("graph", "tables")


class CampaignError(RuntimeError):
    """One or more points failed after all retries."""


@dataclass(frozen=True)
class Point:
    """One simulation point of a campaign."""

    point_id: str
    config: SimConfig
    runner_kwargs: Mapping[str, Any] = field(default_factory=dict)

    def payload(self) -> Dict[str, Any]:
        return {"config": self.config.to_dict(),
                "runner_kwargs": dict(self.runner_kwargs)}

    def describe(self) -> str:
        return (f"{self.config.label()} @ "
                f"{self.config.injection_rate:.4g} "
                f"({self.config.topology}/{self.config.traffic})")


@dataclass
class ExecutorStats:
    """Running totals over an executor's lifetime."""

    simulated: int = 0
    cached: int = 0
    failed: int = 0

    @property
    def completed(self) -> int:
        return self.simulated + self.cached

    def oneline(self) -> str:
        return (f"{self.simulated} simulated, {self.cached} from cache"
                + (f", {self.failed} failed" if self.failed else ""))


class ProgressReporter:
    """Streams per-point campaign status lines to a text stream.

    ETA is the mean wall time of the *simulated* points so far times
    the remaining count -- cache hits are treated as instantaneous.
    """

    def __init__(self, stream: Optional[TextIO] = None):
        self.stream = stream if stream is not None else sys.stderr
        self.total = 0
        self.completed = 0
        self._sim_time = 0.0
        self._sim_count = 0

    def announce(self, n: int) -> None:
        self.total += n

    def eta_s(self) -> Optional[float]:
        if self._sim_count == 0 or self.completed >= self.total:
            return None
        mean = self._sim_time / self._sim_count
        return mean * (self.total - self.completed)

    def point_done(self, label: str, status: str,
                   elapsed_s: float = 0.0) -> None:
        self.completed += 1
        if status == "done":
            self._sim_time += elapsed_s
            self._sim_count += 1
        eta = self.eta_s()
        eta_txt = f"  eta {eta:.0f}s" if eta is not None else ""
        took = f" {elapsed_s:.1f}s" if status == "done" else ""
        self.stream.write(
            f"[{self.completed}/{self.total}] {label}: {status}{took}"
            f"{eta_txt}\n")
        self.stream.flush()


class Executor:
    """Cache-aware parallel task runner (the orchestrator's front door).

    ``workers=1`` (the default) degrades to in-process execution, still
    with store lookups; ``store=None`` disables caching entirely.

    ``fabric="host:port,..."`` (or, equivalently, passing that string
    as ``workers``) swaps the local process pool for a
    :class:`~repro.orchestrator.fabric.FabricPool` leasing tasks to
    remote fabric workers; ``timeout_s`` then becomes the lease
    timeout and ``retries``/``retry_backoff_s`` the re-lease budget.
    ``tls_ca`` (fabric only) pins every worker connection to the given
    PEM CA bundle -- workers must serve the matching certificate
    (``repro fabric worker --tls ...``).  Everything above this class
    -- sweeps, experiments, tournaments, the CLI -- is oblivious to
    which pool executes the points.
    """

    def __init__(self, workers=1,
                 store: Optional[ResultStore] = None,
                 timeout_s: Optional[float] = None,
                 retries: int = 1,
                 retry_backoff_s: float = 0.0,
                 reporter: Optional[ProgressReporter] = None,
                 fabric: Optional[str] = None,
                 tls_ca: Optional[str] = None):
        if fabric is None and isinstance(workers, str):
            fabric, workers = workers, 1
        if tls_ca is not None and fabric is None:
            raise ValueError("tls_ca applies to fabric workers only")
        if fabric is not None:
            self.pool = FabricPool(fabric, lease_timeout_s=timeout_s,
                                   retries=retries,
                                   retry_backoff_s=retry_backoff_s,
                                   tls_ca=tls_ca)
        else:
            self.pool = WorkerPool(workers, timeout_s=timeout_s,
                                   retries=retries,
                                   retry_backoff_s=retry_backoff_s)
        self.store = store
        self.reporter = reporter
        self.stats = ExecutorStats()

    @property
    def workers(self) -> int:
        return self.pool.workers

    # -- generic task execution ----------------------------------------

    def run_tasks(self, fn: str, payloads: Sequence[Dict[str, Any]],
                  labels: Optional[Sequence[str]] = None) -> List[Any]:
        """Run ``fn`` over every payload, store-first, in input order.

        ``fn`` is a ``"module:callable"`` worker function; payloads and
        results must be JSON-safe.  Raises :class:`CampaignError` if
        any task still fails after the pool's retries.
        """
        labels = list(labels) if labels is not None else \
            [f"{fn.rsplit(':', 1)[-1]}#{i}" for i in range(len(payloads))]
        if self.reporter:
            self.reporter.announce(len(payloads))
        results: Dict[int, Any] = {}
        misses: List[int] = []
        keys: Dict[int, str] = {}
        for i, payload in enumerate(payloads):
            if self.store is not None:
                key = self.store.key(fn, payload)
                keys[i] = key
                record = self.store.get(key)
                if record is not None:
                    results[i] = record["result"]
                    self.stats.cached += 1
                    if self.reporter:
                        self.reporter.point_done(labels[i], "cached")
                    continue
            misses.append(i)

        failures: List[str] = []
        if misses:
            tasks = [Task(task_id=str(i), fn=fn, payload=payloads[i])
                     for i in misses]

            def on_result(res: TaskResult) -> None:
                i = int(res.task_id)
                if res.ok:
                    results[i] = res.value
                    self.stats.simulated += 1
                    if self.store is not None:
                        self.store.put(keys.get(i)
                                       or self.store.key(fn, payloads[i]),
                                       fn, payloads[i], res.value,
                                       elapsed_s=res.elapsed_s)
                    if self.reporter:
                        self.reporter.point_done(labels[i], "done",
                                                 res.elapsed_s)
                else:
                    self.stats.failed += 1
                    failures.append(f"{labels[i]}: {res.error}")
                    if self.reporter:
                        self.reporter.point_done(labels[i], "FAILED")

            self.pool.run(tasks, on_result=on_result)

        if failures:
            raise CampaignError(
                f"{len(failures)} of {len(payloads)} points failed:\n"
                + "\n".join(failures))
        return [results[i] for i in range(len(payloads))]

    # -- simulation points ---------------------------------------------

    def run_points(self, points: Sequence[Point]) -> List[RunSummary]:
        """Run simulation points (store-first), in input order."""
        for p in points:
            for k in UNSERIALIZABLE_RUNNER_KWARGS:
                if p.runner_kwargs.get(k) is not None:
                    raise ValueError(
                        f"runner kwarg {k!r} holds a live object and cannot "
                        "be executed through the orchestrator; run these "
                        "points sequentially via run_simulation()")
        values = self.run_tasks(POINT_TASK_FN,
                                [p.payload() for p in points],
                                labels=[p.describe() for p in points])
        return [RunSummary.from_dict(v) for v in values]

    def run_configs(self, configs: Sequence[SimConfig],
                    **runner_kwargs: Any) -> List[RunSummary]:
        """Convenience: one point per config, shared runner kwargs."""
        points = [Point(point_id=str(i), config=cfg,
                        runner_kwargs=runner_kwargs)
                  for i, cfg in enumerate(configs)]
        return self.run_points(points)


@dataclass(frozen=True)
class Campaign:
    """A named list of simulation points (one figure/table artefact)."""

    name: str
    points: List[Point]

    @classmethod
    def from_sweep(cls, name: str, base: SimConfig,
                   rates: Sequence[float],
                   **runner_kwargs: Any) -> "Campaign":
        """A latency-vs-traffic curve as a campaign (ascending rates)."""
        points = [Point(point_id=f"{name}:{rate:.6g}",
                        config=base.with_overrides(injection_rate=rate),
                        runner_kwargs=runner_kwargs)
                  for rate in sorted(rates)]
        return cls(name, points)

    def run(self, executor: Executor) -> Dict[str, RunSummary]:
        """Execute every point; returns ``point_id -> RunSummary``."""
        t0 = time.monotonic()
        summaries = executor.run_points(self.points)
        if executor.reporter:
            executor.reporter.stream.write(
                f"{self.name}: {executor.stats.oneline()} "
                f"in {time.monotonic() - t0:.1f}s\n")
        return {p.point_id: s for p, s in zip(self.points, summaries)}

"""Distributed campaign fabric: remote work-queue workers + coordinator.

Scales the orchestrator from one box to a fleet.  Two halves, speaking
the length-prefixed JSON frames of :mod:`~repro.orchestrator.wire`:

* :class:`FabricWorker` -- a long-running process (``repro fabric
  worker --listen host:port``) that accepts one coordinator session at
  a time and executes tasks sequentially, exactly like an inline
  :class:`~repro.orchestrator.pool.WorkerPool` worker: resolve the
  ``"module:callable"`` function, call it on the JSON payload, frame
  the JSON result back.  Nothing about a task is fabric-specific, so
  sweeps, tournaments and resilience campaigns run unchanged.
* :class:`FabricPool` -- the coordinator.  It is interface-compatible
  with :class:`~repro.orchestrator.pool.WorkerPool` (``run(tasks,
  on_result)`` returning input-ordered :class:`TaskResult`\\ s), which
  is what lets :class:`~repro.orchestrator.campaign.Executor` swap it
  in behind ``fabric="host:port,..."`` with zero changes above.

**Lease discipline.**  One thread per worker address pulls the next
ready attempt off a shared queue and *leases* it to its worker.  A
lease ends in exactly one of four ways:

1. a ``result`` frame with the lease's attempt tag -> the outcome
   (``ok`` finishes the task; ``err`` is a deterministic Python
   exception and fails immediately, never retried -- same contract as
   the local pool);
2. the lease timeout (``lease_timeout_s``, the Executor's
   ``timeout_s``) expires -> the connection is abandoned (a late
   result on it can never be read, and the attempt tag would be
   dropped anyway) and the task is re-leased with the pool's
   exponential retry backoff;
3. the connection dies mid-task (worker SIGKILLed, machine lost) ->
   re-leased the same way, counting an attempt like a crashed local
   worker;
4. the task could not be *delivered* (connect refused, send failed) ->
   re-queued without consuming an attempt: it provably never started.

A worker whose address stays unreachable for ``connect_attempts``
consecutive tries is declared dead and its thread exits; when every
worker is dead the remaining tasks fail loudly rather than hang.
Results stream back as they complete -- ``on_result`` fires under the
pool lock in completion order, so progress reporting and incremental
store writes behave exactly as with local workers.

Determinism: task execution is ``_resolve(fn)(payload)`` in a single
worker process, the same call the inline pool makes, and the caller
reassembles results by ``task_id`` in input order -- so a campaign
sharded across N fabric workers is bit-identical to sequential
execution no matter how leases interleave.
"""

from __future__ import annotations

import os
import random
import socket
import ssl
import threading
import time
import traceback
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .pool import Task, TaskResult, _resolve, retry_delay_s
from .wire import (WIRE_FORMAT, FrameError, format_addr, parse_addrs,
                   recv_frame, send_frame)

__all__ = ["FabricPool", "FabricWorker", "worker_main"]


def _code_version() -> str:
    from .. import __version__
    return __version__


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

class FabricWorker:
    """Serves tasks to one coordinator at a time over TCP.

    ``bind`` is ``"host:port"`` (port 0 picks a free one -- read
    :attr:`address` after :meth:`listen`).  ``max_sessions`` bounds how
    many coordinator sessions are served before returning (``None`` =
    forever), which is what lets tests and smoke scripts run a worker
    to natural completion.

    ``tls_cert``/``tls_key`` (both PEM paths, given together) wrap every
    accepted session in TLS.  The model is CA pinning, not a PKI: the
    coordinator verifies the worker's certificate against exactly the
    bundle it was given (``FabricPool(tls_ca=...)``), so a worker
    serving any other certificate -- or a plaintext impostor on the
    same port -- fails the handshake and is treated as unreachable.
    """

    def __init__(self, bind: str = "127.0.0.1:0",
                 max_sessions: Optional[int] = None,
                 tls_cert: Optional[str] = None,
                 tls_key: Optional[str] = None):
        (self._host, self._port), = parse_addrs(bind)
        self.max_sessions = max_sessions
        if (tls_cert is None) != (tls_key is None):
            raise ValueError("tls_cert and tls_key must be given together")
        self._tls: Optional[ssl.SSLContext] = None
        if tls_cert is not None:
            self._tls = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
            self._tls.load_cert_chain(tls_cert, tls_key)
        self._sock: Optional[socket.socket] = None
        self._stop = threading.Event()

    @property
    def address(self) -> str:
        if self._sock is None:
            raise RuntimeError("worker is not listening yet")
        host, port = self._sock.getsockname()[:2]
        return format_addr((host, port))

    def listen(self) -> str:
        """Bind + listen; returns the resolved ``host:port``.

        Split from :meth:`serve_forever` so a parent process can bind
        (learning the port), fork, and let the child inherit the live
        socket -- the pattern the tests and CI smoke use.
        """
        if self._sock is None:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((self._host, self._port))
            sock.listen(8)
            sock.settimeout(0.5)       # poll the stop flag in accept()
            self._sock = sock
        return self.address

    def close(self) -> None:
        self._stop.set()
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass

    def serve_forever(self) -> None:
        """Accept coordinator sessions until stopped."""
        self.listen()
        served = 0
        try:
            while not self._stop.is_set():
                if self.max_sessions is not None \
                        and served >= self.max_sessions:
                    break
                try:
                    conn, _peer = self._sock.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break              # socket closed under us
                if self._tls is not None:
                    try:
                        conn.settimeout(5.0)   # bound the handshake
                        conn = self._tls.wrap_socket(conn,
                                                     server_side=True)
                    except (OSError, ssl.SSLError):
                        # failed handshake (plaintext probe, wrong CA):
                        # not a session -- drop it and keep serving
                        try:
                            conn.close()
                        except OSError:
                            pass
                        continue
                served += 1
                self._serve_session(conn)
        finally:
            self.close()

    def _serve_session(self, conn: socket.socket) -> None:
        conn.settimeout(None)
        try:
            send_frame(conn, {"type": "hello", "pid": os.getpid(),
                              "version": _code_version(),
                              "wire": WIRE_FORMAT})
            while True:
                try:
                    msg = recv_frame(conn)
                except FrameError:
                    return
                if msg is None:
                    return             # coordinator went away
                kind = msg.get("type")
                if kind == "ping":
                    send_frame(conn, {"type": "pong"})
                elif kind == "task":
                    send_frame(conn, self._execute(msg))
                elif kind == "shutdown":
                    if msg.get("stop_server"):
                        self._stop.set()
                    return
                # unknown frame types are ignored: a newer coordinator
                # may probe with messages an older worker predates
        except OSError:
            pass                       # session over; back to accept()
        finally:
            try:
                conn.close()
            except OSError:
                pass

    @staticmethod
    def _execute(msg: Dict) -> Dict:
        t0 = time.monotonic()
        try:
            value = _resolve(msg["fn"])(msg["payload"])
            status, out = "ok", value
        except BaseException:
            status, out = "err", traceback.format_exc()
        return {"type": "result", "task_id": msg["task_id"],
                "attempt": msg["attempt"], "status": status,
                "value": out, "elapsed_s": time.monotonic() - t0}


def worker_main(bind: str = "127.0.0.1:0",
                max_sessions: Optional[int] = None,
                announce: Optional[Callable[[str], None]] = None,
                tls_cert: Optional[str] = None,
                tls_key: Optional[str] = None) -> None:
    """Run one fabric worker until interrupted (CLI entry point)."""
    worker = FabricWorker(bind, max_sessions=max_sessions,
                          tls_cert=tls_cert, tls_key=tls_key)
    addr = worker.listen()
    if announce:
        announce(addr)
    worker.serve_forever()


# ----------------------------------------------------------------------
# coordinator side
# ----------------------------------------------------------------------

class _FabricState:
    """Shared run() state: the lease queue and completion ledger."""

    def __init__(self, tasks: Sequence[Task], n_workers: int):
        self.cond = threading.Condition()
        #: (task, attempt, not_before) -- identical shape to the local
        #: pool's pending deque, so the backoff semantics transfer
        self.pending = deque((t, 1, 0.0) for t in tasks)
        self.done: Dict[str, TaskResult] = {}
        self.total = len(tasks)
        self.alive = n_workers

    def finished(self) -> bool:
        return len(self.done) >= self.total


class FabricPool:
    """Lease tasks across remote fabric workers (drop-in pool).

    ``addrs`` is ``"host:port,..."`` or a list of ``(host, port)``
    tuples.  ``lease_timeout_s`` bounds one attempt on one worker
    (``None`` = unbounded: worker *death* is still detected promptly
    via connection loss, only a live-but-hung worker can then stall
    the campaign, mirroring the local pool without ``timeout_s``).
    ``retries``/``retry_backoff_s``/``retry_jitter`` follow
    :class:`~repro.orchestrator.pool.WorkerPool` exactly.

    ``tls_ca`` (a PEM bundle path) turns every dial into a TLS
    handshake verified against exactly that bundle (CA pinning --
    hostname checks are off because workers are addressed by IP; the
    pinned CA is the identity).  A worker presenting a certificate the
    bundle does not vouch for fails the handshake, which counts as a
    dial failure like any refused connection.
    """

    def __init__(self, addrs, lease_timeout_s: Optional[float] = None,
                 retries: int = 1, retry_backoff_s: float = 0.0,
                 retry_jitter: float = 0.5,
                 connect_attempts: int = 5,
                 connect_backoff_s: float = 0.2,
                 tls_ca: Optional[str] = None):
        if isinstance(addrs, str):
            addrs = parse_addrs(addrs)
        self.addrs: List[Tuple[str, int]] = list(addrs)
        if not self.addrs:
            raise ValueError("fabric needs at least one worker address")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if lease_timeout_s is not None and lease_timeout_s <= 0:
            raise ValueError("lease_timeout_s must be positive")
        self.lease_timeout_s = lease_timeout_s
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s
        self.retry_jitter = retry_jitter
        self.connect_attempts = max(1, connect_attempts)
        self.connect_backoff_s = connect_backoff_s
        self._tls: Optional[ssl.SSLContext] = None
        if tls_ca is not None:
            self._tls = ssl.SSLContext(ssl.PROTOCOL_TLS_CLIENT)
            self._tls.check_hostname = False   # workers addressed by IP
            self._tls.verify_mode = ssl.CERT_REQUIRED
            self._tls.load_verify_locations(cafile=tls_ca)
        self._rng = random.Random()

    @property
    def workers(self) -> int:
        """Fleet size (drives the Executor's wave dispatch width)."""
        return len(self.addrs)

    # -- public API -----------------------------------------------------

    def run(self, tasks: Sequence[Task],
            on_result: Optional[Callable[[TaskResult], None]] = None
            ) -> List[TaskResult]:
        """Execute every task on the fleet; results in input order."""
        ids = [t.task_id for t in tasks]
        if len(set(ids)) != len(ids):
            raise ValueError("task ids must be unique within one run() call")
        if not tasks:
            return []
        state = _FabricState(tasks, len(self.addrs))
        threads = [
            threading.Thread(target=self._worker_loop,
                             args=(addr, state, on_result),
                             name=f"fabric-{format_addr(addr)}",
                             daemon=True)
            for addr in self.addrs
        ]
        for t in threads:
            t.start()
        with state.cond:
            while not state.finished() and state.alive > 0:
                state.cond.wait(timeout=0.2)
            if not state.finished():
                # every worker is gone; whatever is still pending can
                # never run -- fail loudly instead of hanging
                while state.pending:
                    task, attempt, _nb = state.pending.popleft()
                    self._finish_locked(
                        state, on_result,
                        TaskResult(task.task_id, None,
                                   "no reachable fabric workers "
                                   f"(fleet: {self.describe_fleet()})",
                                   attempt, 0.0))
            state.cond.notify_all()
        for t in threads:
            t.join(timeout=10.0)
        return [state.done[t.task_id] for t in tasks]

    def describe_fleet(self) -> str:
        return ",".join(format_addr(a) for a in self.addrs)

    # -- completion / re-lease bookkeeping (under state.cond) -----------

    def _finish_locked(self, state: _FabricState, on_result,
                       res: TaskResult) -> None:
        if res.task_id in state.done:
            return                     # a duplicate outcome; first wins
        state.done[res.task_id] = res
        if on_result:
            # called under the lock: completion handling (store writes,
            # progress lines, executor stats) is serialised exactly as
            # on the single-threaded local-pool path
            on_result(res)
        state.cond.notify_all()

    def _release_locked(self, state: _FabricState, on_result, task: Task,
                       attempt: int, started: float, reason: str,
                       consume_attempt: bool = True) -> None:
        """Return a leased task to the queue, or fail it out."""
        if not consume_attempt:
            state.pending.append((task, attempt, 0.0))
        elif attempt <= self.retries:
            not_before = time.monotonic() + retry_delay_s(
                self.retry_backoff_s, self.retry_jitter, attempt, self._rng)
            state.pending.append((task, attempt + 1, not_before))
        else:
            self._finish_locked(
                state, on_result,
                TaskResult(task.task_id, None,
                           f"{reason} (after {attempt} attempts)",
                           attempt, time.monotonic() - started))
        state.cond.notify_all()

    @staticmethod
    def _next_ready_locked(state: _FabricState) -> Optional[tuple]:
        now = time.monotonic()
        for i, entry in enumerate(state.pending):
            if entry[2] <= now:
                del state.pending[i]
                return entry
        return None

    # -- per-worker lease thread ----------------------------------------

    def _connect(self, addr: Tuple[str, int]) -> socket.socket:
        """Dial a worker and validate its hello (5 s handshake cap)."""
        sock = socket.create_connection(addr, timeout=5.0)
        if self._tls is not None:
            try:
                sock = self._tls.wrap_socket(sock)
            except (OSError, ssl.SSLError):
                sock.close()
                raise
        try:
            hello = recv_frame(sock)
            if hello is None or hello.get("type") != "hello":
                raise FrameError(f"worker {format_addr(addr)} sent no hello")
            if hello.get("wire") != WIRE_FORMAT:
                raise FrameError(
                    f"worker {format_addr(addr)} speaks wire format "
                    f"{hello.get('wire')}, coordinator {WIRE_FORMAT}")
            if hello.get("version") != _code_version():
                # results are content-addressed by code version; a
                # mismatched worker would silently compute under
                # different sources
                raise FrameError(
                    f"worker {format_addr(addr)} runs repro "
                    f"{hello.get('version')}, coordinator "
                    f"{_code_version()}")
            sock.settimeout(None)
            return sock
        except BaseException:
            sock.close()
            raise

    def _worker_loop(self, addr: Tuple[str, int], state: _FabricState,
                     on_result) -> None:
        conn: Optional[socket.socket] = None
        dial_failures = 0
        try:
            while True:
                # -- claim the next ready attempt ----------------------
                with state.cond:
                    entry = self._next_ready_locked(state)
                    while entry is None:
                        if state.finished():
                            return
                        # leased-elsewhere or backing off: wake when
                        # notified, or poll for backoff expiry
                        state.cond.wait(timeout=0.1)
                        entry = self._next_ready_locked(state)
                task, attempt, _nb = entry
                started = time.monotonic()

                # -- ensure a live session -----------------------------
                if conn is None:
                    try:
                        conn = self._connect(addr)
                        dial_failures = 0
                    except (OSError, FrameError):
                        dial_failures += 1
                        with state.cond:
                            # never started: no attempt consumed
                            self._release_locked(state, on_result, task,
                                                 attempt, started, "",
                                                 consume_attempt=False)
                            if dial_failures >= self.connect_attempts:
                                state.alive -= 1
                                state.cond.notify_all()
                                return
                        time.sleep(self.connect_backoff_s * dial_failures)
                        continue

                # -- hand out the lease --------------------------------
                try:
                    send_frame(conn, {"type": "task",
                                      "task_id": task.task_id,
                                      "attempt": attempt,
                                      "fn": task.fn,
                                      "payload": dict(task.payload)})
                except OSError:
                    self._drop_conn(conn)
                    conn = None
                    # an accept-then-die worker must not spin forever:
                    # failed delivery counts against the dial budget too
                    dial_failures += 1
                    with state.cond:
                        # undeliverable: the task never reached the
                        # worker, so the attempt is not consumed
                        self._release_locked(state, on_result, task,
                                             attempt, started, "",
                                             consume_attempt=False)
                        if dial_failures >= self.connect_attempts:
                            state.alive -= 1
                            state.cond.notify_all()
                            return
                    time.sleep(self.connect_backoff_s * dial_failures)
                    continue

                # -- await the outcome ---------------------------------
                conn.settimeout(self.lease_timeout_s)
                try:
                    msg = recv_frame(conn)
                except socket.timeout:
                    # lease expired: abandon the whole session -- the
                    # worker may still be computing the stale attempt,
                    # and a fresh dial will queue behind it
                    self._drop_conn(conn)
                    conn = None
                    with state.cond:
                        self._release_locked(
                            state, on_result, task, attempt, started,
                            f"lease expired after {self.lease_timeout_s}s "
                            f"on {format_addr(addr)}")
                    continue
                except (OSError, FrameError):
                    msg = None         # connection died mid-task
                finally:
                    if conn is not None:
                        try:
                            conn.settimeout(None)
                        except OSError:
                            pass

                if msg is None:
                    self._drop_conn(conn)
                    conn = None
                    with state.cond:
                        self._release_locked(
                            state, on_result, task, attempt, started,
                            f"worker {format_addr(addr)} lost mid-task")
                    continue

                # -- validate + record the result ----------------------
                if (msg.get("type") != "result"
                        or msg.get("task_id") != task.task_id
                        or msg.get("attempt") != attempt):
                    # protocol desync (e.g. a stale result from a lease
                    # this coordinator never made): drop the session and
                    # re-lease; the attempt tag makes this safe
                    self._drop_conn(conn)
                    conn = None
                    with state.cond:
                        self._release_locked(
                            state, on_result, task, attempt, started,
                            f"worker {format_addr(addr)} answered out of "
                            "protocol")
                    continue

                dial_failures = 0      # the worker is demonstrably live
                elapsed = msg.get("elapsed_s")
                if not isinstance(elapsed, (int, float)):
                    elapsed = time.monotonic() - started
                if msg.get("status") == "ok":
                    res = TaskResult(task.task_id, msg.get("value"), None,
                                     attempt, float(elapsed))
                else:
                    # a clean Python exception on the worker is
                    # deterministic: report, never retry (pool contract)
                    res = TaskResult(task.task_id, None,
                                     str(msg.get("value")), attempt,
                                     float(elapsed))
                with state.cond:
                    self._finish_locked(state, on_result, res)
        finally:
            if conn is not None:
                try:
                    send_frame(conn, {"type": "shutdown"})
                except OSError:
                    pass
                self._drop_conn(conn)

    @staticmethod
    def _drop_conn(conn: Optional[socket.socket]) -> None:
        if conn is None:
            return
        try:
            conn.close()
        except OSError:
            pass

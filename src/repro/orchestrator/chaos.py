"""Deterministic chaos injection for the campaign fabric wire.

The fabric's robustness claims (lease re-grant, attempt-tagged
results, per-address give-up, zero lost points) are only worth
something if a deliberately hostile network cannot break them.  This
module provides that hostile network as a *test harness you can dial*:

* :class:`ChaosPlan` -- a seed-derived, JSON-safe schedule of wire
  faults, mirroring :class:`repro.sim.faults.FaultPlan` for the
  simulated fabric.  Given the same seed and the same stream of
  connections/frames, the same frames are dropped, delayed, torn,
  corrupted, reset, stalled or replayed.
* :class:`ChaosProxy` -- a frame-aware TCP proxy between
  :class:`~repro.orchestrator.fabric.FabricPool` and one
  :class:`~repro.orchestrator.fabric.FabricWorker`.  It pumps whole
  wire frames (:func:`repro.orchestrator.wire.recv_raw_frame`) in each
  direction and applies the plan's faults between them.
* :class:`ChaosFabric` -- one proxy per worker address; hand its
  ``addrs`` to ``Executor(workers=...)`` / ``--fabric`` and the whole
  campaign runs under chaos.

Faults only ever perturb the *transport*: task execution and result
payloads are untouched (corruption garbles a frame, which the receiver
rejects whole -- the wire's length-prefix framing guarantees no half
message is ever parsed).  The fabric's retry discipline must therefore
reassemble a bit-identical campaign, which ``repro chaos`` and the
``chaos-smoke`` CI job pin.

An injection *budget* (``max_events``) bounds the total number of
faults, so a campaign always terminates: once the budget is spent the
proxy becomes a transparent relay.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .wire import format_addr, parse_addrs, recv_raw_frame

__all__ = ["ChaosPlan", "ChaosProxy", "ChaosFabric", "ChaosLog"]

#: fault kinds in decision order (first match per frame wins); a frame
#: suffers at most one fault so probabilities stay interpretable
FAULT_KINDS = ("reset", "truncate", "drop", "duplicate", "corrupt",
               "stall", "delay")

#: direction tags
C2W, W2C = "c->w", "w->c"


@dataclass(frozen=True)
class ChaosPlan:
    """Seed-derived schedule of fabric wire faults.

    Each probability is evaluated per forwarded frame (in decision
    order :data:`FAULT_KINDS`; at most one fault fires per frame).
    The draws come from a per-``(proxy, connection, direction)`` RNG
    seeded from ``seed``, so a plan is a *schedule*, not a coin flip:
    replaying the same connection/frame stream replays the same
    faults.  ``duplicate`` applies only worker -> coordinator (result
    replays); every other fault applies to both directions.
    """

    #: derives every RNG stream; same seed = same schedule
    seed: int = 0
    #: P(drop the frame silently)
    drop: float = 0.0
    #: P(hold the frame for ~``delay_ms`` before forwarding)
    delay: float = 0.0
    #: mean injected delivery delay, milliseconds
    delay_ms: float = 25.0
    #: P(flip bytes in the frame payload -- receiver sees garbage)
    corrupt: float = 0.0
    #: P(forward a torn prefix of the frame, then cut the connection)
    truncate: float = 0.0
    #: P(reset the connection instead of forwarding)
    reset: float = 0.0
    #: P(stall the stream for ``stall_ms`` -- the slow-worker case)
    stall: float = 0.0
    #: stall duration, milliseconds (size it against the lease timeout)
    stall_ms: float = 250.0
    #: P(replay a worker->coordinator frame a second time)
    duplicate: float = 0.0
    #: total faults injected across the whole fabric before the proxy
    #: turns transparent (guarantees campaign termination); 0 disables
    #: chaos outright
    max_events: int = 64

    def __post_init__(self) -> None:
        for name in ("drop", "delay", "corrupt", "truncate", "reset",
                     "stall", "duplicate"):
            p = getattr(self, name)
            if not (0.0 <= p <= 1.0):
                raise ValueError(f"chaos probability {name} must be in "
                                 f"[0, 1], got {p}")
        if self.delay_ms < 0 or self.stall_ms < 0:
            raise ValueError("chaos delays must be non-negative")
        if self.max_events < 0:
            raise ValueError("chaos budget must be non-negative")

    @classmethod
    def quiet(cls) -> "ChaosPlan":
        """A transparent plan (no faults) -- the control arm."""
        return cls(max_events=0)

    @classmethod
    def mild(cls, seed: int = 0) -> "ChaosPlan":
        """Occasional drops and delays; every campaign should survive
        this without tuning."""
        return cls(seed=seed, drop=0.05, delay=0.10, delay_ms=10.0,
                   max_events=32)

    @classmethod
    def storm(cls, seed: int = 0) -> "ChaosPlan":
        """Every fault kind at once -- the acceptance schedule."""
        return cls(seed=seed, drop=0.08, delay=0.12, delay_ms=15.0,
                   corrupt=0.06, truncate=0.04, reset=0.04, stall=0.03,
                   stall_ms=300.0, duplicate=0.06, max_events=48)

    def rng_for(self, proxy: int, conn: int, direction: str
                ) -> random.Random:
        """The deterministic draw stream of one pumped direction."""
        return random.Random(f"{self.seed}/{proxy}/{conn}/{direction}")

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown chaos plan fields: "
                             f"{sorted(unknown)}")
        return cls(**data)

    def describe(self) -> str:
        active = [f"{k}={getattr(self, k):g}" for k in FAULT_KINDS
                  if getattr(self, k) > 0]
        if not active or self.max_events == 0:
            return "quiet (no faults)"
        return (f"seed={self.seed} " + " ".join(active)
                + f" budget={self.max_events}")


class ChaosLog:
    """Thread-safe record of every injected fault."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counts: Dict[str, int] = {}
        #: (kind, proxy, conn, direction, frame_index)
        self.events: List[Tuple[str, int, int, str, int]] = []

    def record(self, kind: str, proxy: int, conn: int, direction: str,
               frame: int) -> None:
        with self._lock:
            self.counts[kind] = self.counts.get(kind, 0) + 1
            self.events.append((kind, proxy, conn, direction, frame))

    @property
    def total(self) -> int:
        with self._lock:
            return sum(self.counts.values())

    def summary(self) -> str:
        with self._lock:
            if not self.counts:
                return "no chaos events injected"
            parts = [f"{k}={v}" for k, v in sorted(self.counts.items())]
        return "injected " + " ".join(parts)


class _Budget:
    """Shared injection budget across every proxy of a fabric."""

    def __init__(self, limit: int) -> None:
        self._lock = threading.Lock()
        self._left = limit

    def take(self) -> bool:
        with self._lock:
            if self._left <= 0:
                return False
            self._left -= 1
            return True


class ChaosProxy:
    """Frame-aware chaos TCP proxy in front of one fabric worker.

    Listens on an ephemeral localhost port; every accepted coordinator
    connection gets its own backend connection, and the two directions
    are pumped frame by frame through the plan's fault decisions.
    Framing stays intact for every fault except ``truncate`` (which
    deliberately tears a frame and then cuts the connection, so the
    receiver can never misparse the stream).
    """

    def __init__(self, backend: Tuple[str, int], plan: ChaosPlan,
                 index: int = 0, budget: Optional[_Budget] = None,
                 log: Optional[ChaosLog] = None,
                 bind_host: str = "127.0.0.1") -> None:
        self.backend = backend
        self.plan = plan
        self.index = index
        self.budget = budget if budget is not None \
            else _Budget(plan.max_events)
        self.log = log if log is not None else ChaosLog()
        self._bind_host = bind_host
        self._sock: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_seq = 0
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def listen(self) -> Tuple[str, int]:
        """Bind the proxy's listening socket; returns its address."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self._bind_host, 0))
        sock.listen(16)
        self._sock = sock
        return sock.getsockname()[:2]

    @property
    def address(self) -> Tuple[str, int]:
        assert self._sock is not None, "listen() first"
        return self._sock.getsockname()[:2]

    def start(self) -> "ChaosProxy":
        if self._sock is None:
            self.listen()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"chaos-accept-{self.index}",
            daemon=True)
        self._accept_thread.start()
        return self

    def close(self) -> None:
        self._closed = True
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- plumbing ----------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._sock is not None
        while not self._closed:
            try:
                client, _addr = self._sock.accept()
            except OSError:
                return                      # listener closed
            conn_id = self._conn_seq
            self._conn_seq += 1
            try:
                upstream = socket.create_connection(self.backend,
                                                    timeout=10.0)
            except OSError:
                client.close()              # backend gone: refuse
                continue
            pair = _ConnPair(client, upstream)
            for src, dst, direction in ((client, upstream, C2W),
                                        (upstream, client, W2C)):
                threading.Thread(
                    target=self._pump, name=f"chaos-pump-{direction}",
                    args=(pair, src, dst, direction, conn_id),
                    daemon=True).start()

    def _pump(self, pair: "_ConnPair", src: socket.socket,
              dst: socket.socket, direction: str, conn_id: int) -> None:
        plan = self.plan
        rng = plan.rng_for(self.index, conn_id, direction)
        frame_idx = 0
        try:
            while True:
                raw = recv_raw_frame(src)
                if raw is None:
                    break
                fault = self._decide(rng, direction)
                if fault is not None:
                    self.log.record(fault, self.index, conn_id,
                                    direction, frame_idx)
                frame_idx += 1
                if fault == "reset":
                    break
                if fault == "truncate":
                    cut = max(5, len(raw) - 1 - rng.randrange(
                        max(1, len(raw) - 5)))
                    dst.sendall(raw[:cut])
                    break
                if fault == "drop":
                    continue
                if fault == "corrupt":
                    raw = self._corrupt(raw, rng)
                elif fault == "stall":
                    time.sleep(plan.stall_ms / 1000.0)
                elif fault == "delay":
                    time.sleep(plan.delay_ms / 1000.0
                               * (0.5 + rng.random()))
                dst.sendall(raw)
                if fault == "duplicate":
                    dst.sendall(raw)
        except (OSError, ConnectionError):
            pass
        finally:
            pair.close()

    def _decide(self, rng: random.Random, direction: str
                ) -> Optional[str]:
        plan = self.plan
        for kind in FAULT_KINDS:
            p = getattr(plan, kind)
            if p <= 0.0:
                continue
            if kind == "duplicate" and direction != W2C:
                continue
            if rng.random() < p:
                if not self.budget.take():
                    return None         # budget spent: transparent relay
                return kind
        return None

    @staticmethod
    def _corrupt(raw: bytes, rng: random.Random) -> bytes:
        """Flip a few payload bytes; the length prefix stays intact so
        the stream never desynchronises -- the receiver rejects the
        garbled frame whole."""
        if len(raw) <= 4:
            return raw
        body = bytearray(raw)
        for _ in range(min(3, len(raw) - 4)):
            i = 4 + rng.randrange(len(raw) - 4)
            body[i] ^= 0xFF
        return bytes(body)


class _ConnPair:
    """Both sockets of one proxied connection; closed exactly once."""

    def __init__(self, client: socket.socket,
                 upstream: socket.socket) -> None:
        self.client = client
        self.upstream = upstream
        self._lock = threading.Lock()
        self._closed = False

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for sock in (self.client, self.upstream):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


@dataclass
class ChaosFabric:
    """One :class:`ChaosProxy` per fabric worker, sharing one budget.

    Usage::

        with ChaosFabric("127.0.0.1:9001,127.0.0.1:9002",
                         ChaosPlan.storm(seed=7)) as chaos:
            ex = Executor(workers=chaos.addrs, retries=8, ...)
            ...
        print(chaos.log.summary())
    """

    backends: Union[str, Sequence[Tuple[str, int]]]
    plan: ChaosPlan
    log: ChaosLog = field(default_factory=ChaosLog)

    def __post_init__(self) -> None:
        if isinstance(self.backends, str):
            self.backends = parse_addrs(self.backends)
        budget = _Budget(self.plan.max_events)
        self.proxies = [
            ChaosProxy(tuple(addr), self.plan, index=i, budget=budget,
                       log=self.log)
            for i, addr in enumerate(self.backends)]

    def start(self) -> "ChaosFabric":
        for proxy in self.proxies:
            proxy.start()
        return self

    @property
    def addrs(self) -> str:
        """Proxy addresses in ``Executor(workers=...)`` form."""
        return ",".join(format_addr(p.address) for p in self.proxies)

    def close(self) -> None:
        for proxy in self.proxies:
            proxy.close()

    def __enter__(self) -> "ChaosFabric":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

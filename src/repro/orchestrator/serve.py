"""``repro serve``: simulation-as-a-service over HTTP.

A long-running :class:`ReproServer` accepts campaign specs and streams
progress and results back as NDJSON (one JSON object per line), so a
client renders figures progressively instead of waiting for the last
point.  Every request shares one warm :class:`ResultStore` -- the
second user asking for the paper's fig7a gets it served from cache --
and the store's concurrent-write discipline makes simultaneous
campaigns safe.  Execution is whatever the server was started with:
in-process (``workers=1``), a local worker pool, or a remote fabric
fleet (``--fabric host:port,...``).

Endpoints
---------

``GET /healthz``
    ``{"ok": true, "store": {...}, "fabric": ..., "workers": N}``.

``GET /cache``
    The store summary (entry count, bytes).

``POST /campaign``
    Body is a JSON campaign spec, either an explicit point list::

        {"points": [{"config": {...SimConfig...},
                     "runner_kwargs": {...}}, ...]}

    or a rate sweep::

        {"config": {...SimConfig...}, "rates": [0.004, 0.008, ...],
         "runner_kwargs": {...}}

    The response is ``application/x-ndjson``: an ``accepted`` event,
    one ``point`` event per completed point (status ``cached`` /
    ``done`` / ``FAILED``, streamed as each finishes), then one
    terminal ``done`` event carrying every result in input order (or
    an ``error`` event).  Results are ``RunSummary`` dicts -- the same
    JSON the result store persists, bit-identical across sequential,
    pooled and fabric execution.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional

from ..config import SimConfig
from .campaign import CampaignError, Executor, Point, ProgressReporter
from .store import ResultStore

__all__ = ["ReproServer", "points_from_spec", "serve_main"]

#: refuse request bodies beyond this (a campaign spec is small; a
#: gigabyte body is a mistake or an attack)
MAX_SPEC_BYTES = 32 * 1024 * 1024


def points_from_spec(spec: Dict[str, Any]) -> List[Point]:
    """Validate and expand one campaign spec into simulation points."""
    if not isinstance(spec, dict):
        raise ValueError("campaign spec must be a JSON object")
    if "points" in spec:
        raw = spec["points"]
        if not isinstance(raw, list) or not raw:
            raise ValueError("'points' must be a non-empty list")
        points = []
        for i, entry in enumerate(raw):
            if not isinstance(entry, dict) or "config" not in entry:
                raise ValueError(f"point {i} must be an object with "
                                 "a 'config'")
            cfg = SimConfig.from_dict(entry["config"])
            points.append(Point(str(entry.get("id", i)), cfg,
                                dict(entry.get("runner_kwargs") or {})))
        return points
    if "config" in spec and "rates" in spec:
        base = SimConfig.from_dict(spec["config"])
        rates = spec["rates"]
        if not isinstance(rates, list) or not rates:
            raise ValueError("'rates' must be a non-empty list")
        kwargs = dict(spec.get("runner_kwargs") or {})
        return [Point(f"rate:{float(r):.6g}",
                      base.with_overrides(injection_rate=float(r)), kwargs)
                for r in sorted(float(r) for r in rates)]
    raise ValueError("campaign spec needs either 'points' or "
                     "'config' + 'rates'")


class _NdjsonReporter(ProgressReporter):
    """Progress reporter that emits structured events instead of text.

    Slots into the Executor exactly where the terminal reporter does,
    so cached/done/FAILED points stream over HTTP the moment the
    orchestrator learns about them.
    """

    def __init__(self, emit):
        super().__init__(stream=None)
        self._emit = emit

    def point_done(self, label: str, status: str,
                   elapsed_s: float = 0.0) -> None:
        self.completed += 1
        if status == "done":
            self._sim_time += elapsed_s
            self._sim_count += 1
        eta = self.eta_s()
        event = {"event": "point", "completed": self.completed,
                 "total": self.total, "label": label, "status": status,
                 "elapsed_s": round(elapsed_s, 4)}
        if eta is not None:
            event["eta_s"] = round(eta, 1)
        self._emit(event)


class _Handler(BaseHTTPRequestHandler):
    # HTTP/1.0 framing: no Content-Length on the stream, the close
    # delimits it -- which is exactly what NDJSON consumers expect
    protocol_version = "HTTP/1.0"
    server: "ReproServer"

    def log_message(self, fmt, *args):  # pragma: no cover - noise
        if self.server.verbose:
            super().log_message(fmt, *args)

    # -- helpers --------------------------------------------------------

    def _send_json(self, code: int, obj: Dict[str, Any]) -> None:
        body = (json.dumps(obj) + "\n").encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _emit(self, event: Dict[str, Any]) -> None:
        self.wfile.write((json.dumps(event) + "\n").encode("utf-8"))
        self.wfile.flush()

    # -- routes ---------------------------------------------------------

    def do_GET(self) -> None:
        if self.path in ("/healthz", "/"):
            self._send_json(200, self.server.health())
        elif self.path == "/cache":
            self._send_json(200, self.server.cache_info())
        else:
            self._send_json(404, {"error": f"unknown path {self.path}"})

    def do_POST(self) -> None:
        if self.path != "/campaign":
            self._send_json(404, {"error": f"unknown path {self.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            if length <= 0 or length > MAX_SPEC_BYTES:
                raise ValueError(f"Content-Length must be 1..."
                                 f"{MAX_SPEC_BYTES}, got {length}")
            spec = json.loads(self.rfile.read(length).decode("utf-8"))
            points = points_from_spec(spec)
        except (ValueError, UnicodeDecodeError) as exc:
            self._send_json(400, {"error": str(exc)})
            return

        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        self._emit({"event": "accepted", "points": len(points)})
        try:
            executor = self.server.make_executor(_NdjsonReporter(self._emit))
            summaries = executor.run_points(points)
        except CampaignError as exc:
            self._emit({"event": "error", "error": str(exc)})
            return
        except Exception as exc:       # keep the server alive
            self._emit({"event": "error",
                        "error": f"{type(exc).__name__}: {exc}"})
            return
        self._emit({
            "event": "done",
            "points": [p.point_id for p in points],
            "results": [s.to_dict() for s in summaries],
            "stats": {"simulated": executor.stats.simulated,
                      "cached": executor.stats.cached,
                      "failed": executor.stats.failed},
        })


class ReproServer(ThreadingHTTPServer):
    """The ``repro serve`` HTTP front end.

    One instance owns one (optional) result store and one execution
    recipe; each request builds a private :class:`Executor` around
    them, so concurrent campaigns share the warm cache without sharing
    any mutable orchestration state.
    """

    daemon_threads = True

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 store: Optional[ResultStore] = None,
                 workers: int = 1, fabric: Optional[str] = None,
                 timeout_s: Optional[float] = None, retries: int = 1,
                 retry_backoff_s: float = 0.0, verbose: bool = False):
        super().__init__((host, port), _Handler)
        self.store = store
        self.workers = workers
        self.fabric = fabric
        self.timeout_s = timeout_s
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s
        self.verbose = verbose

    @property
    def address(self) -> str:
        host, port = self.server_address[:2]
        return f"{host}:{port}"

    def make_executor(self, reporter: ProgressReporter) -> Executor:
        return Executor(workers=self.workers, store=self.store,
                        timeout_s=self.timeout_s, retries=self.retries,
                        retry_backoff_s=self.retry_backoff_s,
                        reporter=reporter, fabric=self.fabric)

    def health(self) -> Dict[str, Any]:
        return {"ok": True, "fabric": self.fabric,
                "workers": self.workers, "store": self.cache_info()}

    def cache_info(self) -> Dict[str, Any]:
        if self.store is None:
            return {"enabled": False}
        info = self.store.info()
        return {"enabled": True, "root": info.root,
                "entries": info.entries, "total_bytes": info.total_bytes}

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread (tests and embedded use)."""
        thread = threading.Thread(target=self.serve_forever,
                                  name=f"repro-serve-{self.address}",
                                  daemon=True)
        thread.start()
        return thread


def serve_main(host: str, port: int, store: Optional[ResultStore],
               workers: int = 1, fabric: Optional[str] = None,
               timeout_s: Optional[float] = None, retries: int = 1,
               retry_backoff_s: float = 0.0,
               announce=None) -> None:
    """Run the server until interrupted (CLI entry point)."""
    server = ReproServer(host, port, store=store, workers=workers,
                         fabric=fabric, timeout_s=timeout_s,
                         retries=retries, retry_backoff_s=retry_backoff_s,
                         verbose=True)
    if announce:
        announce(server.address)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()

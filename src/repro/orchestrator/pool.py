"""Fault-tolerant multiprocessing worker pool.

Fans independent simulation tasks out across cores.  Design choices,
driven by the failure modes of long campaigns:

* **one process per task**, bounded to ``workers`` concurrent
  processes.  Fork start-up (a few ms on Linux) is negligible next to
  a multi-second simulation point, and it makes fault handling clean:
  a crashed or killed worker can never corrupt a shared task queue,
  it simply never reports, and the supervisor re-runs its task in a
  fresh process.  With the ``fork`` start method children also inherit
  the parent's warm graph/table memo caches for free.
* **per-task timeout**: a hung worker (e.g. a pathological parameter
  point that never saturates the watchdog) is terminated and its task
  retried, up to ``retries`` extra attempts, then reported as failed.
* **crash containment**: a worker that dies (segfault, OOM kill,
  ``os._exit``) is detected via its exit code and retried the same
  way.  A *clean* Python exception inside the task is deterministic
  and is **not** retried -- it is reported as a failure immediately.
* **graceful degradation**: ``workers <= 1`` executes tasks inline in
  the calling process -- same interface, no multiprocessing at all --
  so single-core environments and debuggers see ordinary stack traces.

Tasks name their worker function as a ``"module:callable"`` string
(resolved inside the worker), taking one JSON-safe payload dict and
returning a JSON-safe result dict.  Keeping the boundary plain-data is
what lets the campaign layer persist every result in the
content-addressed store.
"""

from __future__ import annotations

import importlib
import multiprocessing as mp
import queue
import random
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..config import SimConfig
from ..experiments.runner import run_simulation
from ..metrics.summary import RunSummary

__all__ = ["Task", "TaskResult", "WorkerPool", "retry_delay_s",
           "run_point_task"]

#: seconds to keep waiting for the result of a worker that exited
#: cleanly (exit code 0) before declaring it lost -- covers the queue
#: feeder-thread flush racing the supervisor's liveness check
_EXIT_GRACE_S = 10.0


@dataclass(frozen=True)
class Task:
    """One unit of work: a worker function name plus its payload."""

    task_id: str
    #: worker function as ``"module:callable"`` (resolved in the worker)
    fn: str
    #: JSON-safe argument dict passed to the function
    payload: Dict[str, Any] = field(default_factory=dict)


@dataclass
class TaskResult:
    """Outcome of one task after all attempts."""

    task_id: str
    value: Optional[Dict[str, Any]]
    error: Optional[str]
    attempts: int
    elapsed_s: float

    @property
    def ok(self) -> bool:
        return self.error is None


def _resolve(fn_path: str) -> Callable[[Dict[str, Any]], Any]:
    module_name, _, attr = fn_path.partition(":")
    if not module_name or not attr:
        raise ValueError(f"task fn must be 'module:callable', got {fn_path!r}")
    module = importlib.import_module(module_name)
    return getattr(module, attr)


def run_point_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker function for one simulation point.

    ``payload`` is ``{"config": SimConfig dict, "runner_kwargs":
    plain dict}``; the result is the ``RunSummary`` dict.
    """
    cfg = SimConfig.from_dict(payload["config"])
    kwargs = dict(payload.get("runner_kwargs") or {})
    summary = run_simulation(cfg, **kwargs)
    return summary.to_dict()


#: fn-path of :func:`run_point_task`, used by the campaign layer
POINT_TASK_FN = "repro.orchestrator.pool:run_point_task"


def retry_delay_s(backoff_s: float, jitter: float, failed_attempt: int,
                  rng: random.Random) -> float:
    """Seconds to wait before re-running after ``failed_attempt``.

    Exponential (doubling per attempt) from ``backoff_s``, stretched by
    up to ``jitter`` (a fraction) of random extra delay.  Shared by the
    local :class:`WorkerPool` and the remote fabric coordinator so both
    re-lease with identical pacing.
    """
    if backoff_s <= 0:
        return 0.0
    delay = backoff_s * (2.0 ** (failed_attempt - 1))
    return delay * (1.0 + jitter * rng.random())


def _task_main(result_q, task_id: str, attempt: int, fn_path: str,
               payload: Dict[str, Any]) -> None:
    """Child-process entry point: run one task, report, exit.

    The queue entry carries the ``attempt`` tag it was launched under:
    a result flushed by an attempt the supervisor has since abandoned
    (timed out and terminated mid-flush) must not be attributed to a
    live retry of the same task.
    """
    try:
        fn = _resolve(fn_path)
        value = fn(payload)
        result_q.put((task_id, attempt, "ok", value))
    except BaseException:
        result_q.put((task_id, attempt, "err", traceback.format_exc()))


class WorkerPool:
    """Bounded pool of single-task worker processes.

    ``timeout_s`` bounds each *attempt*; ``retries`` is how many extra
    attempts a crashed or timed-out task gets before it is reported
    failed (clean exceptions are never retried -- they are
    deterministic).

    ``retry_backoff_s`` delays each re-run: attempt ``n+1`` starts no
    sooner than ``retry_backoff_s * 2**(n-1)`` seconds after attempt
    ``n`` failed, stretched by up to ``retry_jitter`` (a fraction) of
    random extra delay so simultaneous failures do not retry in
    lock-step.  The default 0 keeps the historical immediate-retry
    behaviour; a machine whose workers die from memory pressure wants
    a second or two of breathing room instead of being hammered.
    """

    def __init__(self, workers: int = 1, timeout_s: Optional[float] = None,
                 retries: int = 1, start_method: Optional[str] = None,
                 retry_backoff_s: float = 0.0, retry_jitter: float = 0.5):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        if retry_jitter < 0:
            raise ValueError("retry_jitter must be >= 0")
        self.workers = max(1, int(workers))
        self.timeout_s = timeout_s
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s
        self.retry_jitter = retry_jitter
        self._rng = random.Random()
        if start_method is None:
            start_method = ("fork" if "fork" in mp.get_all_start_methods()
                            else "spawn")
        self.start_method = start_method

    def _retry_delay_s(self, failed_attempt: int) -> float:
        """Seconds to wait before re-running after ``failed_attempt``."""
        return retry_delay_s(self.retry_backoff_s, self.retry_jitter,
                             failed_attempt, self._rng)

    @staticmethod
    def _claim(active: Dict[str, tuple], task_id: str,
               attempt: int) -> Optional[tuple]:
        """Match a result-queue entry to the live attempt of its task.

        Returns (and removes) the active record only when the entry's
        attempt tag matches the attempt currently in flight; a stale
        flush from a terminated earlier attempt returns ``None`` and
        leaves the live attempt untouched.
        """
        rec = active.get(task_id)
        if rec is None or rec[2] != attempt:
            return None
        return active.pop(task_id)

    @staticmethod
    def _backoff_wait_s(pending, now: float) -> float:
        """Idle seconds until the earliest pending attempt may start."""
        if not pending:
            return 0.0
        return max(0.0, min(entry[2] for entry in pending) - now)

    def run(self, tasks: Sequence[Task],
            on_result: Optional[Callable[[TaskResult], None]] = None
            ) -> List[TaskResult]:
        """Execute every task; results come back in input order.

        ``on_result`` fires as each task finishes (completion order),
        which is what streams per-point progress to the CLI.
        """
        ids = [t.task_id for t in tasks]
        if len(set(ids)) != len(ids):
            raise ValueError("task ids must be unique within one run() call")
        if not tasks:
            return []
        if self.workers <= 1:
            done = self._run_inline(tasks, on_result)
        else:
            done = self._run_parallel(tasks, on_result)
        return [done[t.task_id] for t in tasks]

    # -- inline degradation --------------------------------------------

    def _run_inline(self, tasks, on_result) -> Dict[str, TaskResult]:
        done: Dict[str, TaskResult] = {}
        for task in tasks:
            t0 = time.monotonic()
            try:
                value = _resolve(task.fn)(task.payload)
                res = TaskResult(task.task_id, value, None, 1,
                                 time.monotonic() - t0)
            except Exception:
                res = TaskResult(task.task_id, None, traceback.format_exc(),
                                 1, time.monotonic() - t0)
            done[task.task_id] = res
            if on_result:
                on_result(res)
        return done

    # -- multiprocessing path ------------------------------------------

    def _run_parallel(self, tasks, on_result) -> Dict[str, TaskResult]:
        ctx = mp.get_context(self.start_method)
        result_q = ctx.Queue()
        #: (task, attempt, not_before): the attempt may not start
        #: before the monotonic instant ``not_before`` (retry backoff)
        pending = deque((task, 1, 0.0) for task in tasks)
        #: task_id -> (process, task, attempt, started_at)
        active: Dict[str, tuple] = {}
        #: task_id -> monotonic time its process was first seen exited
        exited_at: Dict[str, float] = {}
        done: Dict[str, TaskResult] = {}

        def finish(res: TaskResult) -> None:
            done[res.task_id] = res
            if on_result:
                on_result(res)

        def retry_or_fail(task: Task, attempt: int, started: float,
                          reason: str) -> None:
            if attempt <= self.retries:
                not_before = time.monotonic() + self._retry_delay_s(attempt)
                pending.append((task, attempt + 1, not_before))
            else:
                finish(TaskResult(task.task_id, None,
                                  f"{reason} (after {attempt} attempts)",
                                  attempt, time.monotonic() - started))

        def next_ready() -> Optional[tuple]:
            """Pop the first pending attempt whose backoff has elapsed."""
            now = time.monotonic()
            for i, entry in enumerate(pending):
                if entry[2] <= now:
                    del pending[i]
                    return entry
            return None

        try:
            while pending or active:
                while pending and len(active) < self.workers:
                    entry = next_ready()
                    if entry is None:
                        # everything pending is backing off; the result
                        # poll below provides the pacing
                        break
                    task, attempt, _not_before = entry
                    proc = ctx.Process(
                        target=_task_main,
                        args=(result_q, task.task_id, attempt, task.fn,
                              task.payload),
                        daemon=True)
                    proc.start()
                    active[task.task_id] = (proc, task, attempt,
                                            time.monotonic())

                if not active:
                    # every pending attempt is backing off and nothing
                    # is in flight: no result can arrive, so polling
                    # the queue would be a pure busy-wait -- sleep
                    # until the earliest not_before instead
                    wait = self._backoff_wait_s(pending, time.monotonic())
                    if wait > 0:
                        time.sleep(wait)
                    continue

                try:
                    task_id, res_attempt, status, value = \
                        result_q.get(timeout=0.05)
                except queue.Empty:
                    pass
                else:
                    rec = self._claim(active, task_id, res_attempt)
                    if rec is not None:
                        proc, task, attempt, started = rec
                        exited_at.pop(task_id, None)
                        proc.join(timeout=5.0)
                        elapsed = time.monotonic() - started
                        if status == "ok":
                            finish(TaskResult(task_id, value, None, attempt,
                                              elapsed))
                        else:
                            # clean exception: deterministic, don't retry
                            finish(TaskResult(task_id, None, value, attempt,
                                              elapsed))
                    continue

                now = time.monotonic()
                for task_id, (proc, task, attempt, started) in \
                        list(active.items()):
                    if (self.timeout_s is not None
                            and now - started > self.timeout_s):
                        proc.terminate()
                        proc.join(timeout=5.0)
                        active.pop(task_id)
                        exited_at.pop(task_id, None)
                        retry_or_fail(task, attempt, started,
                                      f"timed out after {self.timeout_s}s")
                    elif not proc.is_alive():
                        if proc.exitcode not in (0, None):
                            # crashed: result can no longer arrive
                            active.pop(task_id)
                            exited_at.pop(task_id, None)
                            retry_or_fail(
                                task, attempt, started,
                                f"worker died with exit code {proc.exitcode}")
                        else:
                            # exited cleanly; allow the queue flush to race
                            first = exited_at.setdefault(task_id, now)
                            if now - first > _EXIT_GRACE_S:
                                active.pop(task_id)
                                exited_at.pop(task_id, None)
                                retry_or_fail(task, attempt, started,
                                              "worker exited without a result")
        finally:
            for proc, _task, _attempt, _started in active.values():
                proc.terminate()
            for proc, _task, _attempt, _started in active.values():
                proc.join(timeout=5.0)
            result_q.close()
        return done

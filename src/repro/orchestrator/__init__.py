"""Parallel sweep orchestrator: worker pool, result store, campaigns.

Three layers, composable and individually testable:

* :mod:`~repro.orchestrator.pool` -- fault-tolerant multiprocessing
  worker pool (per-task timeout, bounded retry of crashed/hung
  workers, inline degradation at ``workers=1``);
* :mod:`~repro.orchestrator.store` -- content-addressed on-disk result
  store keyed by a canonical hash of the full point description,
  giving checkpoint/resume and a stable results-artifact format;
* :mod:`~repro.orchestrator.campaign` -- the :class:`Executor` front
  door (store-first, then pool) plus :class:`Campaign` progress
  streaming; this is what ``sweep_rates(..., executor=)``, the
  experiment registry, the CLI and ``benchmarks/run_paper_profile.py``
  route through.
"""

from __future__ import annotations

from .campaign import (Campaign, CampaignError, Executor, ExecutorStats,
                       Point, ProgressReporter)
from .pool import Task, TaskResult, WorkerPool
from .store import DEFAULT_CACHE_DIR, ResultStore, StoreInfo

__all__ = [
    "Campaign",
    "CampaignError",
    "DEFAULT_CACHE_DIR",
    "Executor",
    "ExecutorStats",
    "Point",
    "ProgressReporter",
    "ResultStore",
    "StoreInfo",
    "Task",
    "TaskResult",
    "WorkerPool",
]

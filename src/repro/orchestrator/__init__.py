"""Parallel sweep orchestrator: worker pool, result store, campaigns.

Five layers, composable and individually testable:

* :mod:`~repro.orchestrator.pool` -- fault-tolerant multiprocessing
  worker pool (per-task timeout, bounded retry of crashed/hung
  workers, inline degradation at ``workers=1``);
* :mod:`~repro.orchestrator.store` -- content-addressed on-disk result
  store keyed by a canonical hash of the full point description,
  giving checkpoint/resume, a stable results-artifact format, and a
  concurrent-writer discipline safe for many processes (atomic
  ``meta.json``, sharded objects, ``compact()`` + ``index.json``);
* :mod:`~repro.orchestrator.fabric` -- the distributed campaign
  fabric: :class:`FabricWorker` remote work-queue processes and the
  pool-compatible :class:`FabricPool` coordinator (lease-based handout
  with timeout-driven re-lease over a length-prefixed JSON TCP
  protocol);
* :mod:`~repro.orchestrator.serve` -- ``repro serve``:
  :class:`ReproServer`, a long-running HTTP service that accepts
  campaign specs, reuses the warm cache across requests and streams
  NDJSON progress;
* :mod:`~repro.orchestrator.campaign` -- the :class:`Executor` front
  door (store-first, then whichever pool: inline, local processes or
  fabric) plus :class:`Campaign` progress streaming; this is what
  ``sweep_rates(..., executor=)``, the experiment registry, the CLI
  and ``benchmarks/run_paper_profile.py`` route through.
"""

from __future__ import annotations

from .campaign import (Campaign, CampaignError, Executor, ExecutorStats,
                       Point, ProgressReporter)
from .fabric import FabricPool, FabricWorker
from .pool import Task, TaskResult, WorkerPool
from .serve import ReproServer
from .store import (CompactStats, DEFAULT_CACHE_DIR, ResultStore,
                    StoreInfo)

__all__ = [
    "Campaign",
    "CampaignError",
    "CompactStats",
    "DEFAULT_CACHE_DIR",
    "Executor",
    "ExecutorStats",
    "FabricPool",
    "FabricWorker",
    "Point",
    "ProgressReporter",
    "ReproServer",
    "ResultStore",
    "StoreInfo",
    "Task",
    "TaskResult",
    "WorkerPool",
]

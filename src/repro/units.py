"""Time, bandwidth and size units used throughout the simulator.

The simulator keeps time as **integer picoseconds** internally.  All of the
Myrinet timing constants from the paper (Section 4.3--4.5) are exact
multiples of 1 ps, so integer time avoids floating-point comparison
hazards in the event queue while remaining exact:

* one flit (one byte) crosses a link every 6.25 ns  -> 6250 ps
* a 10 m LAN cable has 4.92 ns/m propagation delay  -> 49200 ps
* switch routing decision: 150 ns                   -> 150000 ps
* in-transit detection: 275 ns, DMA set-up: 200 ns  -> 275000 / 200000 ps

Public helpers convert between picoseconds and the nanosecond values used
in the paper's plots (``flits/ns/switch`` for accepted traffic, ns for
latency).
"""

from __future__ import annotations

#: picoseconds per nanosecond
PS_PER_NS: int = 1_000

#: picoseconds per microsecond
PS_PER_US: int = 1_000_000

#: picoseconds per millisecond
PS_PER_MS: int = 1_000_000_000


def ns(value: float) -> int:
    """Convert a duration in nanoseconds to integer picoseconds.

    Values that are not exact multiples of 1 ps are rounded to the
    nearest picosecond (the paper's constants are all exact).
    """
    return round(value * PS_PER_NS)


def us(value: float) -> int:
    """Convert a duration in microseconds to integer picoseconds."""
    return round(value * PS_PER_US)


def ms(value: float) -> int:
    """Convert a duration in milliseconds to integer picoseconds."""
    return round(value * PS_PER_MS)


def to_ns(value_ps: int) -> float:
    """Convert integer picoseconds back to (float) nanoseconds."""
    return value_ps / PS_PER_NS


def flits_per_ns(flits: int, window_ps: int) -> float:
    """Rate of ``flits`` delivered over a window of ``window_ps`` picoseconds,
    expressed in flits/ns (the unit used on the paper's x axes, before
    normalising by the number of switches)."""
    if window_ps <= 0:
        raise ValueError("window must be positive")
    return flits * PS_PER_NS / window_ps


KB: int = 1024
MB: int = 1024 * 1024

"""Topology invariant checks.

:func:`check_topology` is called by the experiment runner before any
simulation and by the topology test-suite.  It verifies the structural
assumptions the routing and simulation layers rely on:

* the graph is frozen, connected, and respects the switch port budget;
* adjacency, link index and per-switch host lists are mutually
  consistent;
* every host is attached to a valid switch.
"""

from __future__ import annotations

from .graph import NetworkGraph


def check_topology(g: NetworkGraph) -> None:
    """Raise :class:`AssertionError` describing the first violated invariant."""
    assert g.frozen, "topology must be frozen before use"
    assert g.is_connected(), f"{g.name}: switch graph is not connected"
    assert g.num_hosts > 0, f"{g.name}: no hosts attached"

    # port accounting
    for s in g.switches():
        used = g.degree(s) + len(g.hosts_at(s))
        assert used == g.ports_used(s), (
            f"{g.name}: switch {s} port bookkeeping mismatch "
            f"({used} != {g.ports_used(s)})")
        assert used <= g.switch_ports, (
            f"{g.name}: switch {s} uses {used} ports > {g.switch_ports}")

    # adjacency <-> link list consistency
    seen_from_adj = set()
    for s in g.switches():
        for nb, lid in g.neighbors(s):
            link = g.links[lid]
            assert {link.a, link.b} == {s, nb}, (
                f"{g.name}: adjacency of switch {s} disagrees with link {lid}")
            seen_from_adj.add(lid)
    assert seen_from_adj == set(range(g.num_links)), (
        f"{g.name}: some links missing from adjacency lists")

    for link in g.links:
        assert g.link_between(link.a, link.b) == link.id, (
            f"{g.name}: link index broken for link {link.id}")

    # hosts
    for host in g.hosts:
        assert 0 <= host.switch < g.num_switches, (
            f"{g.name}: host {host.id} attached to invalid switch")
        assert host.id in g.hosts_at(host.switch), (
            f"{g.name}: host {host.id} missing from hosts_at({host.switch})")

"""2-D torus with express channels (paper Figure 5).

Identical to the plain torus except that every switch is additionally
connected to its *second-order* neighbours -- the switches two hops away
in each dimension (Dally's express cubes [3]).  In the paper's 8x8
configuration this uses all 16 switch ports: 4 torus links + 4 express
links + 8 hosts.

In a ring of size ``k`` the +2 links form one secondary ring (k odd) or
two disjoint secondary rings (k even); either way each switch gains
exactly two express neighbours per dimension when ``k > 4``.  For ``k ==
4`` the +2 neighbour in both directions is the same switch, so only one
express cable is added, and for ``k <= 2`` the express channel would
duplicate a torus link and is skipped.
"""

from __future__ import annotations

from .graph import GridGeometry, NetworkGraph
from .torus import switch_id


def build_torus_express(rows: int = 8, cols: int = 8, hosts_per_switch: int = 8,
                        switch_ports: int = 16) -> NetworkGraph:
    """Build a 2-D torus augmented with express channels.

    Express cables connect ``(r, c)`` to ``(r, c+2)`` and ``(r+2, c)``
    (mod the ring size), skipping any pair already joined by a torus
    cable and never adding a cable twice.
    """
    if rows < 1 or cols < 1:
        raise ValueError("torus dimensions must be positive")
    n = rows * cols
    g = NetworkGraph(n, switch_ports, name=f"torus-express-{rows}x{cols}")
    # the underlying ring structure is a torus: geometry-aware schemes
    # may route over the +1 rings and simply not use the express cables
    g.grid = GridGeometry(rows, cols, wrap=True)
    # regular torus links first (same ordering as build_torus)
    for r in range(rows):
        for c in range(cols):
            s = switch_id(r, c, cols)
            if cols > 1:
                east = switch_id(r, (c + 1) % cols, cols)
                if g.link_between(s, east) is None:
                    g.add_link(s, east)
            if rows > 1:
                south = switch_id((r + 1) % rows, c, cols)
                if g.link_between(s, south) is None:
                    g.add_link(s, south)
    # express channels to second-order neighbours
    for r in range(rows):
        for c in range(cols):
            s = switch_id(r, c, cols)
            if cols > 2:
                east2 = switch_id(r, (c + 2) % cols, cols)
                if east2 != s and g.link_between(s, east2) is None:
                    g.add_link(s, east2)
            if rows > 2:
                south2 = switch_id((r + 2) % rows, c, cols)
                if south2 != s and g.link_between(s, south2) is None:
                    g.add_link(s, south2)
    for s in range(n):
        g.add_hosts(s, hosts_per_switch)
    return g.freeze()

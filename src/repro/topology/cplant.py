"""CPLANT topology (paper Figure 6 -- Computational Plant, Sandia).

The paper describes the machine as: 50 16-port switches connecting 400
nodes (8 hosts per switch).  48 switches form 6 groups of 8; inside a
group each switch uses 4 ports for intra-group links and 4 ports to reach
its *equivalent* switches in other groups.  Each group is a 3-hypercube
plus one extra cable per switch to the *farthest* switch of the group
(its bit-complement).  The six groups themselves form an *incomplete*
hypercube "which also contains connections between farthest nodes", and
the remaining 2 switches form an additional group.  The paper notes the
resulting topology "is not completely regular".

The paper does not pin down every cable, so this builder makes the
following documented choices (DESIGN.md Section 2):

* **intra-group**: 3-cube edges (``b ^ 1``, ``b ^ 2``, ``b ^ 4``) plus the
  complement diagonal ``b ^ 7`` -- exactly 4 ports per switch;
* **group graph**: hypercube edges among group ids 0..5 (an edge when
  ``g ^ 2**k < 6``) plus the two Hamming-distance-3 "farthest" pairs
  (2, 5) and (3, 4); every group then has exactly 3 neighbour groups, and
  switch ``b`` of group ``g`` is cabled to switch ``b`` of each
  neighbouring group ("equivalent switches");
* **extra group**: the two spare switches are cabled to each other and
  fan out to the six groups -- one to switch 0 of each group, the other
  to switch 7 of each group -- using the one remaining port of those
  switches.

All port budgets check out: switches 0 and 7 of each group use all 16
ports, the rest have one port free, and the spare switches have one port
free, matching the "not completely regular" remark.
"""

from __future__ import annotations

from typing import List, Tuple

from .graph import NetworkGraph

#: number of switches per regular group (a 3-hypercube)
GROUP_SIZE = 8
#: number of regular groups
NUM_GROUPS = 6

#: Hamming-distance-3 pairs among group ids 0..5 ("farthest nodes" of the
#: incomplete hypercube of groups)
_FARTHEST_GROUP_PAIRS: Tuple[Tuple[int, int], ...] = ((2, 5), (3, 4))


def group_switch(group: int, member: int) -> int:
    """Global switch id of member ``member`` (0..7) of ``group`` (0..5)."""
    if not (0 <= group < NUM_GROUPS and 0 <= member < GROUP_SIZE):
        raise ValueError(f"invalid group member ({group}, {member})")
    return group * GROUP_SIZE + member


def group_neighbour_pairs() -> List[Tuple[int, int]]:
    """Unordered neighbour pairs of the 6-group interconnection graph."""
    pairs = set()
    for g in range(NUM_GROUPS):
        for bit in (1, 2, 4):
            h = g ^ bit
            if h < NUM_GROUPS:
                pairs.add((min(g, h), max(g, h)))
    pairs.update(_FARTHEST_GROUP_PAIRS)
    return sorted(pairs)


def build_cplant(hosts_per_switch: int = 8, switch_ports: int = 16) -> NetworkGraph:
    """Build the 50-switch / 400-host CPLANT network."""
    num_switches = NUM_GROUPS * GROUP_SIZE + 2
    g = NetworkGraph(num_switches, switch_ports, name="cplant")
    spare_a = NUM_GROUPS * GROUP_SIZE       # switch 48
    spare_b = NUM_GROUPS * GROUP_SIZE + 1   # switch 49

    # intra-group: 3-cube plus complement diagonal
    for grp in range(NUM_GROUPS):
        for b in range(GROUP_SIZE):
            for bit in (1, 2, 4):
                nb = b ^ bit
                if b < nb:
                    g.add_link(group_switch(grp, b), group_switch(grp, nb))
            comp = b ^ 0x7
            if b < comp and g.link_between(group_switch(grp, b),
                                           group_switch(grp, comp)) is None:
                g.add_link(group_switch(grp, b), group_switch(grp, comp))

    # inter-group: equivalent switches of neighbouring groups
    for ga, gb in group_neighbour_pairs():
        for b in range(GROUP_SIZE):
            g.add_link(group_switch(ga, b), group_switch(gb, b))

    # the additional 2-switch group
    g.add_link(spare_a, spare_b)
    for grp in range(NUM_GROUPS):
        g.add_link(spare_a, group_switch(grp, 0))
        g.add_link(spare_b, group_switch(grp, GROUP_SIZE - 1))

    for s in range(num_switches):
        g.add_hosts(s, hosts_per_switch)
    return g.freeze()

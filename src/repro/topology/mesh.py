"""2-D mesh topology (extension substrate).

A torus without wraparound links.  Not part of the paper's evaluation,
but the natural habitat of the classic **dimension-order routing**
baseline (`repro.routing.dor`): on a mesh, DOR is minimal and
deadlock-free without virtual channels, which makes it a meaningful
third point of comparison against up*/down* and ITB routing -- and a
foil for demonstrating *why* the torus needs the ITB mechanism (DOR on
a torus deadlocks without virtual channels, which Myrinet does not
have).
"""

from __future__ import annotations

from .graph import GridGeometry, NetworkGraph
from .torus import switch_id


def build_mesh(rows: int = 8, cols: int = 8, hosts_per_switch: int = 8,
               switch_ports: int = 16) -> NetworkGraph:
    """Build a ``rows`` x ``cols`` 2-D mesh (no wraparound)."""
    if rows < 1 or cols < 1:
        raise ValueError("mesh dimensions must be positive")
    n = rows * cols
    g = NetworkGraph(n, switch_ports, name=f"mesh-{rows}x{cols}")
    g.grid = GridGeometry(rows, cols, wrap=False)
    for r in range(rows):
        for c in range(cols):
            s = switch_id(r, c, cols)
            if c + 1 < cols:
                g.add_link(s, switch_id(r, c + 1, cols))
            if r + 1 < rows:
                g.add_link(s, switch_id(r + 1, c, cols))
    for s in range(n):
        g.add_hosts(s, hosts_per_switch)
    return g.freeze()

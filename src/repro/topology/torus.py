"""2-D torus topology (paper Figure 4).

The paper's configuration is an 8x8 grid of 16-port switches, each
connected to its four wraparound neighbours by a single cable and hosting
8 workstations (512 hosts total, 4 ports left open per switch).  The
builder is parameterised so tests and scaled-down benches can use smaller
instances.
"""

from __future__ import annotations

from .graph import GridGeometry, NetworkGraph


def switch_id(row: int, col: int, cols: int) -> int:
    """Row-major switch numbering used by all torus helpers."""
    return row * cols + col


def switch_coords(switch: int, cols: int) -> tuple[int, int]:
    """Inverse of :func:`switch_id`."""
    return divmod(switch, cols)


def build_torus(rows: int = 8, cols: int = 8, hosts_per_switch: int = 8,
                switch_ports: int = 16) -> NetworkGraph:
    """Build a ``rows`` x ``cols`` 2-D torus.

    Each switch links to its +1 neighbour in each dimension (wraparound),
    which yields exactly one cable per adjacent pair.  Degenerate rings of
    size 2 are supported (the wraparound cable coincides with the direct
    one and is added once); rings of size 1 have no links in that
    dimension.
    """
    if rows < 1 or cols < 1:
        raise ValueError("torus dimensions must be positive")
    n = rows * cols
    needed = hosts_per_switch + (2 if rows > 2 else (1 if rows == 2 else 0)) \
        + (2 if cols > 2 else (1 if cols == 2 else 0))
    if needed > switch_ports:
        raise ValueError(
            f"{switch_ports}-port switches cannot host {hosts_per_switch} "
            f"hosts plus {needed - hosts_per_switch} torus links")
    g = NetworkGraph(n, switch_ports, name=f"torus-{rows}x{cols}")
    g.grid = GridGeometry(rows, cols, wrap=True)
    for r in range(rows):
        for c in range(cols):
            s = switch_id(r, c, cols)
            if cols > 1:
                east = switch_id(r, (c + 1) % cols, cols)
                if g.link_between(s, east) is None:
                    g.add_link(s, east)
            if rows > 1:
                south = switch_id((r + 1) % rows, c, cols)
                if g.link_between(s, south) is None:
                    g.add_link(s, south)
    for s in range(n):
        g.add_hosts(s, hosts_per_switch)
    return g.freeze()

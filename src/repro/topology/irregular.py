"""Random irregular topology generator (extension substrate).

The in-transit buffer mechanism was first proposed for NOWs with
*irregular* topology (references [5, 6] of the paper).  This generator
reproduces the usual methodology of those papers: a random connected
switch graph where each switch has a bounded number of inter-switch links
and no two switches are joined by more than one cable.

The generation is deterministic for a given seed, which keeps tests and
ablation benches reproducible.
"""

from __future__ import annotations

import random

from .graph import NetworkGraph


def build_irregular(num_switches: int = 16, hosts_per_switch: int = 8,
                    switch_ports: int = 16, max_switch_links: int = 4,
                    seed: int = 1) -> NetworkGraph:
    """Generate a random connected irregular network.

    A random spanning tree guarantees connectivity; extra cables are then
    added between random switch pairs until every switch either reaches
    ``max_switch_links`` inter-switch cables or no legal pair remains.

    ``max_switch_links`` defaults to 4, matching the evaluation set-up of
    the authors' irregular-network papers (and leaving the same 4 open
    ports per switch as the paper's 2-D torus).
    """
    if num_switches < 2:
        raise ValueError("need at least 2 switches")
    if max_switch_links < 1:
        raise ValueError("max_switch_links must be >= 1")
    if hosts_per_switch + max_switch_links > switch_ports:
        raise ValueError("port budget exceeded: "
                         f"{hosts_per_switch} hosts + {max_switch_links} links "
                         f"> {switch_ports} ports")
    rng = random.Random(seed)
    g = NetworkGraph(num_switches, switch_ports,
                     name=f"irregular-{num_switches}-s{seed}")

    # random spanning tree: attach each new switch to a random earlier
    # switch that still has cable budget left
    order = list(range(num_switches))
    rng.shuffle(order)
    for i in range(1, num_switches):
        a = order[i]
        candidates = [order[j] for j in range(i)
                      if g.degree(order[j]) < max_switch_links]
        if not candidates:
            raise ValueError(
                f"max_switch_links={max_switch_links} too small to keep "
                f"{num_switches} switches connected")
        g.add_link(a, candidates[rng.randrange(len(candidates))])

    # densify up to the per-switch cable budget
    candidates = [(a, b) for a in range(num_switches)
                  for b in range(a + 1, num_switches)]
    rng.shuffle(candidates)
    for a, b in candidates:
        if g.degree(a) >= max_switch_links or g.degree(b) >= max_switch_links:
            continue
        if g.link_between(a, b) is not None:
            continue
        g.add_link(a, b)

    for s in range(num_switches):
        g.add_hosts(s, hosts_per_switch)
    return g.freeze()

"""Topology mutation: link and switch failures (extension).

Myrinet NICs "check for changes in the network topology (shutdown of
hosts, link/switch failures ...) in order to maintain the routing
tables" (paper Section 2).  These helpers produce the post-failure
topology so the routing stack can recompute tables and the resilience
benches can measure how gracefully each algorithm degrades.

Graphs are immutable once frozen, so mutation means rebuilding.  Link
removal preserves switch/host ids (link ids are positional and
renumber); switch removal renumbers both switch and host ids densely.
The ``*_mapped`` variants return the old->new id maps alongside the
graph so per-host / per-switch measurements can be aligned across a
failure instead of silently comparing renumbered ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set

from .graph import NetworkGraph


@dataclass(frozen=True)
class LinkRemoval:
    """Result of :func:`without_links_mapped`.

    ``link_map`` maps surviving old link ids to their (renumbered) ids
    in ``graph``; removed links are absent.  Switch and host ids are
    preserved, so no maps are needed for them.
    """

    graph: NetworkGraph
    link_map: Dict[int, int]


@dataclass(frozen=True)
class SwitchRemoval:
    """Result of :func:`without_switch_mapped`.

    ``switch_map`` / ``host_map`` map old ids to new ids; the dead
    switch and its hosts are absent from the maps.  Any per-switch or
    per-host comparison across the failure must go through these maps
    -- both id spaces are renumbered densely.
    """

    graph: NetworkGraph
    switch_map: Dict[int, int]
    host_map: Dict[int, int]


def without_links_mapped(g: NetworkGraph, link_ids: Iterable[int],
                         require_connected: bool = True) -> LinkRemoval:
    """A copy of ``g`` with the given cables removed, plus the id map.

    Link ids are renumbered (they are positional); switch and host ids
    are preserved.  With ``require_connected`` (default) a failure that
    would partition the switch graph raises :class:`ValueError` --
    routing is undefined across a partition.
    """
    dead: Set[int] = set(link_ids)
    for lid in dead:
        if not (0 <= lid < g.num_links):
            raise ValueError(f"link {lid} out of range")
    out = NetworkGraph(g.num_switches, g.switch_ports,
                       name=f"{g.name}-minus-{len(dead)}-links")
    link_map: Dict[int, int] = {}
    for link in g.links:
        if link.id not in dead:
            link_map[link.id] = out.add_link(link.a, link.b)
    for host in g.hosts:
        out.add_host(host.switch)
    out.freeze()
    if require_connected and not out.is_connected():
        raise ValueError(
            f"removing links {sorted(dead)} partitions the network")
    return LinkRemoval(out, link_map)


def without_links(g: NetworkGraph, link_ids: Iterable[int],
                  require_connected: bool = True) -> NetworkGraph:
    """Like :func:`without_links_mapped` but returns just the graph."""
    return without_links_mapped(g, link_ids, require_connected).graph


def without_switch_mapped(g: NetworkGraph, switch: int,
                          require_connected: bool = True) -> SwitchRemoval:
    """A copy of ``g`` with one switch removed, plus the old->new maps.

    The remaining switches are renumbered densely (old id order kept)
    and host ids are reassigned in the same order; the returned
    :class:`SwitchRemoval` carries the explicit ``switch_map`` and
    ``host_map`` so callers never have to re-derive the shift.
    """
    if not (0 <= switch < g.num_switches):
        raise ValueError(f"switch {switch} out of range")
    if g.num_switches < 2:
        raise ValueError("cannot remove the only switch")

    def new_id(old: int) -> Optional[int]:
        if old == switch:
            return None
        return old - 1 if old > switch else old

    out = NetworkGraph(g.num_switches - 1, g.switch_ports,
                       name=f"{g.name}-minus-sw{switch}")
    for link in g.links:
        a, b = new_id(link.a), new_id(link.b)
        if a is not None and b is not None:
            out.add_link(a, b)
    host_map: Dict[int, int] = {}
    for host in g.hosts:
        s = new_id(host.switch)
        if s is not None:
            host_map[host.id] = out.add_host(s)
    out.freeze()
    if require_connected and not out.is_connected():
        raise ValueError(f"removing switch {switch} partitions the network")
    switch_map = {old: new for old in range(g.num_switches)
                  if (new := new_id(old)) is not None}
    return SwitchRemoval(out, switch_map, host_map)


def without_switch(g: NetworkGraph, switch: int,
                   require_connected: bool = True) -> NetworkGraph:
    """Like :func:`without_switch_mapped` but returns just the graph."""
    return without_switch_mapped(g, switch, require_connected).graph

"""Topology mutation: link and switch failures (extension).

Myrinet NICs "check for changes in the network topology (shutdown of
hosts, link/switch failures ...) in order to maintain the routing
tables" (paper Section 2).  These helpers produce the post-failure
topology so the routing stack can recompute tables and the resilience
benches can measure how gracefully each algorithm degrades.

Graphs are immutable once frozen, so mutation means rebuilding: the
returned graph preserves switch/host ids (hosts of a dead switch are
dropped along with it -- host ids then shift, so failure studies that
need stable host ids should fail links, not switches).
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from .graph import NetworkGraph


def without_links(g: NetworkGraph, link_ids: Iterable[int],
                  require_connected: bool = True) -> NetworkGraph:
    """A copy of ``g`` with the given cables removed.

    Link ids are renumbered (they are positional); switch and host ids
    are preserved.  With ``require_connected`` (default) a failure that
    would partition the switch graph raises :class:`ValueError` --
    routing is undefined across a partition.
    """
    dead: Set[int] = set(link_ids)
    for lid in dead:
        if not (0 <= lid < g.num_links):
            raise ValueError(f"link {lid} out of range")
    out = NetworkGraph(g.num_switches, g.switch_ports,
                       name=f"{g.name}-minus-{len(dead)}-links")
    for link in g.links:
        if link.id not in dead:
            out.add_link(link.a, link.b)
    for host in g.hosts:
        out.add_host(host.switch)
    out.freeze()
    if require_connected and not out.is_connected():
        raise ValueError(
            f"removing links {sorted(dead)} partitions the network")
    return out


def without_switch(g: NetworkGraph, switch: int,
                   require_connected: bool = True) -> NetworkGraph:
    """A copy of ``g`` with one switch (its links and hosts) removed.

    The remaining switches are renumbered densely (old id order kept);
    host ids are reassigned in the same order.  Returns the new graph;
    callers needing the old->new switch mapping can derive it: every
    old id above ``switch`` shifts down by one.
    """
    if not (0 <= switch < g.num_switches):
        raise ValueError(f"switch {switch} out of range")
    if g.num_switches < 2:
        raise ValueError("cannot remove the only switch")

    def new_id(old: int) -> Optional[int]:
        if old == switch:
            return None
        return old - 1 if old > switch else old

    out = NetworkGraph(g.num_switches - 1, g.switch_ports,
                       name=f"{g.name}-minus-sw{switch}")
    for link in g.links:
        a, b = new_id(link.a), new_id(link.b)
        if a is not None and b is not None:
            out.add_link(a, b)
    for host in g.hosts:
        s = new_id(host.switch)
        if s is not None:
            out.add_host(s)
    out.freeze()
    if require_connected and not out.is_connected():
        raise ValueError(f"removing switch {switch} partitions the network")
    return out

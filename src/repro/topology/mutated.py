"""The ``"mutated"`` topology: a registered builder for failed fabrics.

The resilience campaign runs failure configurations through the
orchestrator, whose workers receive plain-JSON :class:`SimConfig`
payloads -- they cannot carry a live post-failure ``NetworkGraph``.
Registering the mutation as a builder closes that gap: a failed fabric
is described by the *base* topology name, its kwargs, and the failure
set, e.g. ::

    SimConfig(topology="mutated",
              topology_kwargs={"base": "torus",
                               "base_kwargs": {"rows": 8, "cols": 8},
                               "failed_links": [3, 17]})

which rebuilds identically in any process and keys the runner's
graph/table memo caches (and the on-disk result store) canonically.

``failed_links`` are link ids of the **base** graph; ``failed_switch``
(applied after link removal) renumbers switch/host ids as documented in
:mod:`repro.topology.mutate` -- use :func:`mutation_maps` to recover
the old->new id maps for a given spec.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

from .graph import NetworkGraph
from .mutate import SwitchRemoval, without_links, without_switch_mapped


def _base_graph(base: str, base_kwargs: Optional[Dict[str, Any]]) -> NetworkGraph:
    from . import build  # late import: this module is part of the registry
    if base == "mutated":
        raise ValueError("mutated topologies cannot nest")
    return build(base, **(base_kwargs or {}))


def build_mutated(base: str,
                  base_kwargs: Optional[Dict[str, Any]] = None,
                  failed_links: Iterable[int] = (),
                  failed_switch: Optional[int] = None,
                  require_connected: bool = True) -> NetworkGraph:
    """Build ``base`` and apply the given link/switch failures."""
    g = _base_graph(base, base_kwargs)
    failed = tuple(failed_links)
    if failed:
        g = without_links(g, failed, require_connected=require_connected)
    if failed_switch is not None:
        g = without_switch_mapped(
            g, failed_switch, require_connected=require_connected).graph
    if not failed and failed_switch is None:
        # keep the name honest: this *is* the base graph
        return g
    return g


def mutation_maps(base: str,
                  base_kwargs: Optional[Dict[str, Any]] = None,
                  failed_links: Iterable[int] = (),
                  failed_switch: Optional[int] = None,
                  require_connected: bool = True
                  ) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Old->new ``(switch_map, host_map)`` for a mutation spec.

    Link failures never renumber switches or hosts, so without a
    ``failed_switch`` both maps are identities.  With one, the maps
    come from :class:`~repro.topology.mutate.SwitchRemoval`.
    """
    g = _base_graph(base, base_kwargs)
    failed = tuple(failed_links)
    if failed:
        g = without_links(g, failed, require_connected=require_connected)
    if failed_switch is None:
        return ({s: s for s in range(g.num_switches)},
                {h: h for h in range(g.num_hosts)})
    removal: SwitchRemoval = without_switch_mapped(
        g, failed_switch, require_connected=require_connected)
    return removal.switch_map, removal.host_map

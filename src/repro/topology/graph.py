"""Switch/host/link graph model shared by routing and simulation.

A :class:`NetworkGraph` is the static wiring of the network:

* ``num_switches`` crossbar switches, each with a fixed port count,
* point-to-point **links** (full-duplex cables) between switch pairs,
* **hosts**, each attached to exactly one switch through its own cable.

Switches and hosts are integer ids (0-based, separate id spaces).  Links
are undirected cables identified by an integer id; the simulator models
each direction as an independent channel.  The graph enforces the port
budget: every host and every link end consumes one switch port.

The routing layer only needs switch-level adjacency (hosts never forward
traffic except through the explicit in-transit buffer mechanism), so the
hot queries -- ``neighbors(s)``, ``link_between(a, b)``,
``hosts_at(s)`` -- are plain list/dict lookups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Link:
    """An undirected switch-to-switch cable.

    ``a < b`` is enforced at construction so a cable has one canonical
    representation; use :meth:`other` to walk either direction.
    """

    id: int
    a: int
    b: int

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError(f"link {self.id} connects switch {self.a} to itself")
        if self.a > self.b:
            raise ValueError(f"link endpoints must satisfy a < b, got {self.a} > {self.b}")

    def other(self, switch: int) -> int:
        """Endpoint opposite to ``switch``."""
        if switch == self.a:
            return self.b
        if switch == self.b:
            return self.a
        raise ValueError(f"switch {switch} is not an endpoint of link {self.id}")

    def endpoints(self) -> Tuple[int, int]:
        return (self.a, self.b)


@dataclass(frozen=True)
class Host:
    """A workstation attached to ``switch`` through its own NIC and cable."""

    id: int
    switch: int


@dataclass(frozen=True)
class GridGeometry:
    """Row/column coordinates of a grid-shaped switch fabric.

    Builders that lay switches out on a 2-D grid (torus, mesh, express
    torus) attach one of these so geometry-aware routing schemes
    (dimension-order, OutFlank) can recover coordinates without parsing
    names.  ``wrap`` distinguishes tori from meshes.  Mutated copies and
    irregular graphs carry no geometry (``graph.grid is None``) -- a
    failed link breaks the ring structure those schemes rely on.
    """

    rows: int
    cols: int
    wrap: bool

    def coords(self, switch: int) -> Tuple[int, int]:
        """Row-major (row, col) of a switch id."""
        return divmod(switch, self.cols)

    def switch(self, row: int, col: int) -> int:
        """Inverse of :meth:`coords` (callers pre-reduce modulo size)."""
        return row * self.cols + col


class NetworkGraph:
    """Static network wiring: switches, hosts and inter-switch links.

    Build incrementally with :meth:`add_link` / :meth:`add_host` (topology
    builders do this) and call :meth:`freeze` when done; frozen graphs are
    immutable and hashable by identity, which lets routing-table
    computation be cached per graph.
    """

    def __init__(self, num_switches: int, switch_ports: int = 16,
                 name: str = "custom") -> None:
        if num_switches <= 0:
            raise ValueError("need at least one switch")
        if switch_ports < 1:
            raise ValueError("switches need at least one port")
        self.name = name
        self.num_switches = num_switches
        self.switch_ports = switch_ports
        #: grid geometry, set by grid-shaped builders (else None)
        self.grid: Optional[GridGeometry] = None
        self.links: List[Link] = []
        self.hosts: List[Host] = []
        self._adj: List[List[Tuple[int, int]]] = [[] for _ in range(num_switches)]
        self._hosts_at: List[List[int]] = [[] for _ in range(num_switches)]
        self._ports_used: List[int] = [0] * num_switches
        self._link_index: Dict[Tuple[int, int], int] = {}
        #: both directed orders of every linked pair -> link id; lets
        #: path resolution skip the min/max canonicalisation
        self._dir_link: Dict[Tuple[int, int], int] = {}
        self._sorted_adj: Optional[List[List[Tuple[int, int]]]] = None
        self._frozen = False

    # -- construction -----------------------------------------------------

    def _check_mutable(self) -> None:
        if self._frozen:
            raise RuntimeError("graph is frozen")

    def _take_port(self, switch: int) -> None:
        if not (0 <= switch < self.num_switches):
            raise ValueError(f"switch {switch} out of range")
        if self._ports_used[switch] >= self.switch_ports:
            raise ValueError(
                f"switch {switch} has no free port "
                f"(all {self.switch_ports} in use)")
        self._ports_used[switch] += 1

    def add_link(self, a: int, b: int) -> int:
        """Connect switches ``a`` and ``b`` with a new cable; returns link id.

        Parallel links between the same switch pair are rejected: none of
        the paper's topologies use them and the routing layer assumes at
        most one cable per pair.
        """
        self._check_mutable()
        lo, hi = min(a, b), max(a, b)
        if (lo, hi) in self._link_index:
            raise ValueError(f"switches {lo} and {hi} are already linked")
        self._take_port(a)
        self._take_port(b)
        link = Link(len(self.links), lo, hi)
        self.links.append(link)
        self._adj[a].append((b, link.id))
        self._adj[b].append((a, link.id))
        self._link_index[(lo, hi)] = link.id
        self._dir_link[(lo, hi)] = link.id
        self._dir_link[(hi, lo)] = link.id
        return link.id

    def add_host(self, switch: int) -> int:
        """Attach a new host to ``switch``; returns the host id."""
        self._check_mutable()
        self._take_port(switch)
        host = Host(len(self.hosts), switch)
        self.hosts.append(host)
        self._hosts_at[switch].append(host.id)
        return host.id

    def add_hosts(self, switch: int, count: int) -> List[int]:
        """Attach ``count`` hosts to ``switch``."""
        return [self.add_host(switch) for _ in range(count)]

    def freeze(self) -> "NetworkGraph":
        """Mark the graph immutable (returns self for chaining)."""
        self._frozen = True
        return self

    # -- queries -----------------------------------------------------------

    @property
    def frozen(self) -> bool:
        return self._frozen

    @property
    def num_hosts(self) -> int:
        return len(self.hosts)

    @property
    def num_links(self) -> int:
        return len(self.links)

    def neighbors(self, switch: int) -> Sequence[Tuple[int, int]]:
        """``(neighbor_switch, link_id)`` pairs for ``switch``."""
        return self._adj[switch]

    def sorted_neighbors(self, switch: int) -> Sequence[Tuple[int, int]]:
        """Like :meth:`neighbors` but ascending by neighbour id.

        Path enumerators visit neighbours in sorted order for
        determinism; caching the sort here (computed lazily, once per
        graph) keeps it off the per-pair enumeration path.  Insertion
        order of :meth:`neighbors` is intentionally untouched -- tree
        and orientation construction depend on it.
        """
        if self._sorted_adj is None:
            self._sorted_adj = [sorted(adj) for adj in self._adj]
        return self._sorted_adj[switch]

    def degree(self, switch: int) -> int:
        """Number of inter-switch cables at ``switch``."""
        return len(self._adj[switch])

    def ports_used(self, switch: int) -> int:
        return self._ports_used[switch]

    def ports_free(self, switch: int) -> int:
        return self.switch_ports - self._ports_used[switch]

    def hosts_at(self, switch: int) -> Sequence[int]:
        """Host ids attached to ``switch``."""
        return self._hosts_at[switch]

    def host_switch(self, host: int) -> int:
        """Switch a host is attached to."""
        return self.hosts[host].switch

    def link_between(self, a: int, b: int) -> Optional[int]:
        """Link id of the cable between ``a`` and ``b`` (None if absent)."""
        return self._dir_link.get((a, b))

    def path_links(self, path: Sequence[int]) -> Tuple[int, ...]:
        """Link ids along a switch path, one dict probe per hop.

        Route construction resolves hundreds of thousands of hops when
        building the per-pair tables, so this avoids a Python-level
        method call (and pair canonicalisation) per hop.
        """
        get = self._dir_link.get
        lids = tuple([get((a, b), -1) for a, b in zip(path, path[1:])])
        if -1 in lids:
            i = lids.index(-1)
            raise ValueError(
                f"switches {path[i]} and {path[i + 1]} are not linked")
        return lids

    def switches(self) -> Iterator[int]:
        return iter(range(self.num_switches))

    def is_connected(self) -> bool:
        """True when every switch is reachable from switch 0."""
        if self.num_switches == 1:
            return True
        seen = [False] * self.num_switches
        seen[0] = True
        stack = [0]
        count = 1
        while stack:
            s = stack.pop()
            for nb, _ in self._adj[s]:
                if not seen[nb]:
                    seen[nb] = True
                    count += 1
                    stack.append(nb)
        return count == self.num_switches

    def shortest_distances(self, source: int) -> List[int]:
        """BFS hop distances (in links) from ``source`` to every switch.

        Unreachable switches get distance -1.
        """
        dist = [-1] * self.num_switches
        dist[source] = 0
        frontier = [source]
        while frontier:
            nxt: List[int] = []
            for s in frontier:
                d = dist[s] + 1
                for nb, _ in self._adj[s]:
                    if dist[nb] < 0:
                        dist[nb] = d
                        nxt.append(nb)
            frontier = nxt
        return dist

    def all_pairs_distances(self) -> List[List[int]]:
        """Hop-distance matrix (BFS from every switch)."""
        return [self.shortest_distances(s) for s in self.switches()]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"NetworkGraph({self.name!r}: {self.num_switches} switches, "
                f"{self.num_hosts} hosts, {self.num_links} links)")

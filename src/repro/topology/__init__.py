"""Network topologies evaluated in the paper plus generators for extensions.

The paper's evaluation uses three topologies built from 16-port Myrinet
switches with 8 hosts attached to each switch:

* an 8x8 **2-D torus** (64 switches, 512 hosts) -- :func:`build_torus`
* the same torus with **express channels** to second-order neighbours
  (all 16 ports used) -- :func:`build_torus_express`
* the Sandia **CPLANT** machine (50 switches, 400 hosts) --
  :func:`build_cplant`

:func:`build_irregular` generates the random irregular topologies of the
authors' earlier ITB papers, used here for extension studies.

All builders return a :class:`~repro.topology.graph.NetworkGraph`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from .graph import GridGeometry, Host, Link, NetworkGraph
from .torus import build_torus
from .express import build_torus_express
from .cplant import build_cplant
from .irregular import build_irregular
from .mesh import build_mesh
from .mutated import build_mutated
from .validate import check_topology

#: registry used by :class:`repro.config.SimConfig` (``topology=`` field)
BUILDERS: Dict[str, Callable[..., NetworkGraph]] = {
    "torus": build_torus,
    "torus-express": build_torus_express,
    "cplant": build_cplant,
    "irregular": build_irregular,
    "mesh": build_mesh,
    # a base topology plus a failure set, JSON-describable so failure
    # configs survive the orchestrator's process boundary (see
    # repro.topology.mutated)
    "mutated": build_mutated,
}


def build(name: str, **kwargs: Any) -> NetworkGraph:
    """Build a registered topology by name.

    >>> g = build("torus", rows=4, cols=4, hosts_per_switch=2)
    >>> g.num_switches
    16
    """
    try:
        builder = BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; available: {sorted(BUILDERS)}"
        ) from None
    return builder(**kwargs)


__all__ = [
    "NetworkGraph",
    "Host",
    "Link",
    "build",
    "build_torus",
    "build_torus_express",
    "build_cplant",
    "build_irregular",
    "build_mesh",
    "build_mutated",
    "check_topology",
    "BUILDERS",
]

"""Regeneration of every figure in the paper's evaluation section.

Latency-vs-traffic panels (Figures 7, 10, 12) compare UP/DOWN, ITB-SP
and ITB-RR on one topology/pattern; link-utilisation maps (Figures 8, 9,
11) snapshot per-link load at fixed injection rates.  Each function
returns a structured result that :mod:`repro.experiments.report` renders
as ASCII and that EXPERIMENTS.md quotes.

Rate grids are chosen to bracket the paper's reported saturation points
with headroom, so the curves show both the flat region and the vertical
bend for every routing algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import SimConfig
from ..metrics.linkstats import LinkUtilization
from ..metrics.summary import RunSummary
from .profiles import Profile
from .runner import run_simulation
from .sweep import SweepResult, sweep_rates

#: the three configurations every latency panel compares
ROUTINGS: Tuple[Tuple[str, str], ...] = (
    ("updown", "sp"), ("itb", "sp"), ("itb", "rr"))


@dataclass(frozen=True)
class FigureResult:
    """One latency-vs-traffic panel."""

    fig_id: str
    title: str
    series: List[SweepResult]
    #: paper-reported saturation throughputs per label (for
    #: EXPERIMENTS.md comparisons); None when the paper gives no number
    paper_throughput: Dict[str, Optional[float]]

    def measured_throughput(self) -> Dict[str, float]:
        return {s.label: s.throughput() for s in self.series}


@dataclass(frozen=True)
class LinkMapResult:
    """One link-utilisation snapshot (a panel of Figures 8/9/11)."""

    fig_id: str
    title: str
    label: str
    rate: float
    utilization: LinkUtilization
    summary: RunSummary


def _latency_panel(fig_id: str, title: str, topology: str, traffic: str,
                   rates: Sequence[float], profile: Profile,
                   paper_throughput: Dict[str, Optional[float]],
                   traffic_kwargs: Optional[dict] = None,
                   seed: int = 1, thin: bool = True,
                   executor=None) -> FigureResult:
    """Sweep the three routing configurations over a rate grid.

    ``thin=False`` keeps the full grid even under the bench profile --
    used where the panel's conclusion is a *ratio* of knees and grid
    clipping would distort it (Figure 12's modest local-traffic gains).
    ``executor`` routes the sweeps through the parallel orchestrator
    and its result store (see :mod:`repro.orchestrator`).
    """
    series = []
    grid = profile.thin(list(rates)) if thin else list(rates)
    for routing, policy in ROUTINGS:
        base = SimConfig(
            topology=topology, routing=routing, policy=policy,
            traffic=traffic, traffic_kwargs=traffic_kwargs or {},
            warmup_ps=profile.warmup_ps, measure_ps=profile.measure_ps,
            seed=seed)
        series.append(sweep_rates(base, grid, executor=executor))
    return FigureResult(fig_id, title, series, paper_throughput)


# -- Figure 7: uniform traffic ------------------------------------------------

#: rate grids bracketing the paper's saturation points
_RATES_TORUS_UNIFORM = [0.004, 0.008, 0.011, 0.014, 0.017, 0.021,
                        0.025, 0.029, 0.033, 0.038]
_RATES_EXPRESS_UNIFORM = [0.02, 0.04, 0.055, 0.07, 0.085, 0.10,
                          0.115, 0.13, 0.15]
_RATES_CPLANT_UNIFORM = [0.015, 0.03, 0.045, 0.06, 0.075, 0.09,
                         0.105, 0.12]


def fig7a(profile: Profile, executor=None) -> FigureResult:
    """Fig. 7a: uniform, 2-D torus.  Paper: UP/DOWN 0.015, ITB-SP 0.029,
    ITB-RR 0.032 flits/ns/switch."""
    return _latency_panel(
        "fig7a", "Uniform traffic, 2-D torus", "torus", "uniform",
        _RATES_TORUS_UNIFORM, profile,
        {"UP/DOWN": 0.015, "ITB-SP": 0.029, "ITB-RR": 0.032},
        executor=executor)


def fig7b(profile: Profile, executor=None) -> FigureResult:
    """Fig. 7b: uniform, 2-D torus with express channels.  Paper:
    UP/DOWN 0.07, ITB-SP 0.12, ITB-RR 0.11."""
    return _latency_panel(
        "fig7b", "Uniform traffic, 2-D torus + express channels",
        "torus-express", "uniform", _RATES_EXPRESS_UNIFORM, profile,
        {"UP/DOWN": 0.07, "ITB-SP": 0.12, "ITB-RR": 0.11},
        executor=executor)


def fig7c(profile: Profile, executor=None) -> FigureResult:
    """Fig. 7c: uniform, CPLANT.  Paper: UP/DOWN 0.05, ITB-SP just
    under double, ITB-RR 0.095."""
    return _latency_panel(
        "fig7c", "Uniform traffic, CPLANT", "cplant", "uniform",
        _RATES_CPLANT_UNIFORM, profile,
        {"UP/DOWN": 0.05, "ITB-SP": None, "ITB-RR": 0.095},
        executor=executor)


# -- Figures 8/9/11: link utilisation maps -----------------------------------

def _link_map_config(topology: str, traffic: str, routing: str,
                     policy: str, rate: float, profile: Profile,
                     traffic_kwargs: Optional[dict], seed: int) -> SimConfig:
    return SimConfig(
        topology=topology, routing=routing, policy=policy,
        traffic=traffic, traffic_kwargs=traffic_kwargs or {},
        injection_rate=rate,
        warmup_ps=profile.warmup_ps, measure_ps=profile.measure_ps,
        seed=seed)


def _link_map_panels(panels: Sequence[Tuple[str, str, SimConfig]],
                     executor=None) -> List[LinkMapResult]:
    """Run link-utilisation snapshots, batched through the executor.

    The panels of one figure are independent runs, so with an executor
    they execute concurrently (and re-render from the store for free).
    """
    configs = [cfg for _, _, cfg in panels]
    if executor is not None:
        summaries = executor.run_configs(configs, collect_links=True)
    else:
        summaries = [run_simulation(cfg, collect_links=True)
                     for cfg in configs]
    out = []
    for (fig_id, title, cfg), summary in zip(panels, summaries):
        assert summary.link_utilization is not None
        out.append(LinkMapResult(fig_id, title, cfg.label(),
                                 cfg.injection_rate,
                                 summary.link_utilization, summary))
    return out


def fig8(profile: Profile, executor=None) -> List[LinkMapResult]:
    """Fig. 8: link utilisation, 2-D torus, uniform traffic.

    Paper: at 0.015 (UP/DOWN's saturation) links near the root hit
    ~50 % under UP/DOWN while 65 % of links stay below 10 %; ITB-RR
    keeps everything below 12 %.  At 0.03 ITB-RR ranges 14--29 %.
    """
    return _link_map_panels([
        ("fig8a", "2-D torus @ 0.015, UP/DOWN",
         _link_map_config("torus", "uniform", "updown", "sp", 0.015,
                          profile, None, 1)),
        ("fig8b", "2-D torus @ 0.015, ITB-RR",
         _link_map_config("torus", "uniform", "itb", "rr", 0.015,
                          profile, None, 1)),
        ("fig8c", "2-D torus @ 0.03, ITB-RR",
         _link_map_config("torus", "uniform", "itb", "rr", 0.03,
                          profile, None, 1)),
    ], executor)


def fig9(profile: Profile, executor=None) -> List[LinkMapResult]:
    """Fig. 9: link utilisation, express torus @ 0.066 (UP/DOWN's
    saturation point).  Paper: root links ~50 % under UP/DOWN; under
    ITB-RR all links < 30 % (express ~25 %, local ~10 %)."""
    return _link_map_panels([
        ("fig9a", "Express torus @ 0.066, UP/DOWN",
         _link_map_config("torus-express", "uniform", "updown", "sp",
                          0.066, profile, None, 1)),
        ("fig9b", "Express torus @ 0.066, ITB-RR",
         _link_map_config("torus-express", "uniform", "itb", "rr",
                          0.066, profile, None, 1)),
    ], executor)


def fig11(profile: Profile, hotspot: int = 260,
          fraction: float = 0.10, executor=None) -> List[LinkMapResult]:
    """Fig. 11: link utilisation, 2-D torus, 10 % hotspot traffic at
    UP/DOWN's saturation (paper: 0.0123).  Paper: UP/DOWN concentrates
    near the root, ITB-RR only near the hotspot."""
    kwargs = {"hotspot": hotspot, "fraction": fraction}
    return _link_map_panels([
        ("fig11a", "2-D torus, 10% hotspot @ 0.0123, UP/DOWN",
         _link_map_config("torus", "hotspot", "updown", "sp", 0.0123,
                          profile, kwargs, 1)),
        ("fig11b", "2-D torus, 10% hotspot @ 0.0123, ITB-RR",
         _link_map_config("torus", "hotspot", "itb", "rr", 0.0123,
                          profile, kwargs, 1)),
    ], executor)


# -- Figure 10: bit-reversal ---------------------------------------------------

_RATES_TORUS_BITREV = [0.004, 0.008, 0.012, 0.016, 0.020, 0.024,
                       0.028, 0.032, 0.037]
_RATES_EXPRESS_BITREV = [0.02, 0.04, 0.055, 0.07, 0.085, 0.10,
                         0.115, 0.13]


def fig10a(profile: Profile, executor=None) -> FigureResult:
    """Fig. 10a: bit-reversal, 2-D torus.  Paper: UP/DOWN 0.017,
    ITB-RR 0.032."""
    return _latency_panel(
        "fig10a", "Bit-reversal traffic, 2-D torus", "torus",
        "bit-reversal", _RATES_TORUS_BITREV, profile,
        {"UP/DOWN": 0.017, "ITB-SP": None, "ITB-RR": 0.032},
        executor=executor)


def fig10b(profile: Profile, executor=None) -> FigureResult:
    """Fig. 10b: bit-reversal, express torus.  Paper: UP/DOWN 0.07,
    ITB-RR 0.11."""
    return _latency_panel(
        "fig10b", "Bit-reversal traffic, 2-D torus + express channels",
        "torus-express", "bit-reversal", _RATES_EXPRESS_BITREV, profile,
        {"UP/DOWN": 0.07, "ITB-SP": None, "ITB-RR": 0.11},
        executor=executor)


# -- Figure 12: local traffic ---------------------------------------------------

_RATES_TORUS_LOCAL = [0.02, 0.035, 0.05, 0.065, 0.08, 0.095, 0.11]
_RATES_EXPRESS_LOCAL = [0.04, 0.07, 0.10, 0.13, 0.16, 0.20]
_RATES_CPLANT_LOCAL = [0.03, 0.05, 0.07, 0.09, 0.12, 0.15]


def fig12a(profile: Profile, radius: int = 3,
          executor=None) -> FigureResult:
    """Fig. 12a: local traffic (<= 3 switches), 2-D torus.  Paper:
    UP/DOWN ~0.1, ITB-SP/RR ~0.13 (a modest gain -- the panel's point
    is the *ratio*, so the grid is never thinned)."""
    return _latency_panel(
        "fig12a", f"Local traffic (radius {radius}), 2-D torus", "torus",
        "local", _RATES_TORUS_LOCAL, profile,
        {"UP/DOWN": 0.10, "ITB-SP": 0.13, "ITB-RR": 0.13},
        traffic_kwargs={"radius": radius}, thin=False, executor=executor)


def fig12b(profile: Profile, radius: int = 3,
          executor=None) -> FigureResult:
    """Fig. 12b: local traffic, express torus.  Paper: UP/DOWN performs
    as ITB-RR; ITB-SP slightly ahead."""
    return _latency_panel(
        "fig12b", f"Local traffic (radius {radius}), express torus",
        "torus-express", "local", _RATES_EXPRESS_LOCAL, profile,
        {"UP/DOWN": None, "ITB-SP": None, "ITB-RR": None},
        traffic_kwargs={"radius": radius}, thin=False, executor=executor)


def fig12c(profile: Profile, radius: int = 3,
          executor=None) -> FigureResult:
    """Fig. 12c: local traffic, CPLANT.  Paper: small ITB benefits."""
    return _latency_panel(
        "fig12c", f"Local traffic (radius {radius}), CPLANT", "cplant",
        "local", _RATES_CPLANT_LOCAL, profile,
        {"UP/DOWN": None, "ITB-SP": None, "ITB-RR": None},
        traffic_kwargs={"radius": radius}, thin=False, executor=executor)
